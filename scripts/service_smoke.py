"""CI smoke for the distributed sweep fabric (docs/service.md).

Brings the whole stack up the way an operator would — real
subprocesses, real TCP — and checks the determinism contract:

1. start ``repro serve`` on a free port with a scratch broker/cache;
2. start two ``repro worker`` processes pointed at the HTTP endpoint;
3. submit one fig7a cell over HTTP and poll the run to completion;
4. assert the fetched ``CaseResult`` is byte-identical to the same
   cell run in-process via ``run_case``;
5. exercise ``repro cache`` stats/prune against the shared namespace.

Exit 0 on success; any failure propagates loudly.  Usage::

    python scripts/service_smoke.py [--scale 0.05] [--seed 1]
"""

import argparse
import json
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import registry
from repro.service import ServiceClient


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_healthy(client: ServiceClient, proc, timeout: float = 30.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"repro serve exited early (rc={proc.returncode})")
        try:
            client.experiments()
            return
        except Exception:
            time.sleep(0.2)
    raise RuntimeError("repro serve did not become healthy in time")


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=0.05)
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    repro = [sys.executable, "-m", "repro.cli"]
    procs = []
    with tempfile.TemporaryDirectory() as d:
        broker_dir = str(Path(d) / "broker")
        cache_dir = str(Path(d) / "cache")
        port = free_port()
        url = f"http://127.0.0.1:{port}"
        try:
            server = subprocess.Popen(
                repro + ["serve", "--broker", broker_dir, "--cache-dir",
                         cache_dir, "--port", str(port)],
            )
            procs.append(server)
            client = ServiceClient(url)
            wait_healthy(client, server)

            for i in range(2):
                procs.append(subprocess.Popen(
                    repro + ["worker", "--broker", url, "--id", f"smoke-w{i}",
                             "--max-cells", "1", "--idle-exit", "60"],
                ))

            sub = client.submit("fig7a", schemes=["CCFIT"],
                                time_scale=args.scale, seed=args.seed)
            print(f"submitted run {sub['run']}: {sub['cells']} cell(s)")
            status = client.wait(sub["run"], timeout=600)
            print(f"run finished: {status['counts']}")
            assert status["done"], status

            manifest = client.manifest(sub["run"])
            print(json.dumps(manifest, indent=2))
            assert manifest["ok"] == len(sub["keys"]), "cells failed"
            assert manifest["jobs"][0]["worker"].startswith("smoke-w"), \
                "completion not attributed to a smoke worker"

            # the determinism contract: HTTP-fetched result vs in-process
            (job,) = registry.get("fig7a").jobs(
                schemes=("CCFIT",), time_scale=args.scale, seed=args.seed)
            fetched = client.result(job.key())["result"]
            direct = job.run().to_dict()
            a = json.dumps(fetched, sort_keys=True)
            b = json.dumps(direct, sort_keys=True)
            assert a == b, "service result diverged from in-process run_case"
            print(f"byte-identical over HTTP ({len(a)} bytes)")

            metrics = client.metrics()
            assert "repro_service_cells" in metrics
            print("metrics endpoint ok")
        finally:
            for p in procs:
                p.terminate()
            for p in procs:
                try:
                    p.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    p.kill()

        # cache hygiene against the namespace the workers filled
        out = subprocess.run(
            repro + ["cache", "--dir", cache_dir, "--json"],
            check=True, capture_output=True, text=True,
        ).stdout
        stats = json.loads(out)
        print(f"cache: {stats['entries']} entries, {stats['bytes']} bytes")
        assert stats["entries"] >= 1, "worker result never reached the shared cache"
        subprocess.run(
            repro + ["cache", "--dir", cache_dir, "--prune", "--older-than", "0s"],
            check=True,
        )
        out = subprocess.run(
            repro + ["cache", "--dir", cache_dir, "--json"],
            check=True, capture_output=True, text=True,
        ).stdout
        assert json.loads(out)["entries"] == 0, "prune left entries behind"
        print("cache prune ok")

    print("service smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
