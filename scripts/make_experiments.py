#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from full paper-scale simulation runs.

Runs every figure of §IV at time_scale 1.0 (the paper's 10 ms windows
for Figs. 7/9/10; the 3 ms Case #4 window for Fig. 8) and writes the
paper-vs-measured record.  Takes ~15 minutes on a laptop-class core.

The figure grids run through the sweep engine
(repro.experiments.sweep): ``--jobs N`` fans the independent
(scheme x case) cells out across N worker processes, and finished
cells are memoized in the on-disk cache so a re-run (or a prior
``python -m repro sweep ...``) is served without re-simulating.

Usage:  python scripts/make_experiments.py [output.md]
                                           [--jobs N] [--scale X]
                                           [--cache-dir PATH | --no-cache]
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import registry
from repro.experiments.configs import table1
from repro.experiments.report import (
    render_fig8_summary,
    render_flow_table,
    render_series,
    render_table,
)
from repro.experiments.sweep import SweepOptions, default_cache_dir
from repro.metrics.analysis import jain_index, oscillation_score

SEED = 1

ap = argparse.ArgumentParser(description=__doc__)
ap.add_argument("output", nargs="?", default="EXPERIMENTS.md")
ap.add_argument("--jobs", type=int, default=1, metavar="N",
                help="worker processes for the simulation grids")
ap.add_argument("--scale", type=float, default=1.0,
                help="time compression (1.0 = the paper-scale record)")
ap.add_argument("--cache-dir", type=str, default=None)
ap.add_argument("--no-cache", action="store_true")
ARGS = ap.parse_args()
OUT = ARGS.output
OPTIONS = SweepOptions(
    time_scale=ARGS.scale,
    seed=SEED,
    jobs=ARGS.jobs,
    cache_dir=None if ARGS.no_cache else (ARGS.cache_dir or default_cache_dir()),
    use_cache=not ARGS.no_cache,
)

chunks: list[str] = []


def sweep(name: str):
    """Run one registered experiment through the engine, logging the
    cache/worker accounting to the console (not the record)."""
    results, report = registry.get(name).run(options=OPTIONS)
    print(f"[{name}] {report.summary()}", flush=True)
    return results


def emit(text: str = "") -> None:
    print(text, flush=True)
    chunks.append(text)


def code(block: str) -> None:
    chunks.append("```text\n" + block + "\n```")
    print(block, flush=True)


def main() -> None:
    t_start = time.time()
    emit("# EXPERIMENTS — paper vs. measured")
    emit()
    emit(
        "Full-scale reproduction record for every table and figure of the\n"
        "evaluation section (§IV) of *Combining Congested-Flow Isolation and\n"
        "Injection Throttling in HPC Interconnection Networks* (ICPP 2011).\n"
        "Regenerate with `python scripts/make_experiments.py` (~15 min), or\n"
        "run the scaled-down versions via `pytest benchmarks/ --benchmark-only`.\n"
        "All runs use seed 1; absolute numbers are simulator-specific, the\n"
        "**shape** columns state what the paper shows and what we measure."
    )
    emit()

    # ------------------------------------------------------------- Table I
    emit("## Table I — network configurations")
    emit()
    code(render_table(table1()))
    emit()
    emit(
        "Matches the paper exactly (7/8/64 nodes, 2/12/48 switches, 5 or\n"
        "2.5 GB/s crossbars, 2048 B MTU, 64 KiB port memory, credit flow\n"
        "control, iSlip, deterministic table-based routing)."
    )
    emit()

    # ------------------------------------------------------------- Fig 7
    fig7_meta = {
        "a": "Config #1 / Case #1: staircase of 4 hotspot flows onto node 4 plus one victim",
        "b": "Config #2 / Case #2: staircase of 5 flows onto two hot nodes of the 2-ary 3-tree",
        "c": "Config #2 / Case #3: Case #2 plus three uniform sources",
    }
    fig7_results = {}
    for panel, desc in fig7_meta.items():
        emit(f"## Fig. 7{panel} — network throughput vs time")
        emit()
        emit(desc + ".")
        emit()
        res = sweep(f"fig7{panel}")
        fig7_results[panel] = res
        code(render_series(res, stride=max(1, len(res["1Q"].throughput[0]) // 20)))
        tail = {s: r.mean_throughput() for s, r in res.items()}
        rows = [
            {"scheme": s, "steady tail GB/s": f"{v:.2f}",
             "oscillation": f"{oscillation_score(res[s].throughput[1]):.2f}"}
            for s, v in tail.items()
        ]
        code(render_table(rows))
        emit()
        if panel == "a":
            emit(
                "**Paper:** the three CC techniques similar and high; 1Q struggles as\n"
                "soon as congestion is introduced.  **Measured:** matches — 1Q loses\n"
                "~40% of aggregate throughput once the hotspot stair builds; ITh,\n"
                "FBICM and CCFIT all hold the victim+hotspot aggregate near the\n"
                "5 GB/s ceiling (FBICM highest, its isolation never throttles)."
            )
        elif panel == "b":
            emit(
                "**Paper:** similar picture with several congestion points.\n"
                "**Measured:** 1Q settles ~25% below the ceiling from inter-tree HoL\n"
                "blocking; FBICM reaches the 5 GB/s ceiling; the throttling schemes\n"
                "trade a slice of throughput for fairness (see Fig. 10)."
            )
        else:
            emit(
                "**Paper:** ITh operates too slowly — it takes time to reach the\n"
                "others' level.  **Measured:** the uniform noise triggers extra\n"
                "short-lived congestion; the throttling schemes show visibly higher\n"
                "oscillation scores than FBICM, and 1Q stays lowest."
            )
        emit()

    # ------------------------------------------------------------- Fig 8
    fig8_meta = {1: "a", 4: "b", 6: "c"}
    for trees, panel in fig8_meta.items():
        emit(f"## Fig. 8{panel} — Config #3, {trees} congestion tree(s)")
        emit()
        res = sweep(f"fig8{panel}")
        code(render_series(res, stride=max(1, len(res["1Q"].throughput[0]) // 15)))
        code(render_fig8_summary(res))
        emit()
        if trees == 1:
            emit(
                "**Paper:** CCFIT at the level of FBICM (2 CFQs suffice for one\n"
                "tree); VOQnet the maximum; ITh copes poorly; 1Q worst.\n"
                "**Measured:** CCFIT ≈ FBICM through the burst and 1Q collapses\n"
                "during it, exactly as published.  *Divergence:* our ITh performs\n"
                "well (~VOQnet level) rather than poorly — the paper itself\n"
                "attributes ITh's showing to 'unfortunate CC parameter values' and\n"
                "notes tuning throttling is hard; the CCTI_Timer ablation bench\n"
                "reproduces that sensitivity (a 4x timer change moves ITh's victim\n"
                "throughput by >2x while CCFIT barely shifts, §IV-B's point that\n"
                "CCFIT 'is not as sensitive to the parameters')."
            )
        else:
            emit(
                f"**Paper:** with {trees} trees FBICM runs out of CFQs — HoL returns\n"
                "in the NFQs — while CCFIT's throttling releases resources before\n"
                "they run out; CCFIT clearly above FBICM.  **Measured:** same\n"
                "ordering: CCFIT above FBICM during and after the burst, both far\n"
                "above 1Q, VOQnet on top; FBICM's CAM allocation failures count the\n"
                "exhaustion directly."
            )
        emit()

    # ------------------------------------------------------------- Fig 9
    emit("## Fig. 9 — per-flow bandwidth, Config #1 / Case #1 (fairness)")
    emit()
    res9 = sweep("fig9")
    flows9 = ("F0", "F1", "F2", "F5", "F6")
    contributors = ("F1", "F2", "F5", "F6")
    code(render_flow_table(res9, flows9))
    rows = [
        {
            "scheme": s,
            "victim F0 GB/s": f"{r.flow_bandwidth['F0']:.2f}",
            "jain(contributors)": f"{jain_index([r.flow_bandwidth[f] for f in contributors]):.3f}",
        }
        for s, r in res9.items()
    ]
    code(render_table(rows))
    emit()
    emit(
        "**Paper:** (a) 1Q — victim suffers HoL, contributors suffer the\n"
        "parking-lot problem (F5/F6 double F1/F2); (b) ITh — victim improved\n"
        "and parking lot solved; (c) FBICM — victim fully restored but\n"
        "unfairness *increased*; CCFIT (discussed with Fig. 10) — both.\n"
        "**Measured:** identical structure — 1Q victim ~0.42 with a 2:1\n"
        "parking-lot split; ITh victim ~2.5 with contributor fairness ≈ 1;\n"
        "FBICM victim 2.5 with the 2:1 split intact; CCFIT victim 2.5 with\n"
        "fairness ≈ 0.99."
    )
    emit()

    # ------------------------------------------------------------ Fig 10
    emit("## Fig. 10 — per-flow bandwidth, Config #2 / Case #2")
    emit()
    res10 = sweep("fig10")
    flows10 = ("F0", "F1", "F2", "F3", "F4")
    code(render_flow_table(res10, flows10))
    rows = [
        {
            "scheme": s,
            "total GB/s": f"{sum(r.flow_bandwidth.values()):.2f}",
            "jain(all flows)": f"{jain_index([r.flow_bandwidth[f] for f in flows10]):.3f}",
            "parking-lot F4/F1": f"{r.flow_bandwidth['F4'] / max(r.flow_bandwidth['F1'], 1e-9):.2f}",
        }
        for s, r in res10.items()
    ]
    code(render_table(rows))
    emit()
    emit(
        "**Paper:** 1Q poor and unfair; ITh better on both; FBICM highest\n"
        "throughput but unfairness dominant; CCFIT the best throughput *and*\n"
        "the highest fairness.  **Measured:** FBICM hits the 5 GB/s ceiling\n"
        "with a 2:1 parking lot (jain ~0.75 over the node-7 contributors);\n"
        "ITh equalises at the lowest total; CCFIT reaches near-perfect\n"
        "fairness at a total above ITh's — among the fairness-achieving\n"
        "schemes CCFIT delivers the most.  The fairness/throughput operating\n"
        "point is set by the congestion-state duty cycle (cfq_cs_exit and\n"
        "cfq_rearm_window; see the ablation benches): trading ~0.01 of Jain\n"
        "buys ~0.5 GB/s of total if a deployment prefers it."
    )
    emit()
    emit(f"_Total wall-clock for this record: {time.time() - t_start:.0f} s._")

    with open(OUT, "w") as fh:
        fh.write("\n".join(chunks) + "\n")
    print(f"\nwrote {OUT}")


if __name__ == "__main__":
    main()
