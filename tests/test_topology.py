"""Unit tests for topology builders and validation."""

import pytest

from repro.network.topology import (
    SwitchSpec,
    Topology,
    TopologyError,
    config1_adhoc,
    k_ary_n_tree,
)


class TestKAryNTree:
    def test_2ary_3tree_matches_table1(self):
        topo = k_ary_n_tree(2, 3)
        assert topo.num_nodes == 8
        assert topo.num_switches == 12  # n * k^(n-1) = 3 * 4

    def test_4ary_3tree_matches_table1(self):
        topo = k_ary_n_tree(4, 3)
        assert topo.num_nodes == 64
        assert topo.num_switches == 48  # 3 * 16

    def test_switch_radix_is_2k(self):
        topo = k_ary_n_tree(4, 3)
        assert all(s.num_ports == 8 for s in topo.switches)

    def test_levels_partition_switches(self):
        topo = k_ary_n_tree(2, 3)
        per_level = {}
        for s in topo.switches:
            per_level.setdefault(s.level, 0)
            per_level[s.level] += 1
        assert per_level == {0: 4, 1: 4, 2: 4}

    def test_nodes_attach_to_leaf_switches_only(self):
        topo = k_ary_n_tree(2, 3)
        for nid, (sw, port, _bw) in topo.node_attach.items():
            assert topo.switches[sw].level == 0
            assert port == nid % 2
            assert sw == nid // 2

    def test_validates_and_routes_all_pairs(self):
        k_ary_n_tree(2, 3).validate()
        k_ary_n_tree(3, 2).validate()

    def test_paths_to_same_destination_converge(self):
        """DET routing: once two paths towards one destination meet,
        they stay together — a single tree per destination."""
        topo = k_ary_n_tree(2, 3)
        dst = 7
        suffixes = []
        for src in range(topo.num_nodes - 1):
            hops = topo.path(src, dst)
            suffixes.append(tuple(hops))
        # any two paths share their suffix after the first common switch
        for a in suffixes:
            for b in suffixes:
                shared = {sw for sw, _ in a} & {sw for sw, _ in b}
                if not shared:
                    continue
                ai = min(i for i, (sw, _) in enumerate(a) if sw in shared)
                bi = min(i for i, (sw, _) in enumerate(b) if sw in shared)
                assert a[ai:] == b[bi:]

    def test_up_down_paths_have_no_level_bounce(self):
        """Paths ascend to one apex then only descend (deadlock-free)."""
        topo = k_ary_n_tree(4, 3)
        levels = {s.id: s.level for s in topo.switches}
        for src, dst in [(0, 63), (5, 6), (17, 42), (63, 0)]:
            path_levels = [levels[sw] for sw, _ in topo.path(src, dst)]
            apex = path_levels.index(max(path_levels))
            assert path_levels[: apex + 1] == sorted(path_levels[: apex + 1])
            assert path_levels[apex:] == sorted(path_levels[apex:], reverse=True)

    def test_intra_leaf_route_is_one_hop(self):
        topo = k_ary_n_tree(2, 3)
        assert len(topo.path(0, 1)) == 1

    def test_max_path_crosses_2n_minus_1_switches(self):
        topo = k_ary_n_tree(2, 3)
        assert max(len(topo.path(s, d)) for s in range(8) for d in range(8) if s != d) == 5

    def test_bad_parameters_rejected(self):
        with pytest.raises(TopologyError):
            k_ary_n_tree(1, 3)
        with pytest.raises(TopologyError):
            k_ary_n_tree(2, 0)

    def test_crossbar_defaults_to_link_bandwidth(self):
        assert k_ary_n_tree(2, 3, bandwidth=2.5).effective_crossbar_bw() == 2.5


class TestConfig1:
    def test_structure_matches_table1(self):
        topo = config1_adhoc()
        assert topo.num_nodes == 7
        assert topo.num_switches == 2
        topo.validate()

    def test_crossbar_is_5_gbs(self):
        assert config1_adhoc().effective_crossbar_bw() == 5.0

    def test_interswitch_link_is_faster(self):
        topo = config1_adhoc()
        (_a, _pa, _b, _pb, bw), = topo.switch_links
        assert bw == 5.0
        assert all(b == 2.5 for (_s, _p, b) in topo.node_attach.values())

    def test_victim_shares_input_port_with_remote_contributors(self):
        """F0 (0->3), F1 (1->4) and F2 (2->4) all enter switch 1 via the
        inter-switch port — the victimisation setting of Case #1."""
        topo = config1_adhoc()
        entry_ports = set()
        for src in (0, 1, 2):
            hops = topo.path(src, 4 if src else 3)
            sw0_out = hops[0]
            nb = topo.neighbor(*sw0_out)
            assert nb[0] == "switch" and nb[1] == 1
            entry_ports.add(nb[2])
        assert len(entry_ports) == 1

    def test_local_contributors_have_private_ports(self):
        topo = config1_adhoc()
        p5 = topo.node_attach[5][1]
        p6 = topo.node_attach[6][1]
        assert p5 != p6


class TestValidation:
    def _tiny(self):
        return Topology(
            name="tiny",
            num_nodes=2,
            switches=[SwitchSpec(id=0, num_ports=2)],
            node_attach={0: (0, 0, 2.5), 1: (0, 1, 2.5)},
            switch_links=[],
            routes={(0, 0): 0, (0, 1): 1},
        )

    def test_tiny_is_valid(self):
        self._tiny().validate()

    def test_port_reuse_detected(self):
        topo = self._tiny()
        topo.node_attach[1] = (0, 0, 2.5)
        with pytest.raises(TopologyError):
            topo.validate()

    def test_missing_route_detected(self):
        topo = self._tiny()
        del topo.routes[(0, 1)]
        with pytest.raises(TopologyError):
            topo.validate()

    def test_route_to_wrong_node_detected(self):
        topo = self._tiny()
        topo.routes[(0, 1)] = 0  # points at node 0 instead of node 1
        with pytest.raises(TopologyError):
            topo.validate()

    def test_routing_loop_detected(self):
        topo = Topology(
            name="loop",
            num_nodes=2,
            switches=[SwitchSpec(0, 3), SwitchSpec(1, 3)],
            node_attach={0: (0, 0, 2.5), 1: (1, 0, 2.5)},
            switch_links=[(0, 1, 1, 1, 2.5), (0, 2, 1, 2, 2.5)],
            routes={(0, 0): 0, (0, 1): 1, (1, 1): 0, (1, 0): 1},
        )
        # break: route for dst 1 at switch 1 bounces back to switch 0
        topo.routes[(1, 1)] = 1
        with pytest.raises(TopologyError):
            topo.validate()

    def test_bad_bandwidth_detected(self):
        topo = self._tiny()
        topo.node_attach[0] = (0, 0, 0.0)
        with pytest.raises(TopologyError):
            topo.validate()
