"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, fired.append, "c")
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_equal_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for tag in range(20):
        sim.schedule(5.0, fired.append, tag)
    sim.run()
    assert fired == list(range(20))


def test_handler_scheduling_at_now_runs_same_instant_after_peers():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(sim.now, fired.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(1.0, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "nested"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_in(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(10.0, fired.append, "x")
    sim.schedule(5.0, fired.append, "y")
    ev.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(10.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()
    assert sim.events_dispatched == 0


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run(until=10.0)
    assert fired == ["a"]
    assert sim.now == 10.0
    sim.run(until=15.0)
    assert fired == ["a"]
    assert sim.now == 15.0  # clock advances even with no events
    sim.run(until=25.0)
    assert fired == ["a", "b"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    sim.run(max_events=100)
    assert fired == list(range(10))


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 2.0


def test_pending_counts_live_events():
    sim = Simulator()
    evs = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending() == 5
    evs[0].cancel()
    assert sim.pending() == 4
    sim.drain(evs)
    assert sim.pending() == 0


def test_call_every_fires_periodically():
    sim = Simulator()
    fired = []
    sim.call_every(10.0, lambda: fired.append(sim.now))
    sim.run(until=55.0)
    assert fired == [10.0, 20.0, 30.0, 40.0, 50.0]


def test_call_every_start_and_end():
    sim = Simulator()
    fired = []
    sim.call_every(10.0, lambda: fired.append(sim.now), start=5.0, end=25.0)
    sim.run(until=100.0)
    assert fired == [5.0, 15.0, 25.0]


def test_call_every_cancel_stops_chain():
    sim = Simulator()
    fired = []
    task = sim.call_every(10.0, lambda: fired.append(sim.now))
    sim.run(until=25.0)
    task.cancel()
    sim.run(until=100.0)
    assert fired == [10.0, 20.0]


def test_event_repr_mentions_state():
    ev = Event(1.0, 0, lambda: None, ())
    assert "pending" in repr(ev)
    ev.cancel()
    assert "cancelled" in repr(ev)


def test_events_dispatched_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_dispatched == 7
