"""Unit tests for the queue schemes (1Q, VOQsw, VOQnet)."""

import pytest

from repro.core.params import CCParams
from repro.network.buffers import BufferPool
from repro.network.packet import Packet
from repro.network.queueing import DbbmScheme, OneQScheme, VOQnetScheme, VOQswScheme


class FakeHost:
    """Minimal PortHost: routes dst -> dst % num_outputs."""

    def __init__(self, num_outputs=4, memory=64 * 1024, **params):
        self.pool = BufferPool(memory)
        self.params = CCParams(**params)
        self.name = "fake"
        self.num_outputs = num_outputs
        self.kicks = 0
        self.hot_events = []

    def route(self, pkt):
        return pkt.dst % self.num_outputs

    def kick(self):
        self.kicks += 1

    def set_output_hot(self, out_port, source, hot):
        self.hot_events.append((out_port, hot))


def pkt(dst=0, size=2048):
    return Packet(0, dst, size, "f")


class TestOneQ:
    def test_single_fifo(self):
        host = FakeHost()
        s = OneQScheme(host)
        s.on_arrival(pkt(dst=1))
        s.on_arrival(pkt(dst=2))
        heads = s.eligible_heads()
        assert len(heads) == 1  # only the head requests: HoL by design
        q, out, head = heads[0]
        assert out == 1 and head.dst == 1
        assert host.kicks == 2

    def test_empty_scheme_has_no_heads(self):
        assert OneQScheme(FakeHost()).eligible_heads() == []

    def test_head_cache_invalidation(self):
        host = FakeHost()
        s = OneQScheme(host)
        s.on_arrival(pkt(dst=1))
        first = s.eligible_heads()
        assert s.eligible_heads() is first  # cached
        s.q.pop()
        s.after_dequeue(s.q)
        assert s.eligible_heads() == []


class TestVOQsw:
    def test_per_output_queues(self):
        host = FakeHost(num_outputs=4)
        s = VOQswScheme(host, num_outputs=4)
        s.on_arrival(pkt(dst=1))
        s.on_arrival(pkt(dst=2))
        s.on_arrival(pkt(dst=5))  # -> output 1 again
        heads = s.eligible_heads()
        assert sorted(out for _q, out, _p in heads) == [1, 2]
        assert len(s.voqs[1]) == 2

    def test_no_hol_between_outputs(self):
        host = FakeHost(num_outputs=2)
        s = VOQswScheme(host, num_outputs=2)
        for _ in range(5):
            s.on_arrival(pkt(dst=0))
        s.on_arrival(pkt(dst=1))
        # dst-1 head immediately eligible despite dst-0 backlog
        assert any(out == 1 for _q, out, _p in s.eligible_heads())

    def test_hot_detection_thresholds(self):
        host = FakeHost(num_outputs=2)
        s = VOQswScheme(host, num_outputs=2, detect_hot=True)
        for _ in range(3):
            s.on_arrival(pkt(dst=0))
        assert host.hot_events == []  # 3 * 2048 < voq_high (4 MTU)
        s.on_arrival(pkt(dst=0))
        assert host.hot_events == [(0, True)]
        # drain below low (2 MTU): hot clears
        s.voqs[0].pop()
        s.after_dequeue(s.voqs[0])
        s.voqs[0].pop()
        s.after_dequeue(s.voqs[0])
        assert host.hot_events == [(0, True), (0, False)]

    def test_no_detection_when_disabled(self):
        host = FakeHost(num_outputs=2)
        s = VOQswScheme(host, num_outputs=2, detect_hot=False)
        for _ in range(10):
            s.on_arrival(pkt(dst=0))
        assert host.hot_events == []


class TestVOQnet:
    def test_per_destination_queues(self):
        host = FakeHost(num_outputs=4, memory=256 * 1024)
        s = VOQnetScheme(host, num_destinations=8)
        assert len(s.voqs) == 8

    def test_admission_is_per_destination(self):
        host = FakeHost(num_outputs=4, memory=32 * 1024)
        s = VOQnetScheme(host, num_destinations=8)  # 4 KiB each
        hot = pkt(dst=3)
        assert s.can_accept_extra(hot)
        s.reserve_extra(hot)
        s.on_arrival(hot)
        second = pkt(dst=3)
        s.reserve_extra(second)
        s.on_arrival(second)
        # dest 3 full (2 packets = 4 KiB) but other destinations still open
        assert not s.can_accept_extra(pkt(dst=3))
        assert s.can_accept_extra(pkt(dst=4))

    def test_in_flight_reservations_count(self):
        host = FakeHost(num_outputs=4, memory=32 * 1024)
        s = VOQnetScheme(host, num_destinations=8)
        p = pkt(dst=3)
        s.reserve_extra(p)  # committed at transmission start
        s.reserve_extra(pkt(dst=3))
        assert not s.can_accept_extra(pkt(dst=3))
        s.on_arrival(p)  # arrival converts pending into queued
        assert not s.can_accept_extra(pkt(dst=3))

    def test_queue_share_grows_with_port_memory(self):
        host = FakeHost(memory=64 * 1024)
        s = VOQnetScheme(host, num_destinations=4)
        assert s.per_queue == 16 * 1024  # memory / destinations > 4 KiB floor

    def test_memory_too_small_rejected(self):
        host = FakeHost(memory=8 * 1024)
        with pytest.raises(ValueError):
            VOQnetScheme(host, num_destinations=8)

    def test_all_heads_eligible(self):
        host = FakeHost(num_outputs=4, memory=256 * 1024)
        s = VOQnetScheme(host, num_destinations=8)
        for d in (1, 2, 6):
            p = pkt(dst=d)
            s.reserve_extra(p)
            s.on_arrival(p)
        assert len(s.eligible_heads()) == 3


class TestDbbm:
    def test_destination_hashing(self):
        host = FakeHost(num_outputs=4)
        s = DbbmScheme(host, num_queues=4)
        s.on_arrival(pkt(dst=1))
        s.on_arrival(pkt(dst=5))  # same bucket as dst 1
        s.on_arrival(pkt(dst=2))
        assert len(s.queues_by_hash[1]) == 2
        assert len(s.queues_by_hash[2]) == 1

    def test_no_hol_across_buckets(self):
        host = FakeHost(num_outputs=4)
        s = DbbmScheme(host, num_queues=4)
        for _ in range(5):
            s.on_arrival(pkt(dst=1))
        s.on_arrival(pkt(dst=2))
        heads = s.eligible_heads()
        assert {p.dst for _q, _o, p in heads} == {1, 2}

    def test_hol_within_bucket(self):
        host = FakeHost(num_outputs=4)
        s = DbbmScheme(host, num_queues=4)
        s.on_arrival(pkt(dst=1))
        s.on_arrival(pkt(dst=5))  # behind dst 1 in the same bucket
        heads = s.eligible_heads()
        assert [p.dst for _q, _o, p in heads] == [1]

    def test_bad_queue_count(self):
        with pytest.raises(ValueError):
            DbbmScheme(FakeHost(), num_queues=0)
