"""The ``repro perf`` harness: JSON report shape and CLI smoke."""

import json

from repro.cli import main
from repro.perf import (
    dispatch_microbench,
    render_report,
    run_perf,
    subsystem_counts,
    telemetry_overhead,
)


def test_dispatch_microbench_counts_events():
    m = dispatch_microbench("bucket", n_events=5_000, repeats=1)
    assert m["events"] == 5_000
    assert m["events_per_s"] > 0
    assert m["wall_s"] > 0


def test_subsystem_counts_folds_qualnames():
    counts = {
        "Link._tx_done": 10,
        "Link._deliver": 10,
        "Switch._match": 5,
        "InputPort.receive_packet": 2,
        "EndNode._inject": 3,
        "FlowGenerator._tick": 4,
        "weird_function": 1,
    }
    subs = subsystem_counts(counts)
    assert subs["link"] == 20
    assert subs["switch"] == 7
    assert subs["endnode"] == 3
    assert subs["traffic"] == 4
    assert subs["other"] == 1


def test_run_perf_report_shape():
    report = run_perf(
        cases=("case1",),
        schemes=("1Q",),
        kernels=("bucket", "heap"),
        time_scale=0.02,
        seed=1,
        micro_events=5_000,
        micro_repeats=1,
    )
    assert report["schema"] == "repro.perf/1"
    assert set(report["microbench"]) == {"bucket", "heap"}
    assert report["speedup"] > 0
    assert len(report["cases"]) == 2
    for row in report["cases"]:
        assert row["events"] > 0
        assert row["events_per_s"] > 0
        assert "subsystems" in row and row["subsystems"]
    # both kernels executed the exact same event sequence
    a, b = report["cases"]
    assert a["events"] == b["events"]
    assert a["delivered_packets"] == b["delivered_packets"]
    # the telemetry-overhead gate runs once per kernel
    assert {row["kernel"] for row in report["telemetry"]} == {"bucket", "heap"}
    assert all(row["byte_identical"] for row in report["telemetry"])
    assert render_report(report)  # renders without blowing up


def test_telemetry_overhead_gate():
    """Sampling must leave the results byte-identical and report a
    finite overhead measurement."""
    row = telemetry_overhead(
        "case1", "1Q", kernel="bucket", time_scale=0.02, seed=1,
        interval=50_000.0, repeats=1,
    )
    assert row["byte_identical"] is True
    assert row["samples"] > 0
    assert row["events"] > 0
    assert row["wall_on_s"] > 0 and row["wall_off_s"] > 0
    assert isinstance(row["overhead_pct"], float)


def test_cli_perf_quick_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "BENCH_engine.json"
    rc = main(["perf", "--quick", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "repro.perf/1"
    assert report["quick"] is True
    assert "bucket" in report["microbench"] and "heap" in report["microbench"]
    assert report["cases"], "expected at least one case row"
    assert capsys.readouterr().out.strip()


def test_cli_perf_rejects_unknown_case_and_scheme(tmp_path):
    assert main(["perf", "--case", "nope", "--out", str(tmp_path / "x.json")]) == 2
    assert main(["perf", "--schemes", "XX", "--out", str(tmp_path / "x.json")]) == 2
