"""Unit tests for lossless links."""

import numpy as np
import pytest

from repro.network.link import CONTROL_HOP_DELAY, Link, LinkError
from repro.network.packet import Becn, CfqStop, Packet
from repro.sim.engine import Simulator


class StubRx:
    """Receiver that accepts up to `capacity` bytes."""

    def __init__(self, capacity=1 << 30):
        self.capacity = capacity
        self.reserved = 0
        self.delivered = []
        self.controls = []

    def can_accept(self, pkt):
        return self.reserved + pkt.size <= self.capacity

    def reserve(self, pkt):
        self.reserved += pkt.size

    def receive_packet(self, pkt, link):
        self.delivered.append((pkt, link.sim.now))

    def receive_control(self, msg, link):
        self.controls.append((msg, link.sim.now))


class StubTx:
    def __init__(self):
        self.tx_done_at = []
        self.credits = []
        self.reverse = []

    def on_tx_done(self, link):
        self.tx_done_at.append(link.sim.now)

    def on_credit(self, link):
        self.credits.append(link.sim.now)

    def receive_reverse_control(self, msg, link):
        self.reverse.append((msg, link.sim.now))


def make_link(bandwidth=2.5, delay=20.0, capacity=1 << 30, **kw):
    sim = Simulator()
    link = Link(sim, "l", bandwidth, delay, **kw)
    tx, rx = StubTx(), StubRx(capacity)
    link.connect(tx, rx)
    return sim, link, tx, rx


def test_serialization_and_delivery_times():
    sim, link, tx, rx = make_link()
    pkt = Packet(0, 1, 2048, "f")
    done = link.send(pkt)
    assert done == pytest.approx(2048 / 2.5)
    sim.run()
    assert tx.tx_done_at == [pytest.approx(819.2)]
    (delivered, at), = rx.delivered
    assert delivered is pkt
    assert at == pytest.approx(819.2 + 20.0)
    assert delivered.hops == 1


def test_send_while_busy_raises():
    sim, link, tx, rx = make_link()
    link.send(Packet(0, 1, 2048, "f"))
    with pytest.raises(LinkError):
        link.send(Packet(0, 1, 2048, "f"))


def test_send_without_downstream_space_raises():
    sim, link, tx, rx = make_link(capacity=1024)
    pkt = Packet(0, 1, 2048, "f")
    assert not link.can_send(pkt)
    with pytest.raises(LinkError):
        link.send(pkt)


def test_space_reserved_at_send_time():
    sim, link, tx, rx = make_link(capacity=4096)
    link.send(Packet(0, 1, 2048, "f"))
    # Space committed immediately, before delivery.
    assert rx.reserved == 2048
    assert rx.can_accept(Packet(0, 1, 2048, "f"))
    assert not rx.can_accept(Packet(0, 1, 4096, "f"))


def test_credit_return_reaches_tx_after_delay():
    sim, link, tx, rx = make_link(delay=20.0)
    link.return_credit(2048)
    sim.run()
    assert tx.credits == [pytest.approx(20.0)]


def test_non_positive_credit_raises():
    sim, link, tx, rx = make_link()
    with pytest.raises(LinkError):
        link.return_credit(0)


def test_forward_control_channel():
    sim, link, tx, rx = make_link(delay=20.0)
    msg = Becn(src=1, dst=0, congested_destination=1)
    link.send_control(msg)
    sim.run()
    (got, at), = rx.controls
    assert got is msg
    assert at == pytest.approx(20.0 + CONTROL_HOP_DELAY)


def test_reverse_control_channel():
    sim, link, tx, rx = make_link(delay=20.0)
    msg = CfqStop(destination=4, tree_id=0)
    link.send_reverse_control(msg)
    sim.run()
    (got, at), = tx.reverse
    assert got is msg
    assert at == pytest.approx(20.0 + CONTROL_HOP_DELAY)


def test_set_bandwidth_affects_next_packet():
    sim, link, tx, rx = make_link(bandwidth=2.5)
    link.send(Packet(0, 1, 2048, "f"))
    sim.run()
    link.set_bandwidth(1.25)  # link frequency scaling
    done = link.send(Packet(0, 1, 2048, "f"))
    assert done - sim.now == pytest.approx(2048 / 1.25)


def test_jitter_stretches_serialization_deterministically():
    rng1 = np.random.default_rng(5)
    sim, link, tx, rx = make_link(jitter=0.01, rng=rng1)
    done = link.send(Packet(0, 1, 2048, "f"))
    nominal = 2048 / 2.5
    assert nominal <= done <= nominal * 1.01
    # same seed -> same stretched time
    sim2, link2, _, _ = make_link(jitter=0.01, rng=np.random.default_rng(5))
    assert link2.send(Packet(0, 1, 2048, "f")) == done


def test_jitter_requires_rng():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, "l", 2.5, 20.0, jitter=0.01)


def test_invalid_construction():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, "l", 0.0, 20.0)
    with pytest.raises(ValueError):
        Link(sim, "l", 2.5, -1.0)
    with pytest.raises(ValueError):
        Link(sim, "l", 2.5, 1.0, jitter=0.7, rng=np.random.default_rng(0))


def test_counters():
    sim, link, tx, rx = make_link()
    link.send(Packet(0, 1, 2048, "f"))
    sim.run()
    link.send(Packet(0, 1, 1024, "f"))
    sim.run()
    assert link.packets_sent == 2
    assert link.bytes_sent == 3072
