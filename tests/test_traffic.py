"""Unit tests for traffic generation and the paper's traffic cases."""

import pytest

from repro.network.fabric import build_fabric
from repro.network.topology import config1_adhoc, k_ary_n_tree
from repro.traffic.flows import FlowSpec, attach_traffic
from repro.traffic.patterns import (
    CASE2_HOT_NODE,
    CASE2_SECOND_HOT_NODE,
    case1_flows,
    case2_flows,
    case3_traffic,
    case4_hot_destinations,
    case4_hot_senders,
    case4_traffic,
)


class TestFlowSpec:
    def test_interval(self):
        f = FlowSpec("f", src=0, dst=1, rate=2.5, packet_size=2048)
        assert f.interval == pytest.approx(819.2)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(rate=0.0),
            dict(src=1, dst=1),
            dict(start=5.0, end=5.0),
            dict(packet_size=0),
        ],
    )
    def test_invalid_specs(self, kw):
        base = dict(src=0, dst=1, rate=2.5)
        base.update(kw)
        with pytest.raises(ValueError):
            FlowSpec("f", **base)


class TestGenerators:
    def test_flow_generator_offers_at_rate(self):
        fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
        (gen,) = attach_traffic(
            fab, flows=[FlowSpec("f", src=0, dst=3, rate=2.5, start=0.0, end=81920.0)]
        )
        fab.run(until=81920.0)
        assert gen.offered + gen.rejected == 101  # ticks at 0, T, ..., 100T

    def test_flow_stops_at_end(self):
        fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
        (gen,) = attach_traffic(
            fab, flows=[FlowSpec("f", src=0, dst=3, rate=2.5, start=0.0, end=8000.0)]
        )
        fab.run(until=100_000.0)
        assert gen.offered == 10  # ticks at 0 .. 9 * 819.2 ns

    def test_generator_requires_matching_source(self):
        fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
        from repro.traffic.flows import FlowGenerator

        with pytest.raises(ValueError):
            FlowGenerator(fab.sim, fab.nodes[1], FlowSpec("f", src=0, dst=3, rate=2.5))

    def test_uniform_generator_spreads_destinations(self):
        fab = build_fabric(k_ary_n_tree(2, 3), scheme="VOQnet", seed=3)
        attach_traffic(fab, uniform=[{"node": 0, "rate": 2.5, "name": "u"}])
        fab.run(until=500_000.0)
        flows = fab.collector.flows()
        assert flows == ["u"]
        # every other node received something
        delivered = {n.id for n in fab.nodes if n.packets_delivered > 0}
        assert delivered == set(range(1, 8))

    def test_uniform_generator_excludes_self(self):
        fab = build_fabric(k_ary_n_tree(2, 3), scheme="VOQnet", seed=3)
        attach_traffic(fab, uniform=[{"node": 2, "rate": 2.5, "name": "u"}])
        fab.run(until=300_000.0)
        assert fab.nodes[2].packets_delivered == 0

    def test_backpressure_rejects_when_advoq_full(self):
        # 1Q towards a blocked destination: AdVOQ fills, offers bounce.
        fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
        specs = [
            FlowSpec("a", src=5, dst=4, rate=2.5),
            FlowSpec("b", src=6, dst=4, rate=2.5),
            FlowSpec("c", src=1, dst=4, rate=2.5),
        ]
        gens = attach_traffic(fab, flows=specs)
        fab.run(until=2_000_000.0)
        assert sum(g.rejected for g in gens) > 0


class TestPatterns:
    def test_case1_structure(self):
        flows = case1_flows()
        names = {f.name: f for f in flows}
        assert set(names) == {"F0", "F1", "F2", "F5", "F6"}
        assert names["F0"].dst == 3  # the victim
        assert all(names[f].dst == 4 for f in ("F1", "F2", "F5", "F6"))
        starts = [names[f].start for f in ("F0", "F1", "F2", "F5", "F6")]
        assert starts == sorted(starts)

    def test_case1_time_scale(self):
        flows = case1_flows(time_scale=0.1)
        assert max(f.end for f in flows) == pytest.approx(1_000_000.0)

    def test_case2_structure(self):
        flows = case2_flows()
        by_name = {f.name: f for f in flows}
        # three contributors onto the primary hot node, two onto the
        # secondary — "several congestion points" (§IV-A)
        assert [by_name[n].dst for n in ("F1", "F4", "F2")] == [CASE2_HOT_NODE] * 3
        assert [by_name[n].dst for n in ("F0", "F3")] == [CASE2_SECOND_HOT_NODE] * 2
        assert by_name["F1"].start == 0.0  # F1 active the whole simulation
        # both destinations share the DET ascent plane (d0 digit), so
        # the two trees mix in shared queues
        assert CASE2_HOT_NODE % 2 == CASE2_SECOND_HOT_NODE % 2

    def test_case3_adds_uniform_sources(self):
        flows, uniform = case3_traffic()
        assert len(flows) == 5
        assert sorted(u["node"] for u in uniform) == [5, 6, 7]

    def test_case4_sender_and_dest_disjointness(self):
        senders = case4_hot_senders()
        assert len(senders) == 16  # 25 % of 64
        assert all(n % 4 == 3 for n in senders)
        for trees in (1, 4, 6):
            dests = case4_hot_destinations(trees)
            assert len(dests) == len(set(dests)) == trees
            assert not set(dests) & set(senders)

    def test_case4_group_collision_structure(self):
        """Destinations within a group share both ascent digits, so
        their trees collide on ports (the Fig. 8 exhaustion)."""
        dests = case4_hot_destinations(6)
        groups = {}
        for d in dests:
            groups.setdefault(d % 4, []).append(d)
        assert sorted(len(g) for g in groups.values()) == [3, 3]
        for d0, members in groups.items():
            assert {(m // 4) % 4 for m in members} == {d0}  # same v0

    def test_case4_traffic_counts(self):
        flows, uniform = case4_traffic(num_trees=4)
        assert len(flows) == 16
        assert len(uniform) == 48
        assert all(f.start == 1_000_000.0 and f.end == 2_000_000.0 for f in flows)

    def test_case4_bad_tree_count(self):
        with pytest.raises(ValueError):
            case4_hot_destinations(0)
        with pytest.raises(ValueError):
            case4_hot_destinations(9)
