"""Golden equivalence: the pluggable-scheme refactor must be invisible.

``tests/golden/scheme_equivalence.json`` pins the canonical JSON (and
its SHA-256) of every ``CaseResult`` produced by the paper schemes
*before* the hook-based scheme architecture landed (commit ``a480e9c``).
These tests recompute each cell on both engine kernels and require
byte-identical output — any behavioural drift in the refactored
switch/end-node/fabric path fails loudly, with the full dict diff.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.runner import run_case
from repro.sim.engine import Simulator

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheme_equivalence.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
META = GOLDEN["_meta"]

#: the kernels the golden cells must reproduce on: the two the golden
#: file was pinned with, plus every kernel added since (the batch slot
#: kernel) — the golden bytes are kernel-invariant by contract, so new
#: kernels join the parametrization without touching the golden file.
KERNELS_UNDER_TEST = tuple(META["kernels"]) + ("batch",)

#: every registered routing policy (the batch × routing grid below).
ROUTING_POLICIES = ("det", "ecmp", "adaptive", "flowlet")


def _canonical(res) -> str:
    return json.dumps(res.to_dict(), sort_keys=True)


@pytest.mark.parametrize("kernel", KERNELS_UNDER_TEST)
@pytest.mark.parametrize("cell", sorted(GOLDEN["cells"]))
def test_cell_matches_golden(cell, kernel):
    case, scheme = cell.split("/")
    res = run_case(
        case,
        scheme=scheme,
        time_scale=META["grid"][case],
        seed=META["seed"],
        sim_factory=lambda: Simulator(kernel=kernel),
    )
    gold = GOLDEN["cells"][cell]
    # dict comparison first: on drift, pytest shows *which* field moved.
    assert res.to_dict() == gold["result"], f"{cell} drifted on {kernel}"
    blob = _canonical(res)
    digest = hashlib.sha256(blob.encode()).hexdigest()
    assert digest == gold["sha256"], f"{cell} canonical JSON differs on {kernel}"


@pytest.mark.parametrize("kernel", KERNELS_UNDER_TEST)
def test_det_policy_is_the_golden_reference(kernel):
    """Explicit ``routing="det"`` (the policy-layer path, not the
    default-resolution path) reproduces the pre-policy golden bytes —
    on both kernels — proving the RoutingPolicy indirection is
    invisible to results."""
    cell = sorted(GOLDEN["cells"])[0]
    case, scheme = cell.split("/")
    res = run_case(
        case,
        scheme=scheme,
        time_scale=META["grid"][case],
        seed=META["seed"],
        routing="det",
        sim_factory=lambda: Simulator(kernel=kernel),
    )
    gold = GOLDEN["cells"][cell]
    assert res.to_dict() == gold["result"]
    assert hashlib.sha256(_canonical(res).encode()).hexdigest() == gold["sha256"]
    # the det marker itself must not leak into the serialised bytes
    assert "routing" not in res.to_dict()


def _cross_kernel_blob(case, scheme, routing, kernel, time_scale):
    res = run_case(
        case,
        scheme=scheme,
        time_scale=time_scale,
        seed=META["seed"],
        routing=routing,
        sim_factory=lambda: Simulator(kernel=kernel),
    )
    return _canonical(res)


@pytest.mark.parametrize("routing", ROUTING_POLICIES)
def test_batch_kernel_byte_identical_under_every_routing_policy(routing):
    """The batch kernel must agree with the heap golden reference under
    every routing policy, not only the golden det cells — non-det
    results have no golden pin, so the reference is a fresh heap run
    of the same cell (tier-1 sized: one scheme, the small case)."""
    blobs = {
        kernel: _cross_kernel_blob("case1", "CCFIT", routing, kernel, 0.05)
        for kernel in ("heap", "batch")
    }
    assert blobs["batch"] == blobs["heap"], f"batch diverges under routing={routing}"


@pytest.mark.tier2
@pytest.mark.parametrize("routing", ROUTING_POLICIES)
@pytest.mark.parametrize("scheme", META["schemes"])
def test_batch_kernel_full_scheme_routing_grid(scheme, routing):
    """Tier-2 big grid: every paper scheme × every routing policy,
    batch vs heap, on the golden scenario sizes."""
    for case, time_scale in META["grid"].items():
        blobs = {
            kernel: _cross_kernel_blob(case, scheme, routing, kernel, time_scale)
            for kernel in ("heap", "batch")
        }
        assert blobs["batch"] == blobs["heap"], (
            f"batch diverges: {case}/{scheme}@{routing}"
        )


def test_golden_file_covers_declared_grid():
    """The golden file itself is consistent: one cell per declared
    (case, scheme) pair, each with a digest matching its own result."""
    expected = {
        f"{case}/{scheme}"
        for case in META["grid"]
        for scheme in META["schemes"]
    }
    assert set(GOLDEN["cells"]) == expected
    for cell, payload in GOLDEN["cells"].items():
        blob = json.dumps(payload["result"], sort_keys=True)
        assert hashlib.sha256(blob.encode()).hexdigest() == payload["sha256"], cell
