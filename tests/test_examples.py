"""Smoke tests: every example script runs to completion and tells its
story (checked by a distinctive line of expected output)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", [], "what CCFIT did about it"),
    ("hotspot_fairness.py", ["0.2"], "contributor fairness"),
    ("custom_topology.py", [], "per-flow bandwidth in the last millisecond"),
    ("link_downscaling.py", [], "tracked the link's capacity"),
    ("protocol_trace.py", [], "detection -> first BECN"),
    ("congestion_trees.py", ["1", "0.1"], "during the burst"),
]


@pytest.mark.parametrize("script,args,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout, proc.stdout[-2000:]
