"""Property-based tests (hypothesis) on core data structures and
invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import CCParams, linear_cct
from repro.core.throttling import ThrottleState
from repro.metrics.analysis import jain_index
from repro.network.arbiter import ISlip, RoundRobin
from repro.network.buffers import BufferPool, PacketQueue
from repro.network.packet import Packet
from repro.network.routing import build_routing
from repro.network.topology import k_ary_n_tree
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# engine ordering
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_fire_sorted_with_stable_ties(times):
    sim = Simulator()
    fired = []
    for i, t in enumerate(times):
        sim.schedule(t, fired.append, (t, i))
    sim.run()
    assert fired == sorted(fired)  # time asc, then scheduling order


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e5), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_cancelled_events_never_fire(items):
    sim = Simulator()
    fired = []
    handles = []
    for i, (t, cancel) in enumerate(items):
        handles.append((sim.schedule(t, fired.append, i), cancel, i))
    for ev, cancel, _i in handles:
        if cancel:
            ev.cancel()
    sim.run()
    expected = [i for _ev, cancel, i in handles if not cancel]
    assert sorted(fired) == sorted(expected)


# ----------------------------------------------------------------------
# buffers
# ----------------------------------------------------------------------
@given(st.lists(st.sampled_from(["push", "pop"]), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_queue_accounting_under_random_ops(ops):
    q = PacketQueue("q", track_dests=True)
    model = []
    k = 0
    for op in ops:
        if op == "push":
            p = Packet(0, k % 5, 100 + k % 3, "f")
            q.push(p)
            model.append(p)
            k += 1
        elif model:
            assert q.pop() is model.pop(0)
    assert len(q) == len(model)
    assert q.bytes == sum(p.size for p in model)
    expect = {}
    for p in model:
        expect[p.dst] = expect.get(p.dst, 0) + p.size
    assert q.dest_bytes == expect


@given(st.lists(st.integers(min_value=1, max_value=4096), max_size=50))
@settings(max_examples=50, deadline=None)
def test_pool_conservation(sizes):
    pool = BufferPool(1 << 20)
    held = []
    for s in sizes:
        if pool.free >= s:
            pool.reserve(s)
            held.append(s)
    assert pool.used == sum(held)
    for s in held:
        pool.release(s)
    assert pool.used == 0


# ----------------------------------------------------------------------
# routing on random fat trees
# ----------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=3))
@settings(max_examples=12, deadline=None)
def test_det_routing_delivers_everywhere(k, n):
    topo = k_ary_n_tree(k, n)
    topo.validate()  # follows every pair to its destination, loop-free


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=2, max_value=3))
@settings(max_examples=8, deadline=None)
def test_bfs_routing_agrees_on_reachability(k, n):
    topo = k_ary_n_tree(k, n)
    topo.routes = build_routing(topo)
    topo.validate()


@given(st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None)
def test_paths_to_one_destination_form_a_tree(k):
    """All paths towards one destination merge and never diverge."""
    topo = k_ary_n_tree(k, 2)
    for dst in range(0, topo.num_nodes, max(1, topo.num_nodes // 4)):
        next_hop = {}
        for src in range(topo.num_nodes):
            if src == dst:
                continue
            for sw, out in topo.path(src, dst):
                if sw in next_hop:
                    assert next_hop[sw] == out, "divergent next hop"
                next_hop[sw] = out


# ----------------------------------------------------------------------
# arbiter
# ----------------------------------------------------------------------
request_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=7),
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
    max_size=8,
)


@given(request_strategy, st.sampled_from(["lrg", "pointer"]))
@settings(max_examples=120, deadline=None)
def test_islip_always_returns_valid_matching(requests, mode):
    arb = ISlip(8, 8, iterations=2, mode=mode)
    m = arb.match(requests)
    outs = list(m.values())
    assert len(outs) == len(set(outs))
    for inp, out in m.items():
        assert out in requests[inp]


@given(request_strategy)
@settings(max_examples=80, deadline=None)
def test_islip_matching_is_maximal_for_single_output_requests(requests):
    """If every input requests exactly one output, iSlip must match one
    input per requested output (no idle output with a waiting input)."""
    single = {i: {min(outs)} for i, outs in requests.items()}
    arb = ISlip(8, 8)
    m = arb.match(single)
    wanted = {min(outs) for outs in single.values()}
    assert set(m.values()) == wanted


@given(request_strategy)
@settings(max_examples=60, deadline=None)
def test_roundrobin_valid(requests):
    m = RoundRobin(8, 8).match(requests)
    outs = list(m.values())
    assert len(outs) == len(set(outs))
    for inp, out in m.items():
        assert out in requests[inp]


# ----------------------------------------------------------------------
# throttling arithmetic
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_ccti_stays_in_table_bounds(dests):
    sim = Simulator()
    ts = ThrottleState(
        sim, CCParams(cct=linear_cct(entries=5, step=10.0), becn_min_interval=0.0)
    )
    for d in dests:
        ts.on_becn(d)
        assert 0 <= ts.ccti(d) <= 4
        assert ts.ird(d) == ts.cct[ts.ccti(d)]
    sim.run(until=1e9)
    assert all(ts.ccti(d) == 0 for d in set(dests))  # full decay


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_jain_index_bounds(rates):
    j = jain_index(rates)
    assert 1.0 / len(rates) - 1e-9 <= j <= 1.0 + 1e-9
