"""Switch-level tests: forwarding, slotted arbitration, crossbar
concurrency, FECN marking, BECN forwarding."""

import pytest

from repro.core.params import CCParams
from repro.network.fabric import build_fabric
from repro.network.packet import Becn
from repro.network.topology import config1_adhoc, k_ary_n_tree
from repro.traffic.flows import FlowSpec, attach_traffic


def test_forwarding_counters():
    fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
    attach_traffic(fab, flows=[FlowSpec("f", src=0, dst=4, rate=2.5, end=100_000.0)])
    fab.run(until=300_000.0)
    # the packet crosses both switches
    assert fab.switches[0].packets_forwarded == fab.switches[1].packets_forwarded > 0


def test_slot_quantum_resolved_per_switch():
    fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
    # Config #1: fastest link 5 GB/s -> slot = 2048/5 = 409.6 ns
    assert fab.switches[0].quantum == pytest.approx(409.6)
    fab2 = build_fabric(k_ary_n_tree(2, 3), scheme="1Q", seed=0)
    assert fab2.switches[0].quantum == pytest.approx(819.2)


def test_event_driven_mode_available():
    fab = build_fabric(
        config1_adhoc(), scheme="1Q", params=CCParams(match_quantum=0.0), seed=0
    )
    assert fab.switches[0].quantum == 0.0
    attach_traffic(fab, flows=[FlowSpec("f", src=0, dst=3, rate=2.5, end=200_000.0)])
    fab.run(until=400_000.0)
    assert fab.stats()["delivered_packets"] > 0


def test_crossbar_speedup_allows_concurrent_reads():
    """Config #1's 5 GB/s crossbar: switch 1's inter-switch input port
    must sustain ~5 GB/s aggregate across two destinations — twice a
    single 2.5 GB/s link."""
    fab = build_fabric(config1_adhoc(), scheme="VOQnet", seed=0)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("a", src=0, dst=3, rate=2.5),
            FlowSpec("b", src=1, dst=4, rate=2.5),
        ],
    )
    fab.run(until=2_000_000.0)
    got_a = fab.collector.flow_bandwidth("a", 1_000_000.0, 2_000_000.0)
    got_b = fab.collector.flow_bandwidth("b", 1_000_000.0, 2_000_000.0)
    # both flows at full rate through the same input port of switch 1
    assert got_a == pytest.approx(2.5, rel=0.05)
    assert got_b == pytest.approx(2.5, rel=0.05)


def test_fecn_marking_only_when_congested():
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=0)
    attach_traffic(fab, flows=[FlowSpec("f", src=0, dst=3, rate=2.5, end=500_000.0)])
    fab.run(until=1_000_000.0)
    # a single uncongested flow: no port ever enters the congestion state
    assert fab.stats()["fecn_marked"] == 0
    assert fab.stats()["becns_received"] == 0


def test_becn_forwarded_through_switches():
    fab = build_fabric(k_ary_n_tree(2, 3), scheme="CCFIT", seed=0)
    # node 7 emits a BECN towards node 0; it must cross 5 switches
    n7 = fab.nodes[7]
    n7.uplink.send_control(Becn(src=7, dst=0, congested_destination=7))
    fab.run(until=10_000.0)
    assert fab.nodes[0].throttle.becns == 1


def test_isolated_congested_flow_does_not_block_victim():
    """Direct switch-level view of post-processing: after the hotspot
    saturates, the victim's packets never sit behind congested ones."""
    fab = build_fabric(config1_adhoc(), scheme="FBICM", seed=0)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("hog1", src=1, dst=4, rate=2.5),
            FlowSpec("hog2", src=2, dst=4, rate=2.5),
            FlowSpec("hog5", src=5, dst=4, rate=2.5),
            FlowSpec("vic", src=0, dst=3, rate=2.5),
        ],
    )
    fab.run(until=1_500_000.0)
    # switch 1's inter-switch input port: the NFQ head must not be a
    # hot-destination packet (those live in the CFQ)
    port = fab.switches[1].input_ports[4]
    line = port.scheme.cam.lookup(4)
    assert line is not None, "hot destination never isolated"
    head = port.scheme.nfq.head()
    assert head is None or head.dst != 4
    # and the victim runs at full speed
    assert fab.collector.flow_bandwidth("vic", 500_000.0, 1_500_000.0) > 2.3


def test_stats_shapes():
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=0)
    s = fab.stats()
    for key in (
        "delivered_packets",
        "fecn_marked",
        "becns_received",
        "cfq_alloc_failures",
        "allocated_cfqs",
        "events",
    ):
        assert key in s
    assert fab.in_flight_packets() == 0
