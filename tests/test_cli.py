"""CLI and cost-accounting tests."""

import pytest

from repro.cli import build_parser, main
from repro.core.params import CCParams
from repro.experiments.configs import CONFIG1, CONFIG3
from repro.experiments.costs import cost_table, scheme_cost


class TestCosts:
    def test_voqnet_cost_matches_paper(self):
        """§IV-A: VOQnet on the 64-node network needs 256 KiB ports."""
        c = scheme_cost("VOQnet", CONFIG3.topo())
        assert c.memory_per_port == 256 * 1024
        assert c.queues_per_port == 64

    def test_ccfit_cost_is_small(self):
        c = scheme_cost("CCFIT", CONFIG3.topo())
        assert c.queues_per_port == 3  # NFQ + 2 CFQs
        assert c.cam_lines_per_port == 2
        assert c.memory_per_port == 64 * 1024

    def test_ith_uses_voqs(self):
        c = scheme_cost("ITh", CONFIG3.topo())
        assert c.queues_per_port == 8

    def test_total_memory_scales_with_ports(self):
        c1 = scheme_cost("1Q", CONFIG1.topo())
        assert c1.total_ports == 4 + 5
        assert c1.total_memory == 9 * 64 * 1024

    def test_cost_table_rows(self):
        rows = cost_table(CONFIG3.topo())
        schemes = [r["scheme"] for r in rows]
        assert "CCFIT" in schemes and "VOQnet" in schemes
        voqnet = next(r for r in rows if r["scheme"] == "VOQnet")
        assert voqnet["memory/port KiB"] == "256"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            scheme_cost("QUIC", CONFIG1.topo())

    def test_custom_params_respected(self):
        c = scheme_cost("FBICM", CONFIG1.topo(), CCParams(num_cfqs=4))
        assert c.queues_per_port == 5


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Config #3" in out and "256" in out

    def test_case_runs(self, capsys):
        assert main(["--scale", "0.05", "case", "1", "--scheme", "1Q"]) == 0
        out = capsys.readouterr().out
        assert "F0" in out and "delivered_packets" in out

    def test_fig9_runs(self, capsys):
        assert main(["--scale", "0.05", "fig", "9"]) == 0
        out = capsys.readouterr().out
        assert "jain" in out

    def test_csv_export(self, tmp_path, capsys):
        csv = tmp_path / "out.csv"
        assert main(["--scale", "0.05", "--csv", str(csv), "case", "1"]) == 0
        text = csv.read_text()
        assert text.startswith("scheme,time_ns,throughput_gbs")
        assert "CCFIT" in text

    def test_trees_command(self, capsys):
        assert main(["--scale", "0.05", "trees", "1", "--scheme", "1Q"]) == 0
        assert "burst-window throughput" in capsys.readouterr().out

    def test_svg_export_fig7(self, tmp_path, capsys):
        svg = tmp_path / "fig7a.svg"
        assert main(["--scale", "0.05", "--svg", str(svg), "fig", "7a"]) == 0
        text = svg.read_text()
        assert text.startswith("<svg") and "CCFIT" in text

    def test_svg_export_fig9_panels(self, tmp_path, capsys):
        base = tmp_path / "fig9.svg"
        assert main(["--scale", "0.05", "--svg", str(base), "fig", "9"]) == 0
        panels = sorted(p.name for p in tmp_path.glob("fig9*.svg"))
        assert panels == ["fig9a.svg", "fig9b.svg", "fig9c.svg", "fig9d.svg"]


class TestCliTelemetry:
    def test_telemetry_command_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "tele"
        rc = main(
            ["--scale", "0.02", "telemetry", "fig7a", "--scheme", "CCFIT",
             "--out", str(out), "--interval", "20000"]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "telemetry:" in text and "samples" in text
        for name in ("telemetry.jsonl", "metrics.prom", "dashboard.html"):
            assert (out / name).is_file()

    def test_telemetry_flag_attaches_sampler_to_options(self):
        from repro.cli import _options

        args = build_parser().parse_args(
            ["--scale", "0.05", "--telemetry", "--telemetry-interval", "40000",
             "case", "1"]
        )
        opts = _options(args, cache_by_default=False)
        assert opts.telemetry is not None
        assert opts.telemetry.interval == 40_000.0
        plain = build_parser().parse_args(["--scale", "0.05", "case", "1"])
        assert _options(plain, cache_by_default=False).telemetry is None

    def test_unknown_telemetry_format_exits_2(self, tmp_path, capsys):
        rc = main(
            ["telemetry", "fig7a", "--out", str(tmp_path), "--format", "jsnl"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "jsnl" in err and "did you mean" in err

    def test_unknown_experiment_name_exits_2(self, capsys):
        rc = main(["telemetry", "fig7z"])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err

    def test_scheme_names_match_case_insensitively(self, capsys):
        """The acceptance command spells it `--scheme ccfit`."""
        assert main(["--scale", "0.05", "case", "1", "--scheme", "ccfit"]) == 0
        assert "scheme CCFIT" in capsys.readouterr().out

    def test_case_runs_under_adaptive_routing(self, capsys):
        rc = main(["--scale", "0.05", "case", "1", "--scheme", "CCFIT",
                   "--routing", "adaptive"])
        assert rc == 0
        assert "scheme CCFIT" in capsys.readouterr().out

    def test_unknown_routing_policy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["case", "1", "--routing", "adaptve"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "adaptve" in err and "did you mean" in err and "adaptive" in err

    def test_single_cell_commands_reject_routing_lists(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["case", "1", "--routing", "det,adaptive"])
        assert exc.value.code == 2
        assert "single --routing" in capsys.readouterr().err

    def test_sweep_list_shows_routing_grid(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "routing_grid" in out and "flowlet" in out


class TestCliErrors:
    def test_unknown_subcommand_gets_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweeo", "fig9"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "sweeo" in err and "did you mean" in err and "sweep" in err

    def test_garbled_subcommand_without_close_match(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["zzqx"])
        assert exc.value.code == 2
        assert "unknown command" in capsys.readouterr().err

    def test_other_parse_errors_keep_argparse_contract(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--scale", "not-a-float", "case", "1"])
        assert exc.value.code == 2
