"""Tests for the experiments layer (Table I configs, runners, reports)."""

import numpy as np
import pytest

from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3, table1
from repro.experiments.report import (
    render_fig8_summary,
    render_flow_table,
    render_series,
    render_table,
)
from repro.experiments.runner import (
    FIG8_SCHEMES,
    PAPER_SCHEMES,
    CaseResult,
    run_case1,
    run_case4,
    run_fig7,
)


class TestConfigs:
    def test_all_columns_check(self):
        for cfg in (CONFIG1, CONFIG2, CONFIG3):
            cfg.check()

    def test_table1_rows(self):
        rows = table1()
        assert [r["config"] for r in rows] == ["Config #1", "Config #2", "Config #3"]
        assert [r["nodes"] for r in rows] == [7, 8, 64]
        assert [r["switches"] for r in rows] == [2, 12, 48]
        assert rows[0]["crossbar_bw_gbs"] == 5.0
        assert rows[2]["memory_bytes"] == 64 * 1024

    def test_params_validate(self):
        p = CONFIG3.params(num_cfqs=4)
        assert p.num_cfqs == 4

    def test_scheme_lists(self):
        assert PAPER_SCHEMES == ("1Q", "ITh", "FBICM", "CCFIT")
        assert set(FIG8_SCHEMES) - set(PAPER_SCHEMES) == {"VOQnet"}


class TestRunner:
    def test_run_case1_returns_complete_result(self):
        res = run_case1("1Q", time_scale=0.05)
        assert isinstance(res, CaseResult)
        assert res.scheme == "1Q"
        assert set(res.flow_bandwidth) == {"F0", "F1", "F2", "F5", "F6"}
        times, rates = res.throughput
        assert len(times) == len(rates) > 0
        assert res.stats["delivered_packets"] > 0
        assert res.window[1] == res.duration

    def test_mean_throughput_window(self):
        res = run_case1("1Q", time_scale=0.05)
        full = res.mean_throughput(0.0, res.duration)
        assert full > 0
        assert res.mean_throughput(res.duration * 2, res.duration * 3) == 0.0

    def test_fairness_helper(self):
        res = run_case1("1Q", time_scale=0.05)
        j = res.fairness(("F1", "F2", "F5", "F6"))
        assert 0.25 <= j <= 1.0

    def test_run_fig7_panel_selection(self):
        res = run_fig7("a", schemes=("1Q",), time_scale=0.05)
        assert list(res) == ["1Q"]

    def test_run_case4_window_is_burst(self):
        res = run_case4("1Q", num_trees=1, time_scale=0.05, duration_ms=3.0)
        t0, t1 = res.window
        assert t0 == pytest.approx(0.05 * 1e6)
        assert t1 == pytest.approx(0.05 * 2e6)


class TestReport:
    def _fake_result(self, scheme, level):
        times = np.array([50.0, 150.0, 250.0])
        rates = np.full(3, level)
        return CaseResult(
            scheme=scheme,
            duration=300.0,
            throughput=(times, rates),
            flow_bandwidth={"F0": level, "F1": level / 2},
            stats={"cfq_alloc_failures": 3, "becns_received": 7},
            window=(100.0, 300.0),
        )

    def test_render_table_alignment(self):
        out = render_table([{"a": 1, "bb": "xy"}, {"a": 222, "bb": ""}])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_render_table_empty(self):
        assert render_table([]) == "(empty)"

    def test_render_series_contains_all_schemes(self):
        results = {s: self._fake_result(s, 5.0) for s in ("1Q", "CCFIT")}
        out = render_series(results)
        assert "1Q" in out and "CCFIT" in out and "t(ms)" in out

    def test_render_flow_table_has_jain(self):
        results = {"1Q": self._fake_result("1Q", 4.0)}
        out = render_flow_table(results, ["F0", "F1"])
        assert "jain" in out and "4.000" in out

    def test_render_fig8_summary(self):
        results = {"CCFIT": self._fake_result("CCFIT", 4.0)}
        out = render_fig8_summary(results)
        assert "cam_failures" in out and "3" in out
