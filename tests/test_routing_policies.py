"""The pluggable RoutingPolicy layer (docs/routing.md).

Covers the policy registry contract, the topology's minimal-candidate
index, delivery differentials for every multipath policy (ecmp /
adaptive / flowlet must deliver every packet the det reference
delivers — loop-freedom by construction), flowlet stickiness, the
RoutingTable deprecation shim on Switch, and the sweep-layer routing
axis (cache keys, labels, old-pickle survival).
"""

import pickle
import warnings

import pytest

from repro.core.params import CCParams, ParamError
from repro.network.fabric import build_fabric
from repro.network.routing import (
    ROUTING_POLICIES,
    DetRoutingPolicy,
    FlowletRoutingPolicy,
    RoutingPolicySpec,
    RoutingTable,
    get_policy,
    policy_names,
    register_policy,
)
from repro.network.topology import TopologyError, k_ary_n_tree
from repro.traffic.flows import FlowSpec, attach_traffic

ALL_POLICIES = ("det", "ecmp", "adaptive", "flowlet")


# ----------------------------------------------------------------------
# registry contract (mirrors the scheme registry of repro.core.ccfit)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_policies_registered_det_first(self):
        assert policy_names()[0] == "det"
        assert set(ALL_POLICIES) <= set(policy_names())

    def test_get_policy_unknown_name_lists_choices(self):
        with pytest.raises(KeyError) as exc_info:
            get_policy("valiant")
        msg = str(exc_info.value)
        assert "valiant" in msg and "det" in msg

    def test_register_duplicate_rejected_unless_replace(self):
        spec = RoutingPolicySpec("det", DetRoutingPolicy, needs_candidates=False)
        with pytest.raises(ValueError):
            register_policy(spec)
        original = ROUTING_POLICIES["det"]
        try:
            assert register_policy(spec, replace=True) is spec
            assert ROUTING_POLICIES["det"] is spec
        finally:
            register_policy(original, replace=True)

    def test_register_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_policy(RoutingPolicySpec("", DetRoutingPolicy))

    def test_custom_policy_usable_by_fabric(self):
        """A user-registered policy is buildable end to end."""

        class FirstCandidatePolicy(DetRoutingPolicy):
            name = "first-cand"

        spec = RoutingPolicySpec("first-cand", FirstCandidatePolicy,
                                 needs_candidates=False)
        register_policy(spec)
        try:
            fabric = build_fabric(k_ary_n_tree(2, 2), scheme="1Q",
                                  routing="first-cand")
            assert fabric.routing == "first-cand"
            assert fabric.switches[0].policy.name == "first-cand"
        finally:
            del ROUTING_POLICIES["first-cand"]


# ----------------------------------------------------------------------
# minimal candidate sets
# ----------------------------------------------------------------------
class TestCandidates:
    def test_tree_ascent_offers_all_up_ports(self):
        """On a k-ary n-tree a leaf switch has k equally minimal upward
        ports toward any remote destination, and the DET port is one of
        them."""
        for k, n in [(2, 3), (4, 3)]:
            topo = k_ary_n_tree(k, n)
            leaf = topo.node_attach[0][0]
            local = {d for d, (sw, _p, _b) in topo.node_attach.items() if sw == leaf}
            for dst in range(topo.num_nodes):
                cands = topo.candidates(leaf, dst)
                det_port = topo.routes[(leaf, dst)]
                assert det_port in cands
                if dst in local:
                    assert len(cands) == 1  # the attach port, no choice
                else:
                    assert len(cands) == k  # every up-link is minimal
                assert list(cands) == sorted(cands)

    def test_unknown_key_raises_topology_error(self):
        topo = k_ary_n_tree(2, 2)
        with pytest.raises(TopologyError):
            topo.candidates(0, 999)

    def test_candidate_map_matches_candidates(self):
        topo = k_ary_n_tree(2, 2)
        cmap = topo.candidate_map(0)
        for dst in range(topo.num_nodes):
            assert cmap[dst] == topo.candidates(0, dst)

    def test_policy_audit_accepts_builtin_candidates(self):
        fabric = build_fabric(k_ary_n_tree(2, 3), scheme="1Q", routing="adaptive")
        for sw in fabric.switches:
            sw.policy.audit()

    def test_policy_audit_rejects_nonminimal_det_port(self):
        table = RoutingTable(0, {5: 2})
        policy = DetRoutingPolicy(table, candidates={5: (0, 1)})
        with pytest.raises(TopologyError):
            policy.audit()


# ----------------------------------------------------------------------
# delivery differential: every policy delivers every packet
# ----------------------------------------------------------------------
def _run_incast(k, n, routing, duration=400_000.0):
    topo = k_ary_n_tree(k, n)
    fabric = build_fabric(topo, scheme="CCFIT", seed=5, routing=routing,
                          validate=True)
    hot = topo.num_nodes - 1
    flows = [
        FlowSpec(f"F{s}", src=s, dst=hot, rate=1.0, end=duration / 2)
        for s in range(min(3, topo.num_nodes - 1))
    ]
    attach_traffic(fabric, flows=flows)
    fabric.run(until=duration)
    return fabric


@pytest.mark.parametrize("routing", ALL_POLICIES)
@pytest.mark.parametrize("k,n", [(2, 3), (4, 3)])
def test_every_policy_delivers_every_packet(k, n, routing):
    """Incast onto one node, flows stop at half time, the fabric drains:
    generated == delivered under the invariant guard for every policy
    (minimal candidates make any per-packet choice loop-free)."""
    fabric = _run_incast(k, n, routing)
    stats = fabric.stats()
    assert stats["generated_packets"] > 0
    assert fabric.in_flight_packets() == 0
    assert stats["delivered_packets"] == stats["generated_packets"]
    assert fabric.routing == routing


def test_multipath_policies_actually_divert():
    """ecmp/adaptive must take non-DET ports on a (4,3) incast — if
    they never diverge from the table the policy layer is vacuous."""
    for routing in ("ecmp", "adaptive"):
        fabric = _run_incast(4, 3, routing)
        assert sum(sw.policy.routed for sw in fabric.switches) > 0
        assert sum(sw.policy.diverted for sw in fabric.switches) > 0, routing


def test_det_policy_matches_default_build():
    """routing="det" and the pre-policy default produce identical
    simulations (stats dict equality on a real run)."""
    a = _run_incast(2, 3, "det").stats()
    b = _run_incast(2, 3, ROUTING_POLICIES["det"]).stats()
    assert a == b


def test_switch_snapshot_exposes_policy_state():
    fabric = _run_incast(2, 3, "flowlet")
    snap = fabric.switches[0].snapshot()
    assert snap["routing"]["policy"] == "flowlet"
    assert "flowlets" in snap["routing"]
    assert "gap_ns" in snap["routing"]


# ----------------------------------------------------------------------
# flowlet stickiness (unit level, fake switch)
# ----------------------------------------------------------------------
class _FakeSim:
    def __init__(self):
        self.now = 0.0


class _FakeLink:
    def __init__(self, occ):
        self._occ = occ
        self.busy_until = 0.0
        self.bandwidth = 2.5

        class _Rx:
            def __init__(self, occ):
                self._occ = occ

            def occupancy(self):
                return self._occ

        self.rx = _Rx(occ)


class _FakeOutPort:
    def __init__(self, occ):
        self.link_out = _FakeLink(occ)


class _FakeSwitch:
    def __init__(self, occupancies):
        self.sim = _FakeSim()
        self.output_ports = [_FakeOutPort(o) for o in occupancies]


class _FakePkt:
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


class TestFlowletStickiness:
    def test_flow_keeps_port_within_gap_and_reselects_after(self):
        params = CCParams(flowlet_gap=1_000.0)
        policy = FlowletRoutingPolicy(
            RoutingTable(0, {9: 0}), candidates={9: (0, 1)}, params=params
        )
        assert policy.gap == 1_000.0
        sw = _FakeSwitch([0, 4096])  # port 0 empty, port 1 loaded
        pkt = _FakePkt(3, 9)
        assert policy.select_output(sw, pkt, (0, 1)) == 0
        # port 0 now looks terrible, but we're inside the gap: sticky
        sw.output_ports[0].link_out.rx._occ = 10_000_000
        sw.sim.now = 900.0
        assert policy.select_output(sw, pkt, (0, 1)) == 0
        # repeated arrivals refresh last_seen: still sticky past t=1000
        sw.sim.now = 1_800.0
        assert policy.select_output(sw, pkt, (0, 1)) == 0
        # a real idle gap ends the flowlet -> adaptive re-selection
        sw.sim.now = 3_000.0
        assert policy.select_output(sw, pkt, (0, 1)) == 1
        assert policy.flowlets == 2

    def test_distinct_flows_have_independent_flowlets(self):
        policy = FlowletRoutingPolicy(
            RoutingTable(0, {9: 0}), candidates={9: (0, 1)},
            params=CCParams(flowlet_gap=1_000.0),
        )
        sw = _FakeSwitch([0, 0])
        policy.select_output(sw, _FakePkt(1, 9), (0, 1))
        policy.select_output(sw, _FakePkt(2, 9), (0, 1))
        assert policy.flowlets == 2

    def test_negative_flowlet_gap_rejected(self):
        with pytest.raises(ParamError):
            CCParams(flowlet_gap=-1.0).validate()


# ----------------------------------------------------------------------
# deprecation shim: Switch(routing=RoutingTable)
# ----------------------------------------------------------------------
def test_switch_accepts_bare_routing_table_with_warning():
    from repro.core.ccfit import scheme_params
    from repro.network.switch import Switch
    from repro.sim.engine import Simulator

    topo = k_ary_n_tree(2, 2)
    spec, params = scheme_params("1Q", None)
    table = RoutingTable.from_topology(topo, 0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sw = Switch(
            Simulator(), "sw0", num_ports=4, routing=table, params=params,
            scheme_factory=lambda port: spec.switch_scheme(port, topo.num_nodes),
        )
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    assert isinstance(sw.policy, DetRoutingPolicy)
    assert sw.routing is table  # back-compat attribute still the table
    assert sw.policy.table is table


# ----------------------------------------------------------------------
# sweep layer: routing axis, cache keys, old pickles
# ----------------------------------------------------------------------
class TestSweepRoutingAxis:
    def test_det_job_payload_has_no_routing_key(self):
        from repro.experiments.sweep import SimJob

        job = SimJob(case="case1", scheme="CCFIT")
        assert "routing" not in job.payload()

    def test_non_det_routing_changes_cache_key(self):
        from repro.experiments.sweep import SimJob

        det = SimJob(case="case1", scheme="CCFIT")
        ecmp = SimJob(case="case1", scheme="CCFIT", routing="ecmp")
        assert ecmp.payload()["routing"] == "ecmp"
        assert det.key() != ecmp.key()

    def test_label_tags_non_det_routing(self):
        from repro.experiments.sweep import SimJob

        assert SimJob(case="case1", scheme="ITh").label() == "case1/ITh"
        assert (
            SimJob(case="case1", scheme="ITh", routing="flowlet").label()
            == "case1/ITh@flowlet"
        )

    def test_pre_routing_pickles_default_to_det(self):
        """A SimJob pickled before the routing field existed must
        deserialize as a det job (the __getattr__ fallback)."""
        from repro.experiments.sweep import SimJob

        job = SimJob(case="case1", scheme="CCFIT")
        state = pickle.dumps(job)
        restored = pickle.loads(state)
        object.__delattr__(restored, "routing")  # simulate the old layout
        assert restored.routing == "det"
        assert "routing" not in restored.payload()

    def test_routing_grid_experiment_crosses_axes(self):
        from repro.experiments.registry import get

        exp = get("routing_grid")
        jobs = exp.jobs()
        assert len(jobs) == 3 * 4  # (ITh, FBICM, CCFIT) x 4 policies
        assert {j.routing for j in jobs} == set(ALL_POLICIES)
        assert all(dict(j.extra)["num_trees"] == 4 for j in jobs)
