"""Experiment registry: name resolution, job decomposition, CLI wiring."""

import pytest

from repro.experiments import registry
from repro.experiments.registry import Experiment
from repro.experiments.runner import FIG8_SCHEMES, PAPER_SCHEMES, CaseResult
from repro.experiments.sweep import SweepOptions


class TestRegistryContents:
    def test_every_figure_and_case_is_registered(self):
        expected = {
            "fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c",
            "fig9", "fig10", "case1", "case2", "case3", "case4",
        }
        assert expected <= set(registry.names())

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="fig9"):
            registry.get("fig99")

    def test_figure_scheme_lists_match_paper(self):
        assert registry.get("fig9").schemes == PAPER_SCHEMES
        assert registry.get("fig8b").schemes == FIG8_SCHEMES

    def test_fig8_panels_carry_tree_counts(self):
        assert dict(registry.get("fig8a").extra)["num_trees"] == 1
        assert dict(registry.get("fig8b").extra)["num_trees"] == 4
        assert dict(registry.get("fig8c").extra)["num_trees"] == 6

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError):
            registry.register(
                Experiment("fig9", "dup", case="case1", schemes=("1Q",))
            )

    def test_exported_from_package(self):
        import repro.experiments as ex

        assert ex.registry is registry
        assert ex.Experiment is Experiment


class TestJobDecomposition:
    def test_one_job_per_scheme(self):
        jobs = registry.get("fig9").jobs(time_scale=0.1, seed=7)
        assert [j.scheme for j in jobs] == list(PAPER_SCHEMES)
        assert all(j.case == "case1" for j in jobs)
        assert all(j.seed == 7 and j.time_scale == 0.1 for j in jobs)

    def test_scheme_subset(self):
        jobs = registry.get("fig9").jobs(schemes=("CCFIT",))
        assert [j.scheme for j in jobs] == ["CCFIT"]

    def test_extra_override(self):
        jobs = registry.get("case4").jobs(schemes=("1Q",), num_trees=6)
        assert dict(jobs[0].extra)["num_trees"] == 6

    def test_same_cell_shares_cache_key_across_experiments(self):
        """fig7a and fig9 both decompose into case1 cells — one
        simulation feeds both figures through the cache."""
        j7 = registry.get("fig7a").jobs(time_scale=0.1)[0]
        j9 = registry.get("fig9").jobs(time_scale=0.1)[0]
        assert j7.key() == j9.key()


class TestRegistryRun:
    def test_run_single_scheme(self):
        results, report = registry.get("case1").run(
            schemes=("1Q",), options=SweepOptions(time_scale=0.02)
        )
        assert isinstance(results["1Q"], CaseResult)
        assert report.misses == 1 and report.hits == 0

    def test_explicit_kwargs_beat_options(self):
        results, _ = registry.get("case1").run(
            schemes=("1Q",),
            options=SweepOptions(time_scale=0.5, seed=9),
            time_scale=0.02,
            seed=2,
        )
        res = results["1Q"]
        assert res.duration == pytest.approx(0.02 * 10e6)


class TestCliWiring:
    def test_sweep_choices_come_from_registry(self, capsys):
        from repro.cli import build_parser, main

        args = build_parser().parse_args(["sweep", "fig9"])
        assert args.name == "fig9" and args.command == "sweep"
        # unknown names exit 2 with a did-you-mean instead of a traceback
        assert main(["sweep", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err and "did you mean" in err

    def test_unknown_scheme_did_you_mean(self, capsys):
        from repro.cli import main

        assert main(["case", "1", "--scheme", "CCFTI"]) == 2
        err = capsys.readouterr().err
        assert "did you mean CCFIT" in err
        # names match case-insensitively, so "ITH" is ITh, not a typo
        assert main(["sweep", "fig9", "--schemes", "CCFIT,ITx"]) == 2
        assert "unknown scheme 'ITx'" in capsys.readouterr().err

    def test_engine_options_both_positions(self):
        from repro.cli import build_parser

        before = build_parser().parse_args(["--jobs", "4", "sweep", "fig9"])
        after = build_parser().parse_args(["sweep", "fig9", "--jobs", "4"])
        assert before.jobs == after.jobs == 4
        assert before.cache_dir is None and not before.no_cache

    def test_sweep_list(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "case4" in out

    def test_cli_sweep_serial_cached(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["--scale", "0.02", "sweep", "case1", "--schemes", "1Q",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "1 simulated" in capsys.readouterr().out
        assert main(argv) == 0
        assert "1 cache hit(s)" in capsys.readouterr().out

    def test_cli_fig_matches_sweep_output(self, tmp_path, capsys):
        """`repro sweep fig9` reports the same per-flow table as the
        serial `repro fig 9` path (the acceptance contract)."""
        from repro.cli import main

        assert main(["--scale", "0.02", "fig", "9"]) == 0
        fig_out = capsys.readouterr().out
        assert main(["--scale", "0.02", "sweep", "fig9",
                     "--cache-dir", str(tmp_path)]) == 0
        sweep_out = capsys.readouterr().out
        table = lambda out: [l for l in out.splitlines() if " | " in l]
        assert table(fig_out) and table(fig_out) == table(sweep_out)
