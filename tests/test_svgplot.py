"""Tests for the dependency-free SVG plotter."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.metrics.svgplot import LineChart, _nice_ticks, chart_results


def simple_chart():
    chart = LineChart(title="T", xlabel="x", ylabel="y")
    chart.add_series("a", [0, 1, 2], [0.0, 2.5, 1.0])
    chart.add_series("b", [0, 1, 2], [1.0, 1.0, 1.0])
    return chart


def test_render_is_valid_xml_with_expected_parts():
    svg = simple_chart().render()
    root = ET.fromstring(svg)  # raises on malformed XML
    assert root.tag.endswith("svg")
    assert svg.count("<polyline") == 2
    for label in ("T", "x", "y", "a", "b"):
        assert f">{label}</text>" in svg


def test_write_roundtrip(tmp_path):
    path = tmp_path / "out.svg"
    assert simple_chart().write(str(path)) == str(path)
    assert path.read_text().startswith("<svg")


def test_series_validation():
    chart = LineChart()
    with pytest.raises(ValueError):
        chart.add_series("bad", [1, 2], [1.0])
    with pytest.raises(ValueError):
        chart.add_series("empty", [], [])
    with pytest.raises(ValueError):
        LineChart().render()


def test_points_stay_inside_canvas():
    chart = LineChart(width=400, height=300)
    chart.add_series("s", list(range(50)), [float(i % 7) for i in range(50)])
    svg = chart.render()
    pts = svg.split('points="')[1].split('"')[0].split()
    for pt in pts:
        x, y = map(float, pt.split(","))
        assert 0 <= x <= 400
        assert 0 <= y <= 300


def test_nice_ticks_cover_range():
    ticks = _nice_ticks(0.0, 123.0)
    assert ticks[0] <= 0.0 + 1e-9
    assert ticks[-1] <= 123.0 + 1e-9
    assert all(b > a for a, b in zip(ticks, ticks[1:]))
    assert 3 <= len(ticks) <= 9


def test_flat_series_does_not_divide_by_zero():
    chart = LineChart(y_min=None)
    chart.add_series("flat", [0, 1], [5.0, 5.0])
    assert "<polyline" in chart.render()


def test_chart_results_throughput_mode():
    from repro.experiments.runner import CaseResult

    res = {
        s: CaseResult(
            scheme=s,
            duration=300.0,
            throughput=(np.array([50.0, 150.0]), np.array([1.0, 2.0])),
        )
        for s in ("1Q", "CCFIT")
    }
    svg = chart_results(res, "Fig X").render()
    assert svg.count("<polyline") == 2
    assert ">CCFIT</text>" in svg


def test_chart_results_per_flow_mode():
    from repro.experiments.runner import CaseResult

    res = CaseResult(
        scheme="CCFIT",
        duration=300.0,
        throughput=(np.array([50.0]), np.array([1.0])),
        flow_series={
            "F0": (np.array([50.0, 150.0]), np.array([1.0, 2.0])),
            "F1": (np.array([50.0, 150.0]), np.array([0.5, 0.5])),
        },
    )
    svg = chart_results({"CCFIT": res}, "Fig 9", per_flow=True).render()
    assert svg.count("<polyline") == 2
    assert "CCFIT" in svg
