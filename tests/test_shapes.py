"""Miniaturised paper-shape tests.

Compressed-time versions of the evaluation's qualitative claims — the
full-scale record lives in EXPERIMENTS.md and the benchmark harness.
Each test states the paper claim it guards.
"""

import pytest

from repro.experiments.runner import run_case1, run_case2, run_case4
from repro.metrics.analysis import jain_index

CONTRIB1 = ("F1", "F2", "F5", "F6")


@pytest.fixture(scope="module")
def case1():
    """Case #1 at 0.3x for the four paper schemes (shared; ~8 s)."""
    return {
        s: run_case1(s, time_scale=0.3, seed=1)
        for s in ("1Q", "ITh", "FBICM", "CCFIT")
    }


def test_paper_claim_1q_victimises_and_parks(case1):
    """§IV-C: under 1Q the victim suffers HoL blocking AND contributors
    suffer the parking-lot problem."""
    bw = case1["1Q"].flow_bandwidth
    assert bw["F0"] < 0.8
    assert bw["F5"] > 1.6 * bw["F1"]
    assert bw["F6"] > 1.6 * bw["F2"]


def test_paper_claim_isolation_restores_victim_not_fairness(case1):
    """§IV-C: FBICM restores the victim fully but 'the unfairness has
    increased'."""
    bw = case1["FBICM"].flow_bandwidth
    assert bw["F0"] > 2.3
    assert jain_index([bw[f] for f in CONTRIB1]) < 0.93


def test_paper_claim_throttling_restores_fairness(case1):
    """§IV-C: ITh solves the parking-lot problem per-flow."""
    bw = case1["ITh"].flow_bandwidth
    assert jain_index([bw[f] for f in CONTRIB1]) > 0.96
    assert bw["F0"] > 2 * case1["1Q"].flow_bandwidth["F0"]


def test_paper_claim_ccfit_gets_both(case1):
    """§I/§V: CCFIT extracts the best of both approaches."""
    bw = case1["CCFIT"].flow_bandwidth
    assert bw["F0"] > 2.0, "victim protected"
    assert jain_index([bw[f] for f in CONTRIB1]) > 0.93, "contributors fair"


def test_paper_claim_cc_schemes_beat_1q_in_throughput(case1):
    tail = {s: r.mean_throughput() for s, r in case1.items()}
    for s in ("ITh", "FBICM", "CCFIT"):
        assert tail[s] > tail["1Q"] * 1.25, s


def test_paper_claim_fig10_ccfit_highest_fair_throughput():
    """§IV-C (Fig. 10d): CCFIT combines high throughput with the
    highest fairness; FBICM's extra throughput comes with the parking
    lot intact."""
    res = {
        s: run_case2(s, time_scale=0.5, seed=1) for s in ("ITh", "FBICM", "CCFIT")
    }
    flows = ("F0", "F1", "F2", "F3", "F4")
    jain = {s: jain_index([r.flow_bandwidth[f] for f in flows]) for s, r in res.items()}
    total = {s: sum(r.flow_bandwidth.values()) for s, r in res.items()}
    # FBICM: node 7's apex parking lot intact (F4 doubles F1)
    fb = res["FBICM"].flow_bandwidth
    assert fb["F4"] > 1.6 * fb["F1"]
    # CCFIT: fairest of the three while clearly out-delivering ITh
    assert jain["CCFIT"] > jain["FBICM"]
    assert jain["CCFIT"] > 0.95
    assert total["CCFIT"] > total["ITh"] * 1.1
    assert total["FBICM"] > total["CCFIT"]  # isolation alone maxes raw GB/s


@pytest.mark.slow
def test_paper_claim_fig8_ccfit_survives_cfq_exhaustion():
    """§IV-B (Fig. 8b): with more congestion trees than CFQs, CCFIT
    stays above FBICM because throttling frees isolation resources."""
    fb = run_case4("FBICM", num_trees=4, time_scale=0.25, seed=1, duration_ms=3.0)
    cc = run_case4("CCFIT", num_trees=4, time_scale=0.25, seed=1, duration_ms=3.0)
    oneq = run_case4("1Q", num_trees=4, time_scale=0.25, seed=1, duration_ms=3.0)
    assert cc.mean_throughput() >= fb.mean_throughput() * 0.98
    assert fb.mean_throughput() > oneq.mean_throughput() * 1.2
    assert fb.stats["cfq_alloc_failures"] > 0, "exhaustion never happened"
