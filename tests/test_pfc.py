"""PFC scheme + buffer-model plumbing tests (docs/buffers.md).

Covers the three contracts of the shared-buffer PR:

* the static model is the golden default — picking it explicitly is
  byte-identical to not picking anything, on every kernel;
* the PFC/PFC+RCM schemes and the shared model run end to end under
  the invariant guard, and the shared model actually pauses;
* the plumbing edges: cache-key discipline, case-insensitive CLI
  resolution with a did-you-mean exit, and the batch-kernel fallback.
"""

from argparse import Namespace

import pytest

from repro.cli import _resolve_buffer_model, main
from repro.core.ccfit import SCHEMES
from repro.core.params import CCParams
from repro.experiments.runner import run_case
from repro.experiments.sweep import SimJob
from repro.sim.engine import KERNELS

MTU = 2048

#: small pool + aggressive threshold so Case #1's hotspot pauses fast.
TIGHT = CCParams(memory_size=16 * MTU, shared_alpha=0.5)


class TestStaticEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_static_model_is_byte_identical(self, kernel):
        base = run_case("case1", scheme="CCFIT", time_scale=0.05, kernel=kernel)
        static = run_case(
            "case1", scheme="CCFIT", time_scale=0.05, kernel=kernel,
            buffer_model="static",
        )
        assert static.to_dict() == base.to_dict()

    def test_static_result_omits_the_field(self):
        res = run_case("case1", scheme="CCFIT", time_scale=0.05)
        assert "buffer_model" not in res.to_dict()
        assert res.buffer_model == "static"

    def test_shared_result_records_the_field(self):
        res = run_case(
            "case1", scheme="CCFIT", time_scale=0.05, buffer_model="shared",
        )
        assert res.to_dict()["buffer_model"] == "shared"
        assert res.buffer_model == "shared"

    def test_unknown_model_rejected_at_build(self):
        with pytest.raises(ValueError, match="buffer model"):
            run_case("case1", scheme="CCFIT", time_scale=0.05,
                     buffer_model="elastic")


class TestPfcSchemes:
    def test_registered(self):
        assert "PFC" in SCHEMES and "PFC+RCM" in SCHEMES

    def test_pfc_runs_and_pauses_under_guard(self):
        res = run_case(
            "case1", scheme="PFC", time_scale=0.05, params=TIGHT,
            buffer_model="shared", validate=True,
        )
        assert res.stats["pfc_pauses_sent"] > 0
        assert res.stats["delivered_packets"] > 0
        assert res.stats["shared_pool_peak"] > 0

    def test_pfc_rcm_damps_the_pause_storm(self):
        bare = run_case("case1", scheme="PFC", time_scale=0.05,
                        params=TIGHT, buffer_model="shared")
        stacked = run_case("case1", scheme="PFC+RCM", time_scale=0.05,
                           params=TIGHT, buffer_model="shared")
        assert stacked.stats["becns_received"] > 0  # RCM's loop engaged
        assert stacked.stats["pfc_pauses_sent"] < bare.stats["pfc_pauses_sent"]

    def test_pfc_is_inert_under_static_buffers(self):
        res = run_case("case1", scheme="PFC", time_scale=0.05)
        assert res.stats["delivered_packets"] > 0
        assert "pfc_pauses_sent" not in res.stats


class TestPlumbing:
    def test_cache_key_discipline(self):
        j0 = SimJob(case="case1", scheme="CCFIT")
        j_static = SimJob(case="case1", scheme="CCFIT", buffer_model="static")
        j_shared = SimJob(case="case1", scheme="CCFIT", buffer_model="shared")
        assert j_static.key() == j0.key()
        assert j_shared.key() != j0.key()
        assert j_shared.label().endswith("%shared")
        assert "%" not in j_static.label()

    def test_batch_kernel_falls_back_to_bucket(self):
        with pytest.warns(RuntimeWarning, match="batch"):
            res = run_case(
                "case1", scheme="CCFIT", time_scale=0.05,
                kernel="batch", buffer_model="shared",
            )
        assert res.stats["delivered_packets"] > 0

    def test_datacenter_incast_registered(self):
        from repro.experiments import registry

        exp = registry.get("datacenter_incast")
        assert exp.kind == "buffers"
        assert exp.buffer_models == ("static", "shared")
        assert "PFC+RCM" in exp.schemes and "CCFIT" in exp.schemes
        labels = [j.label() for j in exp.jobs()]
        assert "case4/CCFIT%shared[num_trees=1]" in labels

    def test_render_pfc_matrix(self):
        from repro.experiments.report import render_pfc_matrix

        res_static = run_case("case1", scheme="CCFIT", time_scale=0.05)
        res_shared = run_case("case1", scheme="PFC", time_scale=0.05,
                              params=TIGHT, buffer_model="shared")
        out = render_pfc_matrix({"CCFIT": res_static, "PFC%shared": res_shared})
        assert "PAUSE storms" in out
        assert "static" in out and "shared" in out


class TestCliResolution:
    def test_flag_absent_means_none(self):
        assert _resolve_buffer_model(Namespace(buffer_model=None)) is None

    def test_case_insensitive(self):
        assert _resolve_buffer_model(Namespace(buffer_model="SHARED")) == "shared"
        assert _resolve_buffer_model(Namespace(buffer_model="Static")) == "static"

    def test_typo_exits_2_with_hint(self, capsys):
        with pytest.raises(SystemExit) as exc:
            _resolve_buffer_model(Namespace(buffer_model="sharde"))
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean shared" in err

    def test_end_to_end_flag(self, capsys):
        rc = main(["--scale", "0.02", "case", "1", "--scheme", "CCFIT",
                   "--buffer-model", "shared", "--no-cache"])
        assert rc == 0
        assert "delivered_packets" in capsys.readouterr().out
