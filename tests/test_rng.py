"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngFactory


def test_same_name_returns_same_generator():
    rngs = RngFactory(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_keyed_by_name_not_order():
    first = RngFactory(7)
    a1 = first.stream("alpha").random(4).tolist()
    b1 = first.stream("beta").random(4).tolist()

    second = RngFactory(7)
    b2 = second.stream("beta").random(4).tolist()  # requested first
    a2 = second.stream("alpha").random(4).tolist()
    assert a1 == a2
    assert b1 == b2


def test_different_names_give_different_streams():
    rngs = RngFactory(7)
    assert rngs.stream("x").random(8).tolist() != rngs.stream("y").random(8).tolist()


def test_different_seeds_give_different_streams():
    a = RngFactory(1).stream("s").random(8).tolist()
    b = RngFactory(2).stream("s").random(8).tolist()
    assert a != b


def test_spawn_derives_independent_child_factory():
    parent = RngFactory(3)
    child_a = parent.spawn("sub")
    child_b = RngFactory(3).spawn("sub")
    assert child_a.seed == child_b.seed
    assert child_a.seed != parent.seed
    assert (
        child_a.stream("n").random(4).tolist() == child_b.stream("n").random(4).tolist()
    )
