"""Unit tests for the buffer pool and packet queues."""

import pytest

from repro.network.buffers import BufferError, BufferPool, PacketQueue
from repro.network.packet import Packet


def pkt(src=0, dst=1, size=2048, flow="f"):
    return Packet(src, dst, size, flow)


class TestBufferPool:
    def test_reserve_and_release(self):
        pool = BufferPool(4096)
        pool.reserve(2048)
        assert pool.used == 2048
        assert pool.free == 2048
        pool.release(2048)
        assert pool.used == 0

    def test_overflow_raises(self):
        pool = BufferPool(4096)
        pool.reserve(4096)
        with pytest.raises(BufferError):
            pool.reserve(1)

    def test_underflow_raises(self):
        pool = BufferPool(4096)
        with pytest.raises(BufferError):
            pool.release(1)

    def test_negative_amounts_raise(self):
        pool = BufferPool(4096)
        with pytest.raises(BufferError):
            pool.reserve(-1)
        with pytest.raises(BufferError):
            pool.release(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestPacketQueue:
    def test_fifo_order(self):
        q = PacketQueue("q")
        packets = [pkt(flow=f"f{i}") for i in range(5)]
        for p in packets:
            q.push(p)
        assert [q.pop() for _ in range(5)] == packets

    def test_byte_accounting(self):
        q = PacketQueue("q")
        q.push(pkt(size=100))
        q.push(pkt(size=200))
        assert q.bytes == 300
        q.pop()
        assert q.bytes == 200

    def test_head_peeks_without_removing(self):
        q = PacketQueue("q")
        p = pkt()
        q.push(p)
        assert q.head() is p
        assert len(q) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(BufferError):
            PacketQueue("q").pop()

    def test_head_of_empty_is_none(self):
        assert PacketQueue("q").head() is None

    def test_max_bytes_enforced(self):
        q = PacketQueue("q", max_bytes=2048)
        q.push(pkt(size=2048))
        assert not q.fits(1)
        with pytest.raises(BufferError):
            q.push(pkt(size=1))

    def test_push_front_reinserts_at_head(self):
        q = PacketQueue("q")
        a, b = pkt(flow="a"), pkt(flow="b")
        q.push(a)
        q.push_front(b)
        assert q.pop() is b
        assert q.pop() is a

    def test_dest_tracking(self):
        q = PacketQueue("q", track_dests=True)
        q.push(pkt(dst=1, size=100))
        q.push(pkt(dst=2, size=200))
        q.push(pkt(dst=1, size=300))
        assert q.dest_bytes == {1: 400, 2: 200}
        q.pop()
        assert q.dest_bytes == {1: 300, 2: 200}
        q.pop()
        q.pop()
        assert q.dest_bytes == {}

    def test_untracked_queue_has_no_dest_bytes(self):
        q = PacketQueue("q")
        q.push(pkt())
        assert q.dest_bytes is None

    def test_iteration_yields_queue_order(self):
        q = PacketQueue("q")
        packets = [pkt(flow=f"f{i}") for i in range(3)]
        for p in packets:
            q.push(p)
        assert list(q) == packets


# ----------------------------------------------------------------------
# shared-buffer model: unit + property tests (docs/buffers.md)
# ----------------------------------------------------------------------
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import CCParams
from repro.network.buffers import (
    SharedBufferModel,
    buffer_model_names,
    get_buffer_model,
)
from repro.network.packet import PfcPause, PfcResume

MTU = 2048


class _StubPort:
    """Just enough of InputPort for driving the model directly."""

    def __init__(self, index):
        self.index = index
        self.name = f"stub.in{index}"
        self.pool = None  # sized by the test once the model exists
        self.sent = []

    def send_upstream(self, msg):
        self.sent.append(msg)


class _StubSwitch:
    def __init__(self, params, n):
        self.params = params
        self.num_ports = n
        self.name = "stub"
        self.input_ports = [_StubPort(i) for i in range(n)]


def shared_model(n=2, **overrides):
    kw = dict(
        memory_size=8 * MTU,
        pfc_priorities=2,
        shared_alpha=1.0,
        shared_reserved=MTU,
        pfc_headroom=2 * MTU,
    )
    kw.update(overrides)
    params = CCParams(**kw)
    sw = _StubSwitch(params, n)
    model = SharedBufferModel(sw)
    for port in sw.input_ports:
        port.pool = BufferPool(model.total)
    return model, sw


class TestSharedBufferModel:
    def test_registry_exposes_both_models(self):
        assert buffer_model_names() == ("static", "shared")
        assert get_buffer_model("shared").build is SharedBufferModel
        with pytest.raises(KeyError, match="unknown buffer model"):
            get_buffer_model("elastic")

    def test_capacity_split(self):
        model, _sw = shared_model(n=2)
        # total = 8 MTU x 2; headroom = 2 MTU x 2; reserved = 1 MTU x 2 x 2
        assert model.total == 16 * MTU
        assert model.headroom_capacity == 4 * MTU
        assert model.shared_capacity == 8 * MTU

    def test_degenerate_split_rejected(self):
        with pytest.raises(ValueError, match="shared space"):
            shared_model(n=2, memory_size=3 * MTU)

    def test_reserve_fills_base_then_shared(self):
        model, sw = shared_model()
        port = sw.input_ports[0]
        model.reserve_bytes(port, pkt(dst=0, size=MTU))     # fits the base
        assert model.shared_used == 0
        model.reserve_bytes(port, pkt(dst=0, size=MTU))     # spills to shared
        assert model.shared_used == MTU
        assert model.pg_used(0, 0) == 2 * MTU
        model.audit()

    def test_xoff_then_headroom_then_xon(self):
        model, sw = shared_model()
        port = sw.input_ports[0]
        held = []
        # saturate PG (0, 0) until the model sends XOFF
        while not model._paused[0][0]:
            p = pkt(dst=0, size=MTU)
            assert model.admissible(0, 0, MTU)
            model.reserve_bytes(port, p)
            held.append(p)
        assert isinstance(port.sent[-1], PfcPause)
        assert model.pauses_sent == 1 and (0, 0) in model.paused_pairs()
        # bytes arriving during the in-flight window charge headroom
        inflight = pkt(dst=0, size=MTU)
        model.reserve_bytes(port, inflight)
        held.append(inflight)
        assert model.headroom_used == MTU
        model.audit()
        # draining everything resumes the PG (LIFO: headroom first)
        for p in reversed(held):
            model.release_bytes(port, p)
        assert isinstance(port.sent[-1], PfcResume)
        assert model.paused_pairs() == []
        assert model.shared_used == 0 and model.headroom_used == 0
        model.audit()

    def test_headroom_overflow_raises(self):
        model, sw = shared_model()
        port = sw.input_ports[0]
        model._paused[0][0] = True
        with pytest.raises(BufferError, match="headroom overflow"):
            model.reserve_bytes(port, pkt(dst=0, size=model.headroom_capacity + 1))

    def test_audit_catches_drift(self):
        model, sw = shared_model()
        model.reserve_bytes(sw.input_ports[0], pkt(dst=0, size=MTU))
        model.shared_used += 1  # simulate a lost byte
        with pytest.raises(BufferError):
            model.audit()

    def test_stats_and_snapshot(self):
        model, _sw = shared_model()
        assert set(model.stats()) == {
            "pfc_pauses_sent", "pfc_resumes_sent",
            "pfc_headroom_peak", "shared_pool_peak",
        }
        snap = model.snapshot()
        assert snap["model"] == "shared" and snap["paused"] == []


_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),       # port
        st.integers(min_value=0, max_value=7),       # destination (hashes to PG)
        st.integers(min_value=1, max_value=MTU),     # size
        st.booleans(),                               # prefer release over admit
    ),
    max_size=200,
)


@given(_OPS)
@settings(max_examples=80, deadline=None)
def test_shared_model_conserves_bytes(ops):
    """Random admission-checked reserve/release interleavings: the pools
    never overflow, the audit never drifts, and draining everything
    always resumes every paused PG (XOFF cannot deadlock)."""
    model, sw = shared_model()
    held = [deque() for _ in sw.input_ports]
    for p, dst, size, prefer_release in ops:
        port = sw.input_ports[p]
        if prefer_release and held[p]:
            model.release_bytes(port, held[p].popleft())
        else:
            g = dst % model.nprios
            if model.admissible(p, g, size):
                packet = pkt(dst=dst, size=size)
                model.reserve_bytes(port, packet)
                held[p].append(packet)
        model.audit()
        assert model.shared_used <= model.shared_capacity
        assert model.headroom_used <= model.headroom_capacity
    for p, q in enumerate(held):
        while q:
            model.release_bytes(sw.input_ports[p], q.popleft())
    model.audit()
    assert model.paused_pairs() == []
    assert model.pauses_sent == model.resumes_sent
    assert model.shared_used == 0 and model.headroom_used == 0
    assert all(port.pool.used == 0 for port in sw.input_ports)


@given(_OPS)
@settings(max_examples=40, deadline=None)
def test_shared_model_pause_ledger_balances(ops):
    """Every XOFF is a PfcPause on the wire, every XON a PfcResume, and
    pauses - resumes always equals the currently paused pair count (the
    invariant the runtime guard checks mid-simulation)."""
    model, sw = shared_model()
    held = [deque() for _ in sw.input_ports]
    for p, dst, size, prefer_release in ops:
        port = sw.input_ports[p]
        if prefer_release and held[p]:
            model.release_bytes(port, held[p].popleft())
        elif model.admissible(p, dst % model.nprios, size):
            packet = pkt(dst=dst, size=size)
            model.reserve_bytes(port, packet)
            held[p].append(packet)
        assert model.pauses_sent - model.resumes_sent == len(model.paused_pairs())
    for port in sw.input_ports:
        pauses = sum(1 for m in port.sent if isinstance(m, PfcPause))
        resumes = sum(1 for m in port.sent if isinstance(m, PfcResume))
        still = sum(1 for (pp, _g) in model.paused_pairs() if pp == port.index)
        assert pauses - resumes == still
