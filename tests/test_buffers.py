"""Unit tests for the buffer pool and packet queues."""

import pytest

from repro.network.buffers import BufferError, BufferPool, PacketQueue
from repro.network.packet import Packet


def pkt(src=0, dst=1, size=2048, flow="f"):
    return Packet(src, dst, size, flow)


class TestBufferPool:
    def test_reserve_and_release(self):
        pool = BufferPool(4096)
        pool.reserve(2048)
        assert pool.used == 2048
        assert pool.free == 2048
        pool.release(2048)
        assert pool.used == 0

    def test_overflow_raises(self):
        pool = BufferPool(4096)
        pool.reserve(4096)
        with pytest.raises(BufferError):
            pool.reserve(1)

    def test_underflow_raises(self):
        pool = BufferPool(4096)
        with pytest.raises(BufferError):
            pool.release(1)

    def test_negative_amounts_raise(self):
        pool = BufferPool(4096)
        with pytest.raises(BufferError):
            pool.reserve(-1)
        with pytest.raises(BufferError):
            pool.release(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestPacketQueue:
    def test_fifo_order(self):
        q = PacketQueue("q")
        packets = [pkt(flow=f"f{i}") for i in range(5)]
        for p in packets:
            q.push(p)
        assert [q.pop() for _ in range(5)] == packets

    def test_byte_accounting(self):
        q = PacketQueue("q")
        q.push(pkt(size=100))
        q.push(pkt(size=200))
        assert q.bytes == 300
        q.pop()
        assert q.bytes == 200

    def test_head_peeks_without_removing(self):
        q = PacketQueue("q")
        p = pkt()
        q.push(p)
        assert q.head() is p
        assert len(q) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(BufferError):
            PacketQueue("q").pop()

    def test_head_of_empty_is_none(self):
        assert PacketQueue("q").head() is None

    def test_max_bytes_enforced(self):
        q = PacketQueue("q", max_bytes=2048)
        q.push(pkt(size=2048))
        assert not q.fits(1)
        with pytest.raises(BufferError):
            q.push(pkt(size=1))

    def test_push_front_reinserts_at_head(self):
        q = PacketQueue("q")
        a, b = pkt(flow="a"), pkt(flow="b")
        q.push(a)
        q.push_front(b)
        assert q.pop() is b
        assert q.pop() is a

    def test_dest_tracking(self):
        q = PacketQueue("q", track_dests=True)
        q.push(pkt(dst=1, size=100))
        q.push(pkt(dst=2, size=200))
        q.push(pkt(dst=1, size=300))
        assert q.dest_bytes == {1: 400, 2: 200}
        q.pop()
        assert q.dest_bytes == {1: 300, 2: 200}
        q.pop()
        q.pop()
        assert q.dest_bytes == {}

    def test_untracked_queue_has_no_dest_bytes(self):
        q = PacketQueue("q")
        q.push(pkt())
        assert q.dest_bytes is None

    def test_iteration_yields_queue_order(self):
        q = PacketQueue("q")
        packets = [pkt(flow=f"f{i}") for i in range(3)]
        for p in packets:
            q.push(p)
        assert list(q) == packets
