"""Bucket/heap kernel contract: identical dispatch order, pooled API
semantics, and byte-identical figure results.

The bucket kernel is an implementation detail — these tests pin the
contract that makes it invisible: both kernels share the sequence
allocator and fire callbacks in ``(time, seq)`` order, so every
simulation in the repository produces bit-for-bit identical results on
either.  See docs/performance.md.
"""

import json

import pytest

from repro.sim.engine import (
    DEFAULT_KERNEL,
    KERNELS,
    SimulationError,
    Simulator,
    resolve_kernel,
)


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param


# ----------------------------------------------------------------------
# kernel selection
# ----------------------------------------------------------------------
def test_default_kernel_is_bucket():
    assert DEFAULT_KERNEL == "bucket"
    assert Simulator().kernel == "bucket"


def test_kernel_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_KERNEL", "heap")
    assert resolve_kernel() == "heap"
    assert Simulator().kernel == "heap"
    # an explicit argument wins over the environment
    assert Simulator(kernel="bucket").kernel == "bucket"


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        Simulator(kernel="splay")
    with pytest.raises(ValueError):
        resolve_kernel("fibonacci")


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        Simulator(bucket_ns=0.0)
    with pytest.raises(ValueError):
        Simulator(num_buckets=0)


# ----------------------------------------------------------------------
# pooled scheduling APIs
# ----------------------------------------------------------------------
def test_post_orders_with_schedule(kernel):
    sim = Simulator(kernel=kernel)
    fired = []
    sim.schedule(5.0, fired.append, "s1")
    sim.post(5.0, fired.append, "p1")
    sim.post(3.0, fired.append, "p0")
    sim.schedule(5.0, fired.append, "s2")
    sim.run()
    assert fired == ["p0", "s1", "p1", "s2"]


def test_post_in_past_raises(kernel):
    sim = Simulator(kernel=kernel)
    sim.post(4.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_in(-0.5, lambda: None)


def test_schedule_pair_equivalent_to_two_schedules(kernel):
    # the pair must interleave with independently scheduled events
    # exactly as two separate schedules would (both seqs reserved at
    # schedule time)
    sim = Simulator(kernel=kernel)
    fired = []
    sim.schedule_pair(10.0, fired.append, ("tx",), 12.0, fired.append, ("rx",))
    sim.schedule(10.0, fired.append, "after-tx")  # later seq, same time
    sim.schedule(12.0, fired.append, "after-rx")
    sim.schedule(11.0, fired.append, "between")
    sim.run()
    assert fired == ["tx", "after-tx", "between", "rx", "after-rx"]
    assert sim.events_dispatched == 5


def test_schedule_pair_same_instant(kernel):
    sim = Simulator(kernel=kernel)
    fired = []
    sim.schedule_pair(7.0, fired.append, ("a",), 7.0, fired.append, ("b",))
    sim.schedule(7.0, fired.append, "c")
    sim.run()
    # both pair seqs (0, 1) predate c's (2), so FIFO gives a, b, c
    assert fired == ["a", "b", "c"]


def test_schedule_pair_validates_times(kernel):
    sim = Simulator(kernel=kernel)
    with pytest.raises(SimulationError):
        sim.schedule_pair(5.0, lambda: None, (), 4.0, lambda: None, ())
    sim.post(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_pair(0.5, lambda: None, (), 2.0, lambda: None, ())


def test_pending_counts_pairs_and_posts(kernel):
    sim = Simulator(kernel=kernel)
    sim.post(1.0, lambda: None)
    sim.schedule_pair(2.0, lambda: None, (), 3.0, lambda: None, ())
    assert sim.pending() == 3
    sim.run(max_events=2)
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0


def test_entry_recycling_keeps_order(kernel):
    # churn far more events than the pool cap with shifting times; a
    # recycled entry carrying stale state would misorder or drop events
    sim = Simulator(kernel=kernel, bucket_ns=8.0, num_buckets=16)
    fired = []
    count = 9000

    def tick(i):
        fired.append(i)
        if i + 1 < count:
            sim.post(sim.now + 1.0 + (i % 7) * 3.0, tick, i + 1)

    sim.post(0.0, tick, 0)
    sim.run()
    assert fired == list(range(count))


# ----------------------------------------------------------------------
# run()/clock semantics (satellite: no fast-forward on max_events)
# ----------------------------------------------------------------------
def test_max_events_break_does_not_fast_forward_clock(kernel):
    sim = Simulator(kernel=kernel)
    fired = []
    for i in range(1, 11):
        sim.post(float(i), fired.append, i)
    sim.run(until=100.0, max_events=3)
    assert fired == [1, 2, 3]
    assert sim.now == 3.0  # NOT 100.0: there is still pending work
    sim.run(until=100.0)
    assert fired == list(range(1, 11))
    assert sim.now == 100.0  # drained -> clock advances to until


def test_until_with_remaining_future_events_advances_clock(kernel):
    sim = Simulator(kernel=kernel)
    sim.post(50.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0
    sim.run(until=49.0)
    assert sim.now == 49.0
    sim.run(until=50.0)
    assert sim.pending() == 0


def test_peek_time_across_kernels(kernel):
    sim = Simulator(kernel=kernel, bucket_ns=4.0, num_buckets=8)
    assert sim.peek_time() is None
    ev = sim.schedule(3.0, lambda: None)
    sim.post(1000.0, lambda: None)  # beyond the bucket window -> overflow
    assert sim.peek_time() == 3.0
    ev.cancel()
    assert sim.peek_time() == 1000.0


def test_far_future_events_rebase_window():
    # events far beyond the bucket span must dispatch in order after
    # the window rebases onto the overflow heap (several times over)
    sim = Simulator(kernel="bucket", bucket_ns=2.0, num_buckets=4)  # span = 8 ns
    fired = []
    times = [1.0, 7.5, 100.0, 101.0, 5000.0, 5000.0, 123456.0]
    for i, t in enumerate(times):
        sim.post(t, fired.append, (t, i))
    sim.run()
    assert fired == [(t, i) for i, t in enumerate(times)]
    assert sim.now == 123456.0


def test_cancel_after_fire_does_not_corrupt_live_count(kernel):
    sim = Simulator(kernel=kernel)
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(max_events=1)
    ev.cancel()  # already fired: must be a no-op
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0


# ----------------------------------------------------------------------
# cross-kernel parity (randomized)
# ----------------------------------------------------------------------
def _mixed_workload(sim, seed):
    """A deterministic schedule/post/pair/cancel storm; returns the
    dispatch trace."""
    import numpy as np

    rng = np.random.default_rng(seed)
    trace = []
    handles = []

    def fire(tag):
        trace.append((sim.now, tag))
        r = rng.random()
        if r < 0.30:
            sim.post(sim.now + float(rng.integers(0, 50)), fire, tag + 1000)
        elif r < 0.55:
            done = sim.now + float(rng.integers(1, 20))
            sim.schedule_pair(done, fire, (tag + 2000,), done + 3.0, fire, (tag + 3000,))
        elif r < 0.75:
            handles.append(sim.schedule(sim.now + float(rng.integers(0, 900)), fire, tag + 4000))
        elif r < 0.85 and handles:
            handles.pop(int(rng.integers(len(handles)))).cancel()

    for i in range(40):
        sim.post(float(rng.integers(0, 200)), fire, i)
    sim.run(until=4000.0)
    return trace


def test_kernels_dispatch_identically_randomized():
    # small bucket window to force frequent rebases/overflow traffic
    t_bucket = _mixed_workload(Simulator(kernel="bucket", bucket_ns=16.0, num_buckets=32), seed=7)
    t_heap = _mixed_workload(Simulator(kernel="heap"), seed=7)
    assert len(t_bucket) > 100
    assert t_bucket == t_heap


# ----------------------------------------------------------------------
# golden test: byte-identical figure results across kernels
# ----------------------------------------------------------------------
def test_case_results_byte_identical_across_kernels():
    from repro.experiments.runner import PAPER_SCHEMES, run_case

    for scheme in PAPER_SCHEMES:
        blobs = {}
        for k in KERNELS:
            res = run_case(
                "case1",
                scheme=scheme,
                time_scale=0.05,
                seed=1,
                sim_factory=lambda k=k: Simulator(kernel=k),
            )
            blobs[k] = json.dumps(res.to_dict(), sort_keys=True)
        assert blobs["bucket"] == blobs["heap"], f"kernel divergence under {scheme}"
        assert blobs["batch"] == blobs["heap"], f"batch kernel divergence under {scheme}"


# ----------------------------------------------------------------------
# PeriodicTask edge cases (satellite)
# ----------------------------------------------------------------------
def test_periodic_cancel_from_own_callback(kernel):
    sim = Simulator(kernel=kernel)
    fired = []
    holder = {}

    def cb():
        fired.append(sim.now)
        if len(fired) == 3:
            holder["task"].cancel()

    holder["task"] = sim.call_every(10.0, cb)
    sim.run(until=200.0)
    assert fired == [10.0, 20.0, 30.0]
    assert sim.pending() == 0  # the chain left no dangling event


def test_periodic_end_exactly_on_tick_boundary(kernel):
    sim = Simulator(kernel=kernel)
    fired = []
    sim.call_every(10.0, lambda: fired.append(sim.now), start=10.0, end=30.0)
    sim.run(until=100.0)
    assert fired == [10.0, 20.0, 30.0]  # a tick landing on `end` fires


def test_periodic_reentrant_call_every(kernel):
    # a periodic callback spawning another periodic chain must not
    # disturb either cadence
    sim = Simulator(kernel=kernel)
    outer, inner = [], []

    def outer_cb():
        outer.append(sim.now)
        if len(outer) == 1:
            sim.call_every(5.0, lambda: inner.append(sim.now), end=25.0)

    sim.call_every(10.0, outer_cb, end=40.0)
    sim.run(until=100.0)
    assert outer == [10.0, 20.0, 30.0, 40.0]
    assert inner == [15.0, 20.0, 25.0]
