"""Unit tests for the NFQ+CFQ isolation scheme and tree protocol.

Uses a fake host so every protocol step (detection, post-processing,
propagation, Stop/Go, deallocation, congestion state) can be observed
in isolation from the switch.
"""


from repro.core.cam import OutputCamLine
from repro.core.isolation import NfqCfqScheme
from repro.core.params import CCParams, MTU
from repro.network.packet import CfqAlloc, CfqDealloc, CfqGo, CfqStop, Packet
from repro.network.buffers import BufferPool
from repro.sim.engine import Simulator


class FakeIsolationHost:
    def __init__(self, **overrides):
        defaults = dict(
            detection_threshold=4 * MTU,
            propagation_threshold=4 * MTU,
            cfq_stop=10 * MTU,
            cfq_go=4 * MTU,
            cfq_high=8 * MTU,
            cfq_low=1 * MTU,
            cfq_min_lifetime=1e12,  # tests opt into deallocation explicitly
            cfq_high_dwell=0.0,
        )
        defaults.update(overrides)
        self.sim = Simulator()
        self.params = CCParams(**defaults)
        self.pool = BufferPool(self.params.memory_size)
        self.name = "fake"
        self.sent_upstream = []
        self.hot_changes = []
        self.announced = {}
        self.kicks = 0

    def route(self, pkt):
        return 0

    def kick(self):
        self.kicks += 1

    def now(self):
        return self.sim.now

    def schedule(self, delay, fn):
        self.sim.schedule_in(delay, fn)

    def send_upstream(self, msg):
        self.sent_upstream.append(msg)

    def announced_tree(self, dest):
        return self.announced.get(dest)

    def root_cfq_hot_changed(self, dest, hot):
        self.hot_changes.append((dest, hot))

    def set_output_hot(self, out_port, source, hot):
        pass


def pkt(dst, size=MTU):
    return Packet(0, dst, size, f"to{dst}")


def fill(scheme, dst, count):
    for _ in range(count):
        scheme.on_arrival(pkt(dst))


def make(drive=True, **overrides):
    host = FakeIsolationHost(**overrides)
    return host, NfqCfqScheme(host, drive_congestion_state=drive)


class TestDetectionAndPostProcessing:
    def test_below_threshold_no_detection(self):
        host, s = make()
        fill(s, 5, 3)  # 3 MTU < 4 MTU threshold
        assert s.cam.lines() == []
        assert len(s.nfq) == 3

    def test_detection_allocates_root_cfq_and_moves_packets(self):
        host, s = make()
        fill(s, 5, 4)
        (line,) = s.cam.lines()
        assert line.dest == 5 and line.root
        # post-processing drained the NFQ into the CFQ
        assert s.nfq.empty
        assert len(s.cfqs[line.cfq_index]) == 4

    def test_dominant_destination_blamed_not_head(self):
        host, s = make()
        s.on_arrival(pkt(9))  # innocent head
        fill(s, 5, 3)
        (line,) = s.cam.lines()
        assert line.dest == 5
        # post-processing is head-granular (§III-C): the innocent head
        # stays put and the culprits move only as they reach the head.
        assert s.nfq.head().dst == 9
        assert len(s.cfqs[line.cfq_index]) == 0
        s.nfq.pop()  # the head departs (forwarded by the switch)
        s.after_dequeue(s.nfq)
        assert len(s.cfqs[line.cfq_index]) == 3
        assert s.nfq.empty

    def test_head_policy_blames_head(self):
        host, s = make(detection_policy="head")
        s.on_arrival(pkt(9))
        fill(s, 5, 3)
        (line,) = s.cam.lines()
        assert line.dest == 9

    def test_tracked_bytes_do_not_retrigger_detection(self):
        host, s = make()
        fill(s, 5, 4)  # detected; CFQ holds dest 5
        s.on_arrival(pkt(7))
        s.on_arrival(pkt(7))
        s.on_arrival(pkt(7))
        # 3 MTU of untracked dest-7 bytes: below threshold, no new line
        assert len(s.cam.lines()) == 1

    def test_second_tree_uses_second_cfq(self):
        host, s = make()
        fill(s, 5, 4)
        fill(s, 7, 4)
        dests = sorted(l.dest for l in s.cam.lines())
        assert dests == [5, 7]

    def test_cam_exhaustion_counts_and_forwards(self):
        host, s = make()
        fill(s, 5, 4)
        fill(s, 7, 4)
        fill(s, 9, 5)  # third tree: out of CFQs
        assert len(s.cam.lines()) == 2
        assert s.cam.alloc_failures > 0
        # the unisolated congested head still requests its output
        heads = s.eligible_heads()
        assert any(q is s.nfq for q, _o, _p in heads)

    def test_zero_cfqs_degenerates_to_single_queue(self):
        host, s = make(num_cfqs=0)
        fill(s, 5, 10)
        assert s.cam.lines() == []
        assert len(s.nfq) == 10

    def test_arrivals_while_line_live_move_on_reaching_head(self):
        host, s = make()
        fill(s, 5, 4)
        line = s.cam.lookup(5)
        s.on_arrival(pkt(5))
        assert len(s.cfqs[line.cfq_index]) == 5
        assert s.nfq.empty


class TestPropagationAndStopGo:
    def test_propagation_threshold_sends_alloc(self):
        host, s = make()
        fill(s, 5, 4)  # CFQ occupancy = 4 MTU = propagation threshold
        kinds = [type(m) for m in host.sent_upstream]
        assert CfqAlloc in kinds
        assert s.cam.lookup(5).propagated

    def test_stop_threshold_sends_stop_then_go(self):
        host, s = make()
        fill(s, 5, 10)
        kinds = [type(m) for m in host.sent_upstream]
        assert kinds.count(CfqStop) == 1
        line = s.cam.lookup(5)
        assert line.stop_sent
        # drain to the Go threshold
        cfq = s.cfqs[line.cfq_index]
        while cfq.bytes > host.params.cfq_go:
            cfq.pop()
        s.after_dequeue(cfq)
        assert not line.stop_sent
        assert any(isinstance(m, CfqGo) for m in host.sent_upstream)

    def test_stopped_line_not_eligible(self):
        host, s = make()
        fill(s, 5, 4)
        s.tree_stopped(5, True)
        assert all(q is s.nfq for q, _o, _p in s.eligible_heads() if not q.empty)
        s.tree_stopped(5, False)
        assert any(q is not s.nfq for q, _o, _p in s.eligible_heads())

    def test_announced_tree_adopted_as_non_root(self):
        host, s = make()
        host.announced[8] = OutputCamLine(8)
        s.on_arrival(pkt(8))
        (line,) = s.cam.lines()
        assert line.dest == 8 and not line.root
        assert s.nfq.empty

    def test_announced_tree_inherits_stop_state(self):
        host, s = make()
        rec = OutputCamLine(8)
        rec.stopped = True
        host.announced[8] = rec
        s.on_arrival(pkt(8))
        (line,) = s.cam.lines()
        assert line.stopped

    def test_detection_with_announcement_is_not_root(self):
        host, s = make()
        host.announced[5] = OutputCamLine(5)
        fill(s, 5, 4)
        (line,) = s.cam.lines()
        assert not line.root

    def test_stop_demotes_root(self):
        """A true root's downstream never stops it; receiving Stop
        reclassifies the line as non-root (no marking)."""
        host, s = make()
        fill(s, 5, 4)
        assert s.cam.lookup(5).root
        s.tree_stopped(5, True)
        assert not s.cam.lookup(5).root

    def test_announce_demotes_root(self):
        host, s = make()
        fill(s, 5, 4)
        host.announced[5] = OutputCamLine(5)
        s.on_tree_announced()
        assert not s.cam.lookup(5).root


class TestDeallocation:
    def test_empty_line_in_go_deallocates(self):
        host, s = make(cfq_min_lifetime=0.0)
        fill(s, 5, 4)
        line = s.cam.lookup(5)
        cfq = s.cfqs[line.cfq_index]
        while not cfq.empty:
            cfq.pop()
        s.after_dequeue(cfq)
        assert s.cam.lookup(5) is None
        assert any(isinstance(m, CfqDealloc) for m in host.sent_upstream)

    def test_stopped_line_does_not_deallocate(self):
        host, s = make(cfq_min_lifetime=0.0)
        fill(s, 5, 4)
        line = s.cam.lookup(5)
        s.tree_stopped(5, True)
        cfq = s.cfqs[line.cfq_index]
        while not cfq.empty:
            cfq.pop()
        s.after_dequeue(cfq)
        assert s.cam.lookup(5) is line

    def test_min_lifetime_defers_deallocation(self):
        host, s = make(cfq_min_lifetime=5_000.0)
        fill(s, 5, 4)
        line = s.cam.lookup(5)
        cfq = s.cfqs[line.cfq_index]
        while not cfq.empty:
            cfq.pop()
        s.after_dequeue(cfq)
        assert s.cam.lookup(5) is line  # hysteresis holds it
        host.sim.run(until=10_000.0)
        assert s.cam.lookup(5) is None

    def test_unpropagated_line_sends_no_dealloc(self):
        host, s = make(propagation_threshold=100 * MTU, cfq_min_lifetime=0.0)
        fill(s, 5, 4)
        line = s.cam.lookup(5)
        cfq = s.cfqs[line.cfq_index]
        while not cfq.empty:
            cfq.pop()
        s.after_dequeue(cfq)
        assert not any(isinstance(m, CfqDealloc) for m in host.sent_upstream)

    def test_orphaned_line_drains_and_frees(self):
        host, s = make()
        host.announced[8] = OutputCamLine(8)
        s.on_arrival(pkt(8))
        del host.announced[8]
        s.tree_orphaned(8)
        line = s.cam.lookup(8)
        assert line.orphaned
        cfq = s.cfqs[line.cfq_index]
        cfq.pop()
        s.after_dequeue(cfq)
        assert s.cam.lookup(8) is None

    def test_orphaned_line_stops_capturing(self):
        host, s = make()
        host.announced[8] = OutputCamLine(8)
        s.on_arrival(pkt(8))
        del host.announced[8]
        s.tree_orphaned(8)
        s.on_arrival(pkt(8))  # no live tree: stays in the NFQ
        assert s.nfq.head().dst == 8

    def test_reannouncement_revives_orphan(self):
        host, s = make()
        host.announced[8] = OutputCamLine(8)
        s.on_arrival(pkt(8))
        s.tree_orphaned(8)
        host.announced[8] = OutputCamLine(8)
        s.on_arrival(pkt(8))
        line = s.cam.lookup(8)
        assert not line.orphaned
        assert len(s.cfqs[line.cfq_index]) == 2

    def test_detection_revives_orphan_as_root(self):
        host, s = make()
        host.announced[8] = OutputCamLine(8)
        s.on_arrival(pkt(8))
        del host.announced[8]
        s.tree_orphaned(8)
        fill(s, 8, 4)
        line = s.cam.lookup(8)
        assert line.root and not line.orphaned


class TestCongestionState:
    def test_root_above_high_goes_hot(self):
        host, s = make(cfq_high_dwell=0.0)
        fill(s, 5, 8)  # 8 MTU = high
        assert (5, True) in host.hot_changes

    def test_non_root_never_hot(self):
        host, s = make(cfq_high_dwell=0.0)
        host.announced[5] = OutputCamLine(5)
        fill(s, 5, 9)
        assert host.hot_changes == []

    def test_drain_to_low_clears_hot(self):
        host, s = make(cfq_high_dwell=0.0)
        fill(s, 5, 8)
        line = s.cam.lookup(5)
        cfq = s.cfqs[line.cfq_index]
        while cfq.bytes > host.params.cfq_low:
            cfq.pop()
        s.after_dequeue(cfq)
        assert host.hot_changes[-1] == (5, False)

    def test_dwell_defers_congestion_state(self):
        host, s = make(cfq_high_dwell=1_000.0)
        fill(s, 5, 8)
        assert host.hot_changes == []
        host.sim.run(until=2_000.0)
        assert (5, True) in host.hot_changes

    def test_dwell_cancelled_by_drain_to_low(self):
        host, s = make(cfq_high_dwell=1_000.0)
        fill(s, 5, 8)
        line = s.cam.lookup(5)
        cfq = s.cfqs[line.cfq_index]
        while not cfq.empty:
            cfq.pop()
        s.after_dequeue(cfq)
        host.sim.run(until=2_000.0)
        assert (5, True) not in host.hot_changes

    def test_dwell_survives_stop_go_sawtooth(self):
        """Dipping to the Go threshold (not Low) must not disarm."""
        host, s = make(cfq_high_dwell=1_000.0)
        fill(s, 5, 10)
        line = s.cam.lookup(5)
        cfq = s.cfqs[line.cfq_index]
        while cfq.bytes > host.params.cfq_go:
            cfq.pop()
        s.after_dequeue(cfq)
        host.sim.run(until=2_000.0)
        assert (5, True) in host.hot_changes

    def test_fbicm_mode_never_marks(self):
        host, s = make(drive=False, cfq_high_dwell=0.0)
        fill(s, 5, 12)
        assert host.hot_changes == []

    def test_dealloc_while_hot_clears_congestion_state(self):
        host, s = make(cfq_high_dwell=0.0, cfq_min_lifetime=0.0)
        fill(s, 5, 8)
        line = s.cam.lookup(5)
        cfq = s.cfqs[line.cfq_index]
        while not cfq.empty:
            cfq.pop()
        s.after_dequeue(cfq)
        assert host.hot_changes[-1] == (5, False)
        assert s.cam.lookup(5) is None


class TestRearmWindow:
    def _drain_to_exit(self, host, s, line):
        cfq = s.cfqs[line.cfq_index]
        while cfq.bytes > host.params.cfq_cs_exit:
            cfq.pop()
        s.after_dequeue(cfq)

    def test_recently_hot_line_skips_the_dwell(self):
        host, s = make(cfq_high_dwell=1_000.0, cfq_rearm_window=10_000.0)
        fill(s, 5, 8)
        host.sim.run(until=2_000.0)  # serve the first dwell
        assert host.hot_changes == [(5, True)]
        line = s.cam.lookup(5)
        self._drain_to_exit(host, s, line)
        assert host.hot_changes[-1] == (5, False)
        # refill within the rearm window: hot again instantly, no dwell
        fill(s, 5, 8)
        assert host.hot_changes[-1] == (5, True)

    def test_rearm_window_expires(self):
        host, s = make(cfq_high_dwell=1_000.0, cfq_rearm_window=5_000.0)
        fill(s, 5, 8)
        host.sim.run(until=2_000.0)
        line = s.cam.lookup(5)
        self._drain_to_exit(host, s, line)
        host.sim.run(until=20_000.0)  # window long gone
        fill(s, 5, 8)
        assert host.hot_changes[-1] == (5, False)  # back to dwelling
        host.sim.run(until=25_000.0)
        assert host.hot_changes[-1] == (5, True)
