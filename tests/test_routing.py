"""Unit tests for routing tables and the BFS route builder."""

import pytest

from repro.network.routing import RoutingTable, build_routing
from repro.network.topology import TopologyError, config1_adhoc, k_ary_n_tree


def test_routing_table_lookup():
    topo = config1_adhoc()
    rt = RoutingTable.from_topology(topo, 0)
    assert rt.lookup(0) == 0
    assert rt.lookup(4) == 3  # remote -> inter-switch port
    assert 4 in rt
    assert len(rt) == 7


def test_lookup_unroutable_raises_topology_error():
    """A miss is a topology bug, not a dict accident: the error names
    the switch and the destination instead of a bare KeyError."""
    rt = RoutingTable(3, {0: 0})
    with pytest.raises(TopologyError) as exc_info:
        rt.lookup(99)
    message = str(exc_info.value)
    assert "switch 3" in message
    assert "99" in message


def test_bfs_routes_deliver_on_config1():
    topo = config1_adhoc()
    topo.routes = build_routing(topo)
    topo.validate()  # follows every (src, dst) pair to delivery


def test_bfs_routes_deliver_on_trees():
    for k, n in [(2, 2), (2, 3), (3, 2)]:
        topo = k_ary_n_tree(k, n)
        topo.routes = build_routing(topo)
        topo.validate()


def test_bfs_paths_are_shortest():
    """On a 2-ary 3-tree the BFS path length must match the DET path
    length for every pair (DET is minimal in a fat tree)."""
    det = k_ary_n_tree(2, 3)
    bfs = k_ary_n_tree(2, 3)
    bfs.routes = build_routing(bfs)
    for src in range(8):
        for dst in range(8):
            if src == dst:
                continue
            assert len(bfs.path(src, dst)) == len(det.path(src, dst))


@pytest.mark.parametrize("k,n", [(2, 3), (4, 3)])
def test_bfs_vs_det_differential(k, n):
    """Differential baseline: the shipped DET tables and freshly built
    BFS tables must both deliver every src→dst pair on the same tree.
    Paths may differ (different tie-breaks pick different upward
    links), but delivery and hop count must not — both routings are
    minimal in a fat tree."""
    det = k_ary_n_tree(k, n)
    bfs = k_ary_n_tree(k, n)
    bfs.routes = build_routing(bfs)
    num_nodes = k**n
    max_hops = 2 * n  # up to the roots and back down, in switch hops
    for src in range(num_nodes):
        for dst in range(num_nodes):
            if src == dst:
                continue
            det_path = det.path(src, dst)
            bfs_path = bfs.path(src, dst)
            assert len(det_path) == len(bfs_path)
            assert 1 <= len(det_path) <= max_hops


def test_bfs_is_deterministic():
    a = build_routing(k_ary_n_tree(2, 3))
    b = build_routing(k_ary_n_tree(2, 3))
    assert a == b
