"""Fabric assembly tests: wiring, scheme presets, memory overrides."""

import pytest

from repro.core.ccfit import SCHEMES, scheme_params
from repro.core.isolation import NfqCfqScheme
from repro.core.params import CCParams
from repro.network.fabric import build_fabric
from repro.network.queueing import OneQScheme, VOQnetScheme, VOQswScheme
from repro.network.topology import config1_adhoc, k_ary_n_tree


def test_every_scheme_builds_every_config():
    for topo in (config1_adhoc(), k_ary_n_tree(2, 3)):
        for scheme in SCHEMES:
            fab = build_fabric(topo, scheme=scheme, seed=0)
            assert len(fab.nodes) == topo.num_nodes
            assert len(fab.switches) == topo.num_switches


def test_unknown_scheme_rejected():
    with pytest.raises(KeyError):
        build_fabric(config1_adhoc(), scheme="MAGIC")
    with pytest.raises(KeyError):
        scheme_params("MAGIC")


def test_link_wiring_is_bidirectional_and_complete():
    topo = k_ary_n_tree(2, 3)
    fab = build_fabric(topo, scheme="1Q", seed=0)
    # 8 node attachments + 16 cables, two links each
    assert len(fab.links) == 2 * (8 + len(topo.switch_links))
    for node in fab.nodes:
        assert node.uplink is not None and node.downlink is not None
        assert node.uplink.tx is node
        assert node.downlink.rx is node
    for sw_spec, sw in zip(topo.switches, fab.switches):
        for port in range(sw_spec.num_ports):
            wired = topo.neighbor(sw_spec.id, port) is not None
            ip, op = sw.input_ports[port], sw.output_ports[port]
            if wired:
                assert ip.link_in is not None and ip.link_in.rx is ip
                assert op.link_out is not None and op.link_out.tx is op
            else:  # top-level switches leave their up ports unwired
                assert ip.link_in is None and op.link_out is None


def test_switch_queue_schemes_match_preset():
    expected = {
        "1Q": OneQScheme,
        "VOQsw": VOQswScheme,
        "ITh": VOQswScheme,
        "VOQnet": VOQnetScheme,
        "FBICM": NfqCfqScheme,
        "CCFIT": NfqCfqScheme,
    }
    for scheme, cls in expected.items():
        fab = build_fabric(config1_adhoc(), scheme=scheme, seed=0)
        assert isinstance(fab.switches[0].input_ports[0].scheme, cls), scheme


def test_only_ccfit_switches_drive_congestion_state():
    fab_cc = build_fabric(config1_adhoc(), scheme="CCFIT", seed=0)
    fab_fb = build_fabric(config1_adhoc(), scheme="FBICM", seed=0)
    assert fab_cc.switches[0].input_ports[0].scheme.drive_congestion_state
    assert not fab_fb.switches[0].input_ports[0].scheme.drive_congestion_state
    assert fab_cc.switches[0].marking and not fab_fb.switches[0].marking


def test_voqnet_memory_override():
    fab = build_fabric(k_ary_n_tree(4, 3), scheme="VOQnet", seed=0)
    port = fab.switches[0].input_ports[0]
    assert port.pool.capacity == 256 * 1024  # 64 dests * 4 KiB (§IV-A)
    fab2 = build_fabric(k_ary_n_tree(4, 3), scheme="CCFIT", seed=0)
    assert fab2.switches[0].input_ports[0].pool.capacity == 64 * 1024


def test_params_are_validated_at_build():
    with pytest.raises(Exception):
        build_fabric(config1_adhoc(), scheme="CCFIT", params=CCParams(marking_rate=0.0))


def test_collector_injection():
    from repro.metrics.collector import Collector

    mine = Collector(bin_ns=50_000.0)
    fab = build_fabric(config1_adhoc(), scheme="1Q", collector=mine, seed=0)
    assert fab.collector is mine


def test_generators_kept_alive_on_fabric():
    from repro.traffic.flows import FlowSpec, attach_traffic

    fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
    gens = attach_traffic(fab, flows=[FlowSpec("f", src=0, dst=1, rate=2.5)])
    assert fab.generators == gens
