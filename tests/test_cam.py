"""Unit tests for the congestion-tree CAMs."""

import pytest

from repro.core.cam import CamError, CamLine, InputCam, OutputCam


class TestInputCam:
    def test_allocate_and_lookup(self):
        cam = InputCam(2)
        line = cam.allocate(dest=4, root=True, now=0.0)
        assert line is not None
        assert line.root and line.cfq_index == 0
        assert cam.lookup(4) is line
        assert cam.lookup(5) is None

    def test_capacity_exhaustion_counts_failures(self):
        cam = InputCam(2)
        assert cam.allocate(1, False, 0.0) is not None
        assert cam.allocate(2, False, 0.0) is not None
        assert cam.full
        assert cam.allocate(3, False, 0.0) is None
        assert cam.alloc_failures == 1
        assert cam.allocations == 2

    def test_free_recycles_slot(self):
        cam = InputCam(1)
        line = cam.allocate(1, False, 0.0)
        cam.free(line)
        assert not cam.full
        again = cam.allocate(2, False, 1.0)
        assert again is not None and again.cfq_index == 0

    def test_double_allocate_same_dest_raises(self):
        cam = InputCam(2)
        cam.allocate(1, False, 0.0)
        with pytest.raises(CamError):
            cam.allocate(1, True, 0.0)

    def test_double_free_raises(self):
        cam = InputCam(1)
        line = cam.allocate(1, False, 0.0)
        cam.free(line)
        with pytest.raises(CamError):
            cam.free(line)

    def test_lines_lists_only_allocated(self):
        cam = InputCam(3)
        a = cam.allocate(1, False, 0.0)
        b = cam.allocate(2, False, 0.0)
        cam.free(a)
        assert cam.lines() == [b]
        assert cam.line_at(0) is None
        assert cam.line_at(1) is b

    def test_fresh_line_state(self):
        line = CamLine(dest=9, cfq_index=1, root=False, now=5.0)
        assert not line.stopped
        assert not line.stop_sent
        assert not line.propagated
        assert not line.orphaned
        assert not line.hot
        assert line.allocated_at == 5.0


class TestOutputCam:
    def test_allocate_is_idempotent(self):
        cam = OutputCam(2)
        a = cam.allocate(7)
        assert cam.allocate(7) is a
        assert cam.destinations() == [7]

    def test_capacity(self):
        cam = OutputCam(1)
        assert cam.allocate(1) is not None
        assert cam.allocate(2) is None
        assert cam.alloc_failures == 1

    def test_free(self):
        cam = OutputCam(2)
        cam.allocate(1)
        cam.free(1)
        assert cam.lookup(1) is None
        with pytest.raises(CamError):
            cam.free(1)
