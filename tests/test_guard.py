"""The runtime invariant guard (repro.sim.guard).

Three properties matter: guard mode never changes results (bit-identical
with the guard on or off, on both engine kernels), a corrupted
simulation state is *detected* (tampering trips the matching check),
and a frozen network raises a structured StallError instead of hanging.
"""

import json

import pytest

from repro import build_fabric, k_ary_n_tree
from repro.experiments.runner import PAPER_SCHEMES, run_case
from repro.network.packet import Packet
from repro.sim.guard import (
    ENV_VALIDATE,
    FabricGuard,
    GuardConfig,
    InvariantViolation,
    StallError,
    validation_enabled,
)

SCALE = 0.02


def tiny_fabric(scheme="CCFIT"):
    return build_fabric(k_ary_n_tree(2, 2), scheme=scheme, seed=1, validate=True)


# ---------------------------------------------------------------------------
# switch resolution
# ---------------------------------------------------------------------------
class TestValidationEnabled:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VALIDATE, "1")
        assert validation_enabled(False) is False
        monkeypatch.delenv(ENV_VALIDATE)
        assert validation_enabled(True) is True

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(ENV_VALIDATE, raising=False)
        assert validation_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_env(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VALIDATE, value)
        assert validation_enabled() is True

    @pytest.mark.parametrize("value", ["", "0", "no", "off", "garbage"])
    def test_falsy_env(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VALIDATE, value)
        assert validation_enabled() is False


class TestGuardAttachment:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VALIDATE, raising=False)
        assert build_fabric(k_ary_n_tree(2, 2)).guard is None

    def test_validate_true_attaches(self):
        fabric = tiny_fabric()
        assert isinstance(fabric.guard, FabricGuard)

    def test_env_attaches(self, monkeypatch):
        monkeypatch.setenv(ENV_VALIDATE, "1")
        assert build_fabric(k_ary_n_tree(2, 2)).guard is not None

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VALIDATE, "1")
        assert build_fabric(k_ary_n_tree(2, 2), validate=False).guard is None

    def test_cli_validate_flag_sets_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(ENV_VALIDATE, "0")  # recorded + restored by monkeypatch
        assert main(["--scale", str(SCALE), "case", "1",
                     "--scheme", "CCFIT", "--validate"]) == 0
        import os
        assert os.environ[ENV_VALIDATE] == "1"


# ---------------------------------------------------------------------------
# guard mode cannot change results
# ---------------------------------------------------------------------------
class TestBitIdentical:
    @pytest.mark.parametrize("scheme", PAPER_SCHEMES)
    def test_paper_schemes_clean_and_identical(self, scheme):
        """Every paper scheme passes the invariant sweep on Case #1, and
        the guarded result — including the event count — is bit-identical
        to the unguarded one (guard mode can never poison the cache)."""
        plain = run_case("case1", scheme=scheme, time_scale=SCALE)
        guarded = run_case("case1", scheme=scheme, time_scale=SCALE, validate=True)
        assert guarded.to_dict() == plain.to_dict()
        assert guarded.stats["events"] == plain.stats["events"]

    def test_heap_kernel_identical_under_guard(self, monkeypatch):
        plain = run_case("case1", scheme="CCFIT", time_scale=SCALE)
        monkeypatch.setenv("REPRO_SIM_KERNEL", "heap")
        guarded = run_case("case1", scheme="CCFIT", time_scale=SCALE, validate=True)
        assert guarded.to_dict() == plain.to_dict()

    def test_guard_actually_ran(self):
        fabric = tiny_fabric()
        fabric.run(until=500_000.0)
        assert fabric.guard.checks >= 5


# ---------------------------------------------------------------------------
# tamper detection — each corruption trips the matching check
# ---------------------------------------------------------------------------
class TestTamperDetection:
    def test_packet_conservation(self):
        fabric = tiny_fabric()
        fabric.nodes[0].packets_generated += 1
        with pytest.raises(InvariantViolation, match="packet conservation"):
            fabric.guard.check_all()

    def test_credit_imbalance(self):
        fabric = tiny_fabric()
        fabric.switches[0].input_ports[0].pool.reserve(64)
        with pytest.raises(InvariantViolation, match="credit imbalance"):
            fabric.guard.check_all()

    def test_wire_byte_counters(self):
        fabric = tiny_fabric()
        fabric.links[0].bytes_received += 100
        with pytest.raises(InvariantViolation, match="received more"):
            fabric.guard.check_all()

    def test_ccti_out_of_bounds(self):
        fabric = tiny_fabric("CCFIT")
        fabric.nodes[0].throttle._ccti[1] = 999
        with pytest.raises(InvariantViolation, match="CCTI"):
            fabric.guard.check_all()

    def test_ccti_without_live_timer(self):
        fabric = tiny_fabric("CCFIT")
        fabric.nodes[0].throttle._ccti[1] = 2  # raised, but no timer armed
        with pytest.raises(InvariantViolation, match="no live"):
            fabric.guard.check_all()

    def test_cam_leak(self):
        fabric = tiny_fabric("CCFIT")
        scheme = fabric.switches[0].input_ports[0].scheme
        scheme.cam.allocations += 1  # a CFQ allocated but never freed
        with pytest.raises(InvariantViolation, match="alloc"):
            fabric.guard.check_all()

    def test_queue_byte_drift(self):
        fabric = tiny_fabric()
        q = fabric.switches[0].input_ports[0].scheme.queues()[0]
        q.bytes += 7
        with pytest.raises(InvariantViolation):
            fabric.guard.check_all()

    def test_violations_are_collected_not_first_only(self):
        fabric = tiny_fabric()
        fabric.nodes[0].packets_generated += 1
        fabric.links[0].bytes_received += 100
        with pytest.raises(InvariantViolation) as exc:
            fabric.guard.check_all()
        assert len(exc.value.violations) >= 2
        assert "now" in exc.value.dump


# ---------------------------------------------------------------------------
# the no-progress watchdog
# ---------------------------------------------------------------------------
def strand_packet(fabric):
    """Plant a queued packet with no event to ever move it (a synthetic
    dead network that still satisfies every conservation identity)."""
    node = fabric.nodes[0]
    node.advoqs[1].push(Packet(src=0, dst=1, size=2048, flow="F0"))
    node.packets_generated += 1


class TestWatchdog:
    def test_deadlock_detected_immediately(self):
        fabric = tiny_fabric()
        strand_packet(fabric)
        with pytest.raises(StallError) as exc:
            fabric.run(until=10e6)
        err = exc.value
        assert err.kind == "deadlock"
        assert "1 packet(s) buffered" in str(err)
        # the run stopped at the first check, not after 10 ms of nothing
        assert fabric.sim.now <= 200_000.0

    def test_livelock_detected_as_stall(self):
        fabric = tiny_fabric()
        strand_packet(fabric)

        def tick():  # events keep firing, packets never move
            fabric.sim.schedule_in(500.0, tick)

        fabric.sim.schedule_in(500.0, tick)
        fabric.guard = FabricGuard(
            fabric, GuardConfig(check_interval=1_000.0, stall_checks=3)
        )
        with pytest.raises(StallError) as exc:
            fabric.run(until=10e6)
        assert exc.value.kind == "stall"
        assert "tick" in str(exc.value)  # the histogram names the culprit

    def test_dump_is_structured_and_json_safe(self):
        fabric = tiny_fabric()
        strand_packet(fabric)
        with pytest.raises(StallError) as exc:
            fabric.run(until=10e6)
        dump = exc.value.dump
        for key in ("now", "pending_events", "event_histogram", "stats",
                    "in_flight_packets", "switches", "nodes"):
            assert key in dump
        assert dump["in_flight_packets"] == 1
        node0 = dump["nodes"][0]
        assert node0["advoq_backlog"]["1"]["packets"] == 1
        json.dumps(dump)  # must serialize for the failure manifest

    def test_healthy_run_never_trips(self):
        fabric = tiny_fabric()
        fabric.run(until=1e6)  # no traffic, no packets, no stall
        assert fabric.guard.checks > 0
