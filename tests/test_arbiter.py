"""Unit tests for the iSlip arbiter."""

from collections import Counter

import pytest

from repro.network.arbiter import ISlip, RoundRobin


def assert_valid_matching(requests, match):
    outs = list(match.values())
    assert len(outs) == len(set(outs)), "output matched twice"
    for inp, out in match.items():
        assert out in requests[inp], "granted an unrequested output"


class TestISlipLrg:
    def test_single_request_granted(self):
        arb = ISlip(4, 4)
        assert arb.match({2: [3]}) == {2: 3}

    def test_empty_requests(self):
        arb = ISlip(4, 4)
        assert arb.match({}) == {}
        assert arb.match({1: []}) == {}

    def test_valid_matching_under_contention(self):
        arb = ISlip(4, 4)
        requests = {0: [0, 1], 1: [0, 1], 2: [0], 3: [1]}
        m = arb.match(requests)
        assert_valid_matching(requests, m)
        assert len(m) == 2  # both outputs used

    def test_two_iterations_fill_the_matching(self):
        # input 0 wants both outputs; inputs 1 wants only output 0.
        # After iteration 1 grants collide, iteration 2 must pair the rest.
        arb = ISlip(2, 2, iterations=2)
        m = arb.match({0: [0, 1], 1: [0]})
        assert len(m) == 2

    def test_long_run_fairness_on_hot_output(self):
        """Three inputs permanently requesting one output each get ~1/3
        of the grants — the inter-port fairness of §IV-C."""
        arb = ISlip(4, 4)
        wins = Counter()
        for _ in range(900):
            m = arb.match({0: [2], 1: [2], 3: [2]})
            wins[next(iter(m))] += 1
        assert wins[0] == wins[1] == wins[3] == 300

    def test_lrg_immune_to_interleaved_pointer_capture(self):
        """The pathology that starves pointer-RR: an interleaving
        request pattern where input 1 and 2 contend only every other
        round, with input 0 served in between."""
        lrg = ISlip(3, 1, mode="lrg")
        wins = Counter()
        for _ in range(200):
            m = lrg.match({0: [0]})           # interleaved solo grant
            m = lrg.match({1: [0], 2: [0]})   # the contested slot
            wins[next(iter(m))] += 1
        assert wins[1] == wins[2] == 100

    def test_pointer_mode_shows_capture(self):
        """Classic pointers starve input 2 under the same pattern —
        kept as the documented ablation behaviour."""
        ptr = ISlip(3, 1, mode="pointer")
        wins = Counter()
        for _ in range(200):
            ptr.match({0: [0]})
            m = ptr.match({1: [0], 2: [0]})
            wins[next(iter(m))] += 1
        assert wins[1] == 200 and wins[2] == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ISlip(0, 4)
        with pytest.raises(ValueError):
            ISlip(4, 4, iterations=0)
        with pytest.raises(ValueError):
            ISlip(4, 4, mode="bogus")


class TestRoundRobin:
    def test_valid_matching(self):
        arb = RoundRobin(4, 4)
        requests = {0: [0, 1], 1: [0], 2: [1]}
        m = arb.match(requests)
        assert_valid_matching(requests, m)

    def test_rotates_over_requesters(self):
        arb = RoundRobin(3, 1)
        wins = Counter()
        for _ in range(300):
            m = arb.match({0: [0], 1: [0], 2: [0]})
            wins[next(iter(m))] += 1
        assert wins[0] == wins[1] == wins[2] == 100
