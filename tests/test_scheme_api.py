"""The pluggable congestion-control scheme architecture.

Covers the public extension surface the refactor introduced: the
``register_scheme`` registry, the ``CongestionControlScheme`` base
hooks, the policy objects on :class:`SchemeSpec`, and the bundled
RCM scheme (built *entirely* from that public API) — unit level and
end-to-end under the invariant guard.
"""

import pytest

from repro.core.ccfit import (
    SCHEMES,
    SchemeSpec,
    get_scheme,
    oneq_queues,
    register_scheme,
    scheme_names,
    scheme_params,
)
from repro.core.params import CCParams
from repro.core.scheme import DETECT_NONE, DETECT_ROOT_CFQ, DETECT_VOQ_OCCUPANCY
from repro.network.fabric import build_fabric
from repro.network.packet import CfqStop
from repro.network.topology import config1_adhoc, k_ary_n_tree
from repro.schemes.rcm import PEAK_RATE, QueueDepthMarking, RcmGate
from repro.sim.engine import Simulator
from repro.traffic.flows import FlowSpec, attach_traffic


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def _spec(self, name="__test__"):
        return SchemeSpec(name, oneq_queues(), "fifo", description="test-only")

    def test_register_and_get(self):
        spec = self._spec()
        try:
            assert register_scheme(spec) is spec
            assert get_scheme("__test__") is spec
            assert "__test__" in scheme_names()
        finally:
            SCHEMES.pop("__test__", None)

    def test_duplicate_rejected_unless_replace(self):
        try:
            register_scheme(self._spec())
            with pytest.raises(ValueError, match="already registered"):
                register_scheme(self._spec())
            replacement = self._spec()
            assert register_scheme(replacement, replace=True) is replacement
            assert get_scheme("__test__") is replacement
        finally:
            SCHEMES.pop("__test__", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_scheme(self._spec(name=""))

    def test_bad_staging_rejected(self):
        with pytest.raises(ValueError, match="staging"):
            register_scheme(SchemeSpec("__bad__", oneq_queues(), "warp"))
        assert "__bad__" not in SCHEMES

    def test_unknown_scheme_error_lists_names(self):
        with pytest.raises(KeyError, match="RCM"):
            get_scheme("QUIC")

    def test_paper_presets_present_plus_rcm(self):
        assert set(scheme_names()) >= {
            "1Q", "VOQsw", "DBBM", "VOQnet", "FBICM", "ITh", "CCFIT", "RCM",
        }

    def test_preset_policies(self):
        """The spec booleans of the old architecture are now derived
        from the composable policy objects."""
        ith, ccfit, oneq = get_scheme("ITh"), get_scheme("CCFIT"), get_scheme("1Q")
        assert ith.detection is DETECT_VOQ_OCCUPANCY and ith.throttling
        assert ccfit.detection is DETECT_ROOT_CFQ and ccfit.marking is not None
        assert oneq.detection is DETECT_NONE
        assert not oneq.throttling and oneq.marking is None

    def test_scheme_params_optional_base(self):
        """Satellite: ``base`` is genuinely optional and typed so."""
        spec, p = scheme_params("CCFIT")
        assert spec is get_scheme("CCFIT")
        assert isinstance(p, CCParams)
        base = CCParams(num_cfqs=4)
        _, p2 = scheme_params("FBICM", base)
        assert p2.num_cfqs == 4


# ---------------------------------------------------------------------------
# base-class hooks
# ---------------------------------------------------------------------------
class TestBaseHooks:
    def test_defaults_on_plain_scheme(self):
        """A scheme without CAM machinery inherits safe no-op hooks."""
        fab = build_fabric(config1_adhoc(), scheme="1Q", seed=0)
        scheme = fab.switches[0].input_ports[0].scheme
        scheme.on_control_message(CfqStop(destination=4, tree_id=0))  # no-op
        assert scheme.holds_destination(4) is False
        assert scheme.allocated_cfqs() == 0
        assert scheme.cam_alloc_failures() == 0
        assert scheme.snapshot() == {"queues": {}}
        scheme.audit()  # empty queues audit clean

    def test_isolation_scheme_overrides(self):
        fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=0)
        scheme = fab.switches[0].input_ports[0].scheme
        snap = scheme.snapshot()
        assert "cam" in snap and snap["cam"] == []  # idle CAM, but reported


# ---------------------------------------------------------------------------
# QueueDepthMarking (RCM's ECN policy)
# ---------------------------------------------------------------------------
class _FakeQueue:
    def __init__(self, nbytes):
        self.bytes = nbytes


class TestQueueDepthMarking:
    def _marker(self, seed=0):
        import numpy as np

        return QueueDepthMarking(CCParams(), np.random.default_rng(seed))

    def test_below_kmin_never_marks(self):
        m = self._marker()
        assert not any(
            m.should_mark(None, _FakeQueue(m.kmin - 1), None) for _ in range(200)
        )

    def test_at_kmax_always_marks(self):
        m = self._marker()
        assert all(
            m.should_mark(None, _FakeQueue(m.kmax), None) for _ in range(200)
        )

    def test_between_marks_probabilistically(self):
        m = self._marker(seed=3)
        mid = (m.kmin + m.kmax) // 2
        hits = sum(m.should_mark(None, _FakeQueue(mid), None) for _ in range(400))
        # expectation is pmax/2 = 0.25 -> 100 of 400; allow wide slack
        assert 40 < hits < 180
        assert m.considered == 400 and m.marked == hits


# ---------------------------------------------------------------------------
# RcmGate (RCM's reaction point)
# ---------------------------------------------------------------------------
class TestRcmGate:
    def _gate(self):
        sim = Simulator()
        params = CCParams()
        gate = RcmGate(sim, params)
        return sim, params, gate

    def test_full_rate_by_default(self):
        _, _, gate = self._gate()
        assert gate.rate(7) == PEAK_RATE
        assert gate.next_allowed(7) == 0.0
        assert gate.throttled_destinations() == []

    def test_becn_multiplicative_decrease(self):
        _, _, gate = self._gate()
        gate.on_becn(7)
        assert gate.rate(7) == PEAK_RATE / 2
        assert gate.becns == 1 and gate.decreases == 1
        gate.audit()  # rate in range, timer live

    def test_becns_coalesced_within_min_interval(self):
        sim, params, gate = self._gate()
        gate.on_becn(7)
        gate.on_becn(7)  # same instant: coalesced, no second decrease
        assert gate.decreases == 1 and gate.rate(7) == PEAK_RATE / 2
        sim.schedule_in(params.becn_min_interval, gate.on_becn, 7)
        sim.run(until=params.becn_min_interval)
        assert gate.decreases == 2 and gate.rate(7) == PEAK_RATE / 4

    def test_pacing_follows_rate(self):
        _, _, gate = self._gate()
        gate.on_becn(7)
        gate.record_injection(7, now=100.0, size=250)
        # next packet no earlier than LTI + size/rate
        assert gate.next_allowed(7) == pytest.approx(100.0 + 250 / (PEAK_RATE / 2))

    def test_recovery_restores_full_rate_and_drops_state(self):
        sim, params, gate = self._gate()
        gate.on_becn(7)
        sim.run(until=20 * params.ccti_timer)
        assert gate.rate(7) == PEAK_RATE
        assert gate.throttled_destinations() == []
        assert gate.snapshot() == {}
        gate.audit()

    def test_audit_catches_lost_recovery_timer(self):
        _, _, gate = self._gate()
        gate.on_becn(7)
        gate._timers[7].cancel()  # simulate the bug the guard must catch
        with pytest.raises(RuntimeError, match="never recover"):
            gate.audit()


# ---------------------------------------------------------------------------
# RCM end-to-end: registered scheme runs the full stack under the guard
# ---------------------------------------------------------------------------
class TestRcmEndToEnd:
    def test_hotspot_run_under_guard(self):
        fab = build_fabric(k_ary_n_tree(2, 3), scheme="RCM", seed=1, validate=True)
        end = 400_000.0
        attach_traffic(
            fab,
            flows=[
                FlowSpec(f"h{s}", src=s, dst=7, rate=2.5, end=end)
                for s in (0, 1, 2, 3)
            ],
        )
        fab.run(until=end)
        fab.run(until=fab.sim.now + 5_000_000.0)
        assert fab.in_flight_packets() == 0
        stats = fab.stats()
        assert stats["delivered_packets"] == stats["generated_packets"]
        # the congestion loop actually closed: marks flowed, rates moved
        assert sum(sw.fecn_marked for sw in fab.switches) > 0
        assert sum(n.throttle.becns for n in fab.nodes) > 0
        assert fab.guard is not None and fab.guard.checks > 0

    def test_rcm_in_cost_table_and_cli(self, capsys):
        from repro.cli import main
        from repro.experiments.costs import cost_table

        rows = cost_table(k_ary_n_tree(2, 3))
        assert any(r["scheme"] == "RCM" for r in rows)
        assert main(["--scale", "0.02", "case", "1", "--scheme", "RCM"]) == 0
        assert "RCM" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# acceptance: the device layer is scheme-agnostic
# ---------------------------------------------------------------------------
def test_device_layer_has_no_scheme_isinstance():
    """switch.py / endnode.py / fabric.py must not special-case any
    concrete scheme class — all dispatch goes through the hook API."""
    from pathlib import Path

    root = Path(__file__).parent.parent / "src" / "repro" / "network"
    for fname in ("switch.py", "endnode.py", "fabric.py"):
        text = (root / fname).read_text()
        assert "isinstance" not in text or "NfqCfqScheme" not in [
            tok
            for line in text.splitlines()
            if "isinstance" in line
            for tok in line.replace("(", " ").replace(",", " ").split()
        ], f"{fname} still type-switches on a concrete scheme"
