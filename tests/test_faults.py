"""The fault-injection subsystem (repro.sim.faults, docs/faults.md).

Covers the FaultPlan spec grammar and its serialization/scaling
contract, injector validation and switch-target expansion, the guard's
expected-loss ledger across a link flap (both scalar kernels), the
stall watchdog's fault snapshot, byte-identity of fault-free runs,
cache-key semantics, the routing reaction (adaptive rides out a kill
that makes det drop at the source; the delayed deterministic re-route
recovers), the journal torn-line warning, error-context satellites and
the batch-kernel fallback.
"""

import json
import warnings

import pytest

from repro import build_fabric, k_ary_n_tree
from repro.experiments.runner import run_case
from repro.experiments.sweep import SimJob
from repro.network.link import LinkError
from repro.network.packet import Packet
from repro.network.topology import TopologyError
from repro.sim.engine import Simulator
from repro.sim.faults import (
    DEFAULT_REROUTE_DELAY,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
)
from repro.sim.guard import GuardConfig, StallError
from repro.traffic.flows import FlowSpec, attach_traffic

SCALE = 0.05

#: k_ary_n_tree(2, 2): n0/n1 under s0, n2/n3 under s1; two root
#: switches s2/s3 reachable through uplink ports 2 and 3.
UPLINK = "s0p2->s2p0"
DOWNLINK = "s1p0->n2"
#: Config #1 (the ad-hoc 7-node Fig. 5 network): its single
#: inter-switch link, used by the case1-based tests.
CASE1_LINK = "s0p3->s1p4"


def tiny_fabric(faults=None, routing="det", validate=None, kernel=None, scheme="1Q"):
    sim = Simulator(kernel=kernel) if kernel is not None else None
    return build_fabric(
        k_ary_n_tree(2, 2), scheme=scheme, seed=1, sim=sim,
        validate=validate, routing=routing, faults=faults,
    )


# ---------------------------------------------------------------------------
# plan grammar + serialization
# ---------------------------------------------------------------------------
class TestPlanParsing:
    def test_basic_clause(self):
        plan = FaultPlan.parse("down:s0p4->s16p0@1.2ms")
        assert plan.events == (
            FaultEvent(time=1.2e6, action="down", target="s0p4->s16p0"),
        )
        assert plan.reroute_delay == DEFAULT_REROUTE_DELAY

    @pytest.mark.parametrize(
        "text,ns", [("1.5ms", 1.5e6), ("60us", 60e3), ("5000ns", 5000.0), ("250", 250.0)]
    )
    def test_time_suffixes(self, text, ns):
        assert FaultPlan.parse(f"kill:x@{text}").events[0].time == ns

    def test_seed_and_reroute_clauses(self):
        plan = FaultPlan.parse("seed=7;reroute=none;kill:x@1ms")
        assert plan.seed == 7 and plan.reroute_delay is None
        assert FaultPlan.parse("reroute=50us;down:x@0").reroute_delay == 50e3

    def test_degrade_options(self):
        ev = FaultPlan.parse("degrade:x@2ms:bw=0.25,delay=10us,drop=0.01").events[0]
        assert ev.bandwidth_factor == 0.25
        assert ev.extra_delay == 10e3
        assert ev.drop_prob == 0.01

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:x@1ms",          # unknown action
            "down:x",                 # missing @time
            "down:@1ms",              # missing target
            "down:x@1ms:bw=0.5",      # options on a non-degrade clause
            "degrade:x@1ms:rate=2",   # unknown degrade option
            "seed=abc;down:x@1ms",    # bad seed
            "reroute=1ms",            # no fault events
            "",                       # empty
            "kill:x@-5",              # negative time
            "degrade:x@1ms:drop=1.5",  # drop_prob out of range
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(spec)

    def test_roundtrip_and_name_excluded_from_dict(self):
        plan = FaultPlan.parse("seed=3;degrade:L@1ms:bw=0.5,drop=0.1", name="scenario")
        data = plan.to_dict()
        assert "name" not in json.dumps(data)
        back = FaultPlan.from_dict(json.loads(json.dumps(data)))
        assert back.to_dict() == data
        assert plan.label() == "scenario"
        assert FaultPlan.parse("kill:x@1ms").label() == "1ev"

    def test_scaled(self):
        plan = FaultPlan.parse("degrade:L@1ms:delay=10us;up:L@2ms")
        scaled = plan.scaled(0.1)
        assert scaled.events[0].time == pytest.approx(1e5)
        assert scaled.events[0].extra_delay == pytest.approx(1e3)
        assert scaled.events[1].time == pytest.approx(2e5)
        assert scaled.reroute_delay == pytest.approx(DEFAULT_REROUTE_DELAY * 0.1)
        assert plan.scaled(1.0) is plan
        with pytest.raises(FaultPlanError):
            plan.scaled(0.0)


# ---------------------------------------------------------------------------
# injector validation + targeting
# ---------------------------------------------------------------------------
class TestInjectorTargets:
    def test_unknown_target_rejected_at_build_time(self):
        with pytest.raises(FaultPlanError) as exc_info:
            tiny_fabric(faults=FaultPlan.parse("down:s9p9->s8p8@1ms"))
        assert "s9p9->s8p8" in str(exc_info.value)

    def test_switch_target_expands_to_attached_links(self):
        fabric = tiny_fabric(faults=FaultPlan.parse("down:s0@10us"))
        fabric.run(until=20_000)
        snap = fabric.faults.snapshot()
        # down/drain hits the switch's incoming links only
        assert set(snap["links_down"]) == {"n0->s0p0", "n1->s0p1", "s2p0->s0p2", "s3p0->s0p3"}

    def test_double_arm_rejected(self):
        fabric = tiny_fabric(faults=FaultPlan.parse("down:%s@10us" % UPLINK))
        with pytest.raises(RuntimeError):
            fabric.faults.arm()

    def test_no_plan_leaves_fabric_unarmed(self):
        fabric = tiny_fabric()
        assert fabric.faults is None
        assert all(lk._wire is None for lk in fabric.links)


# ---------------------------------------------------------------------------
# guard ledger across a flap (satellite: both scalar kernels)
# ---------------------------------------------------------------------------
class TestGuardLedger:
    @pytest.mark.parametrize("kernel", ["bucket", "heap"])
    def test_flap_conserves_packets_under_guard(self, kernel):
        plan = FaultPlan.parse(f"down:{UPLINK}@30us;up:{UPLINK}@60us;reroute=20us")
        fabric = tiny_fabric(faults=plan, validate=True, kernel=kernel)
        attach_traffic(fabric, flows=[
            FlowSpec("f02", src=0, dst=2, rate=2.5),
            FlowSpec("f13", src=1, dst=3, rate=2.5),
        ])
        fabric.run(until=200_000)  # guard sweeps + flap + recovery
        assert fabric.guard is not None and fabric.guard.checks > 0
        snap = fabric.faults.snapshot()
        lost = snap["wire_drops"] + snap["source_drops"]
        generated = sum(n.packets_generated for n in fabric.nodes)
        delivered = fabric.collector.delivered_packets
        assert generated >= delivered + lost
        # the flap closed: nothing stays down and traffic recovered
        assert snap["links_down"] == []
        assert delivered > 0

    def test_wire_drop_reconciles_credits(self):
        # packets on the wire when the link fails are dropped and their
        # downstream reservation cancelled; the guard would flag any
        # credit leak, so just run a kill under validation.
        plan = FaultPlan.parse(f"kill:{UPLINK}@25us")
        fabric = tiny_fabric(faults=plan, validate=True)
        attach_traffic(fabric, flows=[FlowSpec("f02", src=0, dst=2, rate=2.5)])
        fabric.run(until=150_000)
        snap = fabric.faults.snapshot()
        assert snap["killed"] == [UPLINK]
        assert fabric.guard.checks > 0


# ---------------------------------------------------------------------------
# stall watchdog (satellite: fault snapshot in the dump)
# ---------------------------------------------------------------------------
class TestStallDump:
    def test_stall_dump_contains_fault_snapshot(self):
        # sever the only downlink to n2 with re-routing disabled: the
        # packets already buffered for n2 can never drain -> stall, and
        # the dump must point straight at the fault.
        plan = FaultPlan.parse(f"kill:{DOWNLINK}@30us;reroute=none")
        fabric = tiny_fabric(faults=plan, validate=True)
        fabric.guard.config = GuardConfig(check_interval=10_000.0, stall_checks=3)
        attach_traffic(fabric, flows=[FlowSpec("f02", src=0, dst=2, rate=2.5)])
        with pytest.raises(StallError) as exc_info:
            fabric.run(until=2_000_000)
        dump = exc_info.value.dump
        assert "faults" in dump
        assert dump["faults"]["killed"] == [DOWNLINK]
        # every source is doomed for the partitioned destination
        assert all("2" in doomed or 2 in doomed
                   for doomed in dump["faults"]["doomed"].values())


# ---------------------------------------------------------------------------
# byte-identity, determinism and cache keys
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_no_plan_results_have_no_faults_key(self):
        res = run_case("case1", scheme="CCFIT", time_scale=SCALE, seed=1)
        assert res.faults is None and "faults" not in res.to_dict()

    def test_fixed_plan_is_deterministic(self):
        kwargs = dict(scheme="CCFIT", time_scale=SCALE, seed=1,
                      faults=f"seed=5;degrade:{CASE1_LINK}@0:drop=0.02")
        a = run_case("case1", **kwargs).to_dict()
        b = run_case("case1", **kwargs).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["faults"]["plan"]["seed"] == 5

    def test_plan_splits_cache_key_but_name_does_not(self):
        base = SimJob("case1", "CCFIT")
        plan = FaultPlan.parse("kill:x@1ms", name="a")
        same_content = FaultPlan.parse("kill:x@1ms", name="b")
        other = FaultPlan.parse("kill:x@2ms")
        assert SimJob("case1", "CCFIT", faults=plan).key() != base.key()
        assert (SimJob("case1", "CCFIT", faults=plan).key()
                == SimJob("case1", "CCFIT", faults=same_content).key())
        assert (SimJob("case1", "CCFIT", faults=plan).key()
                != SimJob("case1", "CCFIT", faults=other).key())

    def test_old_pickles_default_to_no_faults(self):
        job = SimJob("case1", "CCFIT")
        state = dict(job.__dict__)
        state.pop("faults", None)
        revived = SimJob.__new__(SimJob)
        revived.__dict__.update(state)
        assert revived.faults is None

    def test_label_carries_plan(self):
        plan = FaultPlan.parse("kill:x@1ms", name="kill")
        assert SimJob("case1", "CCFIT", faults=plan).label() == "case1/CCFIT+kill"


# ---------------------------------------------------------------------------
# routing reaction
# ---------------------------------------------------------------------------
class TestRoutingReaction:
    def _run(self, routing, reroute):
        plan = FaultPlan.parse(f"kill:{UPLINK}@20us;reroute={reroute}")
        fabric = tiny_fabric(faults=plan, routing=routing)
        attach_traffic(fabric, flows=[FlowSpec("f02", src=0, dst=2, rate=2.5)])
        fabric.run(until=300_000)
        return fabric

    def test_adaptive_rides_out_kill_that_makes_det_drop(self):
        det = self._run("det", "none")
        adaptive = self._run("adaptive", "none")
        det_snap = det.faults.snapshot()
        ad_snap = adaptive.faults.snapshot()
        # det's only route for dst 2 died: traffic degrades to source drops
        assert det_snap["source_drops"] > 0
        # adaptive excludes the dead uplink and keeps delivering
        assert ad_snap["source_drops"] == 0
        assert (adaptive.collector.delivered_packets
                > det.collector.delivered_packets)

    def test_det_reroute_recovers_table_and_traffic(self):
        fabric = self._run("det", "30us")
        # s0's route for dst 2 moved off the killed port 2
        assert fabric.switches[0].policy.table.lookup(2) == 3
        snap = fabric.faults.snapshot()
        assert any(e["action"] == "reroute" for e in snap["applied"])
        # after the re-route no destination stays doomed
        assert snap["doomed"] == {}
        assert fabric.collector.delivered_packets > 0

    def test_windows_pair_down_with_up(self):
        plan = FaultPlan.parse(f"down:{UPLINK}@20us;up:{UPLINK}@50us;kill:{DOWNLINK}@70us")
        fabric = tiny_fabric(faults=plan)
        fabric.run(until=100_000)
        assert fabric.faults.windows() == [(20_000.0, 50_000.0), (70_000.0, None)]


# ---------------------------------------------------------------------------
# degraded links
# ---------------------------------------------------------------------------
class TestDegradedLinks:
    def test_degrade_slows_and_restore_recovers(self):
        plan = FaultPlan.parse(f"degrade:{UPLINK}@1us:bw=0.5,delay=100ns")
        fabric = tiny_fabric(faults=plan)
        lk = next(l for l in fabric.links if l.name == UPLINK)
        bw0, d0 = lk.bandwidth, lk.delay
        fabric.run(until=25_000)
        assert lk.bandwidth == pytest.approx(bw0 * 0.5)
        assert lk.delay == pytest.approx(d0 + 100.0)
        assert fabric.faults.snapshot()["degraded"] == [UPLINK]

        restored = FaultPlan.parse(
            f"degrade:{UPLINK}@1us:bw=0.5,delay=100ns;restore:{UPLINK}@50us"
        )
        fabric2 = tiny_fabric(faults=restored)
        lk2 = next(l for l in fabric2.links if l.name == UPLINK)
        bw0, d0 = lk2.bandwidth, lk2.delay
        fabric2.run(until=60_000)
        assert lk2.bandwidth == pytest.approx(bw0)
        assert lk2.delay == pytest.approx(d0)
        assert fabric2.faults.snapshot()["degraded"] == []

    def test_probabilistic_corruption_drops_are_seeded(self):
        def run(seed):
            plan = FaultPlan.parse(f"seed={seed};degrade:{UPLINK}@0:drop=0.2")
            fabric = tiny_fabric(faults=plan)
            attach_traffic(fabric, flows=[FlowSpec("f02", src=0, dst=2, rate=2.5)])
            fabric.run(until=100_000)
            return fabric.faults.snapshot()["wire_drops"]

        assert run(1) > 0
        assert run(1) == run(1)


# ---------------------------------------------------------------------------
# satellites: error context, journal torn line, batch fallback
# ---------------------------------------------------------------------------
class TestErrorContext:
    def test_link_error_names_endpoints_and_time(self):
        fabric = tiny_fabric(faults=FaultPlan.parse(f"kill:{UPLINK}@10us"))
        fabric.run(until=20_000)
        lk = next(l for l in fabric.links if l.name == UPLINK)
        with pytest.raises(LinkError) as exc_info:
            lk.send(Packet(0, 2, 512, "f"))
        msg = str(exc_info.value)
        assert "failed link" in msg and "tx=" in msg and "rx=" in msg and "t=" in msg

    def test_topology_error_names_switch_and_time(self):
        fabric = tiny_fabric()
        with pytest.raises(TopologyError) as exc_info:
            fabric.switches[0].routing.lookup(99)
        msg = str(exc_info.value)
        assert "99" in msg and "at sw0" in msg and "t=" in msg


class TestJournalTornLine:
    def test_torn_tail_warns_and_reruns(self, tmp_path):
        from repro.experiments.resilience import SweepJournal

        path = tmp_path / "sweep.jsonl"
        good = {"key": "k1", "ok": True, "result": {"x": 1}}
        path.write_text(json.dumps(good) + "\n" + '{"key": "k2", "ok": true, "resu')
        with pytest.warns(RuntimeWarning, match="torn tail"):
            done = SweepJournal(path).load()
        assert set(done) == {"k1"}


class TestBatchFallback:
    def test_batch_kernel_falls_back_to_bucket_with_warning(self):
        spec = f"kill:{CASE1_LINK}@0.5ms"
        with pytest.warns(RuntimeWarning, match="batch"):
            batch = run_case("case1", scheme="1Q", time_scale=SCALE, seed=1,
                             kernel="batch", faults=spec)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bucket = run_case("case1", scheme="1Q", time_scale=SCALE, seed=1,
                              kernel="bucket", faults=spec)
        assert (json.dumps(batch.to_dict(), sort_keys=True)
                == json.dumps(bucket.to_dict(), sort_keys=True))


# ---------------------------------------------------------------------------
# telemetry + experiment surface
# ---------------------------------------------------------------------------
class TestSurfaces:
    def test_telemetry_bundle_carries_fault_state(self):
        from repro.telemetry import TelemetryConfig

        res = run_case("case1", scheme="CCFIT", time_scale=SCALE, seed=1,
                       telemetry=TelemetryConfig(interval=50_000.0),
                       faults=f"down:{CASE1_LINK}@100us;up:{CASE1_LINK}@200us")
        assert "faults" in res.telemetry
        for rec in res.telemetry.get("trees", []):
            assert isinstance(rec["during_fault"], bool)

    def test_fault_resilience_experiment_registered(self):
        from repro.experiments import registry

        exp = registry.get("fault_resilience")
        assert exp.kind == "faults"
        jobs = exp.jobs(schemes=("CCFIT",), routings=("adaptive",))
        # 1 scheme x 1 routing x 4 fault scenarios (incl. the baseline)
        assert len(jobs) == 4
        labels = {j.faults.label() for j in jobs if j.faults is not None}
        assert labels == {"flap", "kill", "degrade"}

    def test_render_fault_matrix(self):
        from repro.experiments.report import render_fault_matrix

        res = run_case("case4", scheme="CCFIT", time_scale=0.02, seed=1,
                       num_trees=1, faults="kill:s0p4->s16p0@1.2ms")
        table = render_fault_matrix({"CCFIT@adaptive+kill": res})
        assert "delivered" in table and "recovery_us" in table
        assert "CCFIT" in table and "kill" in table

    def test_cli_case_prints_faulted_cell(self, capsys):
        """`case`/`trees` must find the result under its faulted key
        (``SCHEME[@routing]+label``), not print nothing."""
        from repro.cli import main

        rc = main(["--scale", "0.02", "--seed", "3",
                   "--faults", f"down:{CASE1_LINK}@1ms;up:{CASE1_LINK}@1.2ms",
                   "case", "1", "--scheme", "ITh"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "delivered_packets" in out

    @pytest.mark.tier2
    def test_fault_resilience_smoke_cell(self, tmp_path):
        """One end-to-end fault_resilience cell through the CLI."""
        from repro.cli import main

        rc = main(["--scale", "0.05", "--seed", "3", "--no-cache",
                   "sweep", "fault_resilience", "--scheme", "CCFIT",
                   "--routing", "adaptive",
                   "--manifest", str(tmp_path / "manifest.json")])
        assert rc == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["failed"] == 0 and manifest["cells"] == 4
