"""Telemetry subsystem tests: ring series, tree-lifecycle tracking,
the sampler's bundle contract (byte-identical results, cache
survival), the exporters, and the quantitative Fig. 8 tree-concurrency
claim (tier 2)."""

import json
import os

import pytest

from repro.core.params import CCParams
from repro.experiments.configs import CONFIG3
from repro.experiments.runner import run_case
from repro.experiments.sweep import SimJob, SweepOptions, run_sweep
from repro.metrics.trace import ProtocolTrace, TraceEvent
from repro.network.fabric import build_fabric
from repro.sim.engine import Simulator
from repro.telemetry import TelemetryConfig, TelemetrySampler, TreeTracker
from repro.telemetry.export import (
    TELEMETRY_FORMATS,
    render_dashboard,
    render_prometheus,
    write_bundle,
    write_jsonl,
)
from repro.telemetry.series import SeriesRing
from repro.traffic.flows import FlowSpec, attach_traffic

SCALE = 0.05


# ----------------------------------------------------------------------
# SeriesRing
# ----------------------------------------------------------------------
class TestSeriesRing:
    def test_rejects_non_positive_capacity(self):
        for bad in (0, -3):
            with pytest.raises(ValueError):
                SeriesRing(bad)

    def test_append_below_capacity(self):
        ring = SeriesRing(4)
        for v in (10, 11, 12):
            ring.append(v)
        assert len(ring) == 3
        assert ring.values() == [10, 11, 12]
        assert ring.dropped == 0
        assert ring.last() == 12

    def test_overwrite_counts_evictions_and_keeps_order(self):
        ring = SeriesRing(5)
        for v in range(7):
            ring.append(v)
        assert len(ring) == 5
        assert ring.values() == [2, 3, 4, 5, 6]
        assert ring.dropped == 2
        assert ring.last() == 6
        assert list(ring) == ring.values()

    def test_last_on_empty_raises(self):
        with pytest.raises(IndexError):
            SeriesRing(3).last()


# ----------------------------------------------------------------------
# TreeTracker (synthetic event streams)
# ----------------------------------------------------------------------
def ev(time, kind, where="sw0.in0", dest=4, detail=""):
    return TraceEvent(time=time, kind=kind, where=where, dest=dest, detail=detail)


class TestTreeTracker:
    def test_single_tree_lifecycle(self):
        tt = TreeTracker(num_cfqs=2).consume(
            [
                ev(100.0, "detect", "sw1.in2"),
                ev(150.0, "adopt", "sw0.in1"),
                ev(160.0, "stop", "sw0.in1"),
                ev(300.0, "dealloc", "sw0.in1"),
                ev(400.0, "dealloc", "sw1.in2"),
            ]
        )
        (rec,) = tt.records()
        assert rec.dest == 4
        assert rec.root == "sw1.in2"
        assert rec.birth == 100.0
        assert rec.drain == 400.0
        assert rec.lifetime() == 300.0
        assert rec.peak_extent == 2
        assert rec.peak_time == 150.0
        assert rec.cfqs_consumed == 2
        assert rec.stops == 1
        assert tt.live_trees() == 0

    def test_reformed_congestion_is_a_new_record(self):
        tt = TreeTracker().consume(
            [
                ev(100.0, "detect"),
                ev(200.0, "dealloc"),
                ev(500.0, "detect"),
            ]
        )
        recs = tt.records()
        assert len(recs) == 2
        assert recs[0].drain == 200.0
        assert recs[1].drain is None
        assert tt.live_trees() == 1
        assert tt.stats()["trees"] == 2

    def test_cam_full_attribution(self):
        tt = TreeTracker().consume(
            [
                ev(50.0, "cam-full", dest=9),  # no tree live for 9 yet
                ev(60.0, "cam-full", dest=None),  # saturated fast path
                ev(100.0, "detect"),
                ev(120.0, "cam-full"),  # attributed to dest 4's tree
            ]
        )
        (rec,) = tt.records()
        assert rec.cam_full == 1
        assert tt.unattributed_cam_full == 2
        assert tt.stats()["cam_full_events"] == 3

    def test_dealloc_before_any_alloc_is_ignored(self):
        tt = TreeTracker().consume([ev(10.0, "dealloc")])
        assert tt.records() == []
        assert tt.concurrency == []

    def test_concurrency_step_series(self):
        tt = TreeTracker(num_cfqs=2).consume(
            [
                ev(0.0, "detect", dest=1),
                ev(100.0, "detect", dest=2),
                ev(200.0, "dealloc", dest=1),
                ev(400.0, "dealloc", dest=2),
            ]
        )
        assert tt.concurrency == [(0.0, 1), (100.0, 2), (200.0, 1), (400.0, 0)]
        assert tt.max_concurrent_trees() == 2
        # 1 tree for [0,100), 2 for [100,200), 1 for [200,400): mean 1.25
        assert tt.mean_concurrent_trees() == pytest.approx(1.25)
        stats = tt.stats()
        assert stats["max_concurrent_trees"] == 2
        assert stats["num_cfqs"] == 2
        assert stats["mean_lifetime"] == pytest.approx(250.0)

    def test_stats_on_empty_tracker(self):
        stats = TreeTracker(num_cfqs=2).stats()
        assert stats["trees"] == 0
        assert stats["max_concurrent_trees"] == 0
        assert stats["mean_concurrent_trees"] == 0.0
        assert stats["mean_lifetime"] is None


# ----------------------------------------------------------------------
# Sampler + bundle
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sampled():
    """One short case-1 run with telemetry attached (shared by the
    bundle/exporter tests)."""
    return run_case(
        "case1",
        scheme="CCFIT",
        time_scale=SCALE,
        seed=1,
        telemetry=TelemetryConfig(interval=20_000.0),
    )


class TestSampler:
    def test_bundle_schema_and_json_round_trip(self, sampled):
        bundle = sampled.telemetry
        assert bundle is not None
        assert bundle["schema"] == "repro.telemetry/1"
        assert bundle["ticks"] > 0
        assert bundle["dropped"] == 0
        assert len(bundle["times"]) == bundle["ticks"]
        assert bundle["times"] == sorted(bundle["times"])
        assert len(bundle["network"]) == bundle["ticks"]
        for key in ("delivered_bytes", "allocated_cfqs", "cam_alloc_failures",
                    "buffered_bytes", "stop_lines", "advoq_bytes",
                    "throttled_destinations"):
            assert key in bundle["network"][-1]
        assert bundle["ports"] and bundle["nodes"] and bundle["links"]
        assert "tree_stats" in bundle and "trees" in bundle
        # JSON-safe by contract: the dict round-trips exactly
        assert json.loads(json.dumps(bundle)) == bundle

    def test_dropped_counts_ring_evictions(self):
        fab = build_fabric(CONFIG3.topo(), scheme="1Q", seed=1)
        cfg = TelemetryConfig(interval=1_000.0, series_capacity=8)
        sampler = TelemetrySampler(fab, config=cfg).start()
        fab.run(until=20_000.0)
        assert sampler.ticks == 20
        assert len(sampler.times) == 8
        assert sampler.times.dropped == 12
        assert sampler.dropped >= 12
        assert sampler.bundle()["dropped"] == sampler.dropped

    def test_double_start_rejected(self):
        fab = build_fabric(CONFIG3.topo(), scheme="1Q", seed=1)
        sampler = TelemetrySampler(fab).start()
        with pytest.raises(RuntimeError):
            sampler.start()

    @pytest.mark.parametrize("kernel", ["bucket", "heap"])
    def test_results_byte_identical_with_telemetry(self, kernel):
        """The acceptance gate: attaching the sampler changes no result
        field on either kernel — the bundle is purely additive."""
        def run(telemetry):
            return run_case(
                "case1",
                scheme="CCFIT",
                time_scale=SCALE,
                seed=1,
                sim_factory=lambda: Simulator(kernel=kernel),
                telemetry=telemetry,
            )

        off = run(None).to_dict()
        on = run(TelemetryConfig(interval=50_000.0)).to_dict()
        assert on.pop("telemetry") is not None
        assert "telemetry" not in off
        assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)

    def test_bundle_survives_the_result_cache(self, tmp_path):
        job = SimJob(
            case="case1",
            scheme="1Q",
            time_scale=SCALE,
            seed=1,
            telemetry=TelemetryConfig(interval=50_000.0),
        )
        opts = SweepOptions(cache_dir=str(tmp_path))
        first = run_sweep([job], options=opts)
        second = run_sweep([job], options=opts)
        assert (first.misses, second.hits) == (1, 1)
        assert second.results[0].telemetry is not None
        assert second.results[0].telemetry == first.results[0].telemetry

    def test_telemetry_config_changes_cache_key(self):
        base = SimJob(case="case1", scheme="1Q", time_scale=SCALE, seed=1)
        tele = SimJob(
            case="case1",
            scheme="1Q",
            time_scale=SCALE,
            seed=1,
            telemetry=TelemetryConfig(),
        )
        assert "telemetry" not in base.payload()
        assert base.key() != tele.key()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_jsonl_is_parseable_and_complete(self, sampled, tmp_path):
        bundle = sampled.telemetry
        path = write_jsonl(bundle, tmp_path / "t.jsonl")
        records = [json.loads(line) for line in open(path)]
        assert records[0]["record"] == "header"
        assert records[0]["schema"] == bundle["schema"]
        samples = [r for r in records if r["record"] == "sample"]
        assert len(samples) == bundle["ticks"]
        assert [r["t"] for r in samples] == bundle["times"]
        trees = [r for r in records if r["record"] == "tree"]
        assert len(trees) == len(bundle["trees"])

    def test_prometheus_exposition(self, sampled):
        text = render_prometheus(sampled.telemetry)
        assert "# HELP" in text and "# TYPE" in text
        for name in (
            "repro_telemetry_samples_total",
            "repro_delivered_bytes_total",
            "repro_port_queued_bytes",
            "repro_congestion_trees_total",
        ):
            assert name in text
        assert text.endswith("\n")

    def test_dashboard_is_self_contained_html(self, sampled):
        html = render_dashboard(sampled.telemetry, title="case1 CCFIT")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "case1 CCFIT" in html
        assert "Congestion trees" in html

    def test_write_bundle_all_formats(self, sampled, tmp_path):
        written = write_bundle(sampled.telemetry, tmp_path, fmt="all")
        assert len(written) == 3
        names = {os.path.basename(p) for p in written}
        assert names == {"telemetry.jsonl", "metrics.prom", "dashboard.html"}
        for p in written:
            assert os.path.getsize(p) > 0

    def test_unknown_format_raises_keyerror(self, sampled, tmp_path):
        with pytest.raises(KeyError):
            write_bundle(sampled.telemetry, tmp_path, fmt="jsnl")
        assert "jsnl" not in TELEMETRY_FORMATS


# ----------------------------------------------------------------------
# The Fig. 8 claim, quantitatively (tier 2 — two Config #3 runs)
# ----------------------------------------------------------------------
@pytest.mark.tier2
def test_tree_tracker_reproduces_fig8_concurrency_claim():
    """Three co-located incast trees on Config #3 against a 2-CFQ pool:
    FBICM holds more simultaneous trees than it has CFQs for the whole
    run (and bleeds CAM-full events), while CCFIT's throttling drains
    trees — fewer simultaneous on average, more total lifecycles
    (generations close and re-form), fewer CAM-full events."""
    dests = [5, 21, 37]
    params = CCParams().with_overrides(
        cfq_high_dwell=5_000.0, cfq_rearm_window=5_000.0
    )
    end = 400_000.0
    stats, becns = {}, {}
    for scheme in ("FBICM", "CCFIT"):
        fab = build_fabric(CONFIG3.topo(), scheme=scheme, params=params, seed=1)
        trace = ProtocolTrace(limit=400_000).attach(fab)
        flows = []
        # three senders per leaf switch, one per hot destination, so
        # every source uplink carries flows of all three trees
        for leaf in (11, 12, 13, 14):
            base = leaf * 4
            for src, d in zip((base, base + 2, base + 3), dests):
                flows.append(
                    FlowSpec(f"H{src}d{d}", src=src, dst=d, rate=2.5,
                             start=20_000.0, end=end)
                )
        attach_traffic(fab, flows=flows)
        fab.run(until=end + 200_000.0)
        stats[scheme] = TreeTracker(num_cfqs=2).consume(trace.events).stats()
        becns[scheme] = fab.stats()["becns_received"]

    fb, cc = stats["FBICM"], stats["CCFIT"]
    # FBICM: the three trees outnumber the CFQ pool and never drain.
    assert fb["max_concurrent_trees"] == 3 > fb["num_cfqs"]
    assert fb["live_at_end"] == 3
    assert fb["mean_lifetime"] is None
    assert fb["cam_full_events"] > 0
    assert becns["FBICM"] == 0
    # CCFIT: throttling engages and trees actually drain — fewer
    # simultaneous trees on average, more total lifecycles, less CAM
    # pressure.
    assert becns["CCFIT"] > 0
    assert cc["trees"] > fb["trees"]
    assert cc["mean_lifetime"] is not None
    assert cc["mean_concurrent_trees"] < fb["mean_concurrent_trees"]
    assert cc["cam_full_events"] < fb["cam_full_events"]
