"""Unit tests for the metrics collector and curve analysis."""

import numpy as np
import pytest

from repro.metrics.analysis import (
    jain_index,
    mean_in_window,
    ordering,
    oscillation_score,
    recovery_time,
    series_mean,
)
from repro.metrics.collector import Collector
from repro.network.packet import Packet


def deliver(c, flow, at, size=2048, injected=None):
    p = Packet(0, 1, size, flow)
    p.injected_at = injected
    c.record_delivery(p, at)


class TestCollector:
    def test_flow_series_binning(self):
        c = Collector(bin_ns=100.0)
        deliver(c, "f", at=50.0)
        deliver(c, "f", at=60.0)
        deliver(c, "f", at=150.0)
        times, rates = c.flow_series("f", t_end=300.0)
        assert len(times) == 3
        assert rates[0] == pytest.approx(2 * 2048 / 100.0)
        assert rates[1] == pytest.approx(2048 / 100.0)
        assert rates[2] == 0.0

    def test_throughput_series_aggregates_flows(self):
        c = Collector(bin_ns=100.0)
        deliver(c, "a", at=10.0)
        deliver(c, "b", at=20.0)
        _t, rates = c.throughput_series(t_end=100.0)
        assert rates[0] == pytest.approx(2 * 2048 / 100.0)

    def test_flow_bandwidth_window(self):
        c = Collector(bin_ns=100.0)
        deliver(c, "f", at=150.0)
        assert c.flow_bandwidth("f", 100.0, 200.0) == pytest.approx(2048 / 100.0)
        assert c.flow_bandwidth("f", 200.0, 300.0) == 0.0

    def test_bandwidth_cannot_exceed_bin_contents(self):
        """Regression: unaligned windows must not overestimate."""
        c = Collector(bin_ns=100.0)
        deliver(c, "f", at=50.0)
        # 150 ns window covering two bins -> divide by the bin span
        assert c.flow_bandwidth("f", 50.0, 200.0) == pytest.approx(2048 / 200.0)

    def test_empty_window_raises(self):
        c = Collector()
        with pytest.raises(ValueError):
            c.flow_bandwidth("f", 10.0, 10.0)

    def test_unknown_flow_is_zero(self):
        c = Collector()
        assert c.flow_bandwidth("ghost", 0.0, 1000.0) == 0.0

    def test_counters(self):
        c = Collector()
        deliver(c, "f", at=1.0)
        deliver(c, "g", at=2.0, size=100)
        assert c.delivered_packets == 2
        assert c.delivered_bytes == 2148
        assert c.flows() == ["f", "g"]

    def test_latency_tracking(self):
        c = Collector()
        deliver(c, "f", at=100.0, injected=40.0)
        deliver(c, "f", at=200.0, injected=160.0)
        assert c.mean_latency("f") == pytest.approx(50.0)
        assert c.mean_latency("ghost") is None

    def test_fairness_helper(self):
        c = Collector(bin_ns=100.0)
        for _ in range(4):
            deliver(c, "a", at=10.0)
        deliver(c, "b", at=20.0)
        assert c.fairness(["a", "b"], 0.0, 100.0) < 1.0
        assert c.fairness(["a", "a"], 0.0, 100.0) == 1.0

    def test_fairness_of_no_flows_is_nan(self):
        """Regression: an empty flow set used to raise through
        jain_index; callers folding over dynamic sets now get nan."""
        import math

        c = Collector(bin_ns=100.0)
        assert math.isnan(c.fairness([], 0.0, 100.0))
        assert math.isnan(c.fairness(iter(()), 0.0, 100.0))
        deliver(c, "a", at=10.0)
        assert c.fairness(["a"], 0.0, 100.0) == 1.0  # non-empty path intact

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            Collector(bin_ns=0.0)


class TestAnalysis:
    def test_jain_bounds(self):
        assert jain_index([1, 1, 1, 1]) == 1.0
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([0, 0]) == 1.0  # equally starved

    def test_jain_rejects_bad_input(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1.0, 1.0])

    def test_series_mean_and_window(self):
        t = np.array([50.0, 150.0, 250.0])
        v = np.array([1.0, 2.0, 3.0])
        assert series_mean(t, v) == 2.0
        assert mean_in_window(t, v, 100.0, 300.0) == 2.5
        with pytest.raises(ValueError):
            mean_in_window(t, v, 1000.0, 2000.0)

    def test_oscillation_score(self):
        flat = np.full(10, 5.0)
        saw = np.array([5.0, 1.0] * 5)
        assert oscillation_score(flat) == 0.0
        assert oscillation_score(saw) > 1.0
        assert oscillation_score(np.array([1.0])) == 0.0
        assert oscillation_score(np.zeros(5)) == 0.0

    def test_ordering(self):
        assert ordering({"a": 1.0, "b": 3.0, "c": 2.0}) == ["b", "c", "a"]
        assert ordering({"a": 1.0, "b": 1.0}) == ["a", "b"]  # deterministic

    def test_recovery_time(self):
        t = np.arange(10) * 100.0
        v = np.array([9, 9, 2, 2, 2, 8, 9, 9, 9, 9], dtype=float)
        # after the event at t=200, sustained >= 8 from t=500
        assert recovery_time(t, v, 200.0, 8.0, sustain_bins=3) == 500.0
        assert recovery_time(t, v, 200.0, 99.0) == float("inf")


class TestLatencyPercentiles:
    def test_exact_below_reservoir(self):
        c = Collector(bin_ns=100.0)
        for i in range(100):
            deliver(c, "f", at=1000.0 + i, injected=1000.0 - i)  # latencies 2i
        assert c.latency_percentile("f", 0) == pytest.approx(0.0)
        assert c.latency_percentile("f", 100) == pytest.approx(198.0)
        assert c.latency_percentile("f", 50) == pytest.approx(99.0)

    def test_reservoir_bounds_memory(self):
        c = Collector(bin_ns=100.0)
        for i in range(3000):
            deliver(c, "f", at=10_000.0, injected=9_000.0)
        assert len(c._latency_samples["f"]) == Collector.RESERVOIR
        assert c.latency_percentile("f", 99) == pytest.approx(1000.0)

    def test_unknown_flow_is_none(self):
        assert Collector().latency_percentile("ghost", 99) is None

    def test_past_reservoir_is_deterministic_for_fixed_seed(self):
        """Beyond RESERVOIR deliveries the percentile is an estimate
        over a random subsample — but the reservoir RNG is seeded by
        latency_seed, so two identically-fed collectors agree exactly,
        and a different seed draws a different subsample."""
        n = 3 * Collector.RESERVOIR

        def fill(seed):
            c = Collector(bin_ns=100.0, latency_seed=seed)
            for i in range(n):
                deliver(c, "f", at=10_000.0 + i, injected=10_000.0 - i)
            return c

        a, b, other = fill(0), fill(0), fill(7)
        for q in (50, 90, 99):
            assert a.latency_percentile("f", q) == b.latency_percentile("f", q)
        assert any(
            a.latency_percentile("f", q) != other.latency_percentile("f", q)
            for q in (50, 90, 99)
        )

    def test_past_reservoir_estimate_stays_within_population_bounds(self):
        n = 3 * Collector.RESERVOIR
        c = Collector(bin_ns=100.0)
        for i in range(n):
            deliver(c, "f", at=10_000.0 + i, injected=10_000.0 - i)  # latencies 2i
        lo, hi = 0.0, 2.0 * (n - 1)
        for q in (0, 50, 95, 100):
            value = c.latency_percentile("f", q)
            assert lo <= value <= hi
        # documented approximation: the median estimate tracks the true
        # median of the full population (2i for i < n) loosely
        assert c.latency_percentile("f", 50) == pytest.approx(n - 1, rel=0.25)

    def test_bad_percentile_raises(self):
        c = Collector(bin_ns=100.0)
        deliver(c, "f", at=10.0, injected=5.0)
        with pytest.raises(ValueError):
            c.latency_percentile("f", 101)

    def test_hol_blocking_shows_in_tail_latency(self):
        """Integration: a victim's p95 latency under 1Q dwarfs its
        CCFIT p95 — congestion's other signature."""
        from repro.network.fabric import build_fabric
        from repro.network.topology import config1_adhoc
        from repro.traffic.flows import FlowSpec, attach_traffic

        p95 = {}
        for scheme in ("1Q", "CCFIT"):
            fab = build_fabric(config1_adhoc(), scheme=scheme, seed=4)
            attach_traffic(
                fab,
                flows=[
                    FlowSpec("vic", src=0, dst=3, rate=2.5),
                    FlowSpec("h1", src=1, dst=4, rate=2.5),
                    FlowSpec("h2", src=2, dst=4, rate=2.5),
                    FlowSpec("h5", src=5, dst=4, rate=2.5),
                ],
            )
            fab.run(until=2_000_000.0)
            p95[scheme] = fab.collector.latency_percentile("vic", 95)
        assert p95["1Q"] > 3 * p95["CCFIT"]
