"""Distributed sweep fabric: spec codec, broker leases, workers, HTTP.

The determinism contract under test everywhere: a cell executed by a
remote pull worker yields a ``CaseResult`` byte-identical to the same
cell run in-process, however many workers raced for it and however
many times its lease bounced.  Everything tier-1 here runs 0.02x
cells; the multi-process kill-a-worker end-to-end test is ``tier2``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments import registry
from repro.experiments.sweep import (
    ResultCache,
    SweepOptions,
    run_sweep,
)
from repro.service import (
    FsBroker,
    HttpBroker,
    ServiceClient,
    ServiceServer,
    Worker,
    connect_broker,
    job_from_spec,
    job_to_spec,
)
from repro.service.api import ServiceError

SCALE = 0.02


def tiny_jobs(schemes=("CCFIT",), **kw):
    return registry.get("fig7a").jobs(schemes=schemes, time_scale=SCALE, seed=1, **kw)


@pytest.fixture(scope="module")
def tiny_job():
    return tiny_jobs()[0]


@pytest.fixture(scope="module")
def tiny_result(tiny_job):
    return tiny_job.run()


def result_bytes(result_dict) -> str:
    return json.dumps(result_dict, sort_keys=True)


# ----------------------------------------------------------------------
# job spec codec
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_roundtrip_preserves_cache_key(self, tiny_job):
        revived = job_from_spec(job_to_spec(tiny_job))
        assert revived.key() == tiny_job.key()
        assert revived.label() == tiny_job.label()

    def test_roundtrip_over_json_wire(self, tiny_job):
        """The spec travels as HTTP JSON; a key must survive the trip."""
        wire = json.loads(json.dumps(job_to_spec(tiny_job)))
        assert job_from_spec(wire).key() == tiny_job.key()

    def test_roundtrip_with_optional_fields(self):
        jobs = registry.get("fig7a").jobs(
            schemes=("CCFIT",), time_scale=SCALE, seed=3,
            routings=("adaptive",), buffer_model="shared",
        )
        for job in jobs:
            assert job_from_spec(job_to_spec(job)).key() == job.key()

    def test_roundtrip_result_matches(self, tiny_job, tiny_result):
        revived = job_from_spec(job_to_spec(tiny_job))
        assert result_bytes(revived.run().to_dict()) == result_bytes(tiny_result.to_dict())

    def test_unknown_schema_rejected(self, tiny_job):
        spec = job_to_spec(tiny_job)
        spec["schema"] = 999
        with pytest.raises(ServiceError):
            job_from_spec(spec)


# ----------------------------------------------------------------------
# broker lease semantics
# ----------------------------------------------------------------------
class TestFsBroker:
    def test_submit_claim_complete(self, tmp_path, tiny_job, tiny_result):
        b = FsBroker(tmp_path)
        run = b.submit([tiny_job], experiment="fig7a")
        assert run.keys == [tiny_job.key()]
        assert b.counts()["queue"] == 1
        lease = b.claim("w1")
        assert lease.key == tiny_job.key()
        assert lease.attempt == 1
        assert b.claim("w2") is None  # queue drained
        assert b.complete(lease.key, "w1", tiny_result.to_dict(), elapsed=0.5)
        status = b.run_status(run.id)
        assert status["done"]
        assert status["states"][lease.key] == "done"

    def test_claim_is_exclusive_under_contention(self, tmp_path, tiny_job):
        jobs = tiny_jobs(schemes=("CCFIT", "1Q", "4Q"))
        b = FsBroker(tmp_path)
        b.submit(jobs, experiment="fig7a")
        won = []
        lock = threading.Lock()

        def grab(worker):
            while True:
                lease = b.claim(worker)
                if lease is None:
                    return
                with lock:
                    won.append((lease.key, worker))

        threads = [threading.Thread(target=grab, args=(f"w{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every cell leased exactly once across all racing workers
        assert sorted(k for k, _w in won) == sorted(j.key() for j in jobs)

    def test_cache_hit_never_enqueued(self, tmp_path, tiny_job, tiny_result):
        b = FsBroker(tmp_path)
        b.cache.put(tiny_job.key(), tiny_result, job=tiny_job)
        run = b.submit([tiny_job], experiment="fig7a")
        assert run.cached == [tiny_job.key()]
        assert b.counts()["queue"] == 0
        assert b.run_status(run.id)["done"]

    def test_lease_expires_and_requeues_exactly_once(self, tmp_path, tiny_job):
        b = FsBroker(tmp_path, lease_ttl=0.2)
        b.submit([tiny_job], experiment="fig7a")
        assert b.claim("dead") is not None
        time.sleep(0.3)
        assert b.reap() == (1, 0)
        assert b.reap() == (0, 0)  # exactly once
        lease = b.claim("alive")
        assert lease.attempt == 2

    def test_fresh_claim_not_instantly_reaped(self, tmp_path, tiny_job):
        """Queue files keep their enqueue mtime across the claim rename;
        the lease clock must restart at claim time, not enqueue time."""
        b = FsBroker(tmp_path, lease_ttl=0.3)
        b.submit([tiny_job], experiment="fig7a")
        time.sleep(0.4)  # older than a whole ttl while still queued
        assert b.claim("w1") is not None
        assert b.reap() == (0, 0)

    def test_heartbeat_keeps_lease_alive(self, tmp_path, tiny_job):
        b = FsBroker(tmp_path, lease_ttl=0.3)
        b.submit([tiny_job], experiment="fig7a")
        lease = b.claim("w1")
        for _ in range(3):
            time.sleep(0.15)
            assert b.heartbeat(lease.key, "w1")
            assert b.reap() == (0, 0)
        assert not b.heartbeat(lease.key, "stranger")

    def test_requeue_budget_exhaustion_fails_cell(self, tmp_path, tiny_job):
        b = FsBroker(tmp_path, lease_ttl=0.05, max_requeues=1)
        run = b.submit([tiny_job], experiment="fig7a")
        for _ in range(3):
            if b.claim("flaky") is None:
                break
            time.sleep(0.1)
            b.reap()
        status = b.run_status(run.id)
        assert status["done"]
        assert status["states"][tiny_job.key()] == "failed"
        manifest = b.run_manifest(run.id)
        assert manifest["failed"] == 1
        assert manifest["failures"][0]["exception"] == "LeaseExpired"

    def test_duplicate_completion_is_noop(self, tmp_path, tiny_job, tiny_result):
        b = FsBroker(tmp_path, lease_ttl=0.1)
        run = b.submit([tiny_job], experiment="fig7a")
        b.claim("slow")
        time.sleep(0.2)
        b.reap()
        lease2 = b.claim("fast")
        payload = tiny_result.to_dict()
        assert b.complete(lease2.key, "fast", payload, elapsed=0.1) is True
        # the presumed-dead worker finishes late: structurally a no-op
        assert b.complete(lease2.key, "slow", payload, elapsed=9.9) is False
        manifest = b.run_manifest(run.id)
        (job_row,) = manifest["jobs"]
        assert job_row["worker"] == "fast"
        assert manifest["requeued"] == 1
        # content-addressed cache still byte-identical
        assert result_bytes(b.cache.get(tiny_job.key()).to_dict()) == result_bytes(payload)

    def test_events_tell_the_cell_story(self, tmp_path, tiny_job, tiny_result):
        b = FsBroker(tmp_path)
        b.submit([tiny_job], experiment="fig7a")
        lease = b.claim("w1")
        b.complete(lease.key, "w1", tiny_result.to_dict())
        kinds = [e["kind"] for e in b.events()]
        assert kinds == ["enqueue", "submit", "claim", "complete"]


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
class TestWorker:
    def test_worker_result_byte_identical_to_inprocess(self, tmp_path, tiny_job, tiny_result):
        b = FsBroker(tmp_path)
        run = b.submit([tiny_job], experiment="fig7a")
        summary = Worker(b, worker_id="w1", max_cells=1).run()
        assert summary["completed"] == 1 and summary["failed"] == 0
        assert b.run_status(run.id)["done"]
        cached = b.cache.get(tiny_job.key())
        assert result_bytes(cached.to_dict()) == result_bytes(tiny_result.to_dict())

    def test_worker_records_attribution_in_manifest(self, tmp_path, tiny_job):
        b = FsBroker(tmp_path)
        run = b.submit([tiny_job], experiment="fig7a")
        Worker(b, worker_id="unit-worker", max_cells=1).run()
        (job_row,) = b.run_manifest(run.id)["jobs"]
        assert job_row["worker"] == "unit-worker"
        assert job_row["elapsed_s"] > 0

    def test_worker_fails_undecodable_spec(self, tmp_path, tiny_job):
        b = FsBroker(tmp_path)
        run = b.submit([tiny_job], experiment="fig7a")
        # corrupt the queued spec in place (atomic, like a version skew)
        path = tmp_path / "queue" / f"{tiny_job.key()}.json"
        rec = json.loads(path.read_text())
        rec["spec"] = {"schema": 999}
        path.write_text(json.dumps(rec))
        summary = Worker(b, worker_id="w1", max_cells=1).run()
        assert summary["failed"] == 1
        manifest = b.run_manifest(run.id)
        assert "undecodable job spec" in manifest["failures"][0]["message"]

    def test_connect_broker_dispatch(self, tmp_path):
        assert isinstance(connect_broker(str(tmp_path)), FsBroker)
        assert isinstance(connect_broker(f"dir://{tmp_path}"), FsBroker)
        assert isinstance(connect_broker("http://127.0.0.1:1"), HttpBroker)


# ----------------------------------------------------------------------
# sweep manifest timing (satellite)
# ----------------------------------------------------------------------
class TestSweepTiming:
    def test_serial_sweep_records_elapsed_and_worker(self, tmp_path):
        jobs = tiny_jobs()
        opts = SweepOptions(time_scale=SCALE, jobs=1, cache_dir=str(tmp_path / "c"))
        report = run_sweep(jobs, options=opts)
        assert len(report.cell_elapsed) == len(jobs)
        assert all(e is not None and e > 0 for e in report.cell_elapsed)
        assert all(w and w.startswith("pid") for w in report.cell_workers)
        (row,) = report.manifest()["jobs"]
        assert row["elapsed_s"] == pytest.approx(report.cell_elapsed[0])
        assert row["worker"] == report.cell_workers[0]

    def test_cache_hit_attributed_to_cache(self, tmp_path):
        jobs = tiny_jobs()
        opts = SweepOptions(time_scale=SCALE, jobs=1, cache_dir=str(tmp_path / "c"))
        run_sweep(jobs, options=opts)
        report = run_sweep(jobs, options=opts)
        assert report.hits == len(jobs)
        assert report.cell_workers == ["cache"] * len(jobs)
        (row,) = report.manifest()["jobs"]
        assert row["worker"] == "cache"
        assert "elapsed_s" not in row


# ----------------------------------------------------------------------
# cache hygiene (satellite)
# ----------------------------------------------------------------------
class TestCacheHygiene:
    def _fill(self, tmp_path, n=3):
        cache = ResultCache(tmp_path / "cache")
        for i in range(n):
            cache.put_dict(f"{i:064x}", {"scheme": "X", "i": i})
        return cache

    def test_stats(self, tmp_path):
        cache = self._fill(tmp_path)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["quarantined"] == 0

    def test_prune_by_age(self, tmp_path):
        cache = self._fill(tmp_path)
        old = cache.path(f"{0:064x}")
        past = time.time() - 3600
        os.utime(old, (past, past))
        summary = cache.prune(max_age_s=60)
        assert summary["removed"] == 1
        assert cache.stats()["entries"] == 2

    def test_prune_to_size_evicts_oldest_first(self, tmp_path):
        cache = self._fill(tmp_path)
        entries = cache.entries()
        # stamp distinct mtimes so the eviction order is deterministic
        for i, (key, _size, _mtime) in enumerate(entries):
            t = time.time() - 100 + i
            os.utime(cache.path(key), (t, t))
        total = sum(size for _k, size, _m in cache.entries())
        one = total // 3
        cache.prune(max_bytes=total - one)
        left = [k for k, _s, _m in cache.entries()]
        assert entries[0][0] not in left  # oldest evicted
        assert entries[-1][0] in left

    def test_quarantine_listed_and_pruned(self, tmp_path):
        cache = self._fill(tmp_path)
        path = cache.path(f"{1:064x}")
        path.write_text("{corrupt json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(f"{1:064x}") is None  # quarantines the entry
        assert len(cache.quarantined()) == 1
        summary = cache.prune(max_age_s=0.0, include_quarantine=True)
        assert summary["quarantine_removed"] == 1
        assert cache.quarantined() == []


# ----------------------------------------------------------------------
# HTTP service end-to-end
# ----------------------------------------------------------------------
class TestService:
    def test_http_submit_workers_byte_identical(self, tmp_path, tiny_job, tiny_result):
        """The acceptance path: submit over HTTP, two pull workers race,
        the fetched CaseResult is byte-identical to in-process."""
        with ServiceServer(tmp_path / "broker", port=0,
                           cache_dir=str(tmp_path / "cache")) as srv:
            client = ServiceClient(srv.url)
            names = [e["name"] for e in client.experiments()]
            assert "fig7a" in names
            sub = client.submit("fig7a", schemes=["CCFIT"],
                                time_scale=SCALE, seed=1)
            assert sub["cells"] == 1
            workers = [Worker(srv.url, worker_id=f"w{i}", max_cells=1,
                              idle_exit=10.0) for i in range(2)]
            threads = [threading.Thread(target=w.run) for w in workers]
            for t in threads:
                t.start()
            status = client.wait(sub["run"], timeout=60)
            for t in threads:
                t.join()
            assert status["done"]
            fetched = client.result(sub["keys"][0])["result"]
            assert result_bytes(fetched) == result_bytes(tiny_result.to_dict())
            manifest = client.manifest(sub["run"])
            assert manifest["ok"] == 1
            assert manifest["jobs"][0]["worker"] in ("w0", "w1")
            kinds = [e["kind"] for e in client.events(sub["run"])]
            assert "complete" in kinds

    def test_http_lease_requeue_after_silent_worker(self, tmp_path, tiny_job, tiny_result):
        """A worker that claims over HTTP and then goes silent loses its
        lease to the server's reaper; a live worker finishes the cell."""
        with ServiceServer(tmp_path / "broker", port=0,
                           cache_dir=str(tmp_path / "cache"),
                           lease_ttl=0.5) as srv:
            client = ServiceClient(srv.url)
            sub = client.submit("fig7a", schemes=["CCFIT"],
                                time_scale=SCALE, seed=1)
            victim = HttpBroker(srv.url)
            lease = victim.claim("victim")
            assert lease is not None  # ...and never heartbeats again
            worker = Worker(srv.url, worker_id="survivor", max_cells=1,
                            idle_exit=30.0)
            t = threading.Thread(target=worker.run)
            t.start()
            status = client.wait(sub["run"], timeout=60)
            t.join()
            assert status["done"]
            manifest = client.manifest(sub["run"])
            assert manifest["jobs"][0]["status"] == "ok"
            assert manifest["jobs"][0]["worker"] == "survivor"
            assert manifest["requeued"] >= 1
            fetched = client.result(sub["keys"][0])["result"]
            assert result_bytes(fetched) == result_bytes(tiny_result.to_dict())

    def test_metrics_endpoint(self, tmp_path):
        with ServiceServer(tmp_path / "broker", port=0,
                           cache_dir=str(tmp_path / "cache")) as srv:
            text = ServiceClient(srv.url).metrics()
            assert "repro_service_uptime_seconds" in text
            assert 'repro_service_cells{state="queue"}' in text

    def test_unknown_experiment_is_400(self, tmp_path):
        with ServiceServer(tmp_path / "broker", port=0,
                           cache_dir=str(tmp_path / "cache")) as srv:
            with pytest.raises(ServiceError):
                ServiceClient(srv.url).submit("not-an-experiment")


# ----------------------------------------------------------------------
# multi-process end-to-end (tier2)
# ----------------------------------------------------------------------
@pytest.mark.tier2
class TestServiceProcesses:
    def test_kill_worker_midrun_sweep_still_completes(self, tmp_path, tiny_result):
        """ISSUE acceptance: kill a real worker process mid-cell; the
        lease expires, the cell requeues, a second worker completes the
        sweep, and the result is still byte-identical."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in (os.path.join(os.path.dirname(__file__), "..", "src"),)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        with ServiceServer(tmp_path / "broker", port=0,
                           cache_dir=str(tmp_path / "cache"),
                           lease_ttl=1.0) as srv:
            client = ServiceClient(srv.url)
            sub = client.submit("fig7a", schemes=["CCFIT"],
                                time_scale=SCALE, seed=1)
            victim = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker",
                 "--broker", srv.url, "--id", "victim", "--heartbeat", "0.2"],
                env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            # let it claim the cell, then kill it mid-simulation
            deadline = time.time() + 30
            while time.time() < deadline:
                if any(e["kind"] == "claim" for e in client.events(sub["run"])):
                    break
                time.sleep(0.1)
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            survivor = Worker(srv.url, worker_id="survivor", max_cells=1,
                              idle_exit=60.0)
            t = threading.Thread(target=survivor.run)
            t.start()
            status = client.wait(sub["run"], timeout=120)
            t.join()
            assert status["done"]
            manifest = client.manifest(sub["run"])
            assert manifest["ok"] == 1
            assert manifest["requeued"] >= 1
            assert manifest["jobs"][0]["worker"] == "survivor"
            fetched = client.result(sub["keys"][0])["result"]
            assert result_bytes(fetched) == result_bytes(tiny_result.to_dict())
