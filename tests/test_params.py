"""Unit tests for CC parameters and the §III-E tuning rules."""

import pytest

from repro.core.params import CCParams, MTU, ParamError, exponential_cct, linear_cct


def test_defaults_are_valid_and_match_the_paper():
    p = CCParams()
    p.validate()
    assert p.mtu == 2048
    assert p.memory_size == 64 * 1024  # Table I
    assert p.num_cfqs == 2  # §IV-A
    assert p.ccti_timer == 8000.0  # §IV-A
    assert p.marking_rate == 0.85  # §IV-A
    assert p.cfq_stop == 10 * MTU and p.cfq_go == 4 * MTU  # §IV-A
    assert p.voq_high == 4 * MTU and p.voq_low == 2 * MTU  # §IV-A
    assert p.num_voqs == 8  # §IV-A


@pytest.mark.parametrize(
    "override",
    [
        dict(mtu=0),
        dict(memory_size=2048),
        dict(num_cfqs=-1),
        dict(cfq_high=3 * MTU, cfq_low=3 * MTU),  # High-Low < 1 MTU
        dict(cfq_stop=6 * MTU, cfq_high=8 * MTU),  # Stop <= High
        dict(cfq_stop=10 * MTU, cfq_go=10 * MTU),  # Stop-Go < 1 MTU
        dict(detection_threshold=-1),
        dict(detection_threshold=10**9),
        dict(detection_policy="psychic"),
        dict(cfq_high_dwell=-1.0),
        dict(link_jitter=0.9),
        dict(link_jitter=0.01),  # jitter requires event-driven arbitration
        dict(cfq_cs_exit=0),  # must lie in [low, high)
        dict(cfq_rearm_window=-1.0),
        dict(match_quantum=-2.0),  # -1 is the auto sentinel
        dict(voq_high=2 * MTU, voq_low=2 * MTU),
        dict(marking_rate=0.0),
        dict(marking_rate=1.5),
        dict(ccti_timer=0.0),
        dict(ccti_increase=0),
        dict(becn_min_interval=-1.0),
        dict(cct=[]),
        dict(cct=[1.0, 2.0]),  # must start at 0
        dict(cct=[0.0, 5.0, 3.0]),  # must be non-decreasing
        dict(num_voqs=0),
        dict(voqnet_queue_size=100),
        dict(advoq_cap_packets=0),
        dict(islip_iterations=0),
    ],
)
def test_tuning_rule_violations_raise(override):
    p = CCParams(**override)
    with pytest.raises(ParamError):
        p.validate()


def test_with_overrides_returns_validated_copy():
    p = CCParams()
    q = p.with_overrides(num_cfqs=4)
    assert q.num_cfqs == 4
    assert p.num_cfqs == 2
    with pytest.raises(ParamError):
        p.with_overrides(marking_rate=2.0)


def test_linear_cct_shape():
    cct = linear_cct(entries=8, step=100.0)
    assert cct[0] == 0.0
    assert cct == [100.0 * i for i in range(8)]


def test_exponential_cct_shape():
    cct = exponential_cct(entries=5, base=10.0)
    assert cct[0] == 0.0
    assert cct == [10.0 * (2.0**i - 1.0) for i in range(5)]
    assert all(b >= a for a, b in zip(cct, cct[1:]))


def test_cct_builders_reject_bad_arguments():
    with pytest.raises(ParamError):
        linear_cct(entries=1)
    with pytest.raises(ParamError):
        linear_cct(step=0.0)
    with pytest.raises(ParamError):
        exponential_cct(entries=0)
    with pytest.raises(ParamError):
        exponential_cct(base=-1.0)


def test_packets_and_summary_helpers():
    p = CCParams()
    assert p.packets(4096) == 2.0
    lines = p.thresholds_summary()
    assert any("stop/go=10/4" in s for s in lines)
    assert any("marking_rate=85%" in s for s in lines)
