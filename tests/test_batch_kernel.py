"""Batch-kernel building blocks: vectorized arbitration, the SoA
fabric mirror, the batched scheme/routing adapters, and the perf
ratchet (``repro perf --check``).

The kernel itself (slot calendar, channels, dispatch contract) is
covered by ``tests/test_engine_kernels.py`` — whose whole contract
suite is parametrized over all three kernels — and by the golden
byte-identity suites; this file tests the batch-specific machinery
those suites drive indirectly.
"""

import json
import random

import numpy as np
import pytest

from repro.network.arbiter import ISlip, SlotArbiter
from repro.network.fabric import build_fabric
from repro.network.packet import Packet, alloc_packet
from repro.network.state import BatchRoutingAdapter, BatchSchemeAdapter, FabricState
from repro.network.topology import k_ary_n_tree
from repro.perf import PERF_GATES, check_report
from repro.sim.batch import BatchSimulator
from repro.sim.engine import SimulationError, Simulator


# ----------------------------------------------------------------------
# ISlip.match_matrix: exact equivalence with the scalar matcher
# ----------------------------------------------------------------------
def _lrg_state(arb):
    return (
        arb._clock,
        [list(r) for r in arb._grant_stamp],
        [list(r) for r in arb._accept_stamp],
    )


def test_match_matrix_equals_match_with_identical_state():
    """Differential test: over random request matrices, the vectorized
    matcher must produce the exact matching *and* the exact post-call
    arbiter state (stamps and clock) of the scalar matcher — the
    property that keeps slot-driven and event-driven arbitration
    byte-identical."""
    rng = random.Random(7)
    for trial in range(60):
        n = rng.randint(2, 9)
        iterations = rng.randint(1, 3)
        scalar = ISlip(n, n, iterations=iterations)
        vector = ISlip(n, n, iterations=iterations)
        for _ in range(12):
            matrix = [[rng.random() < 0.35 for _ in range(n)] for _ in range(n)]
            requests = {
                i: [o for o in range(n) if matrix[i][o]]
                for i in range(n)
                if any(matrix[i])
            }
            assert scalar.match(requests) == vector.match_matrix(matrix), trial
            assert _lrg_state(scalar) == _lrg_state(vector), trial


def test_match_matrix_accepts_numpy_input():
    arb = ISlip(4, 4)
    ref = ISlip(4, 4)
    matrix = np.zeros((4, 4), dtype=bool)
    matrix[0, 1] = matrix[1, 1] = matrix[2, 3] = True
    assert arb.match_matrix(matrix) == ref.match({0: [1], 1: [1], 2: [3]})


def test_match_matrix_pointer_mode_delegates():
    rng = random.Random(3)
    scalar = ISlip(5, 5, mode="pointer")
    vector = ISlip(5, 5, mode="pointer")
    for _ in range(20):
        matrix = [[rng.random() < 0.4 for _ in range(5)] for _ in range(5)]
        requests = {
            i: [o for o in range(5) if matrix[i][o]] for i in range(5) if any(matrix[i])
        }
        assert scalar.match(requests) == vector.match_matrix(matrix)
        assert scalar.grant_ptr == vector.grant_ptr
        assert scalar.accept_ptr == vector.accept_ptr


def test_match_matrix_rejects_wrong_shape():
    arb = ISlip(4, 4)
    with pytest.raises(ValueError):
        arb.match_matrix([[False] * 4] * 3)
    with pytest.raises(ValueError):
        arb.match_matrix([[False] * 3] * 4)


def test_match_matrix_empty_matrix_matches_nothing():
    arb = ISlip(4, 4)
    before = _lrg_state(arb)
    assert arb.match_matrix([[False] * 4] * 4) == {}
    assert _lrg_state(arb) == before


# ----------------------------------------------------------------------
# SlotArbiter
# ----------------------------------------------------------------------
class _StubSwitch:
    """Switch-like exposing the collect/apply/arbiter protocol with a
    scripted per-round request schedule."""

    def __init__(self, rounds, n=4):
        self.arbiter = ISlip(n, n)
        self._rounds = list(rounds)
        self.applied = []

    def collect_requests(self):
        if not self._rounds:
            return {}, {}
        requests = self._rounds.pop(0)
        candidates = {
            (i, o): [("queue", "pkt")] for i, outs in requests.items() for o in outs
        }
        return requests, candidates

    def apply_matches(self, matches, candidates):
        for inp, out in matches.items():
            assert (inp, out) in candidates
        self.applied.append(dict(matches))
        return bool(matches)


def test_slot_arbiter_runs_each_switch_to_quiescence():
    sw_a = _StubSwitch([{0: [1, 2], 1: [1], 2: [3]}, {0: [2]}])
    sw_b = _StubSwitch([{3: [0]}])
    arb = SlotArbiter([sw_a, sw_b])
    started = arb.arbitrate_slot()
    # round 1 of sw_a matches all three inputs (disjoint outputs exist),
    # round 2 matches the one remaining input; sw_b matches its one.
    assert [sorted(m) for m in sw_a.applied] == [[0, 1, 2], [0]]
    assert sw_b.applied == [{3: 0}]
    assert started == 5
    assert arb.matches == 5
    # every switch took its quiescence round (empty collect) as well
    assert arb.rounds >= 5


def test_slot_arbiter_matchings_are_valid():
    rng = random.Random(11)
    rounds = []
    for _ in range(6):
        reqs = {
            i: sorted(rng.sample(range(6), rng.randint(1, 3)))
            for i in rng.sample(range(6), rng.randint(1, 5))
        }
        rounds.append(reqs)
    sw = _StubSwitch(list(rounds), n=6)
    SlotArbiter([sw]).arbitrate_slot()
    for requests, matches in zip(rounds, sw.applied):
        outs = list(matches.values())
        assert len(set(outs)) == len(outs), "output matched twice"
        for inp, out in matches.items():
            assert out in requests[inp], "granted a non-requested output"


def test_slot_arbiter_matrix_and_dict_paths_agree():
    """The matrix fast path must pick the same matchings as the scalar
    path (byte-identity prerequisite for any slot-driven use)."""
    rng = random.Random(5)
    rounds = [
        {
            i: sorted(rng.sample(range(8), rng.randint(1, 4)))
            for i in rng.sample(range(8), rng.randint(3, 8))
        }
        for _ in range(10)
    ]
    via_matrix = _StubSwitch([dict(r) for r in rounds], n=8)
    via_dict = _StubSwitch([dict(r) for r in rounds], n=8)
    fast = SlotArbiter([via_matrix])
    slow = SlotArbiter([via_dict])
    slow.matrix_min_requests = 10**9  # force the dict path
    fast.arbitrate_slot()
    slow.arbitrate_slot()
    assert via_matrix.applied == via_dict.applied


def test_slot_arbiter_on_real_fabric():
    """Duck-typing check against the real Switch: a fabric mid-run
    yields a consistent collect/apply round trip (the event-driven
    matching usually leaves nothing to start — the point is that the
    protocol holds on production objects, not stubs)."""
    fabric = build_fabric(k_ary_n_tree(2, 2), scheme="1Q", seed=1)
    for i, node in enumerate(fabric.nodes):
        node.offer(alloc_packet(i, (i + 1) % len(fabric.nodes), 2048, f"f{i}"))
    fabric.run(until=5_000.0)
    started = SlotArbiter(fabric.switches).arbitrate_slot()
    assert started >= 0
    fabric.run(until=2e6)
    assert fabric.stats()["delivered_packets"] == fabric.stats()["generated_packets"]


# ----------------------------------------------------------------------
# FabricState
# ----------------------------------------------------------------------
def _loaded_fabric(until=40_000.0):
    fabric = build_fabric(k_ary_n_tree(2, 3), scheme="CCFIT", seed=2)
    for i, node in enumerate(fabric.nodes):
        for _ in range(4):
            node.offer(alloc_packet(i, (i + 3) % len(fabric.nodes), 2048, f"f{i}"))
    fabric.run(until=until)
    return fabric


def test_fabric_state_mirrors_object_graph():
    fabric = _loaded_fabric()
    state = FabricState.capture(fabric)
    assert state.time == fabric.sim.now
    assert state.num_switch_ports == sum(sw.num_ports for sw in fabric.switches)
    assert state.total_buffered_bytes() == sum(
        sw.total_buffered_bytes() for sw in fabric.switches
    )
    assert int(sum(state.link_bytes_sent)) == sum(lk.bytes_sent for lk in fabric.links)
    assert state.in_flight == sum(1 for lk in fabric.links if lk.in_flight is not None)
    # switch-major port indexing round-trips
    for s, sw in enumerate(fabric.switches):
        base = int(state.switch_base[s])
        for p, port in enumerate(sw.input_ports):
            assert int(state.port_switch[base + p]) == s
            assert int(state.pool_used[base + p]) == port.pool.used
            assert float(state.active_rate[base + p]) == port.active_rate


def test_fabric_state_summary_is_json_safe():
    state = FabricState.capture(_loaded_fabric())
    summary = state.summary()
    json.dumps(summary)  # must not leak numpy scalars
    assert summary["ports"] > 0
    assert 0.0 <= summary["utilisation"] <= 1.0


# ----------------------------------------------------------------------
# batched adapters over the unmodified public APIs
# ----------------------------------------------------------------------
def test_batch_scheme_adapter_matches_collect_requests():
    fabric = _loaded_fabric(until=15_000.0)
    for sw in fabric.switches:
        adapter = BatchSchemeAdapter(sw)
        matrix = adapter.request_matrix()
        requests, candidates = sw.collect_requests()
        if matrix is None:
            assert not requests
            continue
        for inp in range(sw.num_ports):
            for out in range(sw.num_ports):
                assert bool(matrix[inp][out]) == (
                    inp in requests and out in requests[inp]
                )
        assert adapter.candidates.keys() == candidates.keys()


@pytest.mark.parametrize("policy", ["det", "ecmp", "adaptive", "flowlet"])
def test_batch_routing_adapter_agrees_with_per_packet_route(policy):
    """route_many on one fabric must reproduce the per-packet route
    sequence on an identically-built twin — stateful policies (flowlet)
    mutate per-flow state on every lookup, so the reference has to see
    the exact same call sequence, not share the policy object."""
    fab_batched = build_fabric(k_ary_n_tree(2, 3), scheme="1Q", seed=4, routing=policy)
    fab_ref = build_fabric(k_ary_n_tree(2, 3), scheme="1Q", seed=4, routing=policy)
    dsts = list(range(len(fab_batched.nodes))) * 2
    for sw_b, sw_r in zip(fab_batched.switches, fab_ref.switches):
        port_b, port_r = sw_b.input_ports[0], sw_r.input_ports[0]
        batched = BatchRoutingAdapter(port_b).route_many(
            dsts, src=0, flow="fx", size=2048
        )
        for dst, out in zip(dsts, batched):
            pkt = Packet(0, dst, 2048, "fx")
            assert int(out) == port_r.route(pkt), (sw_b.name, policy, dst)


# ----------------------------------------------------------------------
# batch channels (API not shared with the event kernels)
# ----------------------------------------------------------------------
def test_channel_validation():
    sim = Simulator(kernel="batch")
    assert isinstance(sim, BatchSimulator)
    with pytest.raises(SimulationError):
        sim.add_channel(np.array([1.0]), 0.0)
    with pytest.raises(SimulationError):
        sim.add_channel(np.array([]), 10.0)
    sim.run(until=100.0)
    with pytest.raises(SimulationError):
        sim.add_channel(np.array([5.0]), 10.0)  # behind now


def test_channel_unbounded_run_rejected():
    sim = Simulator(kernel="batch")
    sim.add_channel(np.array([1.0, 2.0]), 10.0)
    with pytest.raises(SimulationError):
        sim.run()


def test_channel_exact_max_events_cut():
    sim = Simulator(kernel="batch")
    sim.add_channel(np.array([1.0, 2.0, 3.0]), 10.0)
    sim.run(max_events=7)
    assert sim.events_dispatched == 7
    # 3 elements firing every 10 ns: 7th firing is element 0 at t=21
    assert sim.now == 21.0


def test_channel_until_bound_and_pending():
    sim = Simulator(kernel="batch")
    chan = sim.add_channel(np.array([5.0, 6.0]), 100.0, label="pair")
    assert sim.pending() == 2
    sim.run(until=250.0)
    assert chan.fired == 6  # both elements at t in {5,6
    # }, {105,106}, {205,206}
    assert sim.now == 250.0
    assert any(k.startswith("channel:pair") for k in sim.queue_snapshot())


def test_channel_slot_synchronous_ordering():
    """The documented slot contract: within one MTU slot, general
    events dispatch first (in exact (time, seq) order), then the
    slot's channel firings — channels are slot-grain, not event-grain.
    Events in *earlier* slots always precede later channel firings."""
    sim = Simulator(kernel="batch")
    order = []
    # slot 1 spans [819.2, 1638.4): both the channel firing (t=1000)
    # and the late event (t=1500) land there; the event wins the slot.
    sim.add_channel(np.array([1000.0]), 5000.0, fn=lambda n, end: order.append("chan"))
    sim.post(500.0, lambda _: order.append("early"), None)   # slot 0
    sim.post(1500.0, lambda _: order.append("late"), None)   # slot 1
    sim.post(2000.0, lambda _: order.append("next"), None)   # slot 2
    sim.run(until=2500.0)
    assert order == ["early", "late", "chan", "next"]


# ----------------------------------------------------------------------
# the perf ratchet (repro perf --check)
# ----------------------------------------------------------------------
def _report(**over):
    base = {
        "schema": "repro.perf/1",
        "microbench": {"bucket": {"events": 300_000}},
        "speedup": 2.0,
        "speedup_batch": 20.0,
        "routing": {"ok": True, "overhead_pct": 1.0, "gate_pct": 5.0},
        "telemetry": [
            {"case": "case1", "scheme": "CCFIT", "kernel": "bucket", "byte_identical": True}
        ],
    }
    base.update(over)
    return base


def test_check_report_passes_on_itself():
    report = _report()
    ok, lines = check_report(report, report)
    assert ok, lines


def test_check_report_hard_floor():
    ok, lines = check_report(_report(speedup_batch=2.0), None)
    assert not ok
    assert any("speedup_batch" in line for line in lines if line.startswith("FAIL"))


def test_check_report_baseline_regression():
    fresh = _report(speedup_batch=PERF_GATES["speedup_batch"] + 2.0)
    ok, lines = check_report(fresh, _report())
    assert not ok, lines  # 5x vs 20x: past any tolerance band


def test_check_report_tolerance_band_absorbs_noise():
    fresh = _report(speedup=1.9, speedup_batch=18.0)
    ok, lines = check_report(fresh, _report())
    assert ok, lines


def test_check_report_population_mismatch_skips_ratchet():
    fresh = _report(
        microbench={"bucket": {"events": 60_000}}, speedup_batch=10.0, quick=True
    )
    ok, lines = check_report(fresh, _report())
    assert ok, lines
    assert any("population differs" in line for line in lines)


def test_check_report_routing_and_telemetry_gates():
    bad_routing = _report(routing={"ok": False, "overhead_pct": 9.0, "gate_pct": 5.0})
    ok, _ = check_report(bad_routing, None)
    assert not ok
    bad_tele = _report(
        telemetry=[{"case": "case1", "scheme": "CCFIT", "kernel": "heap",
                    "byte_identical": False}]
    )
    ok, _ = check_report(bad_tele, None)
    assert not ok
