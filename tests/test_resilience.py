"""Failure injection for the resilient sweep engine.

Crashing jobs, wedged jobs, corrupt cache entries and interrupted
journals must each degrade into a structured report — never an aborted
sweep or a silently wrong figure — and every surviving result must be
bit-identical to a clean serial run (docs/robustness.md).

Tests that bring up real worker pools are marked ``tier2``
(``pytest -m tier2``); everything else runs in-process.
"""

import json
import os
import time

import pytest

from repro.experiments.resilience import (
    JobFailure,
    RetryPolicy,
    SweepJournal,
    execute_job,
)
from repro.experiments.runner import CaseResult, run_case1
from repro.experiments.sweep import ResultCache, SimJob, SweepOptions, run_sweep

from tests.test_sweep import assert_results_equal

SCALE = 0.02

#: fast-failing options so retry tests don't sleep for real.
FAST = dict(backoff=0.001)


# ---------------------------------------------------------------------------
# injected-failure jobs (module level so worker processes can unpickle them)
# ---------------------------------------------------------------------------
class FailJob(SimJob):
    """Raises inside the simulation — the `kind="error"` path."""

    def run(self) -> CaseResult:
        raise RuntimeError("injected failure")


class CrashJob(SimJob):
    """Kills its worker process outright — the `kind="crash"` path."""

    def run(self) -> CaseResult:
        os._exit(13)


class SlowJob(SimJob):
    """Wedges its worker — the `kind="timeout"` path."""

    def run(self) -> CaseResult:
        time.sleep(60)
        raise AssertionError("a SlowJob must be killed by the timeout")


class FlakyJob(SimJob):
    """Fails the first ``fails`` attempts (counted in a marker file),
    then succeeds with the real simulation — the retry-recovery path."""

    def run(self) -> CaseResult:
        knobs = dict(self.extra)
        marker = knobs["marker"]
        with open(marker, "a") as fh:
            fh.write("x")
        if os.path.getsize(marker) <= int(knobs["fails"]):
            raise RuntimeError("flaky attempt")
        return SimJob(
            case=self.case, scheme=self.scheme,
            time_scale=self.time_scale, seed=self.seed, params=self.params,
        ).run()


def good_job(scheme="1Q"):
    return SimJob(case="case1", scheme=scheme, time_scale=SCALE)


@pytest.fixture(scope="module")
def small() -> CaseResult:
    return run_case1("1Q", time_scale=SCALE)


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_exponential_growth(self):
        p = RetryPolicy(backoff_base=0.25, jitter=0.0)
        assert p.delay(1) == pytest.approx(0.25)
        assert p.delay(2) == pytest.approx(0.5)
        assert p.delay(3) == pytest.approx(1.0)

    def test_cap(self):
        p = RetryPolicy(backoff_base=0.25, backoff_max=2.0, jitter=0.0)
        assert p.delay(50) == 2.0

    def test_jitter_is_deterministic_per_key(self):
        p = RetryPolicy(backoff_base=0.25)
        key = "f" * 64
        assert p.delay(1, key) == p.delay(1, key)
        assert p.delay(1, key) == pytest.approx(0.25 * 1.25)  # max jitter
        assert p.delay(1, "0" * 64) == pytest.approx(0.25)    # zero jitter
        assert p.delay(1) == pytest.approx(0.25)              # no key

    def test_options_build_policy(self):
        opts = SweepOptions(max_retries=5, backoff=0.125)
        p = opts.retry_policy()
        assert p.max_retries == 5 and p.backoff_base == 0.125


# ---------------------------------------------------------------------------
# structured worker records
# ---------------------------------------------------------------------------
class TestExecuteJob:
    def test_ok_record(self, small):
        job = good_job()
        rec = execute_job(job)
        assert rec["ok"] is True and rec["key"] == job.key()
        assert_results_equal(CaseResult.from_dict(rec["result"]), small)

    def test_error_record(self):
        rec = execute_job(FailJob(case="case1", scheme="1Q"))
        assert rec["ok"] is False
        err = rec["error"]
        assert err["exception"] == "RuntimeError"
        assert err["message"] == "injected failure"
        assert "RuntimeError: injected failure" in err["traceback"]


# ---------------------------------------------------------------------------
# serial failure handling
# ---------------------------------------------------------------------------
class TestSerialFailures:
    def test_failed_cell_does_not_abort_the_sweep(self, small):
        jobs = [FailJob(case="case1", scheme="CCFIT", time_scale=SCALE), good_job()]
        report = run_sweep(jobs, options=SweepOptions(max_retries=1, **FAST))
        assert report.failed == 1 and report.ok == 1
        assert report.results[0] is None
        assert_results_equal(report.results[1], small)
        assert "1Q" in report.by_scheme() and "CCFIT" not in report.by_scheme()
        f = report.failures[0]
        assert f.kind == "error" and f.exception == "RuntimeError"
        assert f.attempts == 2 and f.label == "case1/CCFIT"
        assert report.retried == 1
        assert "1 FAILED" in report.summary() and "1 retried" in report.summary()

    def test_retry_recovers_a_flaky_cell(self, tmp_path, small):
        marker = str(tmp_path / "attempts")
        job = FlakyJob(case="case1", scheme="1Q", time_scale=SCALE,
                       extra=(("marker", marker), ("fails", "2")))
        report = run_sweep([job], options=SweepOptions(max_retries=2, **FAST))
        assert report.failed == 0 and report.retried == 2
        assert os.path.getsize(marker) == 3  # 2 failures + 1 success
        assert_results_equal(report.results[0], small)

    def test_zero_retries(self):
        report = run_sweep(
            [FailJob(case="case1", scheme="1Q")],
            options=SweepOptions(max_retries=0, **FAST),
        )
        assert report.failed == 1 and report.retried == 0
        assert report.failures[0].attempts == 1

    def test_manifest_structure(self, tmp_path):
        jobs = [FailJob(case="case1", scheme="CCFIT", time_scale=SCALE), good_job()]
        report = run_sweep(jobs, options=SweepOptions(max_retries=0, **FAST))
        m = report.manifest()
        assert m["schema"] == 1 and m["cells"] == 2
        assert m["ok"] == 1 and m["failed"] == 1
        statuses = {c["label"]: c["status"] for c in m["jobs"]}
        assert statuses == {"case1/CCFIT": "failed", "case1/1Q": "ok"}
        assert m["failures"][0]["exception"] == "RuntimeError"
        out = tmp_path / "deep" / "manifest.json"
        report.write_manifest(out)
        assert json.loads(out.read_text())["failed"] == 1


# ---------------------------------------------------------------------------
# cache integrity
# ---------------------------------------------------------------------------
class TestCacheIntegrity:
    def put_one(self, tmp_path, small):
        cache = ResultCache(tmp_path)
        key = good_job().key()
        cache.put(key, small, job=good_job())
        return cache, key

    def test_digest_mismatch_is_quarantined(self, tmp_path, small):
        cache, key = self.put_one(tmp_path, small)
        data = json.loads(cache.path(key).read_text())
        data["result"]["scheme"] = "CCFIT"  # bit-flip the payload
        cache.path(key).write_text(json.dumps(data))
        with pytest.warns(RuntimeWarning, match="digest mismatch"):
            assert cache.get(key) is None
        assert cache.discarded == 1
        assert (cache.quarantine_dir / f"{key}.json").exists()
        assert not cache.path(key).exists()

    def test_truncated_entry_is_quarantined(self, tmp_path, small):
        cache, key = self.put_one(tmp_path, small)
        text = cache.path(key).read_text()
        cache.path(key).write_text(text[: len(text) // 2])
        with pytest.warns(RuntimeWarning, match="invalid JSON"):
            assert cache.get(key) is None
        assert cache.discarded == 1

    def test_wrong_schema_is_quarantined(self, tmp_path, small):
        cache, key = self.put_one(tmp_path, small)
        cache.path(key).write_text(json.dumps({"something": "else"}))
        with pytest.warns(RuntimeWarning, match="unrecognized entry schema"):
            assert cache.get(key) is None

    def test_legacy_entry_without_digest_still_reads(self, tmp_path, small):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.path(key).write_text(json.dumps({"result": small.to_dict()}))
        assert_results_equal(cache.get(key), small)
        assert cache.discarded == 0

    def test_writes_are_atomic(self, tmp_path, small):
        cache, key = self.put_one(tmp_path, small)
        # no temp droppings survive a successful put
        assert [p.name for p in tmp_path.iterdir()] == [f"{key}.json"]

    def test_sweep_recomputes_a_corrupted_cell(self, tmp_path, small):
        opts = SweepOptions(cache_dir=str(tmp_path))
        run_sweep([good_job()], options=opts)
        cache = ResultCache(tmp_path)
        key = good_job().key()
        cache.path(key).write_text("{torn write")
        with pytest.warns(RuntimeWarning, match="discarded"):
            report = run_sweep([good_job()], options=opts)
        assert (report.hits, report.misses) == (0, 1)
        assert report.cache_discarded == 1
        assert_results_equal(report.results[0], small)
        # the recomputed entry is valid again
        assert_results_equal(ResultCache(tmp_path).get(key), small)


# ---------------------------------------------------------------------------
# journal + resume
# ---------------------------------------------------------------------------
class TestJournalResume:
    def test_load_tolerates_truncated_tail(self, tmp_path, small):
        path = tmp_path / "sweep.jsonl"
        good = json.dumps({"key": "k1", "ok": True, "result": small.to_dict()})
        path.write_text(good + "\n" + good[: len(good) // 3])
        done = SweepJournal(path).load()
        assert list(done) == ["k1"]

    def test_failure_lines_are_not_replayed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.record_failure(
            JobFailure(key="k1", label="case1/1Q", kind="error",
                       exception="RuntimeError", message="boom")
        )
        journal.close()
        assert SweepJournal(path).load() == {}

    def test_resume_skips_journaled_cells_bit_identically(self, tmp_path, small):
        path = str(tmp_path / "sweep.jsonl")
        a, b = good_job("1Q"), good_job("FBICM")
        first = run_sweep([a], options=SweepOptions(journal=path))
        assert first.misses == 1
        # the interrupted sweep restarts with a *larger* grid
        report = run_sweep([a, b], options=SweepOptions(journal=path, resume=True))
        assert (report.resumed, report.misses) == (1, 1)
        assert "1 resumed from journal" in report.summary()
        clean = run_sweep([a, b])
        for x, y in zip(report.results, clean.results):
            assert_results_equal(x, y)

    def test_failed_cells_retry_on_resume(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        fail = FailJob(case="case1", scheme="1Q")
        run_sweep([fail], options=SweepOptions(journal=path, max_retries=0, **FAST))
        assert len(SweepJournal(path).path.read_text().splitlines()) == 1
        report = run_sweep(
            [fail], options=SweepOptions(journal=path, resume=True, max_retries=0, **FAST)
        )
        assert report.resumed == 0 and report.failed == 1


# ---------------------------------------------------------------------------
# real worker pools (tier2)
# ---------------------------------------------------------------------------
@pytest.mark.tier2
class TestPoolFailures:
    def test_worker_crash_is_quarantined_not_fatal(self, small):
        """A job that kills its worker must not take down the sweep: the
        poisoned cell is retried in isolation and reported; innocent
        cells complete with bit-identical results."""
        jobs = [
            CrashJob(case="case1", scheme="CCFIT", time_scale=SCALE),
            good_job("1Q"),
            good_job("FBICM"),
        ]
        report = run_sweep(jobs, options=SweepOptions(jobs=2, max_retries=0, **FAST))
        assert report.failed == 1
        f = report.failures[0]
        assert f.kind == "crash" and f.exception == "WorkerCrash"
        assert report.results[0] is None
        clean = run_sweep([jobs[1], jobs[2]])
        assert_results_equal(report.results[1], clean.results[0])
        assert_results_equal(report.results[2], clean.results[1])

    def test_timeout_kills_a_wedged_job(self):
        report = run_sweep(
            [SlowJob(case="case1", scheme="1Q")],
            options=SweepOptions(timeout=0.75, max_retries=0, **FAST),
        )
        assert report.failed == 1
        f = report.failures[0]
        assert f.kind == "timeout" and f.exception == "JobTimeout"
        assert "0.8 s" in f.message or "0.7 s" in f.message

    def test_parallel_timeout_with_survivors(self, small):
        jobs = [
            SlowJob(case="case1", scheme="CCFIT", time_scale=SCALE),
            good_job("1Q"),
            good_job("FBICM"),
        ]
        report = run_sweep(
            jobs, options=SweepOptions(jobs=2, timeout=1.5, max_retries=0, **FAST)
        )
        assert report.failed == 1 and report.failures[0].kind == "timeout"
        assert report.results[0] is None
        assert report.results[1] is not None and report.results[2] is not None
        assert_results_equal(report.results[1], small)

    def test_injected_failures_report_exactly(self, tmp_path):
        """The acceptance scenario: crash + timeout + corrupted cache
        entry in one sweep — exactly the injected failures appear, and
        the survivors are bit-identical to a clean serial run."""
        jobs = [
            CrashJob(case="case1", scheme="CCFIT", time_scale=SCALE),
            SlowJob(case="case1", scheme="ITh", time_scale=SCALE),
            good_job("1Q"),
            good_job("FBICM"),
        ]
        opts = SweepOptions(cache_dir=str(tmp_path), jobs=2,
                            timeout=1.5, max_retries=0, **FAST)
        # pre-corrupt the cache entry for the first good job
        run_sweep([jobs[2]], options=SweepOptions(cache_dir=str(tmp_path)))
        ResultCache(tmp_path).path(jobs[2].key()).write_text("{torn")
        with pytest.warns(RuntimeWarning, match="discarded"):
            report = run_sweep(jobs, options=opts)
        assert report.cache_discarded == 1 and report.hits == 0
        assert {f.kind for f in report.failures} == {"crash", "timeout"}
        assert {f.label for f in report.failures} == {"case1/CCFIT", "case1/ITh"}
        clean = run_sweep([jobs[2], jobs[3]])
        assert_results_equal(report.results[2], clean.results[0])
        assert_results_equal(report.results[3], clean.results[1])
        m = report.manifest()
        assert m["failed"] == 2 and m["ok"] == 2
