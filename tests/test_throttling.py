"""Unit tests for FECN marking and the source throttling state."""

import numpy as np

from repro.core.params import CCParams, linear_cct
from repro.core.throttling import FecnMarker, ThrottleState
from repro.network.packet import Packet
from repro.sim.engine import Simulator


def pkt(size=2048):
    return Packet(0, 1, size, "f")


class TestFecnMarker:
    def test_marks_at_full_rate(self):
        m = FecnMarker(CCParams(marking_rate=1.0), np.random.default_rng(0))
        p = pkt()
        assert m.maybe_mark(p)
        assert p.fecn
        assert m.marked == 1 and m.considered == 1

    def test_packet_size_floor(self):
        m = FecnMarker(
            CCParams(marking_rate=1.0, min_marking_size=1024), np.random.default_rng(0)
        )
        small = pkt(size=512)
        assert not m.maybe_mark(small)
        assert not small.fecn
        assert m.maybe_mark(pkt(size=2048))

    def test_marking_rate_is_statistical(self):
        m = FecnMarker(CCParams(marking_rate=0.85), np.random.default_rng(1))
        marked = sum(m.maybe_mark(pkt()) for _ in range(2000))
        assert 0.80 * 2000 < marked < 0.90 * 2000


class TestThrottleState:
    def _make(self, **params):
        sim = Simulator()
        p = CCParams(cct=linear_cct(entries=8, step=100.0), **params)
        return sim, ThrottleState(sim, p)

    def test_unthrottled_by_default(self):
        sim, ts = self._make()
        assert ts.ccti(3) == 0
        assert ts.ird(3) == 0.0
        assert ts.next_allowed(3) == 0.0
        assert ts.throttled_destinations() == []

    def test_becn_raises_index_and_ird(self):
        sim, ts = self._make(becn_min_interval=0.0)
        ts.on_becn(3)
        assert ts.ccti(3) == 1
        assert ts.ird(3) == 100.0
        ts.on_becn(3)
        assert ts.ccti(3) == 2
        assert ts.throttled_destinations() == [3]

    def test_index_clamps_at_cct_end(self):
        sim, ts = self._make(becn_min_interval=0.0)
        for _ in range(100):
            ts.on_becn(3)
        assert ts.ccti(3) == 7  # len(cct) - 1
        assert ts.max_ccti_seen == 7

    def test_timer_decays_one_step_per_period(self):
        sim, ts = self._make(ccti_timer=1000.0, becn_min_interval=0.0)
        ts.on_becn(3)
        ts.on_becn(3)
        assert ts.ccti(3) == 2
        sim.run(until=1000.0)
        assert ts.ccti(3) == 1
        sim.run(until=2000.0)
        assert ts.ccti(3) == 0
        sim.run(until=10_000.0)
        assert ts.ccti(3) == 0  # timer chain stops at zero

    def test_becn_rearms_timer(self):
        sim, ts = self._make(ccti_timer=1000.0, becn_min_interval=0.0)
        ts.on_becn(3)
        sim.run(until=900.0)
        ts.on_becn(3)  # re-arms: decay now due at 1900
        sim.run(until=1100.0)
        assert ts.ccti(3) == 2
        sim.run(until=1900.0)
        assert ts.ccti(3) == 1

    def test_becn_coalescing_window(self):
        sim, ts = self._make(becn_min_interval=500.0)
        ts.on_becn(3)
        ts.on_becn(3)  # within the window: coalesced
        assert ts.ccti(3) == 1
        assert ts.becns == 2
        sim.schedule(600.0, lambda: None)
        sim.run(until=600.0)  # past the window, before the decay timer
        ts.on_becn(3)
        assert ts.ccti(3) == 2

    def test_lti_gates_next_injection(self):
        sim, ts = self._make(becn_min_interval=0.0)
        ts.on_becn(3)  # IRD = 100
        ts.record_injection(3, now=50.0)
        assert ts.next_allowed(3) == 150.0
        # other destinations unaffected
        assert ts.next_allowed(4) == 0.0

    def test_release_callback_fires_on_decay(self):
        sim = Simulator()
        fired = []
        ts = ThrottleState(
            sim,
            CCParams(cct=linear_cct(entries=4, step=10.0), ccti_timer=100.0, becn_min_interval=0.0),
            on_release=lambda: fired.append(sim.now),
        )
        ts.on_becn(1)
        sim.run(until=300.0)
        assert fired == [100.0]
