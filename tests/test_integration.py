"""End-to-end integration tests on small fabrics.

These exercise the full stack — generators, IAs, links, switches, CC
protocol — and check the invariants a lossless network must keep.
"""

import pytest

from repro.core.params import CCParams
from repro.network.fabric import build_fabric
from repro.network.topology import config1_adhoc, k_ary_n_tree
from repro.traffic.flows import FlowSpec, attach_traffic

ALL_SCHEMES = ("1Q", "VOQsw", "VOQnet", "FBICM", "ITh", "CCFIT")


def drain(fab, slack=5_000_000.0):
    """Run until all offered traffic has been delivered (or fail)."""
    fab.run(until=fab.sim.now + slack)
    assert fab.in_flight_packets() == 0, (
        f"{fab.in_flight_packets()} packets stuck "
        f"(buffered={fab.stats()['buffered_bytes']})"
    )


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_every_offered_packet_is_delivered_exactly_once(scheme):
    """Losslessness: credit flow control must never drop or duplicate."""
    fab = build_fabric(config1_adhoc(), scheme=scheme, seed=2)
    flows = [
        FlowSpec("a", src=0, dst=4, rate=2.5, end=500_000.0),
        FlowSpec("b", src=1, dst=4, rate=2.5, end=500_000.0),
        FlowSpec("c", src=5, dst=4, rate=2.5, end=500_000.0),
        FlowSpec("d", src=2, dst=3, rate=2.5, end=500_000.0),
    ]
    attach_traffic(fab, flows=flows)
    fab.run(until=500_000.0)
    drain(fab)
    stats = fab.stats()
    assert stats["delivered_packets"] == stats["generated_packets"]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_per_flow_fifo_order_preserved(scheme):
    """Deterministic routing on one path must deliver in order."""
    fab = build_fabric(k_ary_n_tree(2, 3), scheme=scheme, seed=2)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("x", src=0, dst=7, rate=2.5, end=300_000.0),
            FlowSpec("y", src=1, dst=7, rate=2.5, end=300_000.0),
        ],
    )
    seen = {}
    orig = fab.collector.record_delivery

    def check_order(pkt, now):
        last = seen.get(pkt.flow)
        assert last is None or pkt.pid > last, f"{pkt.flow} reordered"
        seen[pkt.flow] = pkt.pid
        orig(pkt, now)

    for node in fab.nodes:
        node.on_delivery = check_order
    fab.run(until=300_000.0)
    drain(fab)


def test_buffer_pools_never_exceed_capacity():
    """BufferPool raises on overflow, so surviving a congested run is
    itself the invariant; verify pools are back to empty after drain."""
    fab = build_fabric(config1_adhoc(), scheme="1Q", seed=2)
    attach_traffic(
        fab,
        flows=[
            FlowSpec(f"h{s}", src=s, dst=4, rate=2.5, end=1_000_000.0)
            for s in (0, 1, 2, 5, 6)
        ],
    )
    fab.run(until=1_000_000.0)
    drain(fab)
    for sw in fab.switches:
        for port in sw.input_ports:
            assert port.pool.used == 0


def test_same_seed_is_bit_identical():
    def run(seed):
        fab = build_fabric(k_ary_n_tree(2, 3), scheme="CCFIT", seed=seed)
        attach_traffic(
            fab,
            flows=[FlowSpec("f", src=0, dst=7, rate=2.5, end=400_000.0)],
            uniform=[{"node": 2, "rate": 2.5, "name": "u", "end": 400_000.0}],
        )
        fab.run(until=600_000.0)
        s = fab.stats()
        return (s["delivered_packets"], s["delivered_bytes"], s["events"])

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_congestion_tree_lifecycle():
    """A hotspot builds CFQs along the path; when it ends, every CAM
    line and CFQ deallocates and the resources are reusable."""
    fab = build_fabric(config1_adhoc(), scheme="FBICM", seed=2)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("h1", src=1, dst=4, rate=2.5, start=0.0, end=1_000_000.0),
            FlowSpec("h2", src=2, dst=4, rate=2.5, start=0.0, end=1_000_000.0),
            FlowSpec("h5", src=5, dst=4, rate=2.5, start=0.0, end=1_000_000.0),
        ],
    )
    fab.run(until=800_000.0)
    assert fab.stats()["allocated_cfqs"] > 0, "congestion never isolated"
    fab.run(until=1_000_000.0)
    drain(fab)
    fab.run(until=fab.sim.now + 1_000_000.0)  # give hysteresis time
    assert fab.stats()["allocated_cfqs"] == 0, "CFQs leaked after the tree"
    for sw in fab.switches:
        for op in sw.output_ports:
            assert op.out_cam.lines() == [], "output CAM leaked"
            assert not op.congested


def test_becn_loop_closes_end_to_end():
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=2)
    attach_traffic(
        fab,
        flows=[
            FlowSpec(f"h{s}", src=s, dst=4, rate=2.5, end=2_000_000.0)
            for s in (1, 2, 5, 6)
        ],
    )
    fab.run(until=2_000_000.0)
    s = fab.stats()
    assert s["fecn_marked"] > 0, "congested port never marked"
    assert s["becns_sent"] > 0
    assert s["becns_received"] > 0
    assert s["becns_sent"] == s["becns_received"], "BECNs lost in transit"


def test_ccfit_with_zero_cfqs_still_functions():
    """Failure injection: no isolation resources at all — the network
    must stay lossless (degenerates towards 1Q + throttling)."""
    params = CCParams(num_cfqs=0)
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", params=params, seed=2)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("h1", src=1, dst=4, rate=2.5, end=500_000.0),
            FlowSpec("v", src=0, dst=3, rate=2.5, end=500_000.0),
        ],
    )
    fab.run(until=500_000.0)
    drain(fab)
    assert fab.stats()["delivered_packets"] == fab.stats()["generated_packets"]


def test_single_cfq_exhaustion_is_survivable():
    """More trees than CFQs: HoL returns (counted) but nothing breaks."""
    params = CCParams(num_cfqs=1)
    fab = build_fabric(k_ary_n_tree(2, 3), scheme="FBICM", params=params, seed=2)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("h7a", src=0, dst=7, rate=2.5, end=800_000.0),
            FlowSpec("h7b", src=1, dst=7, rate=2.5, end=800_000.0),
            FlowSpec("h6a", src=2, dst=6, rate=2.5, end=800_000.0),
            FlowSpec("h6b", src=3, dst=6, rate=2.5, end=800_000.0),
        ],
    )
    fab.run(until=800_000.0)
    drain(fab)
    assert fab.stats()["delivered_packets"] == fab.stats()["generated_packets"]


def test_link_downscaling_creates_congestion_and_ccfit_reacts():
    """The intro's frequency/voltage-scaling cause: halving a link's
    speed mid-run congests it; CCFIT isolates and throttles."""
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=2)
    attach_traffic(
        fab, flows=[FlowSpec("f", src=1, dst=4, rate=2.5, end=2_000_000.0)]
    )
    # scale node 4's downlink to 1/4 speed at t = 0.2 ms
    down = fab.nodes[4].downlink
    fab.sim.schedule(200_000.0, down.set_bandwidth, 0.625)
    fab.run(until=2_000_000.0)
    s = fab.stats()
    assert s["fecn_marked"] > 0, "downscaled link never detected"
    late = fab.collector.flow_bandwidth("f", 1_500_000.0, 2_000_000.0)
    # the flow is pinned near the new capacity (throttling saw-tooths
    # below it, never above)
    assert 0.25 < late <= 0.625 * 1.05


def test_victim_protection_minimal_pair():
    """The core CCFIT promise on the smallest possible scenario:
    a victim sharing the inter-switch link with a hotspot flow is
    crushed under 1Q but runs at full rate under FBICM and CCFIT."""
    results = {}
    for scheme in ("1Q", "FBICM", "CCFIT"):
        fab = build_fabric(config1_adhoc(), scheme=scheme, seed=2)
        attach_traffic(
            fab,
            flows=[
                FlowSpec("victim", src=0, dst=3, rate=2.5),
                FlowSpec("hog1", src=1, dst=4, rate=2.5),
                FlowSpec("hog2", src=2, dst=4, rate=2.5),
                FlowSpec("hog5", src=5, dst=4, rate=2.5),
            ],
        )
        fab.run(until=3_000_000.0)
        # measure after the throttle loop has converged (~1 ms here)
        results[scheme] = fab.collector.flow_bandwidth(
            "victim", 2_000_000.0, 3_000_000.0
        )
    assert results["1Q"] < 1.5
    assert results["FBICM"] > 2.2
    # CCFIT's victim runs within ~15 % of wire speed (sporadic marking
    # episodes at the shared port cost a little; 1Q costs 80 %)
    assert results["CCFIT"] > 2.0
