"""Sweep engine: serialization, cache hit/miss, determinism, compat.

Everything here runs tiny 0.02x cells so the tier-1 suite stays fast;
the tests that bring up real worker pools are marked ``tier2`` (run
them with ``pytest -m tier2``).
"""

import json

import numpy as np
import pytest

from repro.core.params import CCParams
from repro.experiments.runner import (
    CaseResult,
    run_case,
    run_case1,
    run_case4,
    run_fig7,
    run_fig9,
)
from repro.experiments.sweep import (
    ResultCache,
    SimJob,
    SweepOptions,
    run_sweep,
)

SCALE = 0.02


@pytest.fixture(scope="module")
def small() -> CaseResult:
    return run_case1("1Q", time_scale=SCALE)


def assert_results_equal(a: CaseResult, b: CaseResult) -> None:
    assert a.scheme == b.scheme
    assert a.duration == b.duration
    assert a.window == b.window
    assert np.array_equal(a.throughput[0], b.throughput[0])
    assert np.array_equal(a.throughput[1], b.throughput[1])
    assert set(a.flow_series) == set(b.flow_series)
    for name in a.flow_series:
        assert np.array_equal(a.flow_series[name][0], b.flow_series[name][0])
        assert np.array_equal(a.flow_series[name][1], b.flow_series[name][1])
    assert a.flow_bandwidth == b.flow_bandwidth
    assert a.stats == b.stats


class TestCaseResultSerialization:
    def test_dict_roundtrip_is_lossless(self, small):
        assert_results_equal(CaseResult.from_dict(small.to_dict()), small)

    def test_json_roundtrip_is_lossless(self, small):
        """The cache stores JSON text; repr-based float encoding must
        reproduce every array bit-for-bit."""
        revived = CaseResult.from_dict(json.loads(json.dumps(small.to_dict())))
        assert_results_equal(revived, small)

    def test_arrays_revive_as_ndarrays(self, small):
        revived = CaseResult.from_dict(small.to_dict())
        assert isinstance(revived.throughput[0], np.ndarray)
        assert revived.throughput[0].dtype == np.float64
        name = next(iter(revived.flow_series))
        assert isinstance(revived.flow_series[name][1], np.ndarray)

    def test_window_revives_as_tuple(self, small):
        revived = CaseResult.from_dict(small.to_dict())
        assert revived.window == small.window
        assert isinstance(revived.window, tuple)
        # tail-window aggregation works identically on the revived copy
        assert revived.mean_throughput() == small.mean_throughput()


class TestSimJob:
    def test_key_is_stable(self):
        a = SimJob(case="case1", scheme="1Q", time_scale=0.1, seed=3)
        b = SimJob(case="case1", scheme="1Q", time_scale=0.1, seed=3)
        assert a.key() == b.key()
        assert len(a.key()) == 64

    @pytest.mark.parametrize(
        "kw",
        [
            {"scheme": "CCFIT"},
            {"seed": 4},
            {"time_scale": 0.2},
            {"case": "case2"},
            {"params": CCParams(num_cfqs=4)},
            {"extra": (("num_trees", 6),)},
        ],
    )
    def test_key_covers_every_field(self, kw):
        base = dict(case="case1", scheme="1Q", time_scale=0.1, seed=3)
        varied = {**base, **kw}
        assert SimJob(**base).key() != SimJob(**varied).key()

    def test_default_params_key_explicit(self):
        """params=None hashes like explicit defaults — a cell's output
        is identical either way, so the cache must unify them."""
        assert (
            SimJob(case="case1", scheme="1Q").key()
            == SimJob(case="case1", scheme="1Q", params=CCParams()).key()
        )

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            SimJob(case="case9", scheme="1Q")

    def test_run_matches_direct_call(self, small):
        res = SimJob(case="case1", scheme="1Q", time_scale=SCALE).run()
        assert_results_equal(res, small)


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_put_get_roundtrip(self, tmp_path, small):
        cache = ResultCache(tmp_path)
        job = SimJob(case="case1", scheme="1Q", time_scale=SCALE)
        cache.put(job.key(), small, job=job)
        assert len(cache) == 1
        assert_results_equal(cache.get(job.key()), small)

    def test_corrupt_entry_is_a_miss(self, tmp_path, small):
        cache = ResultCache(tmp_path)
        cache.put("deadbeef", small)
        cache.path("deadbeef").write_text("{not json")
        with pytest.warns(RuntimeWarning, match="discarded"):
            assert cache.get("deadbeef") is None

    def test_clear(self, tmp_path, small):
        cache = ResultCache(tmp_path)
        cache.put("aa", small)
        cache.put("bb", small)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRunSweep:
    def jobs(self, schemes=("1Q",)):
        return [SimJob(case="case1", scheme=s, time_scale=SCALE) for s in schemes]

    def test_serial_no_cache(self, small):
        report = run_sweep(self.jobs())
        assert report.hits == 0 and report.misses == 1
        assert_results_equal(report.results[0], small)
        assert report.by_scheme()["1Q"].scheme == "1Q"

    def test_cache_miss_then_hit(self, tmp_path, small):
        opts = SweepOptions(cache_dir=str(tmp_path))
        first = run_sweep(self.jobs(), options=opts)
        assert (first.hits, first.misses) == (0, 1)
        second = run_sweep(self.jobs(), options=opts)
        assert (second.hits, second.misses) == (1, 0)
        assert_results_equal(second.results[0], small)

    def test_use_cache_false_bypasses_dir(self, tmp_path):
        opts = SweepOptions(cache_dir=str(tmp_path), use_cache=False)
        run_sweep(self.jobs(), options=opts)
        report = run_sweep(self.jobs(), options=opts)
        assert report.hits == 0 and len(ResultCache(tmp_path)) == 0

    def test_partial_hits(self, tmp_path):
        opts = SweepOptions(cache_dir=str(tmp_path))
        run_sweep(self.jobs(("1Q",)), options=opts)
        report = run_sweep(self.jobs(("1Q", "FBICM")), options=opts)
        assert (report.hits, report.misses) == (1, 1)
        assert {r.scheme for r in report.results} == {"1Q", "FBICM"}

    def test_seed_changes_miss(self, tmp_path):
        opts = SweepOptions(cache_dir=str(tmp_path))
        run_sweep(self.jobs(), options=opts)
        report = run_sweep(
            [SimJob(case="case1", scheme="1Q", time_scale=SCALE, seed=2)], options=opts
        )
        assert report.hits == 0


@pytest.mark.tier2
class TestParallelDeterminism:
    """`--jobs 2` must be bit-for-bit identical to the serial path."""

    def test_parallel_equals_serial(self):
        jobs = [SimJob(case="case1", scheme=s, time_scale=SCALE) for s in ("1Q", "FBICM")]
        serial = run_sweep(jobs, options=SweepOptions(jobs=1))
        parallel = run_sweep(jobs, options=SweepOptions(jobs=2))
        assert parallel.misses == 2
        for a, b in zip(serial.results, parallel.results):
            assert_results_equal(a, b)

    def test_parallel_fills_cache_identically(self, tmp_path):
        jobs = [SimJob(case="case1", scheme="1Q", time_scale=SCALE, seed=s) for s in (1, 2)]
        parallel = run_sweep(jobs, options=SweepOptions(jobs=2, cache_dir=str(tmp_path)))
        cached = run_sweep(jobs, options=SweepOptions(jobs=1, cache_dir=str(tmp_path)))
        assert cached.hits == 2
        for a, b in zip(parallel.results, cached.results):
            assert_results_equal(a, b)

    def test_cli_sweep_parallel_then_cached(self, tmp_path, capsys):
        """The acceptance path: `repro sweep fig9 --jobs 2` twice — the
        second run is served entirely from the cache."""
        from repro.cli import main

        argv = ["--scale", str(SCALE), "sweep", "fig9", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cache hit(s)" in first and "4 simulated" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 cache hit(s)" in second and "0 simulated" in second
        # identical per-flow bandwidth tables either way
        tbl = lambda out: [l for l in out.splitlines() if " | " in l]
        assert tbl(first) and tbl(first) == tbl(second)


class TestBackwardsCompatibleSignatures:
    """Old positional call forms keep working through the shims."""

    def test_run_case1_positional(self, small):
        assert_results_equal(run_case1("1Q", SCALE), small)

    def test_run_case1_positional_seed(self):
        res = run_case1("1Q", SCALE, 2)
        assert res.scheme == "1Q"

    def test_run_case1_keyword_only_canonical(self, small):
        assert_results_equal(run_case1(scheme="1Q", time_scale=SCALE), small)

    def test_run_case_rejects_positional_scheme(self):
        with pytest.raises(TypeError):
            run_case("case1", "1Q")

    def test_duplicate_argument_rejected(self):
        with pytest.raises(TypeError):
            run_case1("1Q", scheme="CCFIT")

    def test_too_many_positionals_rejected(self):
        with pytest.raises(TypeError):
            run_case1("1Q", SCALE, 1, None, "extra")

    def test_run_case4_legacy_num_trees(self):
        res = run_case4("1Q", 1, SCALE, 1, None, 3.0)
        assert res.window[0] == pytest.approx(SCALE * 1e6)

    def test_run_fig_positional_schemes(self, small):
        res = run_fig9(("1Q",), SCALE)
        assert list(res) == ["1Q"]
        assert_results_equal(res["1Q"], small)

    def test_run_fig7_panel_positional(self):
        res = run_fig7("a", ("1Q",), SCALE)
        assert list(res) == ["1Q"]

    def test_run_fig_options_object(self, tmp_path, small):
        res = run_fig9(
            schemes=("1Q",),
            options=SweepOptions(time_scale=SCALE, cache_dir=str(tmp_path)),
        )
        assert_results_equal(res["1Q"], small)
        assert len(ResultCache(tmp_path)) == 1
