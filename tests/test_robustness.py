"""Multi-seed robustness: the headline claims are not seed artifacts.

Uses compressed-time runs over several seeds; the paired-seed
comparison utilities are unit-tested separately below.
"""

import pytest

from repro.experiments.seedcheck import SweepStats, claim_holds, seed_sweep
from repro.experiments.runner import run_case1
from repro.metrics.analysis import jain_index

SEEDS = (1, 2, 3)
CONTRIB = ("F1", "F2", "F5", "F6")

METRICS = {
    "victim": lambda r: r.flow_bandwidth["F0"],
    "jain": lambda r: jain_index([r.flow_bandwidth[f] for f in CONTRIB]),
    "throughput": lambda r: r.mean_throughput(),
}


@pytest.fixture(scope="module")
def sweeps():
    return {
        scheme: seed_sweep(run_case1, scheme, SEEDS, METRICS, time_scale=0.4)
        for scheme in ("1Q", "FBICM", "CCFIT")
    }


def test_victim_claim_holds_across_seeds(sweeps):
    """CCFIT's victim protection beats 1Q on every seed, by >2.5x."""
    assert claim_holds(
        sweeps["CCFIT"]["victim"].values, sweeps["1Q"]["victim"].values, margin=2.5
    )


def test_fairness_claim_holds_across_seeds(sweeps):
    """CCFIT is fairer than FBICM on every seed."""
    assert claim_holds(
        sweeps["CCFIT"]["jain"].values, sweeps["FBICM"]["jain"].values
    )


def test_seed_variance_is_moderate(sweeps):
    """Deterministic workloads: seed only drives marking lotteries, so
    the victim metric must be stable (< 15 % rel. std)."""
    v = sweeps["CCFIT"]["victim"]
    assert v.std < 0.15 * v.mean


class TestUtilities:
    def test_sweepstats_aggregates(self):
        s = SweepStats("m", (1.0, 2.0, 3.0))
        assert s.mean == 2.0
        assert s.min == 1.0 and s.max == 3.0
        assert s.std > 0

    def test_claim_holds_paired(self):
        assert claim_holds([3, 3, 3], [1, 1, 1], margin=2.0)
        assert not claim_holds([3, 3, 1], [1, 1, 1], margin=2.0)
        assert claim_holds([3, 3, 1], [1, 1, 1], margin=2.0, allowed_violations=1)

    def test_claim_holds_length_mismatch(self):
        with pytest.raises(ValueError):
            claim_holds([1], [1, 2])
