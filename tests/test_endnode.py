"""Unit tests for end nodes (sink + Input Adapter) on tiny fabrics."""

import pytest

from repro.core.params import CCParams, linear_cct
from repro.network.fabric import build_fabric
from repro.network.packet import Packet
from repro.network.topology import config1_adhoc


def fab_1q(**overrides):
    params = CCParams(**overrides) if overrides else None
    return build_fabric(config1_adhoc(), scheme="1Q", params=params, seed=0)


def test_offer_to_self_rejected():
    fab = fab_1q()
    with pytest.raises(ValueError):
        fab.nodes[0].offer(Packet(0, 0, 2048, "f"))


def test_offer_backpressure_when_advoq_full():
    fab = fab_1q(advoq_cap_packets=2)
    node = fab.nodes[0]
    # do not run the sim: packets pile into the AdVOQ/staging
    assert node.offer(Packet(0, 3, 2048, "f"))
    accepted = 1
    while node.offer(Packet(0, 3, 2048, "f")):
        accepted += 1
        assert accepted < 10
    assert node.offers_rejected == 1
    # AdVOQ cap (2) + staging FIFO (2 packets) absorbed the rest
    assert accepted == 4


def test_single_flow_delivers_at_wire_rate():
    fab = fab_1q()
    from repro.traffic.flows import FlowSpec, attach_traffic

    attach_traffic(fab, flows=[FlowSpec("f", src=0, dst=3, rate=2.5)])
    fab.run(until=1_000_000.0)
    bw = fab.collector.flow_bandwidth("f", 200_000.0, 1_000_000.0)
    assert bw == pytest.approx(2.5, rel=0.03)


def test_delivery_metadata():
    fab = fab_1q()
    from repro.traffic.flows import FlowSpec, attach_traffic

    attach_traffic(fab, flows=[FlowSpec("f", src=0, dst=3, rate=2.5, end=10_000.0)])
    fab.run(until=100_000.0)
    node3 = fab.nodes[3]
    assert node3.packets_delivered > 0
    assert fab.collector.mean_latency("f") > 0


def test_pump_respects_ird():
    """With a throttled destination the IA delays AdVOQ drainage."""
    fab = build_fabric(
        config1_adhoc(),
        scheme="CCFIT",
        params=CCParams(cct=linear_cct(entries=4, step=100_000.0), becn_min_interval=0.0,
                        ccti_timer=1e9),  # no decay during the test
        seed=0,
    )
    node = fab.nodes[0]
    node.throttle.on_becn(3)  # IRD = 100 us towards node 3
    for _ in range(4):
        node.offer(Packet(0, 3, 2048, "f"))
    fab.run(until=50_000.0)
    # one packet goes immediately (LTI starts unset), the rest wait
    assert node.packets_injected <= 1
    fab.run(until=500_000.0)
    assert node.packets_injected == 4


def test_fecn_triggers_becn_and_throttling():
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=0)
    src, dst = fab.nodes[0], fab.nodes[3]
    pkt = Packet(0, 3, 2048, "f")
    pkt.fecn = True  # as if a congested switch port marked it
    src.offer(pkt)
    fab.run(until=100_000.0)
    assert dst.becns_sent == 1
    assert src.throttle.becns == 1
    # the CCTI was raised (and has decayed back via the CCTI_Timer)
    assert src.throttle.max_ccti_seen == 1
    assert src.throttle.ccti(3) == 0


def test_becn_for_other_node_ignored():
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=0)
    from repro.network.packet import Becn

    node = fab.nodes[0]
    node.receive_control(Becn(src=3, dst=5, congested_destination=3), node.downlink)
    assert node.throttle.becns == 0


def test_staging_modes_by_scheme():
    for scheme, mode in [
        ("1Q", "fifo"),
        ("ITh", "fifo"),
        ("VOQsw", "fifo"),
        ("FBICM", "isolation"),
        ("CCFIT", "isolation"),
        ("VOQnet", "bypass"),
    ]:
        fab = build_fabric(config1_adhoc(), scheme=scheme, seed=0)
        assert fab.nodes[0].staging_mode == mode, scheme


def test_bypass_mode_has_no_stage():
    fab = build_fabric(config1_adhoc(), scheme="VOQnet", seed=0)
    assert fab.nodes[0].stage is None
    node = fab.nodes[0]
    node.offer(Packet(0, 3, 2048, "f"))
    fab.run(until=10_000.0)
    assert node.packets_injected == 1


def test_throttle_only_on_throttling_schemes():
    for scheme, has in [("1Q", False), ("FBICM", False), ("ITh", True), ("CCFIT", True)]:
        fab = build_fabric(config1_adhoc(), scheme=scheme, seed=0)
        assert (fab.nodes[0].throttle is not None) == has, scheme


def test_invalid_staging_mode_rejected():
    from repro.network.endnode import EndNode
    from repro.sim.engine import Simulator

    with pytest.raises(ValueError):
        EndNode(Simulator(), 0, 4, CCParams(), staging="warp")


def test_ia_participates_in_tree_protocol():
    """§III-B/D: the first switch announces the congestion tree to the
    IA, which allocates its own CFQ, isolates the hot packets in its
    staging buffer, and obeys Stop/Go."""
    from repro.traffic.flows import FlowSpec, attach_traffic

    fab = build_fabric(config1_adhoc(), scheme="FBICM", seed=0)
    attach_traffic(
        fab,
        flows=[
            # node 1 sends BOTH hot and cool traffic: the IA must keep
            # the cool flow moving while its hot packets sit isolated
            FlowSpec("hot", src=1, dst=4, rate=1.5),
            FlowSpec("cool", src=1, dst=3, rate=1.0),
            FlowSpec("hot2", src=2, dst=4, rate=2.5),
            FlowSpec("hot5", src=5, dst=4, rate=2.5),
            FlowSpec("hot6", src=6, dst=4, rate=2.5),
        ],
    )
    fab.run(until=2_000_000.0)
    ia = fab.nodes[1]
    assert 4 in ia._announced, "tree never announced to the IA"
    line = ia.stage_scheme.cam.lookup(4)
    assert line is not None, "IA never allocated a CFQ"
    # the cool flow keeps its full rate despite sharing the IA
    cool = fab.collector.flow_bandwidth("cool", 1_000_000.0, 2_000_000.0)
    assert cool == pytest.approx(1.0, rel=0.1)


def test_small_packets_and_marking_size_floor():
    """The Packet_Size marking parameter end-to-end: flows of small
    packets cross a congested port unmarked when min_marking_size
    exceeds their size, so their source is never throttled."""
    from repro.traffic.flows import FlowSpec, attach_traffic

    params = CCParams(min_marking_size=1024)
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", params=params, seed=0)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("small", src=1, dst=4, rate=1.25, packet_size=512),
            FlowSpec("big", src=2, dst=4, rate=2.5),
            FlowSpec("big5", src=5, dst=4, rate=2.5),
            FlowSpec("big6", src=6, dst=4, rate=2.5),
        ],
    )
    fab.run(until=2_000_000.0)
    assert fab.stats()["fecn_marked"] > 0
    # only the big-packet sources were throttled
    assert fab.nodes[1].throttle.becns == 0
    assert fab.nodes[2].throttle.becns + fab.nodes[5].throttle.becns > 0
