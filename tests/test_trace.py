"""Protocol-trace tests (and, through them, protocol-dynamics checks)."""

import warnings

import pytest

from repro.metrics.trace import ProtocolTrace, TraceEvent
from repro.network.fabric import build_fabric
from repro.network.topology import config1_adhoc
from repro.traffic.flows import FlowSpec, attach_traffic


def hot_fabric(scheme="CCFIT"):
    fab = build_fabric(config1_adhoc(), scheme=scheme, seed=5)
    trace = ProtocolTrace().attach(fab)
    attach_traffic(
        fab,
        flows=[
            FlowSpec("h1", src=1, dst=4, rate=2.5, end=1_000_000.0),
            FlowSpec("h2", src=2, dst=4, rate=2.5, end=1_000_000.0),
            FlowSpec("h5", src=5, dst=4, rate=2.5, end=1_000_000.0),
        ],
    )
    return fab, trace


def test_trace_records_full_tree_lifecycle():
    fab, trace = hot_fabric()
    fab.run(until=3_000_000.0)
    kinds = trace.counts()
    for expected in ("detect", "adopt", "stop", "go", "dealloc", "cs-enter",
                     "fecn", "becn"):
        assert kinds.get(expected, 0) > 0, f"no {expected} events traced"


def test_trace_query_filters():
    fab, trace = hot_fabric()
    fab.run(until=1_500_000.0)
    detects = trace.query(kind="detect")
    assert detects and all(e.kind == "detect" for e in detects)
    for_dest = trace.query(dest=4)
    assert for_dest and all(e.dest == 4 for e in for_dest)
    both = trace.query(kind="detect", dest=4)
    assert set(both) <= set(detects)


def test_tree_lifetimes_are_positive_and_closed():
    fab, trace = hot_fabric()
    fab.run(until=3_000_000.0)
    lifetimes = trace.tree_lifetimes()
    assert lifetimes, "no tree ever completed its lifecycle"
    for entry in lifetimes:
        assert entry["lifetime"] > 0
        assert entry["end"] <= 3_000_000.0


def test_reaction_latency_is_fast_for_ccfit():
    """The combined mechanism's selling point: from local detection to
    the first source-side BECN within a fraction of a millisecond."""
    fab, trace = hot_fabric()
    fab.run(until=2_000_000.0)
    latency = trace.reaction_latency(4)
    assert latency is not None
    assert 0 < latency < 500_000.0  # well under half a millisecond


def test_fbicm_traces_have_no_marking():
    fab, trace = hot_fabric(scheme="FBICM")
    fab.run(until=1_000_000.0)
    kinds = trace.counts()
    assert kinds.get("detect", 0) > 0
    assert kinds.get("fecn", 0) == 0
    assert kinds.get("becn", 0) == 0


def test_double_attach_rejected():
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=5)
    trace = ProtocolTrace().attach(fab)
    with pytest.raises(RuntimeError):
        trace.attach(fab)


def test_event_limit_bounds_memory():
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=5)
    trace = ProtocolTrace(limit=10).attach(fab)
    attach_traffic(
        fab,
        flows=[FlowSpec(f"h{s}", src=s, dst=4, rate=2.5) for s in (1, 2, 5)],
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        fab.run(until=2_000_000.0)
    assert len(trace.events) == 10


def test_event_limit_counts_drops_and_warns_once():
    """Regression: events past the limit used to vanish silently — now
    they are counted in .dropped and the first drop warns (once)."""
    fab = build_fabric(config1_adhoc(), scheme="CCFIT", seed=5)
    trace = ProtocolTrace(limit=10).attach(fab)
    attach_traffic(
        fab,
        flows=[FlowSpec(f"h{s}", src=s, dst=4, rate=2.5) for s in (1, 2, 5)],
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fab.run(until=2_000_000.0)
    assert len(trace.events) == 10
    assert trace.dropped > 0
    hits = [
        w for w in caught
        if issubclass(w.category, RuntimeWarning) and "ProtocolTrace" in str(w.message)
    ]
    assert len(hits) == 1, "the limit warning must fire exactly once"


def test_untruncated_trace_reports_no_drops():
    fab, trace = hot_fabric()
    fab.run(until=500_000.0)
    assert trace.events
    assert trace.dropped == 0


def test_cam_saturated_fast_path_is_traced():
    """The detection early-out (every line known busy) skips the CAM
    scan, so the event carries no destination — but it must still show
    up in the trace and in the failure counter."""
    from repro.core.isolation import NfqCfqScheme

    fab = build_fabric(config1_adhoc(), scheme="FBICM", seed=5)
    trace = ProtocolTrace().attach(fab)
    scheme = next(
        port.scheme
        for sw in fab.switches
        for port in sw.input_ports
        if isinstance(port.scheme, NfqCfqScheme)
    )
    before = scheme.cam.alloc_failures
    scheme.cam.note_full()
    assert scheme.cam.alloc_failures == before + 1
    events = trace.query(kind="cam-full")
    assert events and events[-1].dest is None


def test_event_str_is_readable():
    e = TraceEvent(time=12_345.0, kind="detect", where="sw1.in4", dest=4, detail="cfq0")
    s = str(e)
    assert "detect" in s and "sw1.in4" in s and "dest=4" in s
