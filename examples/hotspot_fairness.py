#!/usr/bin/env python
"""The fairness study of §IV-C (Fig. 9), runnable in ~20 s.

Replays Traffic Case #1 on Config #1 under all four evaluated schemes
and prints the per-flow bandwidth table: watch the victim flow F0 and
the parking-lot split between the remote contributors (F1, F2 — they
share switch 1's inter-switch input port) and the local ones (F5, F6 —
private ports).

Run:  python examples/hotspot_fairness.py [time_scale]
"""

import sys

from repro.experiments.report import render_flow_table
from repro.experiments.runner import run_fig9
from repro.metrics.analysis import jain_index

FLOWS = ("F0", "F1", "F2", "F5", "F6")
CONTRIBUTORS = ("F1", "F2", "F5", "F6")


def main() -> None:
    time_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"running Traffic Case #1 at {time_scale:.1f}x of the paper's 10 ms ...")
    results = run_fig9(time_scale=time_scale, seed=1)

    print()
    print(render_flow_table(results, FLOWS))
    print()
    for scheme, story in (
        ("1Q", "victim crushed by HoL blocking; F5/F6 exploit the parking lot"),
        ("ITh", "victim restored, contributors equalised — but it took BECN round-trips"),
        ("FBICM", "victim at wire speed instantly; the parking lot is untouched"),
        ("CCFIT", "victim at wire speed AND fair contributors — both halves at work"),
    ):
        res = results[scheme]
        jain = jain_index([res.flow_bandwidth[f] for f in CONTRIBUTORS])
        print(
            f"  {scheme:6s} F0={res.flow_bandwidth['F0']:4.2f} GB/s, "
            f"contributor fairness={jain:.3f}   <- {story}"
        )


if __name__ == "__main__":
    main()
