#!/usr/bin/env python
"""Bring your own topology.

The fabric builder accepts any :class:`repro.network.topology.Topology`
— this example hand-builds a 3-switch ring-ish network (not a fat
tree!), derives deterministic routes with the BFS helper, and runs
CCFIT on it.  Useful as a template for studying congestion control on
custom interconnects.

Run:  python examples/custom_topology.py
"""

from repro import build_fabric
from repro.network.routing import build_routing
from repro.network.topology import SwitchSpec, Topology
from repro.traffic.flows import FlowSpec, attach_traffic

MS = 1_000_000.0


def build_line_network() -> Topology:
    """Three switches in a line, two nodes each:

        n0 n1        n2 n3        n4 n5
         \\ |          | /          | /
        [sw0] ------ [sw1] ------ [sw2]
    """
    topo = Topology(
        name="3-switch line",
        num_nodes=6,
        switches=[SwitchSpec(0, 3), SwitchSpec(1, 4), SwitchSpec(2, 3)],
        node_attach={
            0: (0, 0, 2.5),
            1: (0, 1, 2.5),
            2: (1, 0, 2.5),
            3: (1, 1, 2.5),
            4: (2, 0, 2.5),
            5: (2, 1, 2.5),
        },
        switch_links=[(0, 2, 1, 2, 2.5), (1, 3, 2, 2, 2.5)],
        routes={},
    )
    topo.routes = build_routing(topo)  # deterministic shortest paths
    topo.validate()
    return topo


def main() -> None:
    topo = build_line_network()
    print(f"built {topo.name}: {topo.num_nodes} nodes / {topo.num_switches} switches")
    print("route 0 -> 5 crosses:", [f"sw{sw}" for sw, _p in topo.path(0, 5)])

    fabric = build_fabric(topo, scheme="CCFIT", seed=3)
    attach_traffic(
        fabric,
        flows=[
            # long flow crossing both inter-switch links
            FlowSpec("long", src=0, dst=5, rate=2.5),
            # hotspot on node 4 congesting the sw1-sw2 link region
            FlowSpec("hot-a", src=1, dst=4, rate=2.5),
            FlowSpec("hot-b", src=2, dst=4, rate=2.5),
            FlowSpec("hot-c", src=3, dst=4, rate=2.5),
        ],
    )
    fabric.run(until=3 * MS)

    c = fabric.collector
    print("\nper-flow bandwidth in the last millisecond (GB/s):")
    for flow in c.flows():
        print(f"  {flow:6s} {c.flow_bandwidth(flow, 2 * MS, 3 * MS):5.2f}")
    print(
        "\nnote: 'long' shares every link with the hotspot flows, yet "
        "CCFIT keeps it at its fair share of the sw1->sw2 bottleneck."
    )


if __name__ == "__main__":
    main()
