#!/usr/bin/env python
"""Quickstart: build a network, inject a hotspot, watch CCFIT work.

Builds the paper's Config #1 (Fig. 5) — two switches, seven nodes, a
5 GB/s inter-switch link — runs a 2 ms hotspot scenario under CCFIT,
and prints what happened: per-flow bandwidth, FECN/BECN activity and
the congestion-tree bookkeeping.

Run:  python examples/quickstart.py
"""

from repro import build_fabric, config1_adhoc
from repro.traffic.flows import FlowSpec, attach_traffic

MS = 1_000_000.0  # 1 ms in simulation time (ns)


def main() -> None:
    topo = config1_adhoc()
    print(f"topology: {topo.name} — {topo.num_nodes} nodes, {topo.num_switches} switches")
    print(
        """
        nodes 0,1,2          nodes 3,4,5,6
           \\ | /               | | | |
          [switch 0] ========= [switch 1]
                      5 GB/s
        (node links 2.5 GB/s; node 4 is about to get popular)
        """
    )

    fabric = build_fabric(topo, scheme="CCFIT", seed=42)
    attach_traffic(
        fabric,
        flows=[
            # a well-behaved flow crossing the inter-switch link ...
            FlowSpec("victim", src=0, dst=3, rate=2.5),
            # ... and three flows hammering node 4 (7.5 GB/s into 2.5)
            FlowSpec("hog-a", src=1, dst=4, rate=2.5),
            FlowSpec("hog-b", src=2, dst=4, rate=2.5),
            FlowSpec("hog-c", src=5, dst=4, rate=2.5),
        ],
    )

    fabric.run(until=2 * MS)

    c = fabric.collector
    print("per-flow delivered bandwidth over the last millisecond (GB/s):")
    for flow in c.flows():
        print(f"  {flow:8s} {c.flow_bandwidth(flow, 1 * MS, 2 * MS):5.2f}")

    s = fabric.stats()
    print("\nwhat CCFIT did about it:")
    print(f"  congestion trees isolated (CFQ allocations): {int(s['allocated_cfqs'])} live now")
    print(f"  packets FECN-marked at congested ports:      {int(s['fecn_marked'])}")
    print(f"  BECNs returned to the sources:               {int(s['becns_received'])}")
    print(
        "\nThe victim flow runs close to wire speed even though it shares "
        "every queue on its path with the hotspot traffic — isolation "
        "removed the HoL blocking immediately, and throttling shrank the "
        "congestion tree itself.  (Compare scheme='1Q': the victim drops "
        "to ~0.8 GB/s.)"
    )


if __name__ == "__main__":
    main()
