#!/usr/bin/env python
"""The Fig. 8 scalability probe: more congestion trees than CFQs.

Runs Config #3 (64-node 4-ary 3-tree, 48 uniform sources at full load)
through a hotspot burst forming several simultaneous congestion trees,
and compares FBICM (isolation only) against CCFIT (isolation +
throttling).  With more trees than the two CFQs per port, FBICM's
isolation runs out of resources — HoL blocking returns in the NFQs —
while CCFIT's throttling keeps draining trees and freeing CFQs.

Run:  python examples/congestion_trees.py [num_trees] [time_scale]
      (defaults: 4 trees at 0.4x time scale, ~1 min)
"""

import sys

from repro.experiments.report import render_fig8_summary, render_series
from repro.experiments.runner import run_case4


def main() -> None:
    trees = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    time_scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    print(
        f"Config #3: 48 uniform sources at 100% load; 16 hotspot senders "
        f"blast {trees} destination(s) during the burst window ..."
    )

    results = {}
    for scheme in ("1Q", "FBICM", "CCFIT"):
        print(f"  simulating {scheme} ...", flush=True)
        results[scheme] = run_case4(
            scheme, num_trees=trees, time_scale=time_scale, seed=1
        )

    print()
    print(render_series(results, stride=max(1, len(results['1Q'].throughput[0]) // 15)))
    print()
    print(render_fig8_summary(results))
    print()
    fb, cc = results["FBICM"], results["CCFIT"]
    print(
        f"during the burst: FBICM {fb.mean_throughput():.1f} GB/s vs "
        f"CCFIT {cc.mean_throughput():.1f} GB/s "
        f"(CAM allocation failures: FBICM {int(fb.stats['cfq_alloc_failures'])}, "
        f"CCFIT {int(cc.stats['cfq_alloc_failures'])})"
    )
    print(
        "CCFIT's throttling drains the trees so the isolation half never "
        "starves for CFQs — the gap over FBICM grows with the tree count "
        "(try: python examples/congestion_trees.py 6)."
    )


if __name__ == "__main__":
    main()
