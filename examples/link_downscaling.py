#!/usr/bin/env python
"""Congestion from link frequency/voltage scaling (extension).

The paper's introduction lists "conducting link frequency/voltage
scaling (lowering the link speed in order to save power)" among the
causes of congestion no load balancing can predict.  This example
exercises that path: mid-run, a node's delivery link drops to quarter
speed, turning a previously well-provisioned flow into a congestion
tree.  Watch CCFIT detect it, isolate it, and throttle the source to
the link's new capacity — then release everything when the link speed
is restored.

Run:  python examples/link_downscaling.py
"""

from repro import build_fabric, config1_adhoc
from repro.traffic.flows import FlowSpec, attach_traffic

MS = 1_000_000.0


def main() -> None:
    fabric = build_fabric(config1_adhoc(), scheme="CCFIT", seed=7)
    attach_traffic(
        fabric,
        flows=[
            FlowSpec("payload", src=1, dst=4, rate=2.5),
            FlowSpec("bystander", src=0, dst=3, rate=2.5),
        ],
    )

    link = fabric.nodes[4].downlink
    fabric.sim.schedule(1 * MS, link.set_bandwidth, 0.625)  # scale down
    fabric.sim.schedule(3 * MS, link.set_bandwidth, 2.5)  # restore

    fabric.run(until=5 * MS)

    c = fabric.collector
    print("payload flow bandwidth (GB/s) per millisecond:")
    phases = ["full speed", "scaled to 0.625", "scaled to 0.625",
              "restored", "restored"]
    for k in range(5):
        bw = c.flow_bandwidth("payload", k * MS, (k + 1) * MS)
        print(f"  [{k}-{k + 1} ms] {bw:5.2f}   ({phases[k]})")
    print("\nbystander flow (same switches, different destination):")
    for k in range(5):
        bw = c.flow_bandwidth("bystander", k * MS, (k + 1) * MS)
        print(f"  [{k}-{k + 1} ms] {bw:5.2f}")

    s = fabric.stats()
    print(
        f"\nFECN-marked {int(s['fecn_marked'])} packets; the source received "
        f"{int(s['becns_received'])} BECNs and tracked the link's capacity. "
        "The bystander never noticed."
    )


if __name__ == "__main__":
    main()
