#!/usr/bin/env python
"""Watch the CCFIT protocol make its decisions, event by event.

Attaches a :class:`repro.metrics.trace.ProtocolTrace` to a hotspot
scenario and prints the congestion tree's life story: detection,
isolation, upstream propagation (Stop/Go), the congestion state,
FECN/BECN, and the final deallocation — the numbered events of the
paper's Figs. 3 and 4, live.

Run:  python examples/protocol_trace.py
"""

from repro import build_fabric, config1_adhoc
from repro.metrics.trace import ProtocolTrace
from repro.traffic.flows import FlowSpec, attach_traffic

MS = 1_000_000.0


def main() -> None:
    fabric = build_fabric(config1_adhoc(), scheme="CCFIT", seed=11)
    trace = ProtocolTrace().attach(fabric)
    attach_traffic(
        fabric,
        flows=[
            FlowSpec("h1", src=1, dst=4, rate=2.5, end=1.0 * MS),
            FlowSpec("h2", src=2, dst=4, rate=2.5, end=1.0 * MS),
            FlowSpec("h5", src=5, dst=4, rate=2.5, end=1.0 * MS),
        ],
    )
    fabric.run(until=3 * MS)

    print("first 25 protocol events:")
    for ev in trace.events[:25]:
        print(" ", ev)

    print("\nevent counts over the whole run:")
    for kind, n in sorted(trace.counts().items()):
        print(f"  {kind:10s} {n}")

    latency = trace.reaction_latency(4)
    print(f"\ndetection -> first BECN at a source: {latency / 1e3:.1f} us")

    lifetimes = trace.tree_lifetimes()
    if lifetimes:
        longest = max(lifetimes, key=lambda e: e["lifetime"])
        print(
            f"longest CFQ tenure: {longest['lifetime'] / 1e3:.1f} us at "
            f"{longest['where']} (dest {longest['dest']})"
        )
    print(
        "\nNote how Stop/Go cycles at the upstream ports bracket the"
        " congestion-state episodes at the root, and how every"
        " allocation is eventually matched by a deallocation after the"
        " flows end — the resource-release loop that makes two CFQs"
        " per port enough."
    )


if __name__ == "__main__":
    main()
