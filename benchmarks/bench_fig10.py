"""Fig. 10 — per-flow bandwidth on Config #2 / Case #2.

Five flows converge on one hot node of the 2-ary 3-tree; the flow
whose path merges last (F4) is the parking-lot winner.  Paper shape:
1Q poor throughput and unfair; ITh fair; FBICM max throughput but
unfairness dominant; CCFIT combines high throughput with the highest
fairness.
"""

from conftest import run_once

from repro.experiments.report import render_flow_table
from repro.experiments.runner import PAPER_SCHEMES, run_fig10

FLOWS = ("F0", "F1", "F2", "F3", "F4")


def test_fig10(benchmark, scale, seed):
    results = run_once(
        benchmark, run_fig10, schemes=PAPER_SCHEMES, time_scale=scale, seed=seed
    )
    print()
    print("FIG 10 — per-flow bandwidth (GB/s), Config #2 Case #2, steady tail")
    print(render_flow_table(results, FLOWS))

    jain = {s: r.fairness(FLOWS) for s, r in results.items()}
    total = {s: sum(r.flow_bandwidth.values()) for s, r in results.items()}

    # parking lot at node 7's apex: F4 (private input port) doubles
    # F1 (sharing a port with F2) without per-flow throttling
    for s in ("1Q", "FBICM"):
        r = results[s].flow_bandwidth
        assert r["F4"] > 1.6 * r["F1"], f"{s}: F4 should be the parking-lot winner"
    # throttling equalises; the combination is the fairest
    assert jain["ITh"] > 0.95
    assert jain["CCFIT"] > jain["FBICM"], "CCFIT must improve on FBICM fairness"
    # combined mechanism keeps throughput at least at ITh's level
    assert total["CCFIT"] >= total["ITh"] * 0.95
