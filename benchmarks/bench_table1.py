"""Table I — evaluated interconnection network configurations.

Regenerates the table from code, asserts each column's topology builds
to spec, and times the (non-trivial) 64-node fabric construction.
"""

from conftest import run_once

from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3, table1
from repro.experiments.report import render_table
from repro.network.fabric import build_fabric


def test_table1(benchmark):
    for cfg in (CONFIG1, CONFIG2, CONFIG3):
        cfg.check()

    def build_config3_fabric():
        return build_fabric(CONFIG3.topo(), scheme="CCFIT", seed=0)

    fabric = run_once(benchmark, build_config3_fabric)
    assert len(fabric.switches) == 48 and len(fabric.nodes) == 64

    print()
    print("TABLE I — evaluated network configurations")
    print(render_table(table1()))
