"""Fig. 7 — network throughput vs time (Configs #1/#2, Cases #1–#3).

Paper shape: the three CC techniques (ITh, FBICM, CCFIT) all keep
throughput high; 1Q collapses once congestion is introduced; in panel
(a) ITh shows a dip from left-switch detection; in panel (c) ITh is
slow to reach the others' level.
"""

import pytest
from conftest import run_once

from repro.experiments.report import render_series
from repro.experiments.runner import PAPER_SCHEMES, run_fig7


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig7(benchmark, panel, scale, seed):
    results = run_once(
        benchmark, run_fig7, panel, schemes=PAPER_SCHEMES, time_scale=scale, seed=seed
    )
    print()
    print(f"FIG 7{panel} — throughput vs time "
          f"(Config #{'1' if panel == 'a' else '2'}, Case #{'abc'.index(panel) + 1})")
    print(render_series(results, stride=max(1, len(results['1Q'].throughput[0]) // 16)))

    # shape assertions.  The margins are the full-scale (REPRO_SCALE=1)
    # separations derated for compressed runs: panel (a)'s hotspot
    # crushes 1Q by >40%; in panel (b) pure isolation recovers the
    # inter-tree HoL cost (~25%) while the throttling schemes trade
    # that headroom for per-flow fairness (Fig. 10 shows the payoff);
    # in panel (c) the uniform noise dominates the total.
    margins = {
        "a": {"FBICM": 1.3, "CCFIT": 1.3},
        "b": {"FBICM": 1.2, "CCFIT": 0.92},
        "c": {"FBICM": 1.02, "CCFIT": 0.95},
    }[panel]
    tail = {s: r.mean_throughput() for s, r in results.items()}
    for cc, margin in margins.items():
        assert tail[cc] > tail["1Q"] * margin, (
            f"{cc}={tail[cc]:.2f} should beat 1Q={tail['1Q']:.2f} by {margin}x"
        )
    # ITh trades raw throughput for per-flow fairness; on panels (b)
    # and (c) its total can sit slightly below 1Q's (whose parking-lot
    # winner keeps the hot links saturated) — Fig. 10 shows the flip
    # side.  Panel (a) has a victim, so ITh must clearly win there.
    if panel == "a":
        assert tail["ITh"] > tail["1Q"] * 1.2
    else:
        assert tail["ITh"] > tail["1Q"] * 0.7
