"""Fig. 9 — per-flow bandwidth on Config #1 / Case #1 (fairness study).

Paper shape per panel:

* (a) 1Q: the victim F0 is crushed by HoL blocking AND the parking-lot
  problem splits contributors unevenly (local F5/F6 get double the
  remote F1/F2);
* (b) ITh: victim mostly restored, parking lot solved (contributors
  equalised by per-flow throttling);
* (c) FBICM: victim fully restored but the unfairness *increased*;
* (d) CCFIT: victim restored and contributors fair — best of both.
"""

from conftest import run_once

from repro.experiments.report import render_flow_table
from repro.experiments.runner import PAPER_SCHEMES, run_fig9

FLOWS = ("F0", "F1", "F2", "F5", "F6")
CONTRIBUTORS = ("F1", "F2", "F5", "F6")


def test_fig9(benchmark, scale, seed):
    results = run_once(
        benchmark, run_fig9, schemes=PAPER_SCHEMES, time_scale=scale, seed=seed
    )
    print()
    print("FIG 9 — per-flow bandwidth (GB/s), Config #1 Case #1, steady tail")
    print(render_flow_table(results, FLOWS))

    f0 = {s: r.flow_bandwidth["F0"] for s, r in results.items()}
    jain = {s: r.fairness(CONTRIBUTORS) for s, r in results.items()}

    # (a) 1Q: victimisation + parking lot
    assert f0["1Q"] < 1.0, f"victim must be crushed under 1Q, got {f0['1Q']:.2f}"
    r1q = results["1Q"].flow_bandwidth
    assert r1q["F5"] > 1.5 * r1q["F1"], "parking lot: local flows win under 1Q"
    # (b) ITh: fairness restored
    assert jain["ITh"] > 0.97, f"ITh must solve the parking lot, jain={jain['ITh']:.3f}"
    assert f0["ITh"] > 2 * f0["1Q"], "ITh must largely restore the victim"
    # (c) FBICM: victim at full rate, parking lot persists
    assert f0["FBICM"] > 2.2
    assert jain["FBICM"] < 0.92, "FBICM keeps (even worsens) the unfairness"
    # (d) CCFIT: both at once (thresholds widen at full REPRO_SCALE;
    # the 1.0x numbers in EXPERIMENTS.md show jain > 0.97)
    assert f0["CCFIT"] > 2.0
    assert jain["CCFIT"] > 0.92, f"CCFIT jain={jain['CCFIT']:.3f}"
    assert jain["CCFIT"] > jain["FBICM"], "combining must improve fairness"
