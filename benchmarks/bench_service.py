"""Benchmarks of the distributed sweep fabric's coordination costs.

The fabric's value is fanning simulation cells out to pull workers;
these benches pin down what the coordination itself costs:

* **broker dispatch latency** — the submit -> claim -> complete cycle
  with the simulation stubbed out.  This is pure protocol: atomic
  renames, O_EXCL markers, event-log appends.  It bounds how small a
  cell can be before the fabric stops paying for itself.
* **cells/s, service vs in-process** — the same tiny sweep grid run
  (a) through ``run_sweep`` on a local process pool and (b) through a
  filesystem broker with ``repro worker`` subprocesses.  The ratio is
  the fabric's end-to-end overhead on real cells.

Two entry points over the same measurements:

* **standalone** — ``PYTHONPATH=src python benchmarks/bench_service.py``
  prints one JSON row per benchmark and writes ``BENCH_service.json``
  (``--quick`` shrinks the grid for CI; ``--out PATH`` moves the
  report).
* **pytest-benchmark** — ``pytest benchmarks/bench_service.py`` runs
  statistical versions of the protocol micro-pieces.
"""

import json
import math
import os
import subprocess
import sys
import tempfile
import time

import pytest

from repro.experiments.sweep import SimJob, SweepOptions, run_sweep
from repro.service import FsBroker, job_from_spec, job_to_spec

SCALE = 0.02
#: a result-shaped payload for protocol-only benches (never simulated).
STUB_RESULT = {"scheme": "1Q", "stub": True}


def grid(n: int):
    """n distinct cache keys: same tiny cell at n different seeds."""
    return [SimJob(case="case1", scheme="1Q", time_scale=SCALE, seed=1000 + i)
            for i in range(n)]


# ----------------------------------------------------------------------
# pytest-benchmark: protocol micro-pieces
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def job() -> SimJob:
    return grid(1)[0]


def test_spec_roundtrip(benchmark, job):
    """job -> wire spec -> job (per cell leased over HTTP)."""
    revived = benchmark(lambda: job_from_spec(job_to_spec(job)))
    assert revived.key() == job.key()


def test_broker_dispatch_cycle(benchmark, tmp_path_factory, job):
    """submit -> claim -> complete, simulation stubbed out."""
    broker = FsBroker(tmp_path_factory.mktemp("broker"))

    def cycle():
        broker.submit([job], experiment="bench")
        lease = broker.claim("bench-worker")
        broker.complete(lease.key, "bench-worker", STUB_RESULT)
        # drop the done marker so the next round re-enqueues
        os.unlink(broker.root / "done" / f"{lease.key}.json")
        broker.cache.path(lease.key).unlink()
        return lease

    assert benchmark(cycle).key == job.key()


# ----------------------------------------------------------------------
# standalone JSON-row mode
# ----------------------------------------------------------------------
def bench_dispatch(cells: int) -> dict:
    """Protocol-only dispatch cost over a fresh broker directory."""
    jobs = grid(cells)
    with tempfile.TemporaryDirectory() as d:
        broker = FsBroker(d)
        t0 = time.perf_counter()
        broker.submit(jobs, experiment="bench")
        submitted = time.perf_counter()
        while (lease := broker.claim("bench-worker")) is not None:
            broker.complete(lease.key, "bench-worker", STUB_RESULT)
        done = time.perf_counter()
    return {
        "bench": "broker_dispatch",
        "cells": cells,
        "submit_ms_per_cell": (submitted - t0) * 1e3 / cells,
        "dispatch_ms_per_cell": (done - submitted) * 1e3 / cells,
        "cycles_per_s": cells / (done - submitted),
    }


def bench_inprocess(jobs, workers: int) -> dict:
    with tempfile.TemporaryDirectory() as d:
        opts = SweepOptions(jobs=workers, cache_dir=os.path.join(d, "cache"))
        t0 = time.perf_counter()
        report = run_sweep(jobs, options=opts)
        elapsed = time.perf_counter() - t0
    assert report.failed == 0, "in-process baseline failed cells"
    return {
        "bench": "sweep_inprocess",
        "cells": len(jobs),
        "workers": workers,
        "elapsed_s": elapsed,
        "cells_per_s": len(jobs) / elapsed,
    }


def bench_service(jobs, workers: int) -> dict:
    """The same grid through a filesystem broker + worker subprocesses."""
    per_worker = math.ceil(len(jobs) / workers)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    with tempfile.TemporaryDirectory() as d:
        broker = FsBroker(os.path.join(d, "broker"))
        t0 = time.perf_counter()
        run = broker.submit(jobs, experiment="bench")
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker",
                 "--broker", os.path.join(d, "broker"),
                 "--id", f"bench-w{i}", "--max-cells", str(per_worker),
                 "--idle-exit", "2", "--poll-interval", "0.05"],
                env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            for i in range(workers)
        ]
        for p in procs:
            p.wait()
        elapsed = time.perf_counter() - t0
        status = broker.run_status(run.id)
    assert status["done"], "service sweep did not finish"
    assert status["counts"].get("done", 0) == len(jobs), status["counts"]
    return {
        "bench": "sweep_service",
        "cells": len(jobs),
        "workers": workers,
        "elapsed_s": elapsed,
        "cells_per_s": len(jobs) / elapsed,
    }


def json_rows(quick: bool = False):
    dispatch_cells = 50 if quick else 200
    sweep_cells = 2 if quick else 6
    workers = 2
    rows = [bench_dispatch(dispatch_cells)]
    jobs = grid(sweep_cells)
    inproc = bench_inprocess(jobs, workers)
    service = bench_service(jobs, workers)
    rows += [inproc, service]
    rows.append({
        "bench": "service_overhead",
        "cells": sweep_cells,
        "value": service["elapsed_s"] / inproc["elapsed_s"],
        "note": "service wall-clock over in-process wall-clock (>1 = slower); "
                "includes worker subprocess startup, so shrinks as cells grow",
    })
    return rows


def main(argv=None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    quick = "--quick" in args
    out = "BENCH_service.json"
    if "--out" in args:
        out = args[args.index("--out") + 1]
    rows = json_rows(quick=quick)
    for row in rows:
        print(json.dumps(row))
    with open(out, "w") as fh:
        json.dump({"quick": quick, "rows": rows}, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
