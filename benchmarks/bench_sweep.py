"""Micro-benchmarks of the sweep engine's non-simulation overheads.

The engine's value is reusing/parallelising the *simulations*; these
benches pin down the bookkeeping it adds around them: cache-key
hashing, ``CaseResult`` serialization both ways, and cache hit/store
round-trips on a real (small) simulation result.  They bound the
per-cell overhead a cache hit must beat — microseconds against the
seconds a cell takes to simulate.
"""

import json

import pytest

from repro.experiments.runner import CaseResult, run_case1
from repro.experiments.sweep import ResultCache, SimJob


@pytest.fixture(scope="module")
def small_result() -> CaseResult:
    """One real Case #1 cell at 0.02x — every array/field populated."""
    return run_case1("1Q", time_scale=0.02)


@pytest.fixture(scope="module")
def job() -> SimJob:
    return SimJob(case="case1", scheme="1Q", time_scale=0.02)


def test_job_key_rate(benchmark, job):
    """SHA-256 over the canonical job payload (per cache lookup)."""
    key = benchmark(job.key)
    assert len(key) == 64


def test_result_to_dict(benchmark, small_result):
    d = benchmark(small_result.to_dict)
    assert d["scheme"] == "1Q"


def test_result_roundtrip(benchmark, small_result):
    """to_dict -> json -> from_dict: the full cache-store/load path."""

    def roundtrip():
        return CaseResult.from_dict(json.loads(json.dumps(small_result.to_dict())))

    res = benchmark(roundtrip)
    assert res.flow_bandwidth == small_result.flow_bandwidth


def test_cache_hit(benchmark, tmp_path_factory, job, small_result):
    cache = ResultCache(tmp_path_factory.mktemp("sweep-cache"))
    cache.put(job.key(), small_result, job=job)

    res = benchmark(cache.get, job.key())
    assert res is not None and res.scheme == "1Q"


def test_cache_store(benchmark, tmp_path_factory, job, small_result):
    cache = ResultCache(tmp_path_factory.mktemp("sweep-cache"))
    key = job.key()

    benchmark(cache.put, key, small_result, job)
    assert len(cache) == 1
