"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these isolate the effect of individual mechanisms
and parameters, and back the claims made in EXPERIMENTS.md about where
our defaults come from:

* number of CFQs per port (the Fig. 8 resource axis, swept directly);
* detection policy ("dominant" vs the simpler "head" blame);
* BECN coalescing (anti-windup) on the victim flow;
* arbiter selection rule (LRG vs classic pointers: the capture
  pathology);
* CCT shape (linear vs exponential response);
* ITh parameter sensitivity (CCTI_Timer sweep) — the paper's point
  that "finding optimal CC parameters for throttling is a challenging
  task".
"""

import pytest
from conftest import run_once

from repro.core.params import CCParams, exponential_cct, linear_cct
from repro.experiments.report import render_table
from repro.experiments.runner import run_case1, run_case4

CONTRIBUTORS = ("F1", "F2", "F5", "F6")


def test_ablation_cfq_count(benchmark, scale_cfg3, seed):
    """FBICM with more CFQs closes the gap to CCFIT; with 1 it widens."""

    def sweep():
        rows = []
        for n in (1, 2, 4):
            for scheme in ("FBICM", "CCFIT"):
                res = run_case4(
                    scheme,
                    num_trees=4,
                    time_scale=scale_cfg3,
                    seed=seed,
                    params=CCParams(num_cfqs=n),
                )
                rows.append(
                    {
                        "cfqs": n,
                        "scheme": scheme,
                        "burst GB/s": f"{res.mean_throughput():.1f}",
                        "cam_failures": int(res.stats["cfq_alloc_failures"]),
                    }
                )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — CFQs per port (Config #3, 4 trees, burst window)")
    print(render_table(rows))
    by = {(r["cfqs"], r["scheme"]): float(r["burst GB/s"]) for r in rows}
    assert by[(4, "FBICM")] >= by[(1, "FBICM")], "more CFQs must not hurt FBICM"


def test_ablation_detection_policy(benchmark, scale, seed):
    """Head-blame detection can misfile the victim flow."""

    def sweep():
        rows = []
        for policy in ("dominant", "head"):
            res = run_case1(
                "CCFIT",
                time_scale=scale,
                seed=seed,
                params=CCParams(detection_policy=policy),
            )
            rows.append(
                {
                    "policy": policy,
                    "victim F0 GB/s": f"{res.flow_bandwidth['F0']:.2f}",
                    "jain(contributors)": f"{res.fairness(CONTRIBUTORS):.3f}",
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — detection blame policy (Config #1, Case #1, CCFIT)")
    print(render_table(rows))


def test_ablation_becn_coalescing(benchmark, scale, seed):
    """Per-BECN CCTI increments wind the victim's throttle up."""

    def sweep():
        rows = []
        for interval in (0.0, 2_000.0, 8_000.0):
            res = run_case1(
                "CCFIT",
                time_scale=scale,
                seed=seed,
                params=CCParams(becn_min_interval=interval),
            )
            rows.append(
                {
                    "becn_min_interval ns": int(interval),
                    "victim F0 GB/s": f"{res.flow_bandwidth['F0']:.2f}",
                    "total GB/s": f"{sum(res.flow_bandwidth.values()):.2f}",
                    "becns": int(res.stats["becns_received"]),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — BECN coalescing / anti-windup (Config #1, CCFIT)")
    print(render_table(rows))


def test_ablation_cct_shape(benchmark, scale, seed):
    def sweep():
        rows = []
        for name, cct in (
            ("linear", linear_cct()),
            ("linear/2", linear_cct(step=409.6)),
            ("exponential", exponential_cct()),
        ):
            res = run_case1(
                "CCFIT", time_scale=scale, seed=seed, params=CCParams(cct=cct)
            )
            rows.append(
                {
                    "cct": name,
                    "victim F0 GB/s": f"{res.flow_bandwidth['F0']:.2f}",
                    "jain(contributors)": f"{res.fairness(CONTRIBUTORS):.3f}",
                    "total GB/s": f"{sum(res.flow_bandwidth.values()):.2f}",
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — CCT response shape (Config #1, CCFIT)")
    print(render_table(rows))


def test_ablation_ith_parameter_sensitivity(benchmark, scale, seed):
    """The paper: ITh's showing 'could partly be caused by unfortunate
    CC parameter values... finding optimal CC parameters for throttling
    is a challenging task'.  A 16x CCTI_Timer swing moves ITh's victim
    and fairness results substantially; CCFIT is steadier (§IV-B:
    'CCFIT is not as sensitive to the parameters')."""

    def sweep():
        rows = []
        for scheme in ("ITh", "CCFIT"):
            for timer in (2_000.0, 8_000.0, 32_000.0):
                res = run_case1(
                    scheme,
                    time_scale=scale,
                    seed=seed,
                    params=CCParams(ccti_timer=timer),
                )
                rows.append(
                    {
                        "scheme": scheme,
                        "ccti_timer ns": int(timer),
                        "victim F0 GB/s": f"{res.flow_bandwidth['F0']:.2f}",
                        "total GB/s": f"{sum(res.flow_bandwidth.values()):.2f}",
                    }
                )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — CCTI_Timer sensitivity (Config #1, Case #1)")
    print(render_table(rows))


def test_ablation_arbitration_timing(benchmark, scale, seed):
    """Slotted (cycle-level) vs event-driven arbitration.

    The paper's switches are simulated at cycle level: each slot, every
    free input and output is matched together.  Re-matching greedily on
    every completion event instead can lock into self-reinforcing
    input/output pairings that starve a queue outright — the
    ``min contributor`` column collapses.  Seeded serialisation jitter
    (clock asynchrony) softens but does not repair it.  This is why the
    package defaults to slotted arbitration (DESIGN.md §5)."""

    def sweep():
        rows = []
        for label, kw in (
            ("slotted (default)", dict()),
            ("event-driven", dict(match_quantum=0.0)),
            ("event-driven + jitter", dict(match_quantum=0.0, link_jitter=0.005)),
        ):
            res = run_case1("FBICM", time_scale=scale, seed=seed, params=CCParams(**kw))
            rows.append(
                {
                    "arbitration": label,
                    "victim F0 GB/s": f"{res.flow_bandwidth['F0']:.2f}",
                    "min contributor": f"{min(res.flow_bandwidth[f] for f in CONTRIBUTORS):.2f}",
                    "total GB/s": f"{sum(res.flow_bandwidth.values()):.2f}",
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — arbitration timing (Config #1, FBICM)")
    print(render_table(rows))


def test_ablation_detection_threshold(benchmark, scale, seed):
    """§III-E: 'the detection threshold value should allow to detect
    congestion not too early and not too late'."""

    def sweep():
        rows = []
        for mtu_count in (2, 4, 8):
            res = run_case1(
                "CCFIT",
                time_scale=scale,
                seed=seed,
                params=CCParams(detection_threshold=mtu_count * 2048),
            )
            rows.append(
                {
                    "detection MTU": mtu_count,
                    "victim F0 GB/s": f"{res.flow_bandwidth['F0']:.2f}",
                    "total GB/s": f"{sum(res.flow_bandwidth.values()):.2f}",
                    "cfq allocs": int(res.stats["allocated_cfqs"]),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — congestion detection threshold (Config #1, CCFIT)")
    print(render_table(rows))


def test_ablation_marking_rate(benchmark, scale, seed):
    """The Marking_Rate parameter (85 % in §IV-A): lower rates mean
    fewer BECNs and slower, gentler throttling."""

    def sweep():
        rows = []
        for rate in (0.25, 0.85, 1.0):
            res = run_case1(
                "CCFIT", time_scale=scale, seed=seed, params=CCParams(marking_rate=rate)
            )
            rows.append(
                {
                    "marking_rate": rate,
                    "becns": int(res.stats["becns_received"]),
                    "victim F0 GB/s": f"{res.flow_bandwidth['F0']:.2f}",
                    "jain(contributors)": f"{res.fairness(CONTRIBUTORS):.3f}",
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — Marking_Rate (Config #1, CCFIT)")
    print(render_table(rows))
