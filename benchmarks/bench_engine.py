"""Micro-benchmarks of the simulation substrate.

These are classic pytest-benchmark measurements (many rounds) of the
hot paths the figure runs spend their time in: event dispatch, iSlip
matching, queue operations and the CCFIT port state machine.
"""

import numpy as np

from repro.core.isolation import NfqCfqScheme
from repro.network.arbiter import ISlip
from repro.network.buffers import PacketQueue
from repro.network.packet import Packet
from repro.sim.engine import Simulator


def test_event_dispatch_rate(benchmark):
    def dispatch_10k():
        sim = Simulator()
        fn = (lambda: None)
        for i in range(10_000):
            sim.schedule(float(i), fn)
        sim.run()
        return sim.events_dispatched

    assert benchmark(dispatch_10k) == 10_000


def test_self_rescheduling_chain(benchmark):
    """The generator/timer pattern: each event schedules the next."""

    def chain_10k():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule_in(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(chain_10k) == 10_000


def test_islip_matching_rate(benchmark):
    arb = ISlip(8, 8, iterations=2)
    rng = np.random.default_rng(0)
    requests = [
        {i: list(rng.choice(8, size=rng.integers(1, 4), replace=False)) for i in range(8)}
        for _ in range(256)
    ]

    def match_all():
        n = 0
        for req in requests:
            n += len(arb.match(req))
        return n

    assert benchmark(match_all) > 0


def test_queue_churn(benchmark):
    pkts = [Packet(0, i % 16, 2048, "f") for i in range(512)]

    def churn():
        q = PacketQueue("q", track_dests=True)
        for p in pkts:
            q.push(p)
        while not q.empty:
            q.pop()
        return q.bytes

    assert benchmark(churn) == 0


def test_isolation_update_rate(benchmark):
    """Arrival + post-process + detection on a CCFIT port."""
    from tests.test_isolation import FakeIsolationHost

    def arrivals():
        host = FakeIsolationHost()
        scheme = NfqCfqScheme(host, drive_congestion_state=True)
        for i in range(256):
            scheme.on_arrival(Packet(0, i % 3, 2048, "f"))
            if i % 4 == 3:
                for line in scheme.cam.lines():
                    cfq = scheme.cfqs[line.cfq_index]
                    if not cfq.empty:
                        cfq.pop()
                        scheme.after_dequeue(cfq)
        return scheme.moves

    assert benchmark(arrivals) > 0
