"""Micro-benchmarks of the simulation substrate.

Two entry points over the same measurements:

* **standalone** — ``PYTHONPATH=src python benchmarks/bench_engine.py``
  prints one JSON row per benchmark (events/s, net allocations, the
  bucket-vs-heap dispatch speedup) and exits non-zero if the bucket
  kernel does not clear the 1.8x dispatch target.  This is what CI
  trend lines consume.
* **pytest-benchmark** — ``pytest benchmarks/bench_engine.py`` runs the
  classic many-round statistical versions.

The dispatch workload itself lives in :mod:`repro.perf` (the
``python -m repro perf`` harness); this file only drives it, so the
benchmarked code path and the profiled code path cannot drift apart.
"""

import json
import sys

import numpy as np

from repro.core.isolation import NfqCfqScheme
from repro.network.arbiter import ISlip
from repro.network.buffers import PacketQueue
from repro.network.packet import Packet
from repro.perf import bench_case, dispatch_microbench

#: the dispatch speedup the bucket kernel must show over the legacy
#: heap/handle path (see ISSUE/acceptance; docs/performance.md).
DISPATCH_SPEEDUP_TARGET = 1.8


# ----------------------------------------------------------------------
# engine dispatch (delegates to repro.perf)
# ----------------------------------------------------------------------
def test_event_dispatch_bucket(benchmark):
    rate = benchmark(
        lambda: dispatch_microbench("bucket", n_events=30_000, repeats=1)["events_per_s"]
    )
    assert rate > 0


def test_event_dispatch_heap(benchmark):
    rate = benchmark(
        lambda: dispatch_microbench("heap", n_events=30_000, repeats=1)["events_per_s"]
    )
    assert rate > 0


# ----------------------------------------------------------------------
# component hot paths
# ----------------------------------------------------------------------
def test_islip_matching_rate(benchmark):
    arb = ISlip(8, 8, iterations=2)
    rng = np.random.default_rng(0)
    requests = [
        {i: list(rng.choice(8, size=rng.integers(1, 4), replace=False)) for i in range(8)}
        for _ in range(256)
    ]

    def match_all():
        n = 0
        for req in requests:
            n += len(arb.match(req))
        return n

    assert benchmark(match_all) > 0


def test_queue_churn(benchmark):
    pkts = [Packet(0, i % 16, 2048, "f") for i in range(512)]

    def churn():
        q = PacketQueue("q", track_dests=True)
        for p in pkts:
            q.push(p)
        while not q.empty:
            q.pop()
        return q.bytes

    assert benchmark(churn) == 0


def test_isolation_update_rate(benchmark):
    """Arrival + post-process + detection on a CCFIT port."""
    from tests.test_isolation import FakeIsolationHost

    def arrivals():
        host = FakeIsolationHost()
        scheme = NfqCfqScheme(host, drive_congestion_state=True)
        for i in range(256):
            scheme.on_arrival(Packet(0, i % 3, 2048, "f"))
            if i % 4 == 3:
                for line in scheme.cam.lines():
                    cfq = scheme.cfqs[line.cfq_index]
                    if not cfq.empty:
                        cfq.pop()
                        scheme.after_dequeue(cfq)
        return scheme.moves

    assert benchmark(arrivals) > 0


# ----------------------------------------------------------------------
# standalone JSON-row mode
# ----------------------------------------------------------------------
def json_rows(quick: bool = False):
    """One dict per benchmark, JSON-safe."""
    n_events = 60_000 if quick else 300_000
    repeats = 1 if quick else 3
    rows = []
    micro = {}
    for kernel in ("bucket", "heap"):
        m = dispatch_microbench(kernel, n_events=n_events, repeats=repeats)
        micro[kernel] = m
        rows.append(
            {
                "bench": "dispatch",
                "kernel": kernel,
                "events": m["events"],
                "events_per_s": m["events_per_s"],
                "allocations": m["alloc_blocks"],
            }
        )
    rows.append(
        {
            "bench": "dispatch_speedup",
            "value": micro["bucket"]["events_per_s"] / micro["heap"]["events_per_s"],
            "target": DISPATCH_SPEEDUP_TARGET,
        }
    )
    ts = 0.03 if quick else 0.1
    for kernel in ("bucket", "heap"):
        row = bench_case("case1", "CCFIT", kernel=kernel, time_scale=ts, seed=1)
        rows.append({"bench": "case1", **row})
    return rows


def main(argv=None) -> int:
    quick = "--quick" in (argv or sys.argv[1:])
    rows = json_rows(quick=quick)
    speedup = 0.0
    for row in rows:
        print(json.dumps(row))
        if row["bench"] == "dispatch_speedup":
            speedup = row["value"]
    if speedup < DISPATCH_SPEEDUP_TARGET:
        print(
            f"FAIL: dispatch speedup {speedup:.2f}x < {DISPATCH_SPEEDUP_TARGET}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
