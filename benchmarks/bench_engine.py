"""Micro-benchmarks of the simulation substrate.

Two entry points over the same measurements:

* **standalone** — ``PYTHONPATH=src python benchmarks/bench_engine.py``
  prints one JSON row per benchmark (events/s, net allocations, the
  bucket-vs-heap and batch-vs-bucket dispatch speedups) and exits
  non-zero if the bucket kernel misses the 1.8x dispatch target or the
  batch kernel misses the 3x target (``--quick`` de-rates the gates to
  ``repro.perf.PERF_GATES_QUICK`` — one repeat over a small population
  is noisy).  This is what CI trend lines consume.
* **pytest-benchmark** — ``pytest benchmarks/bench_engine.py`` runs the
  classic many-round statistical versions.

The dispatch workload itself lives in :mod:`repro.perf` (the
``python -m repro perf`` harness); this file only drives it, so the
benchmarked code path and the profiled code path cannot drift apart.
"""

import json
import sys

import numpy as np

from repro.core.isolation import NfqCfqScheme
from repro.network.arbiter import ISlip
from repro.network.buffers import PacketQueue
from repro.network.packet import Packet
from repro.perf import PERF_GATES, PERF_GATES_QUICK, bench_case, dispatch_microbench

#: the dispatch speedup the bucket kernel must show over the legacy
#: heap/handle path (see ISSUE/acceptance; docs/performance.md).
DISPATCH_SPEEDUP_TARGET = PERF_GATES["speedup"]

#: the dispatch speedup the batch kernel's channel path must show over
#: the bucket kernel at the default population (ISSUE 7 acceptance).
BATCH_SPEEDUP_TARGET = PERF_GATES["speedup_batch"]


# ----------------------------------------------------------------------
# engine dispatch (delegates to repro.perf)
# ----------------------------------------------------------------------
def test_event_dispatch_bucket(benchmark):
    rate = benchmark(
        lambda: dispatch_microbench("bucket", n_events=30_000, repeats=1)["events_per_s"]
    )
    assert rate > 0


def test_event_dispatch_heap(benchmark):
    rate = benchmark(
        lambda: dispatch_microbench("heap", n_events=30_000, repeats=1)["events_per_s"]
    )
    assert rate > 0


def test_event_dispatch_batch(benchmark):
    rate = benchmark(
        lambda: dispatch_microbench("batch", n_events=30_000, repeats=1)["events_per_s"]
    )
    assert rate > 0


# ----------------------------------------------------------------------
# component hot paths
# ----------------------------------------------------------------------
def test_islip_matching_rate(benchmark):
    arb = ISlip(8, 8, iterations=2)
    rng = np.random.default_rng(0)
    requests = [
        {i: list(rng.choice(8, size=rng.integers(1, 4), replace=False)) for i in range(8)}
        for _ in range(256)
    ]

    def match_all():
        n = 0
        for req in requests:
            n += len(arb.match(req))
        return n

    assert benchmark(match_all) > 0


def test_queue_churn(benchmark):
    pkts = [Packet(0, i % 16, 2048, "f") for i in range(512)]

    def churn():
        q = PacketQueue("q", track_dests=True)
        for p in pkts:
            q.push(p)
        while not q.empty:
            q.pop()
        return q.bytes

    assert benchmark(churn) == 0


def test_isolation_update_rate(benchmark):
    """Arrival + post-process + detection on a CCFIT port."""
    from tests.test_isolation import FakeIsolationHost

    def arrivals():
        host = FakeIsolationHost()
        scheme = NfqCfqScheme(host, drive_congestion_state=True)
        for i in range(256):
            scheme.on_arrival(Packet(0, i % 3, 2048, "f"))
            if i % 4 == 3:
                for line in scheme.cam.lines():
                    cfq = scheme.cfqs[line.cfq_index]
                    if not cfq.empty:
                        cfq.pop()
                        scheme.after_dequeue(cfq)
        return scheme.moves

    assert benchmark(arrivals) > 0


# ----------------------------------------------------------------------
# standalone JSON-row mode
# ----------------------------------------------------------------------
def json_rows(quick: bool = False):
    """One dict per benchmark, JSON-safe."""
    n_events = 60_000 if quick else 300_000
    repeats = 1 if quick else 3
    # quick mode is one repeat over a small population: the bucket/heap
    # ratio is noisy there, so the gate de-rates exactly as the perf
    # harness does (repro.perf.PERF_GATES_QUICK).
    gates = PERF_GATES_QUICK if quick else PERF_GATES
    rows = []
    micro = {}
    for kernel in ("bucket", "heap", "batch"):
        m = dispatch_microbench(kernel, n_events=n_events, repeats=repeats)
        micro[kernel] = m
        rows.append(
            {
                "bench": "dispatch",
                "kernel": kernel,
                "events": m["events"],
                "events_per_s": m["events_per_s"],
                "allocations": m["alloc_blocks"],
            }
        )
    rows.append(
        {
            "bench": "dispatch_speedup",
            "value": micro["bucket"]["events_per_s"] / micro["heap"]["events_per_s"],
            "target": gates["speedup"],
        }
    )
    rows.append(
        {
            "bench": "dispatch_speedup_batch",
            "value": micro["batch"]["events_per_s"] / micro["bucket"]["events_per_s"],
            "target": gates["speedup_batch"],
        }
    )
    ts = 0.03 if quick else 0.1
    for kernel in ("bucket", "heap", "batch"):
        row = bench_case("case1", "CCFIT", kernel=kernel, time_scale=ts, seed=1)
        rows.append({"bench": "case1", **row})
    return rows


def main(argv=None) -> int:
    quick = "--quick" in (argv or sys.argv[1:])
    rows = json_rows(quick=quick)
    rc = 0
    for row in rows:
        print(json.dumps(row))
        if row["bench"].startswith("dispatch_speedup") and row["value"] < row["target"]:
            print(
                f"FAIL: {row['bench']} {row['value']:.2f}x < {row['target']}x",
                file=sys.stderr,
            )
            rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
