"""Shared knobs for the benchmark harness.

Every bench regenerates one table or figure of the paper (printing the
rows/series it reports) and times the simulation that produced it.

By default the figure benches run *shape-preserving scaled* versions of
the paper's workloads (the 10 ms windows shrink by ``REPRO_SCALE``) so
the whole harness finishes in minutes.  Set::

    REPRO_SCALE=1.0 pytest benchmarks/ --benchmark-only

for full paper-scale runs (as recorded in EXPERIMENTS.md).
"""

import os

import pytest

#: time-compression factor for figure workloads.
SCALE = float(os.environ.get("REPRO_SCALE", "0.3"))
#: Config #3 runs are the expensive ones; they get their own scale.
SCALE_CFG3 = float(os.environ.get("REPRO_SCALE_CFG3", str(min(SCALE, 0.4))))
SEED = int(os.environ.get("REPRO_SEED", "1"))


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def scale_cfg3():
    return SCALE_CFG3


@pytest.fixture(scope="session")
def seed():
    return SEED


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
