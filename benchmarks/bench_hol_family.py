"""The §II HoL-reduction family, side by side (extension bench).

Two complementary probes on the 2-ary 3-tree:

* **uniform saturation** — how much of the fabric each queue scheme
  unlocks with no congestion trees at all.  Theory (§II) predicts
  1Q < DBBM < VOQsw < VOQnet, with FBICM ≈ 1Q (its NFQ is a single
  FIFO; CFQs only help *against congestion*);
* **hotspot victim** — a bystander sharing queues with an endpoint
  hotspot.  Here the ordering flips: the implicit schemes (DBBM,
  VOQsw) cannot separate a congested flow from a victim mapped to the
  same queue, while FBICM's explicit isolation can.

Together they are the paper's §II argument in numbers: implicit
queue-splitting helps uniform traffic, explicit congested-flow
isolation is what survives congestion.
"""

from conftest import run_once

from repro.experiments.report import render_table
from repro.network.fabric import build_fabric
from repro.network.topology import k_ary_n_tree
from repro.traffic.flows import FlowSpec, attach_traffic

MS = 1_000_000.0
FAMILY = ("1Q", "DBBM", "VOQsw", "VOQnet", "FBICM")


def uniform_throughput(scheme: str, seed: int) -> float:
    fab = build_fabric(k_ary_n_tree(2, 3), scheme=scheme, seed=seed)
    attach_traffic(
        fab, uniform=[{"node": n, "rate": 2.5, "name": f"U{n}"} for n in range(8)]
    )
    fab.run(until=2 * MS)
    return fab.collector.total_bandwidth(0.5 * MS, 2 * MS)


def victim_bandwidth(scheme: str, seed: int) -> float:
    fab = build_fabric(k_ary_n_tree(2, 3), scheme=scheme, seed=seed)
    attach_traffic(
        fab,
        flows=[
            # victim 0->5 shares the d0=1 ascent plane with the hotspot
            FlowSpec("vic", src=0, dst=5, rate=2.5),
            FlowSpec("h1", src=1, dst=7, rate=2.5),
            FlowSpec("h2", src=2, dst=7, rate=2.5),
            FlowSpec("h3", src=3, dst=7, rate=2.5),
            FlowSpec("h4", src=4, dst=7, rate=2.5),
        ],
    )
    fab.run(until=2 * MS)
    return fab.collector.flow_bandwidth("vic", 1 * MS, 2 * MS)


def test_hol_family(benchmark, seed):
    def sweep():
        return [
            {
                "scheme": s,
                "uniform GB/s": f"{uniform_throughput(s, seed):.2f}",
                "victim GB/s": f"{victim_bandwidth(s, seed):.2f}",
            }
            for s in FAMILY
        ]

    rows = run_once(benchmark, sweep)
    print()
    print("EXTENSION — the §II HoL-reduction family (2-ary 3-tree)")
    print(render_table(rows))

    uni = {r["scheme"]: float(r["uniform GB/s"]) for r in rows}
    vic = {r["scheme"]: float(r["victim GB/s"]) for r in rows}
    # implicit splitting unlocks uniform throughput monotonically
    assert uni["1Q"] < uni["DBBM"] < uni["VOQnet"]
    assert uni["DBBM"] <= uni["VOQsw"] * 1.02
    # FBICM's single NFQ gains little on uniform ...
    assert uni["FBICM"] < uni["DBBM"]
    # ... but explicit isolation wins where it matters: the victim
    assert vic["FBICM"] > 2 * vic["1Q"]
    assert vic["FBICM"] > vic["DBBM"]
    assert vic["VOQnet"] > 2 * vic["1Q"]  # per-destination also isolates
