"""Extension study: incast degree sweep (beyond the paper).

The paper evaluates fixed contributor counts; this bench sweeps the
incast degree N (senders converging on one node of the 2-ary 3-tree)
and records, per scheme, what a datacenter operator would ask: the
hot-link utilisation, the contributors' fairness, and the collateral
p95 latency of an innocent bystander flow.  The paper's qualitative
claims should hold *at every N*: isolation keeps the bystander's tail
latency flat, throttling keeps the contributors fair, and CCFIT does
both.
"""

from conftest import run_once

from repro.experiments.report import render_table
from repro.metrics.analysis import jain_index
from repro.network.fabric import build_fabric
from repro.network.topology import k_ary_n_tree
from repro.traffic.flows import FlowSpec, attach_traffic

MS = 1_000_000.0
HOT = 7
BYSTANDER_DST = 5  # same DET ascent plane (d0=1) as the hot node,
# so the bystander shares level-1 queues with the incast traffic


def run_incast(scheme: str, degree: int, seed: int):
    fab = build_fabric(k_ary_n_tree(2, 3), scheme=scheme, seed=seed)
    flows = [FlowSpec("by", src=0, dst=BYSTANDER_DST, rate=2.5)]
    senders = [s for s in range(1, 8) if s not in (HOT, BYSTANDER_DST, 0)]
    for i, src in enumerate(senders[:degree]):
        flows.append(FlowSpec(f"I{i}", src=src, dst=HOT, rate=2.5))
    attach_traffic(fab, flows=flows)
    fab.run(until=3 * MS)
    c = fab.collector
    contributors = [f"I{i}" for i in range(degree)]
    rates = [c.flow_bandwidth(f, 1.5 * MS, 3 * MS) for f in contributors]
    return {
        "hot-link util": sum(rates) / 2.5,
        "jain": jain_index(rates) if rates else 1.0,
        "bystander p95 us": (c.latency_percentile("by", 95) or 0.0) / 1e3,
        "bystander GB/s": c.flow_bandwidth("by", 1.5 * MS, 3 * MS),
    }


def test_incast_degree_sweep(benchmark, seed):
    def sweep():
        rows = []
        for degree in (2, 4):
            for scheme in ("1Q", "ITh", "FBICM", "CCFIT"):
                m = run_incast(scheme, degree, seed)
                rows.append(
                    {
                        "N": degree,
                        "scheme": scheme,
                        "hot util": f"{m['hot-link util']:.2f}",
                        "jain": f"{m['jain']:.3f}",
                        "bystander GB/s": f"{m['bystander GB/s']:.2f}",
                        "bystander p95 us": f"{m['bystander p95 us']:.1f}",
                    }
                )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("EXTENSION — incast degree sweep (2-ary 3-tree, hot node 7)")
    print(render_table(rows))

    by = {(int(r["N"]), r["scheme"]): r for r in rows}
    for degree in (2, 4):
        # isolation protects the bystander's tail at any incast degree
        # (the margin grows with the degree: congestion trees deepen).
        factor = 0.5 if degree <= 2 else 0.3
        assert float(by[(degree, "CCFIT")]["bystander p95 us"]) < factor * float(
            by[(degree, "1Q")]["bystander p95 us"]
        )
        # at N=2 the bystander's structural share of the shared ascent
        # link is 1.25 GB/s; the throttle may shave it further
        bystander_floor = 0.8 if degree <= 2 else 1.5
        assert float(by[(degree, "CCFIT")]["bystander GB/s"]) > bystander_floor
        # and the contributors stay fair
        assert float(by[(degree, "CCFIT")]["jain"]) > 0.93
