"""Fig. 8 — throughput vs time on the 64-node 4-ary 3-tree (Case #4),
with 1 (a), 4 (b) and 6 (c) simultaneous congestion trees.

Paper shape: with one tree, FBICM's 2 CFQs suffice and CCFIT matches
it; with 4 and 6 trees FBICM runs out of CFQs (HoL returns in the
NFQs) while CCFIT's throttling keeps freeing resources — CCFIT
clearly above FBICM, 1Q worst, VOQnet the ceiling.
"""

import pytest
from conftest import run_once

from repro.experiments.report import render_fig8_summary, render_series
from repro.experiments.runner import FIG8_SCHEMES, run_fig8

PANELS = {"a": 1, "b": 4, "c": 6}


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig8(benchmark, panel, scale_cfg3, seed):
    trees = PANELS[panel]
    results = run_once(
        benchmark,
        run_fig8,
        trees,
        schemes=FIG8_SCHEMES,
        time_scale=scale_cfg3,
        seed=seed,
    )
    print()
    print(f"FIG 8{panel} — Config #3, {trees} congestion tree(s)")
    print(render_series(results, stride=max(1, len(results['1Q'].throughput[0]) // 14)))
    print(render_fig8_summary(results))

    burst = {s: r.mean_throughput() for s, r in results.items()}
    # the qualitative claims of §IV-B.  The congestion trees take
    # ~0.5 ms of burst to crush 1Q, so compressed runs only show the
    # onset: the margin scales with the simulated burst length.
    margin = 1.25 if scale_cfg3 >= 0.8 else 1.03
    assert burst["VOQnet"] >= burst["CCFIT"] * 0.95, "VOQnet is the ceiling"
    assert burst["CCFIT"] > burst["1Q"] * margin, (
        f"CCFIT={burst['CCFIT']:.1f} must beat 1Q={burst['1Q']:.1f} by {margin}x"
    )
    assert burst["FBICM"] > burst["1Q"], "isolation still beats no-CC"
    if trees > 2:
        # more trees than CFQs: the combined mechanism pulls ahead
        assert burst["CCFIT"] >= burst["FBICM"] * 0.99, (
            f"CCFIT={burst['CCFIT']:.1f} vs FBICM={burst['FBICM']:.1f}"
        )
