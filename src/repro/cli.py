"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print Table I and the per-scheme hardware-cost comparison.
``fig 7a|7b|7c|8a|8b|8c|9|10``
    Regenerate one figure of §IV (series/flow tables to stdout).
``case 1|2|3 --scheme CCFIT``
    Run a single traffic case under one scheme and print per-flow
    bandwidths plus the CC counters.
``trees N --scheme CCFIT``
    Run the Case #4 scalability probe with N congestion trees.

Common options: ``--scale`` (time compression, default 0.3),
``--seed``, ``--csv PATH`` (dump the throughput series).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from repro.experiments.configs import CONFIG3, table1
from repro.experiments.costs import cost_table
from repro.experiments.report import (
    render_fig8_summary,
    render_flow_table,
    render_series,
    render_table,
)
from repro.experiments.runner import (
    FIG8_SCHEMES,
    PAPER_SCHEMES,
    CaseResult,
    run_case1,
    run_case2,
    run_case3,
    run_case4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="CCFIT (ICPP 2011) reproduction — regenerate the paper's evaluation",
    )
    p.add_argument("--scale", type=float, default=0.3, help="time compression (1.0 = paper scale)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", type=str, default=None, help="write the throughput series as CSV")
    p.add_argument("--svg", type=str, default=None, help="render the figure as an SVG chart")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I + scheme hardware costs")

    fig = sub.add_parser("fig", help="regenerate a figure (7a..7c, 8a..8c, 9, 10)")
    fig.add_argument("panel", choices=["7a", "7b", "7c", "8a", "8b", "8c", "9", "10"])

    case = sub.add_parser("case", help="run one traffic case under one scheme")
    case.add_argument("number", type=int, choices=[1, 2, 3])
    case.add_argument("--scheme", default="CCFIT", choices=list(FIG8_SCHEMES) + ["VOQsw"])

    trees = sub.add_parser("trees", help="Case #4 scalability probe")
    trees.add_argument("count", type=int)
    trees.add_argument("--scheme", default="CCFIT", choices=list(FIG8_SCHEMES) + ["VOQsw"])
    return p


def _write_csv(path: str, results: Dict[str, CaseResult]) -> None:
    with open(path, "w") as fh:
        fh.write("scheme,time_ns,throughput_gbs\n")
        for scheme, res in results.items():
            times, rates = res.throughput
            for t, r in zip(times, rates):
                fh.write(f"{scheme},{t:.1f},{r:.6f}\n")
    print(f"wrote {path}")


def _print_case(res: CaseResult) -> None:
    print(f"scheme {res.scheme}: {res.duration / 1e6:.2f} ms simulated")
    if res.flow_bandwidth:
        rows = [
            {"flow": f, "GB/s (tail window)": f"{bw:.3f}"}
            for f, bw in sorted(res.flow_bandwidth.items())
        ]
        print(render_table(rows))
    interesting = (
        "delivered_packets",
        "fecn_marked",
        "becns_received",
        "cfq_alloc_failures",
        "events",
    )
    print(render_table([{k: int(res.stats[k]) for k in interesting}]))


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        print("TABLE I — evaluated network configurations")
        print(render_table(table1()))
        print()
        print("Scheme hardware costs on Config #3 (64 nodes):")
        print(render_table(cost_table(CONFIG3.topo())))
        return 0

    if args.command == "fig":
        panel = args.panel
        if panel.startswith("7"):
            results = run_fig7(panel[1], PAPER_SCHEMES, time_scale=args.scale, seed=args.seed)
            print(render_series(results, stride=max(1, len(next(iter(results.values())).throughput[0]) // 18)))
        elif panel.startswith("8"):
            trees = {"a": 1, "b": 4, "c": 6}[panel[1]]
            results = run_fig8(trees, FIG8_SCHEMES, time_scale=args.scale, seed=args.seed)
            print(render_series(results, stride=max(1, len(next(iter(results.values())).throughput[0]) // 15)))
            print(render_fig8_summary(results))
        elif panel == "9":
            results = run_fig9(PAPER_SCHEMES, time_scale=args.scale, seed=args.seed)
            print(render_flow_table(results, ("F0", "F1", "F2", "F5", "F6")))
        else:
            results = run_fig10(PAPER_SCHEMES, time_scale=args.scale, seed=args.seed)
            print(render_flow_table(results, ("F0", "F1", "F2", "F3", "F4")))
        if args.csv:
            _write_csv(args.csv, results)
        if args.svg:
            from repro.metrics.svgplot import chart_results

            if panel in ("9", "10"):
                # one panel per scheme, suffixed like the paper's (a)-(d)
                base = args.svg[:-4] if args.svg.endswith(".svg") else args.svg
                for tag, (scheme, res) in zip("abcd", results.items()):
                    path = f"{base}{tag}.svg"
                    chart_results({scheme: res}, f"Fig. {panel}{tag}", per_flow=True).write(path)
                    print(f"wrote {path}")
            else:
                chart_results(results, f"Fig. {panel}").write(args.svg)
                print(f"wrote {args.svg}")
        return 0

    if args.command == "case":
        runner = {1: run_case1, 2: run_case2, 3: run_case3}[args.number]
        res = runner(args.scheme, time_scale=args.scale, seed=args.seed)
        _print_case(res)
        if args.csv:
            _write_csv(args.csv, {args.scheme: res})
        return 0

    if args.command == "trees":
        res = run_case4(args.scheme, num_trees=args.count, time_scale=args.scale, seed=args.seed)
        _print_case(res)
        print(f"burst-window throughput: {res.mean_throughput():.1f} GB/s")
        if args.csv:
            _write_csv(args.csv, {args.scheme: res})
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
