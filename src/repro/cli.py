"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print Table I and the per-scheme hardware-cost comparison.
``fig 7a|7b|7c|8a|8b|8c|9|10``
    Regenerate one figure of §IV (series/flow tables to stdout).
``case 1|2|3 --scheme CCFIT``
    Run a single traffic case under one scheme and print per-flow
    bandwidths plus the CC counters.
``trees N --scheme CCFIT``
    Run the Case #4 scalability probe with N congestion trees.
``sweep NAME``
    Run any registered experiment (``fig7a`` ... ``fig10``,
    ``case1`` ... ``case4``) through the sweep engine and report the
    cache hit count.  ``repro sweep --list`` enumerates the names.
``perf``
    Benchmark the simulation engine (dispatch microbenchmark on every
    kernel + full-case events/s with a per-subsystem event histogram)
    and write ``BENCH_engine.json``.  ``--quick`` runs a CI-sized
    smoke; ``--check`` ratchets the speedup ratios against the
    committed baseline and exits 1 on regression; ``--cprofile`` adds
    a cProfile top-N listing.  See docs/performance.md.
``telemetry NAME --scheme CCFIT --out DIR``
    Run one experiment cell with the telemetry sampler attached and
    render the bundle (JSONL / Prometheus text / SVG dashboard — pick
    with ``--format``).  Every simulation command also accepts
    ``--telemetry`` / ``--telemetry-interval NS`` to attach sampling
    without changing results (bundles ride on the cached results).
    See docs/telemetry.md.
``serve --broker DIR --port 8642``
    Long-running service front-end: submit experiments over HTTP
    (``POST /experiments``), stream cell-level progress as NDJSON/SSE,
    fetch cached ``CaseResult``\\ s, scrape live Prometheus
    ``/metrics``, and lease cells to pull workers.  See
    docs/service.md.
``worker --broker URL``
    Pull-based sweep worker: lease cells from a broker (a shared
    directory or an ``http://`` ``repro serve`` endpoint), execute
    them with the standard retry/timeout machinery, publish results
    into the shared content-addressed cache.  See docs/service.md.
``cache [--dir PATH] [--prune ...]``
    Shared-cache hygiene: occupancy stats, ``--prune`` by
    ``--older-than AGE`` and/or ``--max-size SIZE``, ``--quarantined``
    to list quarantined entries, ``--clear`` to drop everything.

Common options: ``--scale`` (time compression, default 0.3),
``--seed``, ``--csv PATH`` (dump the throughput series),
``--jobs N`` (worker processes for the simulation grid),
``--routing NAME[,NAME..]`` (routing policy axis — ``det``, ``ecmp``,
``adaptive``, ``flowlet``; names match case-insensitively, see
docs/routing.md), ``--kernel NAME`` (simulation kernel — ``bucket``,
``heap``, ``batch``; byte-identical results, see docs/performance.md),
``--cache-dir PATH`` / ``--no-cache`` (on-disk
result cache; ``sweep`` caches by default, the other commands opt in
via ``--cache-dir``), ``--faults SPEC`` (deterministic fault
injection — link/switch failures and degradations, see
docs/faults.md), ``--buffer-model NAME`` (switch buffer organisation —
``static`` or ``shared``; unlike ``--kernel`` this changes results,
see docs/buffers.md).  See docs/sweep.md for the job/cache model.

Resilience options (docs/robustness.md): ``--timeout SECONDS``
(per-cell wall-clock budget), ``--retries N`` (bounded retries with
exponential backoff), ``--journal PATH`` + ``--resume`` (completed-job
journal for crash-safe restarts), ``--manifest PATH`` (structured
ok/retried/failed report), and ``--validate`` (run every simulation
under the invariant guard, :mod:`repro.sim.guard`).  A sweep with
failed cells still renders the surviving results and exits 1.

Every simulation command dispatches through
:mod:`repro.experiments.registry`, so registering a new experiment
makes it runnable here with no CLI changes.
"""

from __future__ import annotations

import argparse
import difflib
import os
import re
import sys
from typing import Dict, Iterable, Optional

from repro.core.ccfit import SCHEMES
from repro.experiments import registry
from repro.experiments.configs import CONFIG3, table1
from repro.experiments.costs import cost_table
from repro.experiments.registry import Experiment
from repro.experiments.report import (
    render_fault_matrix,
    render_fig8_summary,
    render_flow_table,
    render_pfc_matrix,
    render_routing_grid,
    render_series,
    render_table,
)
from repro.experiments.runner import CaseResult
from repro.experiments.sweep import SweepOptions, SweepReport, default_cache_dir
from repro.sim.guard import ENV_VALIDATE

__all__ = ["main", "build_parser"]

_SIM_COMMANDS = ("fig", "case", "trees", "sweep")


def _add_engine_options(
    p: argparse.ArgumentParser, suppress: bool = False, kernel: bool = True
) -> None:
    """The sweep-engine knobs, shared by every simulation command.

    They live on the main parser (before the subcommand) *and*, with
    ``default=SUPPRESS``, on each subparser — so both
    ``repro --jobs 4 sweep fig9`` and ``repro sweep fig9 --jobs 4``
    work, and a subparser never clobbers a value given up front.
    """
    sup = argparse.SUPPRESS

    def d(value):
        return sup if suppress else value

    p.add_argument("--jobs", type=int, default=d(1), metavar="N",
                   help="worker processes for the simulation grid (1 = serial)")
    p.add_argument("--routing", type=str, default=d(None), metavar="NAME[,NAME..]",
                   help="routing policy (det|ecmp|adaptive|flowlet, "
                        "case-insensitive; default det).  `sweep` accepts a "
                        "comma-separated list forming a grid axis")
    if kernel:
        # `perf` opts out: its own --kernel selects which kernels to
        # *measure* (a list), not which one to simulate on.
        p.add_argument("--kernel", type=str, default=d(None), metavar="NAME",
                       help="simulation kernel (bucket|heap|batch, case-insensitive; "
                            "default: engine default / REPRO_SIM_KERNEL).  Kernels "
                            "are byte-identical — this picks speed, not results")
    p.add_argument("--cache-dir", type=str, default=d(None), metavar="PATH",
                   help="on-disk result cache directory "
                        "(default: ~/.cache/repro-sweep for `sweep`, off otherwise)")
    p.add_argument("--no-cache", action="store_true", default=d(False),
                   help="disable the on-disk result cache")
    p.add_argument("--timeout", type=float, default=d(None), metavar="SECONDS",
                   help="wall-clock budget per cell; a cell that exceeds it is "
                        "retried in isolation and then recorded as failed")
    p.add_argument("--retries", type=int, default=d(2), metavar="N",
                   help="retries per failed cell, with exponential backoff (default 2)")
    p.add_argument("--journal", type=str, default=d(None), metavar="PATH",
                   help="append completed cells to a JSONL journal (crash-safe)")
    p.add_argument("--resume", action="store_true", default=d(False),
                   help="replay finished cells from --journal before simulating")
    p.add_argument("--manifest", type=str, default=d(None), metavar="PATH",
                   help="write a structured ok/retried/failed manifest as JSON")
    p.add_argument("--validate", action="store_true", default=d(False),
                   help="run simulations under the runtime invariant guard "
                        "(sets REPRO_SIM_VALIDATE=1 so workers inherit it)")
    p.add_argument("--telemetry", action="store_true", default=d(False),
                   help="attach the telemetry sampler to every simulation "
                        "(results stay byte-identical; bundles ride on the results)")
    p.add_argument("--telemetry-interval", type=float, default=d(100_000.0),
                   metavar="NS", help="telemetry sampling period in ns (default 100000)")
    p.add_argument("--faults", type=str, default=d(None), metavar="SPEC",
                   help="inject deterministic faults into every cell, e.g. "
                        "'kill:s0p4->s16p0@1.2ms' or "
                        "'degrade:LINK@2ms:bw=0.5,drop=0.01;seed=7' "
                        "(docs/faults.md; plans are part of the cache key)")
    p.add_argument("--buffer-model", type=str, default=d(None), metavar="NAME",
                   help="switch buffer organisation (static|shared, "
                        "case-insensitive; default static, the paper's "
                        "per-port partitioning).  Unlike --kernel this "
                        "changes results and is part of the cache key "
                        "(docs/buffers.md)")


class _Parser(argparse.ArgumentParser):
    """Argparse with the repo's did-you-mean treatment for a typo'd
    subcommand: same hint + exit-2 contract as unknown experiment and
    scheme names (:func:`_unknown_name`), instead of the stock
    usage-dump error."""

    def error(self, message: str) -> "NoReturn":  # noqa: F821 - argparse idiom
        m = re.search(r"argument command: invalid choice: '([^']+)'", message)
        if m:
            raise SystemExit(_unknown_name("command", m.group(1), _COMMANDS))
        super().error(message)


def build_parser() -> argparse.ArgumentParser:
    p = _Parser(
        prog="repro",
        description="CCFIT (ICPP 2011) reproduction — regenerate the paper's evaluation",
    )
    p.add_argument("--scale", type=float, default=0.3, help="time compression (1.0 = paper scale)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", type=str, default=None, help="write the throughput series as CSV")
    p.add_argument("--svg", type=str, default=None, help="render the figure as an SVG chart")
    _add_engine_options(p)
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I + scheme hardware costs")

    fig = sub.add_parser("fig", help="regenerate a figure (7a..7c, 8a..8c, 9, 10)")
    fig.add_argument("panel", choices=["7a", "7b", "7c", "8a", "8b", "8c", "9", "10"])

    case = sub.add_parser("case", help="run one traffic case under one scheme")
    case.add_argument("number", type=int, choices=[1, 2, 3])
    case.add_argument("--scheme", default="CCFIT", metavar="NAME",
                      help="congestion-management scheme (validated with a "
                           "did-you-mean hint, exit code 2 on a typo)")

    trees = sub.add_parser("trees", help="Case #4 scalability probe")
    trees.add_argument("count", type=int)
    trees.add_argument("--scheme", default="CCFIT", metavar="NAME",
                      help="congestion-management scheme")

    sweep = sub.add_parser(
        "sweep",
        help="run a registered experiment through the parallel sweep engine",
        description="Decompose an experiment into independent (scheme) cells, "
                    "run them across --jobs worker processes, and memoize the "
                    "cells in the on-disk cache so repeated invocations are "
                    "served without re-simulating.",
    )
    sweep.add_argument("name", nargs="?", metavar="NAME",
                       help="experiment to run (see --list)")
    sweep.add_argument("--list", action="store_true", dest="list_experiments",
                       help="list registered experiments and exit")
    sweep.add_argument("--schemes", "--scheme", type=str, default=None, metavar="A,B,..",
                       help="comma-separated scheme subset (default: the experiment's "
                            "list); names match case-insensitively")

    perf = sub.add_parser(
        "perf",
        help="benchmark the simulation engine and write BENCH_engine.json",
        description="Dispatch microbenchmark on every kernel plus full figure "
                    "cells with per-subsystem event histograms.",
    )
    perf.add_argument("--quick", action="store_true",
                      help="CI-sized smoke run (small microbench, one short case)")
    perf.add_argument("--case", default="case1", dest="perf_case",
                      help="figure cell to benchmark (case1..case4)")
    perf.add_argument("--schemes", type=str, default="CCFIT", metavar="A,B,..",
                      help="comma-separated schemes to benchmark (default CCFIT)")
    perf.add_argument("--kernel", dest="perf_kernel", default="all",
                      metavar="NAME[,NAME..]",
                      help="engine kernel(s) to measure: a comma-separated subset of "
                           "bucket|heap|batch (case-insensitive), 'both' "
                           "(bucket+heap) or 'all' (default)")
    perf.add_argument("--events", type=int, default=300_000,
                      help="microbenchmark event count")
    perf.add_argument("--out", default="BENCH_engine.json",
                      help="JSON report path (default: ./BENCH_engine.json)")
    perf.add_argument("--check", action="store_true",
                      help="compare the fresh run against the committed baseline "
                           "(--baseline) and the hard speedup floors; exit 1 on "
                           "regression (the perf ratchet, see docs/performance.md)")
    perf.add_argument("--baseline", default="BENCH_engine.json", metavar="PATH",
                      help="baseline report for --check (default: the committed "
                           "./BENCH_engine.json; read before --out is rewritten)")
    perf.add_argument("--cprofile", action="store_true",
                      help="also run one case under cProfile and print the top functions")

    tele = sub.add_parser(
        "telemetry",
        help="run one experiment cell with the sampler attached and render the bundle",
        description="Run a single (experiment, scheme) cell with telemetry "
                    "enabled and export the bundle: fsync'd JSONL samples, "
                    "Prometheus text exposition and/or a self-contained SVG "
                    "dashboard (see docs/telemetry.md).",
    )
    tele.add_argument("name", metavar="NAME",
                      help="experiment to instrument (see `repro sweep --list`)")
    tele.add_argument("--scheme", default="CCFIT", metavar="NAME",
                      help="congestion-management scheme (default CCFIT)")
    tele.add_argument("--out", default="telemetry-out", metavar="DIR",
                      help="output directory for the rendered bundle (default ./telemetry-out)")
    tele.add_argument("--format", default="all", dest="tele_format", metavar="FMT",
                      help="export format: jsonl | prom | html | all (default all)")
    tele.add_argument("--interval", type=float, default=100_000.0, metavar="NS",
                      help="sampling period in ns (default 100000)")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP service front-end (submit / stream / fetch / metrics)",
        description="Long-running service mode: an HTTP front-end over a shared "
                    "filesystem broker.  Submit experiments (POST /experiments), "
                    "stream cell-level progress (GET /runs/<id>/events, NDJSON or "
                    "SSE), fetch cached CaseResults and telemetry bundles, scrape "
                    "live Prometheus /metrics, and lease cells to `repro worker` "
                    "processes over the /broker/* endpoints (see docs/service.md).",
    )
    serve.add_argument("--broker", default=None, metavar="DIR",
                       help="broker state directory (default: $REPRO_BROKER_DIR "
                            "or ~/.cache/repro-broker)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (default 8642; 0 picks a free port)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared result cache (default: the standard sweep "
                            "cache, so service results and in-process sweeps "
                            "memoize into one namespace)")
    serve.add_argument("--lease-ttl", type=float, default=60.0, metavar="S",
                       help="seconds without a heartbeat before a leased cell "
                            "is requeued (default 60)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    worker = sub.add_parser(
        "worker",
        help="pull-based sweep worker: lease cells from a broker and run them",
        description="Lease cells from a broker — a shared directory or an "
                    "http:// `repro serve` endpoint — execute them with the "
                    "standard retry/timeout machinery, and publish results into "
                    "the shared content-addressed cache.  Workers are "
                    "crash-safe: a worker that dies mid-cell stops "
                    "heartbeating, its lease expires, and the cell is requeued "
                    "for another worker (see docs/service.md).",
    )
    worker.add_argument("--broker", required=True, metavar="URL",
                        help="broker to lease from: a directory path (or "
                             "dir://PATH) for direct filesystem access, or the "
                             "http://HOST:PORT of a `repro serve` instance")
    worker.add_argument("--id", default=None, dest="worker_id", metavar="NAME",
                        help="worker identity recorded in manifests "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-cell wall-clock timeout; runs each cell in a "
                             "quarantined child process")
    worker.add_argument("--retries", type=int, default=2, metavar="N",
                        help="in-worker retries per cell before giving the "
                             "lease back as failed (default 2)")
    worker.add_argument("--heartbeat", type=float, default=None, metavar="S",
                        help="heartbeat period while running a cell "
                             "(default: lease ttl / 4)")
    worker.add_argument("--poll-interval", type=float, default=0.5, metavar="S",
                        help="idle sleep between claim attempts (default 0.5)")
    worker.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit after completing N cells")
    worker.add_argument("--idle-exit", type=float, default=None, metavar="S",
                        help="exit after S seconds with nothing to claim "
                             "(default: run until interrupted)")
    worker.add_argument("--journal", default=None, metavar="PATH",
                        help="also append completed cells to a local JSONL "
                             "journal (same format as `repro sweep --journal`)")

    cache = sub.add_parser(
        "cache",
        help="result-cache hygiene: stats, prune by age/size, quarantine list",
        description="Inspect and maintain the shared content-addressed result "
                    "cache.  With no flags prints occupancy stats; --prune "
                    "removes entries by --older-than age and/or evicts oldest "
                    "entries until the cache fits --max-size.",
    )
    cache.add_argument("--dir", default=None, dest="cache_dir", metavar="PATH",
                       help="cache directory (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-sweep)")
    cache.add_argument("--prune", action="store_true",
                       help="remove entries per --older-than / --max-size "
                            "(with neither, prunes only quarantined entries)")
    cache.add_argument("--older-than", default=None, metavar="AGE",
                       help="age threshold for --prune, e.g. 45s, 30m, 12h, 7d")
    cache.add_argument("--max-size", default=None, metavar="SIZE",
                       help="size budget for --prune, e.g. 64K, 500M, 2G "
                            "(oldest entries evicted first)")
    cache.add_argument("--keep-quarantine", action="store_true",
                       help="leave quarantined entries alone while pruning")
    cache.add_argument("--quarantined", action="store_true",
                       help="list quarantined (corrupt) entries and exit")
    cache.add_argument("--clear", action="store_true",
                       help="remove every entry (including quarantine)")
    cache.add_argument("--json", action="store_true", dest="as_json",
                       help="emit machine-readable JSON instead of a table")

    for sp in (fig, case, trees, sweep, tele):
        _add_engine_options(sp, suppress=True)
    _add_engine_options(perf, suppress=True, kernel=False)
    return p


def _unknown_name(kind: str, name: str, choices: Iterable[str]) -> int:
    """Satellite UX: a typo'd experiment/scheme name exits with code 2
    and a did-you-mean hint instead of a traceback."""
    names = sorted(choices)
    # match case-insensitively so "ccfti" still suggests CCFIT
    folded = {n.casefold(): n for n in names}
    close = difflib.get_close_matches(name.casefold(), list(folded), n=3, cutoff=0.4)
    close = [folded[c] for c in close]
    hint = f" — did you mean {' or '.join(close)}?" if close else ""
    print(
        f"repro: unknown {kind} {name!r}{hint} (choose from {', '.join(names)})",
        file=sys.stderr,
    )
    return 2


def _canonical_scheme(name: str) -> Optional[str]:
    """Case-insensitive scheme lookup (``"ccfit"`` -> ``"CCFIT"``)
    against the live registry; None for an unknown name."""
    return {s.casefold(): s for s in SCHEMES}.get(name.casefold())


def _resolve_routings(args) -> Optional[tuple]:
    """Parse/validate ``--routing``: comma-separated policy names,
    matched case-insensitively against the live policy registry.
    Returns None when the flag was not given; a typo prints a
    did-you-mean hint and exits 2 (same contract as unknown schemes)."""
    raw = getattr(args, "routing", None)
    if not raw:
        return None
    from repro.network.routing import policy_names

    by_fold = {n.casefold(): n for n in policy_names()}
    out: list = []
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        match = by_fold.get(item.casefold())
        if match is None:
            raise SystemExit(_unknown_name("routing policy", item, policy_names()))
        if match not in out:
            out.append(match)
    return tuple(out) if out else None


def _resolve_kernel(args) -> Optional[str]:
    """Parse/validate ``--kernel``: one simulation-kernel name, matched
    case-insensitively.  Returns None when the flag was not given; a
    typo prints a did-you-mean hint and exits 2 (same contract as
    unknown schemes and routing policies)."""
    raw = getattr(args, "kernel", None)
    if not raw:
        return None
    from repro.sim.engine import KERNELS, resolve_kernel

    try:
        return resolve_kernel(raw)
    except ValueError:
        raise SystemExit(_unknown_name("simulator kernel", raw, KERNELS))


def _resolve_buffer_model(args) -> Optional[str]:
    """Parse/validate ``--buffer-model``: one registered model name,
    matched case-insensitively.  Returns None when the flag was not
    given; a typo prints a did-you-mean hint and exits 2 (same contract
    as unknown schemes, routing policies and kernels)."""
    raw = getattr(args, "buffer_model", None)
    if not raw:
        return None
    from repro.network.buffers import buffer_model_names

    names = buffer_model_names()
    match = {n.casefold(): n for n in names}.get(raw.casefold())
    if match is None:
        raise SystemExit(_unknown_name("buffer model", raw, names))
    return match


def _single_routing(args, command: str) -> str:
    """Commands that run one cell take exactly one policy."""
    routings = _resolve_routings(args)
    if routings is not None and len(routings) > 1:
        print(f"repro: `{command}` accepts a single --routing policy "
              f"(got {','.join(routings)})", file=sys.stderr)
        raise SystemExit(2)
    return routings[0] if routings else "det"


def _options(
    args: argparse.Namespace, *, cache_by_default: bool, routing: str = "det"
) -> SweepOptions:
    """Build SweepOptions from parsed args.  The cache engages when a
    directory was given explicitly, or by default for ``sweep``;
    ``--no-cache`` always wins."""
    cache_dir = args.cache_dir
    if cache_dir is None and cache_by_default and not args.no_cache:
        cache_dir = default_cache_dir()
    if args.resume and not args.journal:
        print("repro: --resume requires --journal PATH", file=sys.stderr)
        raise SystemExit(2)
    telemetry = None
    if getattr(args, "telemetry", False):
        from repro.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(interval=args.telemetry_interval)
    faults = None
    if getattr(args, "faults", None):
        from repro.sim.faults import FaultPlan, FaultPlanError

        try:
            faults = FaultPlan.parse(args.faults)
        except FaultPlanError as exc:
            print(f"repro: bad --faults spec: {exc}", file=sys.stderr)
            raise SystemExit(2)
    return SweepOptions(
        time_scale=args.scale,
        seed=args.seed,
        routing=routing,
        kernel=_resolve_kernel(args),
        jobs=args.jobs,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        timeout=args.timeout,
        max_retries=max(0, args.retries),
        journal=args.journal,
        resume=args.resume,
        telemetry=telemetry,
        faults=faults,
        buffer_model=_resolve_buffer_model(args),
    )


def _write_csv(path: str, results: Dict[str, CaseResult]) -> None:
    with open(path, "w") as fh:
        fh.write("scheme,time_ns,throughput_gbs\n")
        for scheme, res in results.items():
            times, rates = res.throughput
            for t, r in zip(times, rates):
                fh.write(f"{scheme},{t:.1f},{r:.6f}\n")
    print(f"wrote {path}")


def _print_case(res: CaseResult) -> None:
    print(f"scheme {res.scheme}: {res.duration / 1e6:.2f} ms simulated")
    if res.flow_bandwidth:
        rows = [
            {"flow": f, "GB/s (tail window)": f"{bw:.3f}"}
            for f, bw in sorted(res.flow_bandwidth.items())
        ]
        print(render_table(rows))
    interesting = (
        "delivered_packets",
        "fecn_marked",
        "becns_received",
        "cfq_alloc_failures",
        "events",
    )
    print(render_table([{k: int(res.stats[k]) for k in interesting}]))


def _render_results(exp: Experiment, results: Dict[str, CaseResult], args) -> None:
    """The figure-style rendering, shared by ``fig`` and ``sweep``."""
    if not results:  # every cell failed — the engine report says why
        return
    if exp.kind == "series":
        stride_div = 15 if exp.case == "case4" else 18
        n = len(next(iter(results.values())).throughput[0])
        print(render_series(results, stride=max(1, n // stride_div)))
        if exp.case == "case4":
            print(render_fig8_summary(results))
    elif exp.kind == "grid":
        print(render_routing_grid(results))
    elif exp.kind == "faults":
        print(render_fault_matrix(results))
    elif exp.kind == "buffers":
        print(render_pfc_matrix(results))
    else:
        print(render_flow_table(results, exp.flows))
    if args.csv:
        _write_csv(args.csv, results)
    if args.svg:
        from repro.metrics.svgplot import chart_results

        if exp.kind == "flows" and exp.name in ("fig9", "fig10"):
            # one panel per scheme, suffixed like the paper's (a)-(d)
            base = args.svg[:-4] if args.svg.endswith(".svg") else args.svg
            panel = exp.name[3:]
            for tag, (scheme, res) in zip("abcd", results.items()):
                path = f"{base}{tag}.svg"
                chart_results({scheme: res}, f"Fig. {panel}{tag}", per_flow=True).write(path)
                print(f"wrote {path}")
        else:
            chart_results(results, exp.title.split(" — ")[0]).write(args.svg)
            print(f"wrote {args.svg}")


def _report_engine(
    report: SweepReport,
    opts: SweepOptions,
    args: Optional[argparse.Namespace] = None,
    always: bool = False,
) -> int:
    """Print the engine summary and failure details, write the manifest
    when requested, and turn failures into exit code 1."""
    if always or opts.jobs > 1 or opts.cache_enabled or report.failures:
        print(f"sweep: {report.summary()}")
    for failure in report.failures:
        print(f"sweep: FAILED {failure.summary()}", file=sys.stderr)
    manifest = getattr(args, "manifest", None) if args is not None else None
    if manifest:
        report.write_manifest(manifest)
        print(f"wrote {manifest}")
    return 1 if report.failures else 0


def _cmd_table1(args) -> int:
    print("TABLE I — evaluated network configurations")
    print(render_table(table1()))
    print()
    print("Scheme hardware costs on Config #3 (64 nodes):")
    print(render_table(cost_table(CONFIG3.topo())))
    return 0


def _case_schemes() -> tuple:
    """Schemes accepted by `case` / `trees`: the live registry, so
    schemes added via ``register_scheme`` are runnable immediately."""
    return tuple(SCHEMES)


def _result_key(scheme: str, routing: str, faults=None, buffer_model=None) -> str:
    """The key :meth:`Experiment.run` files a cell under."""
    key = scheme if routing == "det" else f"{scheme}@{routing}"
    if faults is not None:
        key += f"+{faults.label()}"
    if buffer_model is not None and buffer_model != "static":
        key += f"%{buffer_model}"
    return key


def _cmd_fig(args) -> int:
    exp = registry.get(f"fig{args.panel}")
    routings = _resolve_routings(args)
    opts = _options(args, cache_by_default=False,
                    routing=routings[0] if routings else "det")
    results, report = exp.run(routings=routings, options=opts)
    _render_results(exp, results, args)
    return _report_engine(report, opts, args)


def _cmd_case(args) -> int:
    scheme = _canonical_scheme(args.scheme)
    if scheme is None:
        return _unknown_name("scheme", args.scheme, _case_schemes())
    routing = _single_routing(args, "case")
    exp = registry.get(f"case{args.number}")
    opts = _options(args, cache_by_default=False, routing=routing)
    results, report = exp.run(schemes=(scheme,), options=opts)
    key = _result_key(scheme, routing, opts.faults, opts.buffer_model)
    if key in results:
        _print_case(results[key])
    if args.csv:
        _write_csv(args.csv, results)
    return _report_engine(report, opts, args)


def _cmd_trees(args) -> int:
    scheme = _canonical_scheme(args.scheme)
    if scheme is None:
        return _unknown_name("scheme", args.scheme, _case_schemes())
    routing = _single_routing(args, "trees")
    exp = registry.get("case4")
    opts = _options(args, cache_by_default=False, routing=routing)
    results, report = exp.run(schemes=(scheme,), options=opts, num_trees=args.count)
    key = _result_key(scheme, routing, opts.faults, opts.buffer_model)
    if key in results:
        res = results[key]
        _print_case(res)
        print(f"burst-window throughput: {res.mean_throughput():.1f} GB/s")
    if args.csv:
        _write_csv(args.csv, results)
    return _report_engine(report, opts, args)


def _cmd_sweep(args) -> int:
    if args.list_experiments:
        rows = [
            {"name": e.name, "case": e.case, "schemes": ",".join(e.schemes),
             "routings": ",".join(e.routings) or "det", "title": e.title}
            for e in registry.experiments()
        ]
        print(render_table(rows))
        return 0
    if args.name is None:
        print("sweep: experiment name required (try `repro sweep --list`)", file=sys.stderr)
        return 2
    if args.name not in registry.names():
        return _unknown_name("experiment", args.name, registry.names())
    exp = registry.get(args.name)
    schemes: Optional[tuple] = None
    if args.schemes:
        schemes = []
        for raw in args.schemes.split(","):
            raw = raw.strip()
            if not raw:
                continue
            canonical = _canonical_scheme(raw)
            if canonical is None:
                return _unknown_name("scheme", raw, SCHEMES)
            schemes.append(canonical)
        schemes = tuple(schemes)
    routings = _resolve_routings(args)
    opts = _options(args, cache_by_default=True,
                    routing=routings[0] if routings else "det")
    results, report = exp.run(schemes=schemes, routings=routings, options=opts)
    print(exp.title)
    _render_results(exp, results, args)
    return _report_engine(report, opts, args, always=True)


def _cmd_perf(args) -> int:
    from repro.core.ccfit import SCHEMES as ALL_SCHEMES
    from repro.experiments.runner import CASE_NAMES
    from repro.perf import cprofile_case, render_report, run_perf, write_report

    if args.perf_case not in CASE_NAMES:
        print(f"perf: unknown case {args.perf_case!r}; choose from {CASE_NAMES}",
              file=sys.stderr)
        return 2
    schemes = []
    for raw in args.schemes.split(","):
        raw = raw.strip()
        if not raw:
            continue
        canonical = _canonical_scheme(raw)
        if canonical is None:
            return _unknown_name("scheme", raw, ALL_SCHEMES)
        schemes.append(canonical)
    schemes = tuple(schemes)
    routing = _single_routing(args, "perf")
    from repro.sim.engine import KERNELS, resolve_kernel

    raw_kernels = args.perf_kernel
    if raw_kernels == "all":
        kernels = KERNELS
    elif raw_kernels == "both":
        kernels = ("bucket", "heap")
    else:
        kernels = []
        for item in raw_kernels.split(","):
            item = item.strip()
            if not item:
                continue
            try:
                canonical = resolve_kernel(item)
            except ValueError:
                return _unknown_name("simulator kernel", item, KERNELS)
            if canonical not in kernels:
                kernels.append(canonical)
        kernels = tuple(kernels) or KERNELS
    if args.quick:
        time_scale, micro_events, micro_repeats = 0.03, 60_000, 1
    else:
        time_scale, micro_events, micro_repeats = args.scale, args.events, 3
    report = run_perf(
        cases=(args.perf_case,),
        schemes=schemes,
        kernels=kernels,
        time_scale=time_scale,
        seed=args.seed,
        micro_events=micro_events,
        micro_repeats=micro_repeats,
        routing=routing,
    )
    report["quick"] = bool(args.quick)
    print(render_report(report))
    baseline = None
    if args.check:
        # read the committed baseline *before* --out may overwrite it
        # (they default to the same path).
        import json as _json

        try:
            with open(args.baseline) as fh:
                baseline = _json.load(fh)
        except (OSError, ValueError):
            baseline = None
    write_report(report, args.out)
    print(f"wrote {args.out}")
    if args.cprofile:
        print(cprofile_case(args.perf_case, schemes[0], kernel=kernels[0],
                            time_scale=time_scale, seed=args.seed))
    if args.check:
        from repro.perf import check_report

        ok, lines = check_report(report, baseline)
        print("perf check vs " + (args.baseline if baseline is not None else "hard floors"))
        for line in lines:
            print("  " + line)
        if not ok:
            print("perf check: REGRESSION", file=sys.stderr)
            return 1
        print("perf check: ok")
    return 0


def _cmd_telemetry(args) -> int:
    from repro.telemetry import TELEMETRY_FORMATS, TelemetryConfig, write_bundle

    if args.name not in registry.names():
        return _unknown_name("experiment", args.name, registry.names())
    scheme = _canonical_scheme(args.scheme)
    if scheme is None:
        return _unknown_name("scheme", args.scheme, _case_schemes())
    if args.tele_format not in TELEMETRY_FORMATS:
        return _unknown_name("telemetry format", args.tele_format, TELEMETRY_FORMATS)
    routing = _single_routing(args, "telemetry")
    exp = registry.get(args.name)
    import dataclasses

    opts = dataclasses.replace(
        _options(args, cache_by_default=False, routing=routing),
        telemetry=TelemetryConfig(interval=args.interval),
    )
    results, report = exp.run(schemes=(scheme,), routings=(routing,), options=opts)
    rc = _report_engine(report, opts, args)
    res = results.get(_result_key(scheme, routing, opts.faults, opts.buffer_model))
    if res is None or res.telemetry is None:
        print("telemetry: no bundle produced (cell failed?)", file=sys.stderr)
        return rc or 1
    bundle = res.telemetry
    written = write_bundle(
        bundle, args.out, fmt=args.tele_format,
        title=f"{exp.title} — {scheme}" + (f" @{routing}" if routing != "det" else ""),
    )
    stats = bundle.get("tree_stats") or {}
    print(
        f"telemetry: {bundle['ticks']} samples at {args.interval:.0f} ns "
        f"({bundle['dropped']} dropped), "
        f"{stats.get('trees', 0)} congestion trees "
        f"(max {stats.get('max_concurrent_trees', 0)} concurrent)"
    )
    for path in written:
        print(f"wrote {path}")
    return rc


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
_SIZE_UNITS = {"b": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def _parse_age(text: str) -> float:
    """``"45s" | "30m" | "12h" | "7d"`` (or bare seconds) -> seconds."""
    m = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*([smhd]?)\s*", text, re.IGNORECASE)
    if not m:
        raise ValueError(f"bad age {text!r} (expected e.g. 45s, 30m, 12h, 7d)")
    return float(m.group(1)) * _AGE_UNITS.get(m.group(2).lower(), 1.0)


def _parse_size(text: str) -> int:
    """``"64K" | "500M" | "2G"`` (or bare bytes) -> bytes."""
    m = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*([bkmg]?)b?\s*", text, re.IGNORECASE)
    if not m:
        raise ValueError(f"bad size {text!r} (expected e.g. 64K, 500M, 2G)")
    return int(float(m.group(1)) * _SIZE_UNITS.get(m.group(2).lower(), 1))


def default_broker_dir() -> str:
    """``$REPRO_BROKER_DIR`` or ``~/.cache/repro-broker``."""
    env = os.environ.get("REPRO_BROKER_DIR")
    return env if env else os.path.join(os.path.expanduser("~"), ".cache", "repro-broker")


def _cmd_serve(args) -> int:
    from repro.service import serve

    try:
        serve(
            args.broker or default_broker_dir(),
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir or default_cache_dir(),
            lease_ttl=args.lease_ttl,
            verbose=args.verbose,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_worker(args) -> int:
    from repro.experiments.resilience import RetryPolicy
    from repro.service import Worker

    policy = RetryPolicy(max_retries=max(0, args.retries))
    worker = Worker(
        args.broker,
        worker_id=args.worker_id,
        policy=policy,
        timeout=args.timeout,
        heartbeat_interval=args.heartbeat,
        poll_interval=args.poll_interval,
        journal=args.journal,
        max_cells=args.max_cells,
        idle_exit=args.idle_exit,
    )
    try:
        summary = worker.run()
    except KeyboardInterrupt:
        summary = {"worker": worker.id, "completed": worker.completed,
                   "failed": worker.failed, "elapsed": None}
    print(
        f"worker {summary['worker']}: {summary['completed']} completed, "
        f"{summary['failed']} failed"
    )
    return 0 if summary["failed"] == 0 else 1


def _cmd_cache(args) -> int:
    import json as _json

    from repro.experiments.sweep import ResultCache

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.quarantined:
        import time as _time

        now = _time.time()
        rows = [
            {"name": name, "bytes": size, "age_s": round(now - mtime, 1)}
            for name, size, mtime in cache.quarantined()
        ]
        if args.as_json:
            print(_json.dumps(rows, indent=2))
        elif rows:
            print(render_table(rows))
        else:
            print("cache: no quarantined entries")
        return 0
    if args.clear:
        summary = cache.prune(max_age_s=0.0, include_quarantine=True)
        print(f"cache: removed {summary['removed'] + summary['quarantine_removed']} "
              f"entries, freed {summary['freed_bytes']} bytes")
        return 0
    if args.prune:
        try:
            max_age = _parse_age(args.older_than) if args.older_than else None
            max_bytes = _parse_size(args.max_size) if args.max_size else None
        except ValueError as exc:
            print(f"cache: {exc}", file=sys.stderr)
            return 2
        summary = cache.prune(
            max_age_s=max_age,
            max_bytes=max_bytes,
            include_quarantine=not args.keep_quarantine,
        )
        if args.as_json:
            print(_json.dumps(summary, indent=2))
        else:
            print(
                f"cache: pruned {summary['removed']} entries "
                f"(+{summary['quarantine_removed']} quarantined), "
                f"freed {summary['freed_bytes']} bytes"
            )
        return 0
    stats = cache.stats()
    if args.as_json:
        print(_json.dumps(stats, indent=2))
    else:
        print(render_table([{
            "entries": stats["entries"],
            "bytes": stats["bytes"],
            "oldest": f"{stats['oldest_age_s']:.0f}s" if stats["oldest_age_s"] is not None else "-",
            "newest": f"{stats['newest_age_s']:.0f}s" if stats["newest_age_s"] is not None else "-",
            "quarantined": stats["quarantined"],
        }]))
        print(f"cache dir: {stats['root']}")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "fig": _cmd_fig,
    "case": _cmd_case,
    "trees": _cmd_trees,
    "sweep": _cmd_sweep,
    "perf": _cmd_perf,
    "telemetry": _cmd_telemetry,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "cache": _cmd_cache,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    env_kernel = os.environ.get("REPRO_SIM_KERNEL")
    if env_kernel:
        # fail fast with the did-you-mean contract instead of a
        # ValueError traceback from deep inside the first simulation;
        # rewrite the env to the canonical spelling so sweep workers
        # inherit it resolved.
        from repro.sim.engine import KERNELS, resolve_kernel

        try:
            os.environ["REPRO_SIM_KERNEL"] = resolve_kernel(env_kernel)
        except ValueError:
            return _unknown_name("simulator kernel (REPRO_SIM_KERNEL)",
                                 env_kernel, KERNELS)
    if getattr(args, "validate", False):
        # environment (not a plumbed flag) so forked sweep workers and
        # every build_fabric call inherit guard mode (repro.sim.guard).
        os.environ[ENV_VALIDATE] = "1"
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
