"""Content-addressable memories tracking congestion trees.

FBICM/CCFIT keep, at every input port (and IA output stage), one CAM
line per CFQ; the line stores the **destination** the congested flow is
addressed to (the paper's footnote 3: that is all CCFIT needs under
distributed deterministic routing) plus the queue's protocol state.
Output ports carry a small CAM as well, linking the congestion
information of the downstream switch's input CFQs to this switch's
input ports (§III-A).

Because DET routing converges all traffic for one destination onto a
single path tree, a destination unambiguously identifies a congestion
tree, so all protocol messages (Alloc/Dealloc/Stop/Go) are keyed by
destination.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["CamLine", "InputCam", "OutputCamLine", "OutputCam", "CamError"]


class CamError(RuntimeError):
    """Raised on CAM protocol violations (double alloc/free)."""


class CamLine:
    """State of one allocated CFQ at an input port or IA.

    Attributes
    ----------
    dest:
        The congested destination this CFQ isolates.
    cfq_index:
        Which CFQ of the port the line controls.
    root:
        True when this CFQ was allocated by *local detection*, i.e. it
        sits one hop from the congestion point.  Only root CFQs may
        move their output port into the congestion state (§III-C).
    stopped:
        Stop/Go status imposed by the downstream switch: while True the
        CFQ must not request its output port.
    stop_sent:
        We have told the upstream device to stop (and not yet Go).
    propagated:
        We have sent a CfqAlloc upstream (so teardown must send a
        CfqDealloc).
    orphaned:
        The upstream reference (output CAM line) is gone; the line no
        longer captures new packets and frees itself once drained.
    hot:
        Occupancy is above the High threshold (counted by the output
        port's congestion-state counter).
    """

    __slots__ = (
        "dest",
        "cfq_index",
        "root",
        "stopped",
        "stop_sent",
        "propagated",
        "orphaned",
        "hot",
        "allocated_at",
        "last_hot_at",
    )

    def __init__(self, dest: int, cfq_index: int, root: bool, now: float) -> None:
        self.dest = dest
        self.cfq_index = cfq_index
        self.root = root
        self.stopped = False
        self.stop_sent = False
        self.propagated = False
        self.orphaned = False
        self.hot = False
        self.allocated_at = now
        #: when the line last left the hot state (drives the dwell
        #: bypass for lines that recently proved to be genuine roots).
        self.last_hot_at = float("-inf")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(
            f
            for f, on in (
                ("R", self.root),
                ("S", self.stopped),
                ("s", self.stop_sent),
                ("P", self.propagated),
                ("O", self.orphaned),
                ("H", self.hot),
            )
            if on
        )
        return f"<CamLine dest={self.dest} cfq={self.cfq_index} {flags}>"


class InputCam:
    """Fixed-capacity CAM of an input port: one line per CFQ."""

    def __init__(self, num_lines: int) -> None:
        self.num_lines = num_lines
        self._lines: List[Optional[CamLine]] = [None] * num_lines
        self._by_dest: Dict[int, CamLine] = {}
        #: times allocation failed because every line was busy — the
        #: scalability limit the paper's Fig. 8 exposes.
        self.alloc_failures = 0
        self.allocations = 0
        self.frees = 0

    # -- queries ---------------------------------------------------------
    def lookup(self, dest: int) -> Optional[CamLine]:
        """The line isolating ``dest``, or None."""
        return self._by_dest.get(dest)

    def lines(self) -> List[CamLine]:
        """All currently allocated lines."""
        return [ln for ln in self._lines if ln is not None]

    def line_at(self, cfq_index: int) -> Optional[CamLine]:
        return self._lines[cfq_index]

    @property
    def full(self) -> bool:
        return all(ln is not None for ln in self._lines)

    # -- mutation --------------------------------------------------------
    def allocate(self, dest: int, root: bool, now: float) -> Optional[CamLine]:
        """Grab a free line for ``dest``; None (and a recorded failure)
        when the port has run out of CFQs."""
        if dest in self._by_dest:
            raise CamError(f"destination {dest} already has a CAM line")
        for idx, ln in enumerate(self._lines):
            if ln is None:
                line = CamLine(dest, idx, root, now)
                self._lines[idx] = line
                self._by_dest[dest] = line
                self.allocations += 1
                return line
        self.alloc_failures += 1
        return None

    def note_full(self) -> None:
        """Record an allocation that was never attempted because every
        line is known busy (the detection fast path).  Kept as a method
        so tracing sees these the same as :meth:`allocate` misses."""
        self.alloc_failures += 1

    def free(self, line: CamLine) -> None:
        if self._lines[line.cfq_index] is not line:
            raise CamError(f"freeing unallocated line {line!r}")
        self._lines[line.cfq_index] = None
        del self._by_dest[line.dest]
        self.frees += 1

    # -- validation hook -------------------------------------------------
    def audit(self) -> None:
        """Check internal consistency (invariant-guard hook): the
        by-destination index matches the line array exactly, and the
        allocate/free balance equals the live line count."""
        live = [ln for ln in self._lines if ln is not None]
        for idx, ln in enumerate(self._lines):
            if ln is not None and ln.cfq_index != idx:
                raise CamError(f"line {ln!r} filed at index {idx}")
        if len(self._by_dest) != len(live):
            raise CamError(
                f"CAM index skew: {len(self._by_dest)} dests vs {len(live)} lines"
            )
        for dest, ln in self._by_dest.items():
            if ln.dest != dest or self._lines[ln.cfq_index] is not ln:
                raise CamError(f"CAM index entry for dest {dest} points at {ln!r}")
        if self.allocations - self.frees != len(live):
            raise CamError(
                f"CFQ alloc/free imbalance: {self.allocations} allocs - "
                f"{self.frees} frees != {len(live)} live lines"
            )


class OutputCamLine:
    """One congestion tree referenced by the downstream switch."""

    __slots__ = ("dest", "stopped")

    def __init__(self, dest: int) -> None:
        self.dest = dest
        self.stopped = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OutCamLine dest={self.dest}{' STOP' if self.stopped else ''}>"


class OutputCam:
    """CAM of an output port: mirrors the downstream input port's CFQs.

    Capacity equals the downstream port's CFQ count, since each
    downstream CFQ sends at most one live Alloc.
    """

    def __init__(self, num_lines: int) -> None:
        self.num_lines = num_lines
        self._by_dest: Dict[int, OutputCamLine] = {}
        self.alloc_failures = 0

    def lookup(self, dest: int) -> Optional[OutputCamLine]:
        return self._by_dest.get(dest)

    def lines(self) -> List[OutputCamLine]:
        return list(self._by_dest.values())

    def destinations(self) -> List[int]:
        return list(self._by_dest)

    def allocate(self, dest: int) -> Optional[OutputCamLine]:
        if dest in self._by_dest:
            return self._by_dest[dest]
        if len(self._by_dest) >= self.num_lines:
            self.alloc_failures += 1
            return None
        line = OutputCamLine(dest)
        self._by_dest[dest] = line
        return line

    def free(self, dest: int) -> None:
        if dest not in self._by_dest:
            raise CamError(f"freeing unknown output CAM line for dest {dest}")
        del self._by_dest[dest]
