r"""CCFIT, the evaluated scheme presets, and the scheme registry.

The paper evaluates five techniques (§IV-A); this module captures each
as a :class:`SchemeSpec` composing the four policy objects of
:mod:`repro.core.scheme` — switch queue organisation, congestion
detection, FECN marking, and the source-side injection gate:

========  =====================  ==========  =============  ========  ==========
scheme    switch queues          IA stage    detection      marking   inj. gate
========  =====================  ==========  =============  ========  ==========
1Q        one FIFO               fifo        none           --        --
VOQsw     per-output VOQs        fifo        none           --        --
DBBM      dst-hash queues        fifo        none           --        --
VOQnet    per-destination VOQs   bypass      none           --        --
FBICM     NFQ + CFQs (+CAMs)     isolation   none           --        --
ITh       per-output VOQs        fifo        VOQ occupancy  cong.st.  CCT/CCTI
CCFIT     NFQ + CFQs (+CAMs)     isolation   root CFQ       cong.st.  CCT/CCTI
========  =====================  ==========  =============  ========  ==========

ITh detects congestion by VOQ occupancy (High/Low thresholds of [12]);
CCFIT by *root CFQ* occupancy (§III-C) — the defining combination of
this paper: isolation handles HoL blocking instantly, and the
throttling it triggers drains the trees so the isolation never runs
out of CFQs (Fig. 8).

``VOQsw`` and ``DBBM`` are not part of the paper's evaluated set but
are §II related work that falls out of the queue-scheme machinery for
free, rounding out the HoL-reduction family the paper positions CCFIT
against.

New schemes register themselves through :func:`register_scheme` — the
CLI, sweep engine, experiment registry and cost accounting all read
the live registry, so a registered scheme is immediately runnable
everywhere without touching the device layer (see ``docs/schemes.md``
and :mod:`repro.schemes.rcm` for a worked example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.isolation import NfqCfqScheme
from repro.core.params import CCParams
from repro.core.scheme import (
    DETECT_NONE,
    DETECT_ROOT_CFQ,
    DETECT_VOQ_OCCUPANCY,
    DetectionPolicy,
    congestion_state_marking,
)
from repro.core.throttling import ThrottleState
from repro.network.queueing import (
    CongestionControlScheme,
    DbbmScheme,
    OneQScheme,
    VOQnetScheme,
    VOQswScheme,
)

__all__ = [
    "Scheme",
    "SchemeSpec",
    "scheme_params",
    "register_scheme",
    "get_scheme",
    "scheme_names",
    "SCHEMES",
    "PAPER_SCHEMES",
    "FIG8_SCHEMES",
    "oneq_queues",
    "dbbm_queues",
    "voqsw_queues",
    "voqnet_queues",
    "isolation_queues",
    "fifo_stage",
    "isolation_stage",
    "cct_injection_gate",
]


# ----------------------------------------------------------------------
# queue-policy builders (each consumes the scheme's DetectionPolicy)
# ----------------------------------------------------------------------
def oneq_queues(detection: DetectionPolicy = DETECT_NONE):
    """One FIFO per input port (the "1Q" baseline)."""

    def build(port, _n) -> CongestionControlScheme:  # noqa: ANN001 - duck-typed host
        return OneQScheme(port)

    return build


def dbbm_queues(detection: DetectionPolicy = DETECT_NONE):
    """Destination-hash queues [24]; ``params.num_voqs`` buckets."""

    def build(port, _n) -> CongestionControlScheme:
        return DbbmScheme(port, num_queues=port.params.num_voqs)

    return build


def voqsw_queues(detection: DetectionPolicy = DETECT_NONE):
    """Per-output VOQs [21]; with ``DETECT_VOQ_OCCUPANCY`` they also run
    the ITh High/Low occupancy detector of [12]."""
    detect_hot = detection.kind == DETECT_VOQ_OCCUPANCY.kind

    def build(port, _n) -> CongestionControlScheme:
        return VOQswScheme(port, num_outputs=port.switch.num_ports, detect_hot=detect_hot)

    return build


def voqnet_queues(detection: DetectionPolicy = DETECT_NONE):
    """Per-destination VOQs [22] — the unscalable upper bound."""

    def build(port, num_nodes) -> CongestionControlScheme:
        return VOQnetScheme(port, num_destinations=num_nodes)

    return build


def isolation_queues(detection: DetectionPolicy = DETECT_NONE):
    """NFQ + CFQs + CAM (FBICM); with ``DETECT_ROOT_CFQ`` root CFQs
    crossing High/Low drive the congestion state (CCFIT, §III-C)."""
    drive = detection.kind == DETECT_ROOT_CFQ.kind

    def build(port, _n) -> CongestionControlScheme:
        return NfqCfqScheme(port, drive_congestion_state=drive)

    return build


# ----------------------------------------------------------------------
# IA stage and injection-gate builders
# ----------------------------------------------------------------------
def fifo_stage(stage) -> CongestionControlScheme:  # noqa: ANN001 - IaStage host
    """Two-MTU staging FIFO (1Q/VOQsw/DBBM/ITh)."""
    return OneQScheme(stage)


def isolation_stage(stage) -> CongestionControlScheme:
    """The IA's NFQ+CFQs+CAM, same behaviour as a switch port (§III-B);
    the IA never drives the congestion state (only switches mark)."""
    return NfqCfqScheme(stage, drive_congestion_state=False)


def cct_injection_gate(sim, params: CCParams, on_release) -> ThrottleState:
    """The paper's CCT/CCTI/Timer/LTI source reaction (§III-B/D)."""
    return ThrottleState(sim, params, on_release=on_release)


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
def _default_memory(params: CCParams, _num_nodes: int) -> int:
    return params.memory_size


def _voqnet_memory(params: CCParams, num_nodes: int) -> int:
    """VOQnet needs ``num_nodes`` queues of at least 4 KiB (§IV-A:
    256 KiB ports on the 64-node configuration)."""
    return max(params.memory_size, params.voqnet_queue_size * num_nodes)


def _cost_single_fifo(params: CCParams, _n: int, _radix: int) -> Tuple[int, int, int]:
    return 1, 0, 0


def _cost_voqsw(params: CCParams, _n: int, max_radix: int) -> Tuple[int, int, int]:
    return min(params.num_voqs, max_radix), 0, 0


def _cost_dbbm(params: CCParams, _n: int, _radix: int) -> Tuple[int, int, int]:
    return params.num_voqs, 0, 0


def _cost_voqnet(_params: CCParams, n: int, _radix: int) -> Tuple[int, int, int]:
    return n, 0, 0


def _cost_isolation(params: CCParams, _n: int, _radix: int) -> Tuple[int, int, int]:
    return 1 + params.num_cfqs, params.num_cfqs, params.num_cfqs


@dataclass(frozen=True)
class SchemeSpec:
    """Everything the fabric builder needs to configure one technique.

    A spec is a *composition*: pick a queue-policy builder, a
    :class:`repro.core.scheme.DetectionPolicy`, an optional marking
    policy factory and an optional injection-gate factory, then
    :func:`register_scheme` it.  The device layer consumes the spec
    blindly — no device file is edited to add a scheme.
    """

    name: str
    #: builds the queue scheme for one switch input port; receives the
    #: port and the network size (for VOQnet).
    switch_scheme: Callable[[object, int], CongestionControlScheme]
    #: IA output-stage mode: "isolation" | "fifo" | "bypass".
    ia_staging: str
    #: what evidence moves an output port into the congestion state
    #: (consumed by the queue-policy builder; descriptive elsewhere).
    detection: DetectionPolicy = DETECT_NONE
    #: ``f(params, rng) -> MarkingPolicy`` installed at every switch,
    #: or None — the scheme never FECN-marks.
    marking: Optional[Callable[..., object]] = None
    #: ``f(sim, params, on_release) -> InjectionGate`` installed at
    #: every end node, or None — sources never throttle.
    injection_gate: Optional[Callable[..., object]] = None
    #: builds the IA output-stage scheme (``f(stage) -> scheme``); None
    #: uses the staging mode's default (fifo -> OneQ, isolation ->
    #: NFQ+CFQs), and "bypass" has no stage at all.
    ia_scheme: Optional[Callable[[object], CongestionControlScheme]] = None
    #: switch input-port memory (bytes) as f(params, num_nodes).
    memory_override: Callable[[CCParams, int], int] = _default_memory
    #: hardware budget: f(params, num_nodes, max_radix) ->
    #: (queues_per_port, cam_lines_per_port, out_cam_lines_per_port).
    cost: Callable[[CCParams, int, int], Tuple[int, int, int]] = _cost_single_fifo
    #: one-line summary for ``repro schemes`` style listings / docs.
    description: str = ""

    @property
    def throttling(self) -> bool:
        """Back-compat view: does the scheme install a source gate?"""
        return self.injection_gate is not None


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
#: the live scheme registry (name -> spec).  Iterating it yields names
#: in registration order, so the paper presets come first.
SCHEMES: Dict[str, SchemeSpec] = {}


def register_scheme(spec: SchemeSpec, *, replace: bool = False) -> SchemeSpec:
    """Add ``spec`` to the registry; the CLI, sweep engine, experiment
    registry, fabric builder and cost table discover it immediately.

    Raises ``ValueError`` on a duplicate name unless ``replace=True``
    (useful for parameter-studies that shadow a preset).  Returns the
    spec so modules can register at import time::

        RCM = register_scheme(SchemeSpec("RCM", ...))
    """
    if not spec.name:
        raise ValueError("scheme name must be non-empty")
    if spec.ia_staging not in ("isolation", "fifo", "bypass"):
        raise ValueError(
            f"{spec.name}: unknown IA staging mode {spec.ia_staging!r}"
        )
    if spec.name in SCHEMES and not replace:
        raise ValueError(
            f"scheme {spec.name!r} is already registered "
            f"(pass replace=True to shadow it)"
        )
    SCHEMES[spec.name] = spec
    return spec


def get_scheme(name: str) -> SchemeSpec:
    """Look up a registered scheme by name (KeyError with the known
    names on a miss)."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None


def scheme_names() -> Tuple[str, ...]:
    """Currently registered scheme names, in registration order."""
    return tuple(SCHEMES)


def scheme_params(
    name: str, base: Optional[CCParams] = None
) -> Tuple[SchemeSpec, CCParams]:
    """Resolve a scheme name to its spec plus validated parameters."""
    spec = get_scheme(name)
    params = base if base is not None else CCParams()
    params.validate()
    return spec, params


# ----------------------------------------------------------------------
# the paper's presets (§IV-A)
# ----------------------------------------------------------------------
register_scheme(SchemeSpec(
    "1Q", oneq_queues(), "fifo",
    cost=_cost_single_fifo,
    description="one FIFO per port, no HoL protection (baseline)",
))
register_scheme(SchemeSpec(
    "VOQsw", voqsw_queues(), "fifo",
    cost=_cost_voqsw,
    description="per-output VOQs [21], no CC machinery",
))
register_scheme(SchemeSpec(
    "DBBM", dbbm_queues(), "fifo",
    cost=_cost_dbbm,
    description="destination-hash queues [24]",
))
register_scheme(SchemeSpec(
    "VOQnet", voqnet_queues(), "bypass",
    memory_override=_voqnet_memory,
    cost=_cost_voqnet,
    description="per-destination VOQs [22], the unscalable upper bound",
))
register_scheme(SchemeSpec(
    "FBICM", isolation_queues(), "isolation",
    ia_scheme=isolation_stage,
    cost=_cost_isolation,
    description="congested-flow isolation (NFQ+CFQs+CAM), no throttling",
))
register_scheme(SchemeSpec(
    "ITh", voqsw_queues(DETECT_VOQ_OCCUPANCY), "fifo",
    detection=DETECT_VOQ_OCCUPANCY,
    marking=congestion_state_marking,
    injection_gate=cct_injection_gate,
    cost=_cost_voqsw,
    description="injection throttling [12]: VOQ detection + FECN/BECN + CCT",
))
register_scheme(SchemeSpec(
    "CCFIT", isolation_queues(DETECT_ROOT_CFQ), "isolation",
    detection=DETECT_ROOT_CFQ,
    marking=congestion_state_marking,
    injection_gate=cct_injection_gate,
    ia_scheme=isolation_stage,
    cost=_cost_isolation,
    description="this paper: isolation + root-CFQ-driven throttling",
))

#: the paper presets, in the paper's plotting order (a static snapshot;
#: use :func:`scheme_names` for the live registry).
Scheme = tuple(SCHEMES)

#: the schemes of Figs. 7, 9 and 10, in the paper's plotting order.
PAPER_SCHEMES = ("1Q", "ITh", "FBICM", "CCFIT")
#: Fig. 8 adds the VOQnet upper bound.
FIG8_SCHEMES = PAPER_SCHEMES + ("VOQnet",)
