r"""CCFIT and the evaluated scheme presets.

The paper evaluates five techniques (§IV-A); this module captures each
as a :class:`SchemeSpec` bundling the switch queue organisation, the
IA output-stage mode, and which halves of the CC machinery are active:

========  =====================  ==========  ========  ==========
scheme    switch queues          IA stage    marking   throttling
========  =====================  ==========  ========  ==========
1Q        one FIFO               fifo        no        no
VOQsw     per-output VOQs        fifo        no        no
DBBM      dst-hash queues        fifo        no        no
VOQnet    per-destination VOQs   bypass      no        no
FBICM     NFQ + CFQs (+CAMs)     isolation   no        no
ITh       per-output VOQs        fifo        yes*      yes
CCFIT     NFQ + CFQs (+CAMs)     isolation   yes**     yes
========  =====================  ==========  ========  ==========

\* ITh detects congestion by VOQ occupancy (High/Low thresholds of
[12]); \** CCFIT by *root CFQ* occupancy (§III-C) — the defining
combination of this paper: isolation handles HoL blocking instantly,
and the throttling it triggers drains the trees so the isolation never
runs out of CFQs (Fig. 8).

``VOQsw`` and ``DBBM`` are not part of the paper's evaluated set but
are §II related work that falls out of the queue-scheme machinery for
free, rounding out the HoL-reduction family the paper positions CCFIT
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.core.isolation import NfqCfqScheme
from repro.core.params import CCParams
from repro.network.queueing import (
    DbbmScheme,
    OneQScheme,
    QueueScheme,
    VOQnetScheme,
    VOQswScheme,
)

__all__ = [
    "Scheme",
    "SchemeSpec",
    "scheme_params",
    "SCHEMES",
    "PAPER_SCHEMES",
    "FIG8_SCHEMES",
]


@dataclass(frozen=True)
class SchemeSpec:
    """Everything the fabric builder needs to configure one technique."""

    name: str
    #: builds the queue scheme for one switch input port; receives the
    #: port and the network size (for VOQnet).
    switch_scheme: Callable[[object, int], QueueScheme]
    #: IA output-stage mode: "isolation" | "fifo" | "bypass".
    ia_staging: str
    #: FECN-mark packets crossing congested output ports.
    marking: bool
    #: install CCT/CCTI throttling at the sources.
    throttling: bool
    #: switch input-port memory override (bytes), None = params value.
    memory_override: Callable[[CCParams, int], int] = None  # type: ignore[assignment]


def _oneq(port, _n):  # noqa: ANN001 - duck-typed port host
    return OneQScheme(port)


def _dbbm(port, _n):
    return DbbmScheme(port, num_queues=port.params.num_voqs)


def _voqsw(port, _n):
    return VOQswScheme(port, num_outputs=port.switch.num_ports, detect_hot=False)


def _voqsw_detect(port, _n):
    return VOQswScheme(port, num_outputs=port.switch.num_ports, detect_hot=True)


def _voqnet(port, num_nodes):
    return VOQnetScheme(port, num_destinations=num_nodes)


def _fbicm(port, _n):
    return NfqCfqScheme(port, drive_congestion_state=False)


def _ccfit(port, _n):
    return NfqCfqScheme(port, drive_congestion_state=True)


def _voqnet_memory(params: CCParams, num_nodes: int) -> int:
    """VOQnet needs ``num_nodes`` queues of at least 4 KiB (§IV-A:
    256 KiB ports on the 64-node configuration)."""
    return max(params.memory_size, params.voqnet_queue_size * num_nodes)


def _default_memory(params: CCParams, _num_nodes: int) -> int:
    return params.memory_size


SCHEMES = {
    "1Q": SchemeSpec("1Q", _oneq, "fifo", False, False, _default_memory),
    "VOQsw": SchemeSpec("VOQsw", _voqsw, "fifo", False, False, _default_memory),
    "DBBM": SchemeSpec("DBBM", _dbbm, "fifo", False, False, _default_memory),
    "VOQnet": SchemeSpec("VOQnet", _voqnet, "bypass", False, False, _voqnet_memory),
    "FBICM": SchemeSpec("FBICM", _fbicm, "isolation", False, False, _default_memory),
    "ITh": SchemeSpec("ITh", _voqsw_detect, "fifo", True, True, _default_memory),
    "CCFIT": SchemeSpec("CCFIT", _ccfit, "isolation", True, True, _default_memory),
}

#: the names, in the paper's plotting order.
Scheme = tuple(SCHEMES)

#: the schemes of Figs. 7, 9 and 10, in the paper's plotting order.
PAPER_SCHEMES = ("1Q", "ITh", "FBICM", "CCFIT")
#: Fig. 8 adds the VOQnet upper bound.
FIG8_SCHEMES = PAPER_SCHEMES + ("VOQnet",)


def scheme_params(name: str, base: CCParams = None) -> Tuple[SchemeSpec, CCParams]:  # type: ignore[assignment]
    """Resolve a scheme name to its spec plus validated parameters."""
    if name not in SCHEMES:
        raise KeyError(f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}")
    params = base if base is not None else CCParams()
    params.validate()
    return SCHEMES[name], params
