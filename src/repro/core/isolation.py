"""Congested-flow isolation: the NFQ+CFQ scheme and its tree protocol.

This module implements the FBICM-style machinery CCFIT builds on
(§III-A/C/D):

* every arriving packet is stored in the port's **NFQ** (Event #1);
* **detection**: when NFQ occupancy exceeds the detection threshold, a
  CFQ plus CAM line is allocated for the destination of the blocking
  head packet (Event #2).  The line is *root* — one hop from the
  congestion point — which matters for CCFIT's FECN marking;
* **post-processing** (Event #3): whenever a packet reaches the NFQ
  head, its destination is looked up in the port CAM (and in the
  switch's output-port CAMs for trees announced from downstream); on a
  match the packet moves to the corresponding CFQ, so only
  non-congested packets ever occupy the NFQ head — HoL blocking is
  gone the moment the CFQ exists;
* **propagation** (Events #4/#5): a CFQ filling past the propagation
  threshold sends ``CfqAlloc`` to the upstream device, which records it
  in the output-port CAM and lazily allocates its own input CFQs;
  Stop/Go flow control then runs per congestion tree between the
  neighbouring CFQs;
* **deallocation** (Event #6): an empty CFQ whose CAM line is in Go
  status frees itself (after a small hysteresis lifetime) and notifies
  upstream, releasing resources for new congestion trees;
* **congestion state** (Event #7, CCFIT only): a *root* CFQ crossing
  the High threshold moves its output port into the congestion state;
  dropping below Low backs it out.  Non-root CFQs never mark — the
  paper is explicit that a CFQ two hops from the congestion point does
  not move its output into the congestion state.

The scalability limit the paper probes in Fig. 8 falls out naturally:
with every CAM line busy, ``InputCam.allocate`` fails, congested
packets stay in the NFQ, and HoL blocking returns (the miss is
counted).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple

from repro.core.cam import CamLine, InputCam, OutputCamLine
from repro.core.params import CCParams
from repro.network.buffers import BufferPool, PacketQueue
from repro.network.packet import (
    CfqAlloc,
    CfqDealloc,
    CfqGo,
    CfqStop,
    ControlMessage,
    Packet,
)
from repro.network.queueing import QueueScheme

__all__ = ["IsolationHost", "NfqCfqScheme"]


class IsolationHost(Protocol):
    """What the NFQ+CFQ scheme needs from its owning port, beyond
    :class:`repro.network.queueing.PortHost`."""

    pool: BufferPool
    params: CCParams
    name: str

    def route(self, pkt: Packet) -> int: ...

    def kick(self) -> None: ...

    def now(self) -> float:
        """Current simulation time."""

    def schedule(self, delay: float, fn) -> None:
        """Run ``fn()`` after ``delay`` ns (for dealloc hysteresis)."""

    def send_upstream(self, msg: ControlMessage) -> None:
        """Forward a tree-protocol message towards the traffic source.
        No-op at input adapters (there is nothing above the AdVOQs)."""

    def announced_tree(self, dest: int) -> Optional[OutputCamLine]:
        """The downstream-announced congestion tree for ``dest``
        relevant to this port (the output CAM line at the switch, the
        IA's announcement record), or None."""

    def root_cfq_hot_changed(self, dest: int, hot: bool) -> None:
        """CCFIT congestion-state hook: a root CFQ crossed High/Low."""


class NfqCfqScheme(QueueScheme):
    """One NFQ plus ``params.num_cfqs`` dynamically allocated CFQs.

    Parameters
    ----------
    host:
        The owning input port / IA output stage.
    drive_congestion_state:
        True only for CCFIT switches: root CFQs crossing the High/Low
        thresholds move the output port in/out of the congestion state.
        False for plain FBICM (no marking) and for input adapters.
    """

    def __init__(self, host: IsolationHost, drive_congestion_state: bool) -> None:
        super().__init__(host)
        self.drive_congestion_state = drive_congestion_state
        self.nfq = PacketQueue(f"{host.name}.nfq", track_dests=True)
        self.cfqs = [
            PacketQueue(f"{host.name}.cfq{i}") for i in range(host.params.num_cfqs)
        ]
        self.cam = InputCam(host.params.num_cfqs)
        self._queues = [self.nfq, *self.cfqs]
        self._in_update = False
        self._lifetime_recheck: set[int] = set()
        #: cfq_index -> the CamLine awaiting its congestion-state dwell.
        self._hot_pending: dict[int, CamLine] = {}
        self.moves = 0

    # ------------------------------------------------------------------
    # QueueScheme interface
    # ------------------------------------------------------------------
    def on_arrival(self, pkt: Packet) -> None:
        self.nfq.push(pkt)
        self.update()
        self.host.kick()

    def after_dequeue(self, queue: PacketQueue) -> None:
        self.update()

    def _build_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        out: List[Tuple[PacketQueue, int, Packet]] = []
        head = self.nfq.head()
        if head is not None:
            # A congested head that post-processing could not isolate
            # (CAM full) is forwarded anyway — blocking it forever would
            # deadlock the lossless network.  That is exactly FBICM's
            # out-of-resources mode: HoL blocking returns, and the miss
            # is visible in ``self.cam.alloc_failures``.
            out.append((self.nfq, self.host.route(head), head))
        for line in self.cam.lines():
            if line.stopped:
                continue
            chead = self.cfqs[line.cfq_index].head()
            if chead is not None:
                out.append((self.cfqs[line.cfq_index], self.host.route(chead), chead))
        return out

    # ------------------------------------------------------------------
    # tree-protocol inputs (called by the switch / IA)
    # ------------------------------------------------------------------
    def on_control_message(self, msg: ControlMessage) -> None:
        """Hook-API entry point: the host device fans every reverse
        control message out to its port schemes *after* updating its own
        announcement record (output CAM / IA ``_announced``), so
        ``announced_tree`` already reflects the message here."""
        if isinstance(msg, CfqAlloc):
            self.on_tree_announced()
        elif isinstance(msg, CfqStop):
            self.tree_stopped(msg.destination, True)
        elif isinstance(msg, CfqGo):
            self.tree_stopped(msg.destination, False)
        elif isinstance(msg, CfqDealloc):
            self.tree_orphaned(msg.destination)

    def tree_stopped(self, dest: int, stopped: bool) -> None:
        """Downstream Stop/Go for the tree towards ``dest``."""
        line = self.cam.lookup(dest)
        if line is None:
            return  # raced with our own deallocation — benign
        line.stopped = stopped
        self.invalidate_heads()
        if stopped:
            # A true root's downstream is the congested point itself,
            # which never sends Stop — so this line cannot be the root
            # (the IB "port has credits to forward" root condition).
            self._demote_root(line)
        else:
            self.update()
            self.host.kick()

    def tree_orphaned(self, dest: int) -> None:
        """The downstream tree for ``dest`` deallocated: non-root lines
        stop capturing packets and free themselves once drained."""
        line = self.cam.lookup(dest)
        if line is None or line.root:
            return
        line.orphaned = True
        line.stopped = False  # a dead tree cannot hold us stopped
        self.update()
        self.host.kick()

    def on_tree_announced(self) -> None:
        """A new output-CAM line appeared: re-run post-processing, and
        demote any local "root" line for a tree that downstream has now
        announced (the real root is closer to the congested point)."""
        for line in self.cam.lines():
            if line.root and self.host.announced_tree(line.dest) is not None:
                self._demote_root(line)
        self.update()
        self.host.kick()

    def _demote_root(self, line: CamLine) -> None:
        if not line.root:
            return
        line.root = False
        if self._hot_pending.get(line.cfq_index) is line:
            del self._hot_pending[line.cfq_index]
        if line.hot:
            line.hot = False
            line.last_hot_at = self.host.now()
            self.host.root_cfq_hot_changed(line.dest, False)

    # ------------------------------------------------------------------
    # the state machine (idempotent; run after every mutation)
    # ------------------------------------------------------------------
    def update(self) -> None:
        if self._in_update:
            return
        self._in_update = True
        try:
            changed = True
            while changed:
                changed = self._post_process() | self._detect()
            self._check_thresholds()
        finally:
            self._in_update = False
            self.invalidate_heads()

    # -- step 1: move congested heads out of the NFQ ----------------------
    def _post_process(self) -> bool:
        moved = False
        while True:
            head = self.nfq.head()
            if head is None:
                break
            line = self._line_for(head)
            if line is None:
                line = self._maybe_adopt_announced(head)
            if line is None:
                break
            self.nfq.pop()
            self.cfqs[line.cfq_index].push(head)
            self.moves += 1
            moved = True
        return moved

    def _line_for(self, pkt: Packet) -> Optional[CamLine]:
        line = self.cam.lookup(pkt.dst)
        if line is not None and not line.orphaned:
            return line
        return None

    def _maybe_adopt_announced(self, pkt: Packet) -> Optional[CamLine]:
        """Allocate a non-root CFQ for a tree announced from downstream.

        If an *orphaned* line for the destination is still draining,
        the announcement revives it (a CAM hit on the destination) —
        one destination never occupies two CFQs."""
        rec = self.host.announced_tree(pkt.dst)
        if rec is None:
            return None
        line = self.cam.lookup(pkt.dst)
        if line is not None:
            line.orphaned = False
            line.stopped = rec.stopped
            return line
        line = self.cam.allocate(pkt.dst, root=False, now=self.host.now())
        if line is not None:
            line.stopped = rec.stopped
        return line

    # -- step 2: local congestion detection --------------------------------
    def _detect(self) -> bool:
        if self.host.params.num_cfqs == 0:
            return False
        if self.nfq.bytes < self.host.params.detection_threshold:
            return False  # cheap bound: untracked <= total NFQ bytes
        if self.cam.full and not any(ln.orphaned for ln in self.cam.lines()):
            # Every CFQ is holding a live tree: no allocation (nor
            # orphan revival) is possible, so skip the occupancy scan.
            # This is the port's saturated steady state on the 64-node
            # runs, so the early-out matters for simulation speed.
            self.cam.note_full()
            return False
        if self._untracked_nfq_bytes() < self.host.params.detection_threshold:
            return False
        dest = self._blame_destination()
        if dest is None:
            return False
        existing = self.cam.lookup(dest)
        if existing is not None:
            if existing.orphaned:
                # Fresh local congestion for a tree that was tearing
                # down: revive the draining line as a root.
                existing.orphaned = False
                existing.root = True
                return True
            return False
        # The tree is only rooted here if downstream has not announced
        # it (a root CFQ's downstream is the congested point itself).
        rec = self.host.announced_tree(dest)
        line = self.cam.allocate(dest, root=rec is None, now=self.host.now())
        if line is None:
            return False  # out of CFQs — the Fig. 8 scalability wall
        if rec is not None:
            line.stopped = rec.stopped
        return True

    def _untracked_nfq_bytes(self) -> int:
        """NFQ bytes not already belonging to a live congestion tree.

        Packets whose destination has a live CAM line are merely
        waiting for the head-granular post-processing to file them into
        their CFQ — they are *tracked* congestion, and counting them
        towards a new detection would blame an innocent bystander
        destination for a backlog that is not its doing.  Uses the
        queue's incremental per-destination counters (O(#CFQs))."""
        tracked = 0
        dest_bytes = self.nfq.dest_bytes
        for ln in self.cam.lines():
            if not ln.orphaned:
                tracked += dest_bytes.get(ln.dest, 0)
        return self.nfq.bytes - tracked

    def _blame_destination(self) -> Optional[int]:
        """Which destination a detection holds responsible (see
        ``CCParams.detection_policy``).  Destinations already tracked by
        a live CAM line are skipped — their packets are not the ones
        clogging the NFQ head-of-line."""
        if self.host.params.detection_policy == "head":
            head = self.nfq.head()
            return None if head is None else head.dst
        best = None
        best_bytes = 0
        lookup = self.cam.lookup
        for dst, nbytes in self.nfq.dest_bytes.items():
            line = lookup(dst)
            if line is not None and not line.orphaned:
                continue
            # max bytes; ties broken by destination id for determinism.
            if nbytes > best_bytes or (nbytes == best_bytes and best is not None and dst < best):
                best = dst
                best_bytes = nbytes
        return best

    # -- step 3: per-CFQ thresholds (propagate / stop / go / hot / free) ---
    def _check_thresholds(self) -> None:
        p = self.host.params
        for line in self.cam.lines():
            occ = self.cfqs[line.cfq_index].bytes
            if not line.propagated and occ >= p.propagation_threshold and not line.orphaned:
                line.propagated = True
                self.host.send_upstream(CfqAlloc(line.dest, id(line)))
            if not line.stop_sent and occ >= p.cfq_stop:
                if not line.propagated:
                    line.propagated = True
                    self.host.send_upstream(CfqAlloc(line.dest, id(line)))
                line.stop_sent = True
                self.host.send_upstream(CfqStop(line.dest, id(line)))
            elif line.stop_sent and occ <= p.cfq_go:
                line.stop_sent = False
                self.host.send_upstream(CfqGo(line.dest, id(line)))
            if self.drive_congestion_state and line.root:
                if not line.hot and occ >= p.cfq_high:
                    self._arm_hot(line)
                elif line.hot and occ <= p.cfq_cs_exit:
                    # leave the congestion state with backlog still in
                    # the Go band (the link keeps draining the tree
                    # while the sources' CCTIs decay)
                    line.hot = False
                    line.last_hot_at = self.host.now()
                    self.host.root_cfq_hot_changed(line.dest, False)
                elif occ <= p.cfq_low:
                    # a pending dwell only survives genuine standing
                    # congestion; full drainage disarms it
                    self._hot_pending.pop(line.cfq_index, None)
            self._maybe_deallocate(line)

    def _arm_hot(self, line: CamLine) -> None:
        """Start the congestion-state dwell for a root CFQ above High.

        The port only enters the congestion state if the CFQ is *still*
        above High (and the line still alive and root) after
        ``cfq_high_dwell`` — transient bursts drain before the timer
        fires, so victim flows are not marked (DESIGN.md §5)."""
        idx = line.cfq_index
        if self._hot_pending.get(idx) is line:
            return
        p = self.host.params
        dwell = p.cfq_high_dwell
        recently_hot = (
            self.host.now() - line.last_hot_at <= p.cfq_rearm_window
        )
        if dwell <= 0.0 or recently_hot:
            # the dwell filters victim transients; a line that recently
            # proved to be a genuine root re-enters immediately, so
            # sustained congestion marks continuously instead of once
            # per Stop/Go saw
            line.hot = True
            line.last_hot_at = self.host.now()
            self.host.root_cfq_hot_changed(line.dest, True)
            return
        self._hot_pending[idx] = line

        def confirm() -> None:
            # The arm survives unless the CFQ drained to Low meanwhile
            # (which cancels the pending entry): a true congestion root
            # saw-tooths between Go and Stop without ever emptying,
            # while a victim's transient burst drains right through Low.
            if self._hot_pending.get(idx) is not line:
                return
            del self._hot_pending[idx]
            still = self.cam.line_at(idx)
            if (
                still is line
                and line.root
                and not line.hot
                and self.cfqs[idx].bytes > self.host.params.cfq_low
            ):
                line.hot = True
                line.last_hot_at = self.host.now()
                self.host.root_cfq_hot_changed(line.dest, True)

        self.host.schedule(dwell, confirm)

    def _maybe_deallocate(self, line: CamLine) -> None:
        p = self.host.params
        if not self.cfqs[line.cfq_index].empty or line.stopped:
            return
        # Hysteresis: young CFQs wait out cfq_min_lifetime before
        # deallocating (the 1 ns slack absorbs float rounding of the
        # recheck's wake-up time).
        remaining = p.cfq_min_lifetime - (self.host.now() - line.allocated_at)
        if remaining > 1.0 and not line.orphaned:
            if line.cfq_index not in self._lifetime_recheck:
                self._lifetime_recheck.add(line.cfq_index)
                idx = line.cfq_index

                def recheck() -> None:
                    self._lifetime_recheck.discard(idx)
                    self.update()

                self.host.schedule(remaining, recheck)
            return
        if self._hot_pending.get(line.cfq_index) is line:
            del self._hot_pending[line.cfq_index]
        if line.hot:
            line.hot = False
            line.last_hot_at = self.host.now()
            self.host.root_cfq_hot_changed(line.dest, False)
        if line.stop_sent:
            line.stop_sent = False
            self.host.send_upstream(CfqGo(line.dest, id(line)))
        if line.propagated:
            self.host.send_upstream(CfqDealloc(line.dest, id(line)))
        self.cam.free(line)

    # ------------------------------------------------------------------
    # source-side coupling (IA arbiter decision, §III-D)
    # ------------------------------------------------------------------
    def holds_destination(self, dest: int) -> bool:
        """A destination whose stage CFQ is stopped (or at its Stop
        level) stays in its AdVOQ, so congested packets cannot hog the
        stage RAM and starve the node's other flows.  Resumed by the
        Go/dealloc kicks."""
        line = self.cam.lookup(dest)
        if line is None or line.orphaned:
            return False
        if line.stopped:
            return True
        return self.cfqs[line.cfq_index].bytes >= self.host.params.cfq_stop

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def allocated_cfqs(self) -> int:
        return len(self.cam.lines())

    def cam_alloc_failures(self) -> int:
        return self.cam.alloc_failures

    def cfq_occupancy(self, dest: int) -> int:
        line = self.cam.lookup(dest)
        return 0 if line is None else self.cfqs[line.cfq_index].bytes

    def snapshot(self) -> dict:
        entry = super().snapshot()
        entry["cam"] = [
            {
                "dest": ln.dest,
                "cfq": ln.cfq_index,
                "root": ln.root,
                "stopped": ln.stopped,
                "stop_sent": ln.stop_sent,
                "orphaned": ln.orphaned,
                "hot": ln.hot,
                "bytes": self.cfqs[ln.cfq_index].bytes,
            }
            for ln in self.cam.lines()
        ]
        return entry

    def telemetry_sample(self) -> dict:
        """Adds the isolation-scheme fields the paper's figures turn
        on: NFQ vs CFQ occupancy split, CAM line count, and how many
        lines are Stop'd."""
        entry = super().telemetry_sample()
        cfq_bytes = sum(q.bytes for q in self.cfqs)
        lines = self.cam.lines()
        entry["nfq_bytes"] = self.nfq.bytes
        entry["cfq_bytes"] = cfq_bytes
        entry["cam_lines"] = len(lines)
        entry["stopped_lines"] = sum(1 for ln in lines if ln.stopped)
        return entry

    # -- validation hook -------------------------------------------------
    def audit(self) -> None:
        """Invariant-guard hook: CAM internal consistency, queue counter
        integrity, and the CFQ<->CAM-line mapping (a CFQ holds packets
        only while a line owns it, and only for that line's
        destination).  Raises CamError/BufferError on violation."""
        from repro.core.cam import CamError

        self.cam.audit()
        self.nfq.audit()
        for idx, cfq in enumerate(self.cfqs):
            cfq.audit()
            line = self.cam.line_at(idx)
            if line is None:
                if not cfq.empty:
                    raise CamError(
                        f"{cfq.name}: {len(cfq)} packet(s) without a CAM line"
                    )
                continue
            for pkt in cfq:
                if pkt.dst != line.dest:
                    raise CamError(
                        f"{cfq.name}: packet for dest {pkt.dst} filed in the "
                        f"CFQ isolating dest {line.dest}"
                    )
            if line.hot and not line.root:
                raise CamError(f"{line!r}: hot without being a root")
            if line.stop_sent and not line.propagated:
                raise CamError(f"{line!r}: Stop sent without a prior Alloc")
