"""The paper's contribution: CCFIT and its two constituent mechanisms.

* :mod:`repro.core.params` — every congestion-control parameter, with
  the §III-E tuning rules enforced.
* :mod:`repro.core.cam` — content-addressable-memory lines tracking
  congestion trees at input ports, output ports and input adapters.
* :mod:`repro.core.isolation` — FBICM-style congested-flow isolation
  (detection, CFQ allocation, post-processing, upstream propagation,
  Stop/Go, deallocation).
* :mod:`repro.core.throttling` — InfiniBand-style injection throttling
  (FECN marking, BECN reaction, CCT/CCTI/IRD source state).
* :mod:`repro.core.ccfit` — the combination, plus presets for every
  evaluated scheme (1Q, VOQsw, VOQnet, FBICM, ITh, CCFIT).
"""

from repro.core.params import CCParams, linear_cct, exponential_cct
from repro.core.ccfit import Scheme, scheme_params

__all__ = ["CCParams", "linear_cct", "exponential_cct", "Scheme", "scheme_params"]
