"""Congestion-control parameters and the §III-E tuning rules.

The paper's parameter inventory (§III-E): *Congestion detection
threshold*, *CFQ Stop/Go thresholds*, *CFQ High/Low thresholds*,
*CCTI_Timer*, *Marking_Rate* and *Packet_Size*.  Defaults follow §IV-A:

* ``CCTI_Timer`` = 8000 ns, ``Marking_Rate`` = 85 %;
* ITh VOQ High/Low = 4 / 2 packets;
* CCFIT Stop/Go = 10 / 4 MTUs, 2 CFQs per input port;
* MTU 2048 B, 64 KiB input-port memory.

:meth:`CCParams.validate` enforces the §III-E consistency rules:
``High − Low >= 1 MTU``, ``Stop > High`` (so a root CFQ can mark before
upstream CFQs are blocked), and ``Stop − Go`` wide enough to avoid
Stop/Go thrash.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple

__all__ = ["CCParams", "linear_cct", "exponential_cct", "ParamError", "MTU"]

#: default maximum transfer unit (bytes) — Table I.
MTU = 2048


class ParamError(ValueError):
    """Raised when a parameter set violates the §III-E tuning rules."""


def linear_cct(entries: int = 128, step: float = MTU / 2.5) -> List[float]:
    """A CCT whose IRD grows linearly: ``CCT[i] = i * step`` ns.

    The default step is one MTU serialisation time at 2.5 GB/s
    (819.2 ns), so index ``i`` roughly divides the flow's injection rate
    by ``i + 1``.
    """
    if entries < 2:
        raise ParamError(f"CCT needs >= 2 entries, got {entries}")
    if step <= 0:
        raise ParamError(f"CCT step must be positive, got {step}")
    return [i * step for i in range(entries)]


def exponential_cct(entries: int = 16, base: float = MTU / 2.5) -> List[float]:
    """A CCT whose IRD doubles per index: ``CCT[i] = base * (2**i - 1)``.

    Used by the CCT-shape ablation bench; reacts faster but coarser
    than the linear default.
    """
    if entries < 2:
        raise ParamError(f"CCT needs >= 2 entries, got {entries}")
    if base <= 0:
        raise ParamError(f"CCT base must be positive, got {base}")
    return [base * (2.0**i - 1.0) for i in range(entries)]


@dataclass
class CCParams:
    """Every knob of the modelled switches, IAs and CC mechanisms.

    Thresholds are stored in **bytes** (the paper states them in
    packets/MTUs; multiply by :attr:`mtu`).
    """

    # -- fabric-wide constants (Table I) --------------------------------
    mtu: int = MTU
    #: input-port RAM per switch port (bytes).
    memory_size: int = 64 * 1024
    #: IA output-stage RAM (bytes).
    ia_memory_size: int = 64 * 1024
    #: link propagation delay (ns).
    link_delay: float = 20.0
    #: per-packet serialisation jitter fraction.  With the default
    #: slotted arbitration this stays 0 (transmissions must stay
    #: aligned to the arbitration slots); turn it on only together with
    #: event-driven arbitration (match_quantum=0) — the asynchrony
    #: ablation (see repro.network.link.Link).
    link_jitter: float = 0.0
    #: iSlip iterations per matching round.
    islip_iterations: int = 2
    #: switch arbitration slot (ns).  The paper's switches run slotted,
    #: cycle-level iSlip: every slot, ALL currently free inputs and
    #: outputs are matched together.  An event-driven variant that
    #: re-matches on every completion instead (match_quantum=0) makes
    #: greedy incremental pairings that can lock into starvation
    #: patterns no synchronous crossbar would sustain (the arbitration
    #: ablation demonstrates this).  -1 = auto: one MTU serialisation
    #: time at the switch's fastest link, which every slower Table-I
    #: link divides evenly.  >0 = explicit slot length.
    match_quantum: float = -1.0

    # -- congested-flow isolation (FBICM / CCFIT) -----------------------
    #: CFQs per input port ("We use 2 CFQs per input port", §IV-A).
    num_cfqs: int = 2
    #: NFQ occupancy that triggers congestion detection (bytes).
    detection_threshold: int = 4 * MTU
    #: which destination a detection blames: "dominant" scans the NFQ
    #: for the destination holding the most bytes (the flow actually
    #: responsible for the backlog); "head" blames the head packet —
    #: simpler hardware, but can misfile a victim whose packet happens
    #: to sit at the head (kept for the detection-policy ablation).
    detection_policy: str = "dominant"
    #: CFQ occupancy that propagates the congestion tree upstream.
    propagation_threshold: int = 4 * MTU
    #: CFQ Stop/Go flow-control thresholds ("Stop" 10 MTUs, "Go" 4).
    cfq_stop: int = 10 * MTU
    cfq_go: int = 4 * MTU
    #: CFQ High/Low — drive the output port's congestion state (CCFIT).
    #: High sits above the standing-queue level a released victim burst
    #: can park in a root CFQ (a few MTUs) and below Stop, so genuine
    #: oversubscription still crosses it on the way to Stop.
    cfq_high: int = 8 * MTU
    #: Low must sit *below* the trough a root CFQ dips to while the Go
    #: round-trip restarts its upstream feeder (~go - 2 MTU), or the
    #: congestion-state dwell disarms on every Stop/Go saw cycle and
    #: the port never marks.
    cfq_low: int = 1 * MTU
    #: the congestion state exits when the root CFQ drains to this
    #: level.  Exiting within the Go band (default 3 MTU) leaves a few
    #: MTUs of backlog in the tree, so the hot link stays busy while
    #: the sources' CCTIs decay — draining all the way to Low first
    #: (set cfq_cs_exit = cfq_low) empties the tree and the link idles
    #: through every throttle trough (the ablation shows the gap).
    cfq_cs_exit: int = 3 * MTU
    #: a root CFQ that was hot within this window (ns) re-enters the
    #: congestion state without re-serving the dwell: the dwell filters
    #: *victim* transients, and a line that already proved to be a
    #: genuine root keeps that proof while its tree persists.  Without
    #: this, sustained congestion marks on a low duty cycle (one dwell
    #: per Stop/Go saw) and the throttle never reaches its operating
    #: point on deep incast patterns.
    cfq_rearm_window: float = 50_000.0
    #: a root CFQ must stay above High this long (ns) before its output
    #: port enters the congestion state.  Genuine oversubscription keeps
    #: the CFQ full indefinitely; transient arrival bursts (a victim
    #: flow released upstream) drain within a few packet times, so the
    #: dwell filters them out and victims are not FECN-marked.
    cfq_high_dwell: float = 50_000.0
    #: minimum CFQ lifetime before deallocation (ns) — hysteresis so an
    #: empty-but-active root CFQ is not thrashed (DESIGN.md §5).
    cfq_min_lifetime: float = 5_000.0

    # -- injection throttling (ITh / CCFIT) -----------------------------
    #: VOQ High/Low thresholds for ITh detection (4 / 2 packets, §IV-A).
    voq_high: int = 4 * MTU
    voq_low: int = 2 * MTU
    #: fraction of eligible packets FECN-marked in the congestion state.
    marking_rate: float = 0.85
    #: only packets at least this large are FECN-marked (Packet_Size).
    min_marking_size: int = 0
    #: decay period of the per-destination CCT index (ns).
    ccti_timer: float = 8_000.0
    #: CCTI increment per received BECN.
    ccti_increase: int = 1
    #: minimum spacing (ns) between CCTI increases for one destination;
    #: BECNs arriving faster are coalesced.  Anti-windup: during a long
    #: marking episode the raw BECN rate tracks the flow's packet rate
    #: (~2.6/µs at wire speed), which would integrate the CCTI far past
    #: the operating point and leave the source crawling long after the
    #: episode ends.  Real HCAs bound their reaction frequency the same
    #: way.  0 disables coalescing (the ablation bench measures both).
    becn_min_interval: float = 1_000.0
    #: the Congestion Control Table of Injection Rate Delays (ns).
    cct: List[float] = field(default_factory=linear_cct)

    # -- queue schemes ---------------------------------------------------
    #: VOQs per input port for VOQsw/ITh (8, §IV-A).
    num_voqs: int = 8
    #: minimum per-destination queue size for VOQnet (4 KiB, §IV-A).
    voqnet_queue_size: int = 4 * 1024
    #: AdVOQ depth at the IA before the generator blocks (packets).
    advoq_cap_packets: int = 32

    # -- buffer models / PFC (repro.network.buffers, docs/buffers.md) ----
    #: how each switch carves up its RAM: "static" keeps the paper's
    #: per-port partition (Table I; the golden default), "shared" pools
    #: the whole switch behind dynamic thresholds + PFC headroom.
    #: Validated against the registry when the fabric is built (the
    #: registry lives in the network layer).
    buffer_model: str = "static"
    #: PFC priority groups per port (802.1Qbb allows up to 8; packets
    #: map by ``dst % pfc_priorities``, like DBBM's bucket hash).
    pfc_priorities: int = 4
    #: dynamic-threshold scaling: a PG may hold up to
    #: ``shared_alpha * free_shared`` bytes of the shared space.
    shared_alpha: float = 2.0
    #: guaranteed minimum per (port, priority-group), bytes.
    shared_reserved: int = MTU
    #: PFC headroom per port (bytes) — sized to absorb the bytes in
    #: flight between XOFF emission and the upstream honouring it
    #: (2 * MTU covers one serialising packet + one crossing the wire
    #: at Table-I link delays).
    pfc_headroom: int = 2 * MTU
    #: XON hysteresis: resume once the PG's shared occupancy falls
    #: below this fraction of its dynamic threshold.
    pfc_xon_fraction: float = 0.5

    # -- adaptive routing (repro.network.routing) -----------------------
    #: flowlet idle gap (ns): the ``flowlet`` routing policy keeps a
    #: flow on its current path while consecutive packets arrive within
    #: this gap, and re-selects adaptively after a longer silence.  The
    #: default is ~60 MTU serialisation times at 2.5 GB/s — long enough
    #: that a back-to-back burst never splits, short enough that a
    #: throttled flow re-routes within one CCTI_Timer period.
    flowlet_gap: float = 50_000.0

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Enforce the §III-E tuning relations; raise :class:`ParamError`."""
        if self.mtu <= 0:
            raise ParamError(f"mtu must be positive, got {self.mtu}")
        if self.memory_size < 2 * self.mtu:
            raise ParamError("input memory must hold at least two MTUs")
        if self.num_cfqs < 0:
            raise ParamError(f"num_cfqs must be >= 0, got {self.num_cfqs}")
        if self.cfq_high - self.cfq_low < self.mtu:
            raise ParamError(
                "CFQ High/Low must differ by at least one MTU (§III-E): "
                f"high={self.cfq_high} low={self.cfq_low}"
            )
        if self.cfq_stop <= self.cfq_high:
            raise ParamError(
                "the Stop threshold must exceed High so root CFQs can mark "
                f"before upstream CFQs block (§III-E): stop={self.cfq_stop} "
                f"high={self.cfq_high}"
            )
        if self.cfq_stop - self.cfq_go < self.mtu:
            raise ParamError(
                "Stop - Go must leave at least one MTU of hysteresis: "
                f"stop={self.cfq_stop} go={self.cfq_go}"
            )
        if not (0 <= self.detection_threshold <= self.memory_size):
            raise ParamError(f"detection threshold {self.detection_threshold} out of range")
        if self.detection_policy not in ("dominant", "head"):
            raise ParamError(f"unknown detection policy {self.detection_policy!r}")
        if self.cfq_high_dwell < 0:
            raise ParamError(f"cfq_high_dwell must be >= 0, got {self.cfq_high_dwell}")
        if self.cfq_rearm_window < 0:
            raise ParamError(f"cfq_rearm_window must be >= 0, got {self.cfq_rearm_window}")
        if not (self.cfq_low <= self.cfq_cs_exit < self.cfq_high):
            raise ParamError(
                "the congestion-state exit level must lie between Low and "
                f"High: low={self.cfq_low} exit={self.cfq_cs_exit} high={self.cfq_high}"
            )
        if not (0 <= self.link_jitter < 0.5):
            raise ParamError(f"link_jitter must be in [0, 0.5), got {self.link_jitter}")
        if self.match_quantum < 0 and self.match_quantum != -1.0:
            raise ParamError(
                f"match_quantum must be >= 0 or the -1 auto sentinel, got {self.match_quantum}"
            )
        if self.link_jitter > 0 and self.match_quantum != 0.0:
            raise ParamError(
                "link jitter requires event-driven arbitration "
                "(match_quantum=0): jittered serialisation times drift "
                "off the arbitration slots and strand the ports idle"
            )
        if self.voq_high - self.voq_low < self.mtu:
            raise ParamError("VOQ High/Low must differ by at least one MTU")
        if not (0.0 < self.marking_rate <= 1.0):
            raise ParamError(f"marking rate must be in (0, 1], got {self.marking_rate}")
        if self.ccti_timer <= 0:
            raise ParamError(f"CCTI_Timer must be positive, got {self.ccti_timer}")
        if self.ccti_increase < 1:
            raise ParamError(f"CCTI_Increase must be >= 1, got {self.ccti_increase}")
        if self.becn_min_interval < 0:
            raise ParamError(f"becn_min_interval must be >= 0, got {self.becn_min_interval}")
        if len(self.cct) < 2 or self.cct[0] != 0.0:
            raise ParamError("CCT must start at IRD 0 and have >= 2 entries")
        if any(b < a for a, b in zip(self.cct, self.cct[1:])):
            raise ParamError("CCT must be non-decreasing")
        if self.num_voqs < 1:
            raise ParamError(f"num_voqs must be >= 1, got {self.num_voqs}")
        if self.voqnet_queue_size < self.mtu:
            raise ParamError("VOQnet queues must hold at least one MTU")
        if self.advoq_cap_packets < 1:
            raise ParamError("AdVOQ capacity must be >= 1 packet")
        if self.flowlet_gap < 0:
            raise ParamError(f"flowlet_gap must be >= 0, got {self.flowlet_gap}")
        if self.islip_iterations < 1:
            raise ParamError("iSlip needs at least one iteration")
        if not self.buffer_model:
            raise ParamError("buffer_model must be a non-empty name")
        if self.pfc_priorities < 1:
            raise ParamError(f"pfc_priorities must be >= 1, got {self.pfc_priorities}")
        if self.shared_alpha <= 0:
            raise ParamError(f"shared_alpha must be positive, got {self.shared_alpha}")
        if self.shared_reserved < 0:
            raise ParamError(f"shared_reserved must be >= 0, got {self.shared_reserved}")
        if self.pfc_headroom < self.mtu:
            raise ParamError(
                "pfc_headroom must hold at least one MTU (the packet in "
                f"flight when XOFF lands), got {self.pfc_headroom}"
            )
        if not (0.0 < self.pfc_xon_fraction <= 1.0):
            raise ParamError(
                f"pfc_xon_fraction must be in (0, 1], got {self.pfc_xon_fraction}"
            )

    def with_overrides(self, **kw) -> "CCParams":
        """Return a validated copy with fields replaced."""
        p = replace(self, **kw)
        p.validate()
        return p

    # convenience conversions -------------------------------------------
    def packets(self, nbytes: int) -> float:
        """Express a byte count in MTU packets (for reports)."""
        return nbytes / self.mtu

    def thresholds_summary(self) -> Tuple[str, ...]:
        """Human-readable threshold lines (used by the Table I bench)."""
        m = self.mtu
        return (
            f"detection={self.detection_threshold // m} MTU",
            f"stop/go={self.cfq_stop // m}/{self.cfq_go // m} MTU",
            f"high/low={self.cfq_high // m}/{self.cfq_low // m} MTU",
            f"voq high/low={self.voq_high // m}/{self.voq_low // m} MTU",
            f"marking_rate={self.marking_rate:.0%}",
            f"ccti_timer={self.ccti_timer:.0f} ns",
        )
