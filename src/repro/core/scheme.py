"""Device-neutral congestion-control policy objects.

A congestion-control *scheme* (1Q, FBICM, ITh, CCFIT, your own) is a
composition of four policies, each with a fixed hook surface that the
device layer calls blindly — no device file knows any concrete scheme
class (see docs/schemes.md):

* a **queue policy** — how each switch input port organises its RAM.
  This is the :class:`repro.network.queueing.CongestionControlScheme`
  object itself (``on_arrival`` / ``eligible_heads`` /
  ``after_dequeue`` / ``on_control_message`` / ``audit`` /
  ``snapshot``);
* a **detection policy** (:class:`DetectionPolicy`) — what evidence
  moves an output port into the *congestion state*.  The paper's two
  detectors are VOQ occupancy (ITh, [12]) and root-CFQ occupancy
  (CCFIT, §III-C); queue-policy factories consume the descriptor and
  wire the matching threshold machinery;
* a **marking policy** (:class:`MarkingPolicy`) — ``should_mark``,
  asked by the switch for every packet crossing an output port.  The
  paper schemes mark only in the congestion state, subject to the
  Marking_Rate lottery; rate-based schemes (RCM/DCQCN family) mark on
  instantaneous queue depth instead;
* an **injection gate** (:class:`InjectionGate`) — the source-side
  reaction.  The IA arbiter asks ``next_allowed(dest)`` before moving
  a packet out of its AdVOQ and reports every move via
  ``record_injection``; BECNs arrive through ``on_becn``.  The paper's
  gate is the CCT/CCTI table walker
  (:class:`repro.core.throttling.ThrottleState`); DCQCN-style gates
  keep an explicit per-destination rate instead.

:class:`repro.core.ccfit.SchemeSpec` bundles one of each; the fabric
builder hands them to switches and end nodes without inspecting them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol, runtime_checkable

import numpy as np

from repro.core.params import CCParams
from repro.core.throttling import FecnMarker
from repro.network.packet import Packet

__all__ = [
    "DetectionPolicy",
    "DETECT_NONE",
    "DETECT_VOQ_OCCUPANCY",
    "DETECT_ROOT_CFQ",
    "MarkingPolicy",
    "InjectionGate",
    "CongestionStateMarking",
    "congestion_state_marking",
]


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DetectionPolicy:
    """What evidence moves an output port into the congestion state.

    ``kind`` is consumed by the queue-policy factories (which own the
    threshold machinery) and read by cost accounting and docs; devices
    never branch on it.
    """

    kind: str
    description: str = ""


#: no congestion-state detection (1Q, VOQsw, DBBM, VOQnet, FBICM).
DETECT_NONE = DetectionPolicy("none", "never enters the congestion state")
#: ITh: a VOQ crossing the High/Low occupancy thresholds of [12].
DETECT_VOQ_OCCUPANCY = DetectionPolicy(
    "voq-occupancy", "VOQ occupancy High/Low thresholds ([12])"
)
#: CCFIT: a *root* CFQ crossing the High/Low thresholds (§III-C).
DETECT_ROOT_CFQ = DetectionPolicy(
    "root-cfq", "root CFQ occupancy High/Low thresholds (§III-C)"
)


# ----------------------------------------------------------------------
# marking
# ----------------------------------------------------------------------
@runtime_checkable
class MarkingPolicy(Protocol):
    """Switch-resident marking decision, one call per crossing packet."""

    def should_mark(self, pkt: Packet, queue, out_port) -> bool:
        """Mark ``pkt`` as it crosses ``out_port``?

        ``queue`` is the input queue the packet was just popped from
        (its remaining ``bytes`` is the standing depth towards this
        output).  Returning True makes the switch set the FECN bit and
        bump its ``fecn_marked`` counter.
        """


class CongestionStateMarking:
    """The paper's marking policy (ITh / CCFIT, §III-B).

    Packets are eligible only while their output port is in the
    congestion state; eligibility then runs through the
    Packet_Size floor and Marking_Rate lottery of
    :class:`repro.core.throttling.FecnMarker`.  The lottery draws from
    its RNG only for packets crossing a congested port, which keeps the
    random stream identical to the historical switch-inline check.
    """

    __slots__ = ("fecn",)

    def __init__(self, params: CCParams, rng: np.random.Generator) -> None:
        self.fecn = FecnMarker(params, rng)

    def should_mark(self, pkt: Packet, queue, out_port) -> bool:
        if not out_port.congested:
            return False
        return self.fecn.maybe_mark(pkt)


def congestion_state_marking(params: CCParams, rng: np.random.Generator) -> CongestionStateMarking:
    """Factory with the :class:`repro.core.ccfit.SchemeSpec` signature."""
    return CongestionStateMarking(params, rng)


# ----------------------------------------------------------------------
# injection gate
# ----------------------------------------------------------------------
@runtime_checkable
class InjectionGate(Protocol):
    """Source-side reaction state owned by one Input Adapter.

    The IA arbiter consults the gate before moving any packet from an
    AdVOQ towards the network, so one object implements every
    source-side throttling flavour — table-driven IRDs
    (:class:`repro.core.throttling.ThrottleState`) or explicit
    per-destination rates (:class:`repro.schemes.rcm.RcmGate`).
    """

    #: BECNs absorbed (the ``becns_received`` fabric statistic).
    becns: int

    def next_allowed(self, dest: int) -> float:
        """Earliest time the next packet for ``dest`` may leave its
        AdVOQ (0.0 = immediately)."""

    def record_injection(self, dest: int, now: float, size: int = 0) -> None:
        """A packet of ``size`` bytes for ``dest`` just left its AdVOQ."""

    def on_becn(self, dest: int) -> None:
        """A BECN for ``dest`` reached this source."""

    def audit(self) -> None:
        """Invariant-guard hook: internal state must be self-consistent
        and every throttled destination must be able to recover."""

    def snapshot(self) -> Dict[int, object]:
        """JSON-safe per-destination state for watchdog diagnostics.
        Also the telemetry sampler's per-destination sample source
        (CCTI index per throttled destination for table gates, current
        rate per limited destination for rate gates)."""

    def telemetry_sample(self) -> Dict[str, object]:
        """Fixed-schema scalar fields for the telemetry sampler — a
        cheap per-interval summary of the gate (throttled-destination
        count plus the gate's own severity scalar)."""
