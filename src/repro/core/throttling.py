"""InfiniBand-style injection throttling (§II, §III-B/D).

Two halves:

* :class:`FecnMarker` — the switch side.  Packets crossing an output
  port in the *congestion state* are FECN-marked, subject to the
  ``Packet_Size`` floor and the ``Marking_Rate`` lottery (only 85 % of
  eligible packets are marked by default, so the BECN storm stays
  bounded).
* :class:`ThrottleState` — the source side, owned by each Input
  Adapter.  Per destination it keeps an index (CCTI) into the
  Congestion Control Table of Injection Rate Delays; a received BECN
  raises the index (more delay between consecutive packets to that
  destination), and the CCTI_Timer lowers it back one step per period,
  releasing the flow as congestion vanishes.  The *Last Time of
  Injection* (LTI) array plus the current IRD tell the IA arbiter when
  the next packet for a destination may be moved into the network.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.params import CCParams
from repro.network.packet import Packet
from repro.sim.engine import Event, Simulator

__all__ = ["FecnMarker", "ThrottleState"]


class FecnMarker:
    """Decides whether a packet crossing a congested port gets marked."""

    __slots__ = ("rate", "min_size", "rng", "marked", "considered")

    def __init__(self, params: CCParams, rng: np.random.Generator) -> None:
        self.rate = params.marking_rate
        self.min_size = params.min_marking_size
        self.rng = rng
        self.marked = 0
        self.considered = 0

    def maybe_mark(self, pkt: Packet) -> bool:
        """Apply the Packet_Size / Marking_Rate rules; set the FECN bit.

        Returns True when the packet was marked.  Call only for packets
        crossing an output port in the congestion state.
        """
        self.considered += 1
        if pkt.size < self.min_size:
            return False
        if self.rate < 1.0 and self.rng.random() >= self.rate:
            return False
        pkt.fecn = True
        self.marked += 1
        return True


class ThrottleState:
    """Per-IA CCT/CCTI/Timer/LTI machinery.

    Parameters
    ----------
    sim:
        The event engine (timers live on it).
    params:
        Supplies the CCT, ``ccti_increase`` and ``ccti_timer``.
    on_release:
        Optional callback fired when a timer step lowers some CCTI —
        the IA uses it to re-pump AdVOQs that were waiting out an IRD.
    """

    def __init__(
        self,
        sim: Simulator,
        params: CCParams,
        on_release: Optional[Callable[[], None]] = None,
    ) -> None:
        self.sim = sim
        self.cct: List[float] = list(params.cct)
        self.increase = params.ccti_increase
        self.timer_period = params.ccti_timer
        self.becn_min_interval = params.becn_min_interval
        self.on_release = on_release
        self._ccti: Dict[int, int] = {}
        self._lti: Dict[int, float] = {}
        self._timers: Dict[int, Event] = {}
        self._last_increase: Dict[int, float] = {}
        #: counters for the evaluation metrics.
        self.becns = 0
        self.max_ccti_seen = 0

    # ------------------------------------------------------------------
    def ccti(self, dest: int) -> int:
        return self._ccti.get(dest, 0)

    def ird(self, dest: int) -> float:
        """Current Injection Rate Delay towards ``dest`` (ns)."""
        return self.cct[self._ccti.get(dest, 0)]

    def next_allowed(self, dest: int) -> float:
        """Earliest time the next packet for ``dest`` may be injected."""
        lti = self._lti.get(dest)
        if lti is None:
            return 0.0
        return lti + self.ird(dest)

    def record_injection(self, dest: int, now: float, size: int = 0) -> None:
        """Update LTI when the IA moves a packet for ``dest``.  The IRD
        tables delay per *packet*, so ``size`` is ignored here (rate-
        based gates use it — see the InjectionGate protocol)."""
        self._lti[dest] = now

    # ------------------------------------------------------------------
    def on_becn(self, dest: int) -> None:
        """A BECN arrived: step up the delay for ``dest`` and (re)arm
        the decay timer (§III-D, Event #6).  Increases are coalesced to
        one per ``becn_min_interval`` (anti-windup, see
        :class:`repro.core.params.CCParams`)."""
        self.becns += 1
        now = self.sim.now
        last = self._last_increase.get(dest)
        if last is not None and now - last < self.becn_min_interval:
            return
        self._last_increase[dest] = now
        idx = min(self._ccti.get(dest, 0) + self.increase, len(self.cct) - 1)
        self._ccti[dest] = idx
        if idx > self.max_ccti_seen:
            self.max_ccti_seen = idx
        timer = self._timers.get(dest)
        if timer is not None:
            timer.cancel()
        self._timers[dest] = self.sim.schedule_in(self.timer_period, self._decay, dest)

    def _decay(self, dest: int) -> None:
        """CCTI_Timer expiry: one step back towards full rate (Event #7)."""
        idx = self._ccti.get(dest, 0)
        if idx > 0:
            idx -= 1
            self._ccti[dest] = idx
        if idx > 0:
            self._timers[dest] = self.sim.schedule_in(self.timer_period, self._decay, dest)
        else:
            self._ccti.pop(dest, None)
            self._timers.pop(dest, None)
        if self.on_release is not None:
            self.on_release()

    # ------------------------------------------------------------------
    def throttled_destinations(self) -> List[int]:
        """Destinations currently delayed (CCTI > 0)."""
        return [d for d, i in self._ccti.items() if i > 0]

    def snapshot(self) -> Dict[int, int]:
        """Destination -> CCTI for every throttled destination."""
        return {d: i for d, i in self._ccti.items() if i > 0}

    def telemetry_sample(self) -> Dict[str, object]:
        """Scalar gate fields for the telemetry sampler: how many
        destinations are throttled and how deep the worst CCTI sits."""
        live = [i for i in self._ccti.values() if i > 0]
        return {"throttled": len(live), "max_ccti": max(live, default=0)}

    # -- validation hook -------------------------------------------------
    def audit(self) -> None:
        """Invariant-guard hook: every CCTI indexes inside the CCT, and
        every raised CCTI has a live decay timer (a lost timer would
        throttle a destination forever — §III-D's recovery path)."""
        top = len(self.cct) - 1
        for dest, idx in self._ccti.items():
            if not 0 <= idx <= top:
                raise RuntimeError(
                    f"CCTI for dest {dest} is {idx}, outside the CCT [0, {top}]"
                )
            if idx > 0:
                timer = self._timers.get(dest)
                if timer is None or timer.cancelled or timer._entry is None:
                    raise RuntimeError(
                        f"dest {dest} throttled at CCTI {idx} with no live "
                        f"CCTI_Timer — the flow would never recover"
                    )
