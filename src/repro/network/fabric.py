"""Fabric assembly: topology + scheme + parameters → a running network.

:func:`build_fabric` instantiates switches, end nodes and links from a
:class:`repro.network.topology.Topology`, wires every endpoint, and
returns a :class:`Fabric` handle exposing the simulator, the devices,
and aggregate statistics.  This is the main entry point of the public
API::

    from repro import build_fabric, k_ary_n_tree
    fabric = build_fabric(k_ary_n_tree(2, 3), scheme="CCFIT", seed=1)
    fabric.nodes[0].offer(...)        # or use repro.traffic generators
    fabric.run(until=10e6)            # 10 ms
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.ccfit import SchemeSpec, scheme_params
from repro.core.params import CCParams
from repro.metrics.collector import Collector
from repro.network.buffers import buffer_model_names, get_buffer_model
from repro.network.endnode import EndNode
from repro.network.link import Link
from repro.network.routing import RoutingPolicySpec, RoutingTable, get_policy
from repro.network.switch import Switch
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.guard import validation_enabled
from repro.sim.rng import RngFactory

__all__ = ["Fabric", "build_fabric"]


@dataclass
class Fabric:
    """A fully wired network ready to simulate."""

    sim: Simulator
    topo: Topology
    params: CCParams
    spec: SchemeSpec
    nodes: List[EndNode]
    switches: List[Switch]
    links: List[Link]
    collector: Collector
    rngs: RngFactory
    #: name of the routing policy every switch runs ("det" unless
    #: overridden — see :mod:`repro.network.routing`).
    routing: str = "det"
    #: name of the buffer model every switch runs ("static" unless
    #: overridden — see :mod:`repro.network.buffers` / docs/buffers.md).
    buffer_model: str = "static"
    #: generators registered by the traffic layer (kept alive here).
    generators: List[object] = field(default_factory=list)
    #: invariant guard (see :mod:`repro.sim.guard`); None unless the
    #: fabric was built with ``validate=True`` / ``REPRO_SIM_VALIDATE``.
    guard: Optional[object] = None
    #: telemetry sampler (see :mod:`repro.telemetry`); None unless one
    #: was attached.  Its periodic ticks are subtracted from the
    #: ``events`` statistic so results are byte-identical either way.
    telemetry: Optional[object] = None
    #: armed fault injector (:class:`repro.sim.faults.FaultInjector`);
    #: None — the common case — unless the fabric was built with a
    #: :class:`~repro.sim.faults.FaultPlan`.
    faults: Optional[object] = None

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until`` (ns).

        With a guard attached the run is chunked so conservation
        invariants are swept between event batches — no events are
        injected, so results are bit-identical either way."""
        if self.guard is not None:
            self.guard.run_guarded(until)
        else:
            self.sim.run(until=until)

    # ------------------------------------------------------------------
    # aggregate statistics (used by experiments and tests)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        s: Dict[str, float] = {
            "delivered_packets": self.collector.delivered_packets,
            "delivered_bytes": self.collector.delivered_bytes,
            "generated_packets": sum(n.packets_generated for n in self.nodes),
            "injected_packets": sum(n.packets_injected for n in self.nodes),
            "fecn_marked": sum(sw.fecn_marked for sw in self.switches),
            "becns_sent": sum(n.becns_sent for n in self.nodes),
            "becns_received": sum(
                n.throttle.becns for n in self.nodes if n.throttle is not None
            ),
            "cfq_alloc_failures": sum(sw.cam_alloc_failures() for sw in self.switches),
            "allocated_cfqs": sum(sw.allocated_cfqs() for sw in self.switches),
            "buffered_bytes": sum(sw.total_buffered_bytes() for sw in self.switches),
            # telemetry sampling is read-only but its periodic ticks do
            # dispatch; exclude them so this count only reflects the
            # simulation itself (byte-identical with telemetry off).
            "events": self.sim.events_dispatched
            - (self.telemetry.ticks if self.telemetry is not None else 0),
        }
        # fault-injection statistics ride only on faulted fabrics, so
        # healthy stats dicts stay byte-identical to the seed.
        if self.faults is not None:
            s["fault_wire_drops"] = self.faults.wire_drops()
            s["fault_source_drops"] = self.faults.source_drops()
            s["fault_link_events"] = len(self.faults.log)
        # PFC/shared-pool statistics likewise ride only on non-static
        # fabrics (static models report no counters).
        for sw in self.switches:
            for key, value in sw.buffer_model.stats().items():
                s[key] = s.get(key, 0.0) + value
        return s

    def in_flight_packets(self) -> int:
        """Packets generated but not yet delivered or lost to an
        injected fault (conservation checks)."""
        in_flight = int(
            sum(n.packets_generated for n in self.nodes)
            - self.collector.delivered_packets
        )
        if self.faults is not None:
            in_flight -= self.faults.packets_lost()
        return in_flight


def build_fabric(
    topo: Topology,
    scheme: str = "CCFIT",
    params: Optional[CCParams] = None,
    seed: int = 0,
    collector: Optional[Collector] = None,
    sim: Optional[Simulator] = None,
    validate: Optional[bool] = None,
    guard_config=None,
    routing: "str | RoutingPolicySpec" = "det",
    faults=None,
) -> Fabric:
    """Instantiate a simulated network.

    Parameters
    ----------
    topo:
        The network description (see :mod:`repro.network.topology`).
    scheme:
        One of ``1Q, VOQsw, VOQnet, FBICM, ITh, CCFIT`` (§IV-A).
    params:
        CC parameters; defaults to the paper's configuration.
    routing:
        A registered routing-policy name (``det``, ``ecmp``,
        ``adaptive``, ``flowlet`` — see :mod:`repro.network.routing`)
        or a :class:`~repro.network.routing.RoutingPolicySpec`.  The
        default ``det`` is the paper's table-based deterministic
        routing and is byte-identical to the pre-policy builder.
    seed:
        Root seed — identical seeds give identical simulations.
    collector, sim:
        Inject your own metrics collector / engine if needed.
    validate:
        Attach the runtime invariant guard (:mod:`repro.sim.guard`).
        ``None`` (the default) defers to the ``REPRO_SIM_VALIDATE``
        environment variable; results are bit-identical either way.
    guard_config:
        Optional :class:`repro.sim.guard.GuardConfig` tuning the check
        cadence and watchdog patience (implies nothing unless the
        guard is enabled).
    faults:
        Optional :class:`repro.sim.faults.FaultPlan`: arms a
        :class:`~repro.sim.faults.FaultInjector` on the built fabric
        and schedules every fault event (docs/faults.md).  ``None``
        (the default) builds a fault-free fabric byte-identical to the
        pre-fault builder.
    """
    spec, params = scheme_params(scheme, params)
    # Validate the buffer-model name here (the registry lives in the
    # network layer, so CCParams.validate cannot) for a clean error
    # before any device is built.
    try:
        get_buffer_model(params.buffer_model)
    except KeyError:
        raise ValueError(
            f"unknown buffer model {params.buffer_model!r}; registered "
            f"models: {', '.join(buffer_model_names())}"
        ) from None
    policy_spec = routing if isinstance(routing, RoutingPolicySpec) else get_policy(routing)
    sim = sim if sim is not None else Simulator()
    rngs = RngFactory(seed)
    collector = collector if collector is not None else Collector()

    memory = spec.memory_override(params, topo.num_nodes)
    switch_params = params.with_overrides(memory_size=memory)

    nodes = [
        EndNode(
            sim,
            nid,
            topo.num_nodes,
            params,
            staging=spec.ia_staging,
            stage_factory=spec.ia_scheme,
            gate_factory=spec.injection_gate,
            on_delivery=collector.record_delivery,
        )
        for nid in range(topo.num_nodes)
    ]

    num_nodes = topo.num_nodes
    switches = [
        Switch(
            sim,
            f"sw{s.id}",
            num_ports=s.num_ports,
            routing=policy_spec.build(
                table=RoutingTable.from_topology(topo, s.id),
                # the candidate index is never built for det (perf)
                candidates=(
                    topo.candidate_map(s.id) if policy_spec.needs_candidates else None
                ),
                params=switch_params,
            ),
            params=switch_params,
            scheme_factory=lambda port, _n=num_nodes: spec.switch_scheme(port, _n),
            marker=(
                spec.marking(switch_params, rngs.stream(f"mark.sw{s.id}"))
                if spec.marking is not None
                else None
            ),
            crossbar_bw=topo.effective_crossbar_bw(),
        )
        for s in topo.switches
    ]

    links: List[Link] = []
    delay = params.link_delay
    for nid, (sw, port, bw) in sorted(topo.node_attach.items()):
        node, switch = nodes[nid], switches[sw]
        up = Link(sim, f"n{nid}->s{sw}p{port}", bw, delay, jitter=params.link_jitter,
                  rng=rngs.stream(f"jitter.n{nid}.up"))
        up.connect(tx=node, rx=switch.input_ports[port])
        node.uplink = up
        switch.input_ports[port].link_in = up
        down = Link(sim, f"s{sw}p{port}->n{nid}", bw, delay, jitter=params.link_jitter,
                    rng=rngs.stream(f"jitter.n{nid}.down"))
        down.connect(tx=switch.output_ports[port], rx=node)
        switch.output_ports[port].link_out = down
        node.downlink = down
        links.extend((up, down))

    for a, pa, b, pb, bw in topo.switch_links:
        ab = Link(sim, f"s{a}p{pa}->s{b}p{pb}", bw, delay, jitter=params.link_jitter,
                  rng=rngs.stream(f"jitter.s{a}p{pa}"))
        ab.connect(tx=switches[a].output_ports[pa], rx=switches[b].input_ports[pb])
        switches[a].output_ports[pa].link_out = ab
        switches[b].input_ports[pb].link_in = ab
        ba = Link(sim, f"s{b}p{pb}->s{a}p{pa}", bw, delay, jitter=params.link_jitter,
                  rng=rngs.stream(f"jitter.s{b}p{pb}"))
        ba.connect(tx=switches[b].output_ports[pb], rx=switches[a].input_ports[pa])
        switches[b].output_ports[pb].link_out = ba
        switches[a].input_ports[pa].link_in = ba
        links.extend((ab, ba))

    # Resolve the auto arbitration slot: one MTU serialisation time at
    # the switch's fastest attached link (all slower Table-I links are
    # integer ratios, so every transmission ends on a slot boundary).
    if params.match_quantum == -1.0:
        for switch in switches:
            fastest = max(
                op.link_out.bandwidth
                for op in switch.output_ports
                if op.link_out is not None
            )
            switch.quantum = params.mtu / fastest

    fabric = Fabric(
        sim=sim,
        topo=topo,
        params=params,
        spec=spec,
        nodes=nodes,
        switches=switches,
        links=links,
        collector=collector,
        rngs=rngs,
        routing=policy_spec.name,
        buffer_model=params.buffer_model,
    )
    if faults is not None:
        # Deferred import: fault-free fabrics never load the module.
        from repro.sim.faults import FaultInjector

        fabric.faults = FaultInjector(fabric, faults).arm()
    if validation_enabled(validate):
        from repro.sim.guard import FabricGuard

        fabric.guard = FabricGuard(fabric, config=guard_config)
    return fabric
