"""Table-based distributed deterministic routing.

The paper's switches use "distributed deterministic routing
(InfiniBand being a prominent example) ... table-based" (§III-A,
Table I).  At runtime a switch owns a :class:`RoutingTable`: a plain
destination → output-port map, queried once per packet head.

:func:`build_routing` derives such tables for *arbitrary* topologies by
deterministic BFS (lowest-port tie-break).  The fat-tree builders ship
their own DET tables (see :mod:`repro.network.topology`); BFS routing
is used for ad-hoc test topologies and as a differential-testing
baseline (both must deliver every packet).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Tuple

from repro.network.topology import Topology, TopologyError

__all__ = ["RoutingTable", "build_routing"]


class RoutingTable:
    """Per-switch destination → output-port map."""

    __slots__ = ("switch_id", "_table")

    def __init__(self, switch_id: int, table: Dict[int, int]) -> None:
        self.switch_id = switch_id
        self._table = table

    def lookup(self, dst: int) -> int:
        """Output port for destination ``dst``.

        Raises :class:`KeyError` for unroutable destinations — a
        configuration error, never expected at runtime.
        """
        return self._table[dst]

    def __contains__(self, dst: int) -> bool:
        return dst in self._table

    def __len__(self) -> int:
        return len(self._table)

    @classmethod
    def from_topology(cls, topo: Topology, switch_id: int) -> "RoutingTable":
        table = {
            dst: port
            for (sw, dst), port in topo.routes.items()
            if sw == switch_id
        }
        return cls(switch_id, table)


def build_routing(topo: Topology) -> Dict[Tuple[int, int], int]:
    """Compute deterministic shortest-path routes for any topology.

    Runs one BFS per destination node over the switch graph, breaking
    ties by the lowest output port at each switch.  Returns the same
    ``(switch_id, dst) -> out_port`` mapping shape that
    :class:`repro.network.topology.Topology` stores, so callers can do
    ``topo.routes = build_routing(topo)`` for hand-built topologies.
    """
    # adjacency: switch -> list of (port, kind, other_id, other_port)
    adj: Dict[int, list] = {s.id: [] for s in topo.switches}
    for nid, (sw, p, _bw) in topo.node_attach.items():
        adj[sw].append((p, "node", nid, 0))
    for a, pa, b, pb, _bw in topo.switch_links:
        adj[a].append((pa, "switch", b, pb))
        adj[b].append((pb, "switch", a, pa))
    for ports in adj.values():
        ports.sort()

    routes: Dict[Tuple[int, int], int] = {}
    for dst in range(topo.num_nodes):
        dst_sw, _dst_port, _bw = topo.node_attach[dst]
        # BFS backwards from the destination's switch.
        dist = {dst_sw: 0}
        frontier = deque([dst_sw])
        while frontier:
            sw = frontier.popleft()
            for _p, kind, other, _op in adj[sw]:
                if kind == "switch" and other not in dist:
                    dist[other] = dist[sw] + 1
                    frontier.append(other)
        for sw, ports in adj.items():
            if sw not in dist:
                raise TopologyError(f"switch {sw} cannot reach destination {dst}")
            if sw == dst_sw:
                for p, kind, other, _op in ports:
                    if kind == "node" and other == dst:
                        routes[(sw, dst)] = p
                        break
                continue
            # lowest port among neighbours strictly closer to dst
            for p, kind, other, _op in ports:
                if kind == "switch" and dist.get(other, 1 << 30) == dist[sw] - 1:
                    routes[(sw, dst)] = p
                    break
            else:
                raise TopologyError(f"no next hop at switch {sw} for dst {dst}")
    return routes
