"""Routing: deterministic tables and the pluggable policy layer.

The paper's switches use "distributed deterministic routing
(InfiniBand being a prominent example) ... table-based" (§III-A,
Table I).  At runtime a switch owns a :class:`RoutingTable`: a plain
destination → output-port map, queried once per packet head.

:func:`build_routing` derives such tables for *arbitrary* topologies by
deterministic BFS (lowest-port tie-break).  The fat-tree builders ship
their own DET tables (see :mod:`repro.network.topology`); BFS routing
is used for ad-hoc test topologies and as a differential-testing
baseline (both must deliver every packet).

Routing policies
----------------
Since the follow-on question of Rocher-Gonzalez et al. — does adaptive
routing help or hurt under congestion management? — the *choice* among
minimal output ports is a pluggable :class:`RoutingPolicy`, mirroring
the congestion-control scheme registry of :mod:`repro.core.ccfit`:

* ``det`` — :class:`DetRoutingPolicy`, the paper's table-based DET
  (byte-identical golden reference; the default everywhere);
* ``ecmp`` — :class:`EcmpRoutingPolicy`, deterministic (src, dst) hash
  over the minimal candidate set;
* ``adaptive`` — :class:`AdaptiveRoutingPolicy`, least-occupied
  candidate by downstream buffer occupancy + local serialisation
  backlog;
* ``flowlet`` — :class:`FlowletRoutingPolicy`, adaptive re-selection
  only after a per-flow idle gap (``CCParams.flowlet_gap``), so
  packet bursts stay on one path.

Policies are *per-switch* objects built from a registered
:class:`RoutingPolicySpec` (:func:`register_policy` /
:func:`get_policy` / :func:`policy_names`); the CLI ``--routing``
flag, the sweep engine and the invariant guard all read the live
registry.  Every policy restricts itself to the topology's minimal
candidate sets (:meth:`repro.network.topology.Topology.candidates`),
so delivery is loop-free by construction; the congestion-tree control
plane always anchors on the deterministic port
(:meth:`RoutingPolicy.control_port`), keeping tree announcements
stable while the data path adapts.  See docs/routing.md.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Tuple

from repro.network.topology import Topology, TopologyError

__all__ = [
    "RoutingTable",
    "build_routing",
    "RoutingPolicy",
    "DetRoutingPolicy",
    "EcmpRoutingPolicy",
    "AdaptiveRoutingPolicy",
    "FlowletRoutingPolicy",
    "RoutingPolicySpec",
    "ROUTING_POLICIES",
    "register_policy",
    "get_policy",
    "policy_names",
]


class RoutingTable:
    """Per-switch destination → output-port map."""

    __slots__ = ("switch_id", "_table", "owner")

    def __init__(self, switch_id: int, table: Dict[int, int]) -> None:
        self.switch_id = switch_id
        self._table = table
        #: the live Switch this table routes for (set by
        #: ``Switch.__init__``); used only to stamp lookup errors with
        #: the switch name and the current simulated time.
        self.owner: Any = None

    def lookup(self, dst: int) -> int:
        """Output port for destination ``dst``.

        Raises :class:`~repro.network.topology.TopologyError` naming
        the switch, destination, endpoints and simulated time for
        unroutable destinations — a configuration error, never
        expected at runtime.
        """
        try:
            return self._table[dst]
        except KeyError:
            context = ""
            owner = self.owner
            if owner is not None:
                context = f" at {owner.name}, t={owner.sim.now}"
            raise TopologyError(
                f"switch {self.switch_id} has no route for destination "
                f"{dst} (table covers {len(self._table)} "
                f"destination(s)){context}"
            ) from None

    def __contains__(self, dst: int) -> bool:
        return dst in self._table

    def __len__(self) -> int:
        return len(self._table)

    @classmethod
    def from_topology(cls, topo: Topology, switch_id: int) -> "RoutingTable":
        table = {
            dst: port
            for (sw, dst), port in topo.routes.items()
            if sw == switch_id
        }
        return cls(switch_id, table)


def build_routing(topo: Topology) -> Dict[Tuple[int, int], int]:
    """Compute deterministic shortest-path routes for any topology.

    Runs one BFS per destination node over the switch graph, breaking
    ties by the lowest output port at each switch.  Returns the same
    ``(switch_id, dst) -> out_port`` mapping shape that
    :class:`repro.network.topology.Topology` stores, so callers can do
    ``topo.routes = build_routing(topo)`` for hand-built topologies.
    """
    # adjacency: switch -> list of (port, kind, other_id, other_port)
    adj: Dict[int, list] = {s.id: [] for s in topo.switches}
    for nid, (sw, p, _bw) in topo.node_attach.items():
        adj[sw].append((p, "node", nid, 0))
    for a, pa, b, pb, _bw in topo.switch_links:
        adj[a].append((pa, "switch", b, pb))
        adj[b].append((pb, "switch", a, pa))
    for ports in adj.values():
        ports.sort()

    routes: Dict[Tuple[int, int], int] = {}
    for dst in range(topo.num_nodes):
        dst_sw, _dst_port, _bw = topo.node_attach[dst]
        # BFS backwards from the destination's switch.
        dist = {dst_sw: 0}
        frontier = deque([dst_sw])
        while frontier:
            sw = frontier.popleft()
            for _p, kind, other, _op in adj[sw]:
                if kind == "switch" and other not in dist:
                    dist[other] = dist[sw] + 1
                    frontier.append(other)
        for sw, ports in adj.items():
            if sw not in dist:
                raise TopologyError(f"switch {sw} cannot reach destination {dst}")
            if sw == dst_sw:
                for p, kind, other, _op in ports:
                    if kind == "node" and other == dst:
                        routes[(sw, dst)] = p
                        break
                continue
            # lowest port among neighbours strictly closer to dst
            for p, kind, other, _op in ports:
                if kind == "switch" and dist.get(other, 1 << 30) == dist[sw] - 1:
                    routes[(sw, dst)] = p
                    break
            else:
                raise TopologyError(f"no next hop at switch {sw} for dst {dst}")
    return routes


# ----------------------------------------------------------------------
# routing policies
# ----------------------------------------------------------------------
class RoutingPolicy:
    """Per-switch routing decision object (one instance per switch).

    The contract mirrors
    :class:`repro.network.queueing.CongestionControlScheme`: devices
    never branch on concrete policy classes — they call the hooks:

    * :meth:`route` — the data path, once per packet head;
    * :meth:`select_output` — the *only* method most policies override:
      pick one port from the minimal candidate set;
    * :meth:`control_port` — where congestion-tree state for a
      destination lives.  Always the deterministic table port, so CAM
      announcements, root-CFQ hot marks and BECN forwarding stay on
      one stable anchor per (switch, destination) even while the data
      path spreads packets (a modelling approximation, documented in
      docs/routing.md);
    * :meth:`snapshot` / :meth:`audit` — introspection for the
      watchdog dump and the invariant guard.

    ``candidates`` maps ``dst -> minimal output ports`` (sorted), from
    :meth:`repro.network.topology.Topology.candidate_map`; it may be
    ``None`` for policies that never consult it (``det``).
    """

    #: registry name, set on subclasses.
    name = "base"

    def __init__(
        self,
        table: RoutingTable,
        candidates: Optional[Dict[int, Tuple[int, ...]]] = None,
        params=None,
    ) -> None:
        self.table = table
        self.candidates = candidates
        self.params = params
        #: data-path decisions that deviated from the DET port.
        self.diverted = 0
        #: data-path decisions total (policies that route adaptively).
        self.routed = 0
        #: output ports whose link is currently down (fault injection);
        #: excluded from candidate sets on the very next decision.
        self.dead_ports: set = set()
        #: True once a fault re-route rewrote the DET table — relaxes
        #: the audit's DET-port-is-minimal invariant (recovery routes
        #: over the surviving links are deliberately non-minimal).
        self.rerouted = False

    # -- data path -----------------------------------------------------
    def route(self, port, pkt) -> int:
        """Output port for ``pkt`` at input ``port`` (the hot path)."""
        cands = None if self.candidates is None else self.candidates.get(pkt.dst)
        if cands is None or len(cands) < 2:
            return self.table.lookup(pkt.dst)
        dead = self.dead_ports
        if dead:
            live = tuple(c for c in cands if c not in dead)
            # All candidates dead: fall through with the original set
            # (the source-side doom check stops new traffic; whatever
            # is already inside the fabric waits for a re-route).
            if live:
                cands = live
        if len(cands) == 1:
            out = cands[0]
        else:
            out = self.select_output(port.switch, pkt, cands)
        self.routed += 1
        if out != self.table.lookup(pkt.dst):
            self.diverted += 1
        return out

    def route_for(self, port) -> Callable[[Any], int]:
        """A specialised per-port route callable; installed over
        ``InputPort.route`` by ``Switch.__init__`` so the per-packet
        dispatch cost matches the pre-policy direct table lookup."""
        return lambda pkt: self.route(port, pkt)

    def select_output(self, switch, pkt, candidates: Tuple[int, ...]) -> int:
        """Pick one output port from ``candidates`` (len >= 2)."""
        raise NotImplementedError

    # -- control plane -------------------------------------------------
    def control_port(self, dst: int) -> int:
        """The stable per-destination port the congestion-tree protocol
        anchors on (CAM announcements, root-CFQ hot marks, BECN
        forwarding): always the deterministic table port."""
        return self.table.lookup(dst)

    # -- fault notifications (docs/faults.md) --------------------------
    def on_link_down(self, out_port: int) -> None:
        """The link behind ``out_port`` went down: exclude it from
        every candidate set immediately.  ``det`` keeps routing by
        table (its ``route`` never consults ``dead_ports``) until the
        injector's delayed re-route rewrites the table."""
        self.dead_ports.add(out_port)

    def on_link_up(self, out_port: int) -> None:
        """The link behind ``out_port`` came back: candidates may use
        it again on the very next decision."""
        self.dead_ports.discard(out_port)

    # -- introspection -------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state for watchdog diagnostics."""
        snap: Dict[str, Any] = {
            "policy": self.name,
            "switch": self.table.switch_id,
            "routed": self.routed,
            "diverted": self.diverted,
        }
        # fault state rides only when present, keeping healthy dumps
        # byte-identical to the pre-fault subsystem.
        if self.dead_ports:
            snap["dead_ports"] = sorted(self.dead_ports)
        if self.rerouted:
            snap["rerouted"] = True
        return snap

    def audit(self) -> None:
        """Invariant sweep hook (:mod:`repro.sim.guard`): every
        candidate set must be non-empty and contain the DET port, so
        any adaptive choice stays on a minimal (loop-free) path.  Once
        a fault re-route has rewritten the table (``rerouted``), the
        DET-port-is-minimal clause is waived: recovery routes around
        dead links are deliberately non-minimal."""
        if self.candidates is None:
            return
        for dst, cands in self.candidates.items():
            if not cands:
                raise TopologyError(
                    f"switch {self.table.switch_id}: empty candidate set "
                    f"for destination {dst}"
                )
            if (
                not self.rerouted
                and dst in self.table
                and self.table.lookup(dst) not in cands
            ):
                raise TopologyError(
                    f"switch {self.table.switch_id}: DET port "
                    f"{self.table.lookup(dst)} for destination {dst} is "
                    f"not a minimal candidate {cands}"
                )


class DetRoutingPolicy(RoutingPolicy):
    """The paper's deterministic table-based DET routing, behind the
    policy API.  Byte-identical to the pre-policy switch: the data
    path is exactly one table lookup."""

    name = "det"

    def route(self, port, pkt) -> int:
        return self.table.lookup(pkt.dst)

    def route_for(self, port) -> Callable[[Any], int]:
        lookup = self.table.lookup
        return lambda pkt: lookup(pkt.dst)

    def select_output(self, switch, pkt, candidates: Tuple[int, ...]) -> int:
        return self.table.lookup(pkt.dst)


def _mix(a: int, b: int) -> int:
    """Deterministic 64-bit integer mix (splitmix64 finaliser) — NOT
    Python ``hash()``, whose per-process randomisation would make ECMP
    placement differ between runs and cache entries."""
    x = (a * 0x9E3779B97F4A7C15 + b) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class EcmpRoutingPolicy(RoutingPolicy):
    """Oblivious multipath: a deterministic hash of (src, dst) picks
    one minimal candidate per flow, spreading distinct flows across
    the upward links while keeping every flow on a single path (no
    reordering)."""

    name = "ecmp"

    def select_output(self, switch, pkt, candidates: Tuple[int, ...]) -> int:
        return candidates[_mix(pkt.src, pkt.dst) % len(candidates)]


class AdaptiveRoutingPolicy(RoutingPolicy):
    """Least-occupied minimal candidate, judged by local state only
    (what real adaptive switches can see): the downstream input
    buffer's occupancy — fresh under send-time credit reservation, see
    :mod:`repro.network.link` — plus the bytes still serialising on
    this switch's own output link.  Lowest port wins ties, so the
    choice is deterministic for a fixed simulation state."""

    name = "adaptive"

    def select_output(self, switch, pkt, candidates: Tuple[int, ...]) -> int:
        best = candidates[0]
        best_score = None
        now = switch.sim.now
        output_ports = switch.output_ports
        for out in candidates:
            link = output_ports[out].link_out
            if link is None:
                continue
            # bytes committed to the far buffer (credit view) ...
            occupancy = getattr(link.rx, "occupancy", None)
            score = float(occupancy()) if occupancy is not None else 0.0
            # ... plus our own serialisation backlog on that link.
            backlog = link.busy_until - now
            if backlog > 0.0:
                score += backlog * link.bandwidth
            if best_score is None or score < best_score:
                best, best_score = out, score
        return best


class FlowletRoutingPolicy(AdaptiveRoutingPolicy):
    """Flowlet switching (Harvard CS145 design): a flow keeps its port
    while packets arrive within ``CCParams.flowlet_gap`` ns of each
    other; an idle gap longer than that ends the flowlet and the next
    packet re-selects adaptively.  Bursts stay in order on one path;
    path choice still tracks congestion at flowlet granularity."""

    name = "flowlet"

    #: default idle gap (ns) when no params are supplied.
    DEFAULT_GAP = 50_000.0

    def __init__(self, table, candidates=None, params=None) -> None:
        super().__init__(table, candidates, params)
        self.gap = getattr(params, "flowlet_gap", self.DEFAULT_GAP)
        #: (src, dst) -> [last_seen_ns, port]
        self._flows: Dict[Tuple[int, int], list] = {}
        self.flowlets = 0

    def select_output(self, switch, pkt, candidates: Tuple[int, ...]) -> int:
        now = switch.sim.now
        key = (pkt.src, pkt.dst)
        rec = self._flows.get(key)
        if rec is not None and now - rec[0] <= self.gap and rec[1] in candidates:
            rec[0] = now
            return rec[1]
        out = AdaptiveRoutingPolicy.select_output(self, switch, pkt, candidates)
        self._flows[key] = [now, out]
        self.flowlets += 1
        return out

    def snapshot(self) -> Dict[str, Any]:
        snap = super().snapshot()
        snap["flowlets"] = self.flowlets
        snap["gap_ns"] = self.gap
        return snap


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class RoutingPolicySpec:
    """A registered routing policy: name + per-switch factory.

    ``factory(table=..., candidates=..., params=...)`` returns one
    :class:`RoutingPolicy` per switch.  ``needs_candidates`` lets the
    fabric builder skip computing the topology's candidate index for
    purely deterministic policies (it is never built for ``det``).
    """

    __slots__ = ("name", "factory", "needs_candidates", "description")

    def __init__(
        self,
        name: str,
        factory: Callable[..., RoutingPolicy],
        needs_candidates: bool = True,
        description: str = "",
    ) -> None:
        self.name = name
        self.factory = factory
        self.needs_candidates = needs_candidates
        self.description = description

    def build(self, *, table, candidates=None, params=None) -> RoutingPolicy:
        return self.factory(table=table, candidates=candidates, params=params)


#: the live routing-policy registry (name -> spec), iterated in
#: registration order so ``det`` comes first.
ROUTING_POLICIES: Dict[str, RoutingPolicySpec] = {}


def register_policy(spec: RoutingPolicySpec, *, replace: bool = False) -> RoutingPolicySpec:
    """Add ``spec`` to the registry; the CLI ``--routing`` flag, the
    sweep engine and ``build_fabric`` discover it immediately.

    Raises ``ValueError`` on a duplicate name unless ``replace=True``.
    Returns the spec so modules can register at import time, exactly
    like :func:`repro.core.ccfit.register_scheme`.
    """
    if not spec.name:
        raise ValueError("routing policy name must be non-empty")
    if spec.name in ROUTING_POLICIES and not replace:
        raise ValueError(
            f"routing policy {spec.name!r} is already registered "
            f"(pass replace=True to shadow it)"
        )
    ROUTING_POLICIES[spec.name] = spec
    return spec


def get_policy(name: str) -> RoutingPolicySpec:
    """Look up a registered routing policy by name (KeyError with the
    known names on a miss)."""
    try:
        return ROUTING_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown routing policy {name!r}; choose from "
            f"{sorted(ROUTING_POLICIES)}"
        ) from None


def policy_names() -> Tuple[str, ...]:
    """Currently registered routing policy names, registration order."""
    return tuple(ROUTING_POLICIES)


register_policy(RoutingPolicySpec(
    "det", DetRoutingPolicy, needs_candidates=False,
    description="table-based deterministic DET (the paper's routing)",
))
register_policy(RoutingPolicySpec(
    "ecmp", EcmpRoutingPolicy,
    description="deterministic (src,dst)-hash over the minimal candidates",
))
register_policy(RoutingPolicySpec(
    "adaptive", AdaptiveRoutingPolicy,
    description="least-occupied minimal candidate by local queue/credit state",
))
register_policy(RoutingPolicySpec(
    "flowlet", FlowletRoutingPolicy,
    description="adaptive per flowlet: re-select only after an idle gap",
))
