"""Input-port queue schemes.

Each evaluated technique organises the per-port RAM differently
(§IV-A).  A *scheme* object owns the port's queues and answers three
questions for its host port:

1. where does an arriving packet go (``on_arrival``);
2. which queue heads may currently request which output ports
   (``eligible_heads``);
3. does the port accept another packet beyond the shared-pool check
   (``can_accept_extra`` — only VOQnet adds per-queue limits).

Schemes defined here:

* :class:`OneQScheme` — a single FIFO, no HoL protection (the paper's
  "1Q" baseline).
* :class:`VOQswScheme` — one queue per switch output port [21]; with
  ``detect_hot=True`` it also runs the ITh High/Low occupancy
  detection of [12] that drives FECN marking.
* :class:`VOQnetScheme` — one queue per network destination [22], the
  theoretically HoL-free but unscalable upper bound.

The NFQ+CFQ scheme used by FBICM and CCFIT lives in
:mod:`repro.core.isolation` next to the congestion-tree protocol it
implements.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Tuple

from repro.core.params import CCParams
from repro.network.buffers import BufferPool, PacketQueue
from repro.network.packet import ControlMessage, Packet

__all__ = [
    "PortHost",
    "CongestionControlScheme",
    "QueueScheme",
    "OneQScheme",
    "VOQswScheme",
    "VOQnetScheme",
]


class PortHost(Protocol):
    """What a queue scheme needs from its owning port."""

    pool: BufferPool
    params: CCParams
    name: str

    def route(self, pkt: Packet) -> int:
        """Output-port index ``pkt`` will request."""

    def kick(self) -> None:
        """Ask the owner to re-run arbitration soon."""

    def set_output_hot(self, out_port: int, source: object, hot: bool) -> None:
        """Report a queue crossing the ITh High/Low thresholds."""


class CongestionControlScheme:
    """The queue-policy half of a congestion-control scheme.

    One instance owns the RAM of one switch input port (or one IA
    output stage) and answers every scheme-specific question its host
    device has, so the device layer never branches on a concrete
    scheme class:

    * **data path** — :meth:`on_arrival`, :meth:`eligible_heads`,
      :meth:`after_dequeue`, :meth:`can_accept_extra` /
      :meth:`reserve_extra`;
    * **control path** — :meth:`on_control_message` receives every
      tree-protocol message the device sees (CfqAlloc/Stop/Go/Dealloc);
      schemes without a tree protocol inherit the no-op;
    * **source-side coupling** — :meth:`holds_destination` tells the IA
      arbiter whether this staging scheme is itself holding packets for
      a destination back (FBICM/CCFIT Stop or a full staging CFQ);
    * **introspection** — :meth:`allocated_cfqs` /
      :meth:`cam_alloc_failures` feed the fabric statistics,
      :meth:`snapshot` the watchdog dumps, and :meth:`audit` the
      PR-3 invariant guard.

    ``eligible_heads`` results are cached: the arbitration loop asks
    for them far more often than the queues change (profiling showed
    the rebuild as a top cost on the 64-node runs), so subclasses
    implement :meth:`_build_heads` and call :meth:`invalidate_heads`
    from every mutation.
    """

    def __init__(self, host: PortHost) -> None:
        self.host = host
        self._queues: List[PacketQueue] = []
        self._heads: List[Tuple[PacketQueue, int, Packet]] = None  # type: ignore[assignment]

    # -- policy hooks ----------------------------------------------------
    def on_arrival(self, pkt: Packet) -> None:
        raise NotImplementedError

    def eligible_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        """(queue, out_port, head packet) for every queue allowed to
        request its output right now (cached between mutations)."""
        heads = self._heads
        if heads is None:
            heads = self._heads = self._build_heads()
        return heads

    def _build_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        raise NotImplementedError

    def invalidate_heads(self) -> None:
        """Drop the cached eligibility list (call after any mutation)."""
        self._heads = None

    def after_dequeue(self, queue: PacketQueue) -> None:
        """State refresh after a packet left ``queue`` (hook for
        detection/thresholds; the base just drops the head cache)."""
        self.invalidate_heads()

    # -- admission beyond the shared pool ---------------------------------
    def can_accept_extra(self, pkt: Packet) -> bool:
        return True

    def reserve_extra(self, pkt: Packet) -> None:
        pass

    def cancel_extra(self, pkt: Packet) -> None:
        """Undo :meth:`reserve_extra` for a packet dropped on the wire
        (fault injection): the packet will never reach ``on_arrival``."""

    # -- control path ------------------------------------------------------
    def on_control_message(self, msg: ControlMessage) -> None:
        """A tree-protocol message reached the host device.  Schemes
        without a congestion-tree protocol ignore it (the device fans
        every message out to every port's scheme)."""

    # -- source-side coupling ----------------------------------------------
    def holds_destination(self, dest: int) -> bool:
        """Is this (staging) scheme itself holding ``dest`` back?  The
        IA arbiter skips AdVOQs whose destination the staging scheme
        cannot currently absorb.  Schemes without per-destination
        back-pressure never hold anything."""
        return False

    # -- introspection -----------------------------------------------------
    def queues(self) -> List[PacketQueue]:
        return self._queues

    def total_packets(self) -> int:
        return sum(len(q) for q in self._queues)

    def total_bytes(self) -> int:
        return sum(q.bytes for q in self._queues)

    def allocated_cfqs(self) -> int:
        """Congested-flow queues currently allocated (0 for schemes
        without dynamic isolation queues)."""
        return 0

    def cam_alloc_failures(self) -> int:
        """Times an isolation allocation failed for lack of CAM lines
        (the Fig. 8 scalability metric; 0 without a CAM)."""
        return 0

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state dump for the watchdog (non-empty queues)."""
        return {
            "queues": {
                q.name: {"packets": len(q), "bytes": q.bytes}
                for q in self.queues()
                if len(q)
            }
        }

    def telemetry_sample(self) -> Dict[str, int]:
        """Fixed-schema numeric fields for the telemetry sampler
        (:mod:`repro.telemetry`) — cheap enough to read every sampling
        interval, unlike the diagnostic :meth:`snapshot`.  Schemes with
        richer state (CAM/CFQ isolation) extend the dict; the keys a
        given scheme returns never vary between samples."""
        return {
            "queued_bytes": self.total_bytes(),
            "queued_packets": self.total_packets(),
        }

    # -- validation hook ---------------------------------------------------
    def audit(self) -> None:
        """Invariant-guard hook: per-queue counter integrity.  Schemes
        with richer state (CAMs, CFQ ownership) extend this."""
        for q in self._queues:
            q.audit()


#: Back-compat alias — the base class predates the hook-API refactor.
QueueScheme = CongestionControlScheme


class OneQScheme(QueueScheme):
    """Everything in one FIFO: maximal HoL blocking, minimal hardware."""

    def __init__(self, host: PortHost) -> None:
        super().__init__(host)
        self.q = PacketQueue(f"{host.name}.q0")
        self._queues = [self.q]

    def on_arrival(self, pkt: Packet) -> None:
        self.q.push(pkt)
        self.invalidate_heads()
        self.host.kick()

    def _build_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        head = self.q.head()
        if head is None:
            return []
        return [(self.q, self.host.route(head), head)]


class VOQswScheme(QueueScheme):
    """Virtual output queues at switch level.

    One FIFO per output port removes HoL blocking *inside* the switch;
    congestion spreading from other switches still mixes flows in one
    VOQ (§II).  With ``detect_hot`` the scheme additionally flags
    output ports whose VOQ occupancy crosses the High threshold and
    clears them below Low — the ITh congestion detector of [12].
    """

    def __init__(self, host: PortHost, num_outputs: int, detect_hot: bool = False) -> None:
        super().__init__(host)
        self.num_outputs = num_outputs
        self.detect_hot = detect_hot
        self.voqs = [PacketQueue(f"{host.name}.voq{o}") for o in range(num_outputs)]
        self._queues = list(self.voqs)
        self._hot = [False] * num_outputs

    def on_arrival(self, pkt: Packet) -> None:
        out = self.host.route(pkt)
        self.voqs[out].push(pkt)
        self._check_thresholds(out)
        self.invalidate_heads()
        self.host.kick()

    def _build_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        out = []
        for o, q in enumerate(self.voqs):
            head = q.head()
            if head is not None:
                out.append((q, o, head))
        return out

    def after_dequeue(self, queue: PacketQueue) -> None:
        self.invalidate_heads()
        if self.detect_hot:
            self._check_thresholds(self.voqs.index(queue))

    def _check_thresholds(self, out: int) -> None:
        if not self.detect_hot:
            return
        p = self.host.params
        occ = self.voqs[out].bytes
        if not self._hot[out] and occ >= p.voq_high:
            self._hot[out] = True
            self.host.set_output_hot(out, self.voqs[out], True)
        elif self._hot[out] and occ <= p.voq_low:
            self._hot[out] = False
            self.host.set_output_hot(out, self.voqs[out], False)


class DbbmScheme(QueueScheme):
    """Destination-Based Buffer Management [24].

    A fixed, small set of queues; every packet is filed by a hash of
    its destination (``dst mod num_queues``).  Packets to one
    destination never interleave across queues, so HoL blocking is
    *reduced* (only destinations sharing a hash bucket can block each
    other) without CAMs or per-destination state — the cheapest of the
    §II queue-scheme family.  Congested destinations still poison
    their whole bucket, which is exactly the gap FBICM/CCFIT close.
    """

    def __init__(self, host: PortHost, num_queues: int) -> None:
        super().__init__(host)
        if num_queues < 1:
            raise ValueError(f"DBBM needs >= 1 queue, got {num_queues}")
        self.num_queues = num_queues
        self.queues_by_hash = [
            PacketQueue(f"{host.name}.dbbm{i}") for i in range(num_queues)
        ]
        self._queues = list(self.queues_by_hash)

    def on_arrival(self, pkt: Packet) -> None:
        self.queues_by_hash[pkt.dst % self.num_queues].push(pkt)
        self.invalidate_heads()
        self.host.kick()

    def _build_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        out = []
        for q in self.queues_by_hash:
            head = q.head()
            if head is not None:
                out.append((q, self.host.route(head), head))
        return out


class VOQnetScheme(QueueScheme):
    """Virtual output queues at network level — one FIFO per destination.

    Completely HoL-free, but needs per-destination buffer space
    (4 KiB/queue in §IV-A, i.e. 256 KiB ports on the 64-node network).
    Admission is per-queue: the transmitter may only send a packet when
    the *destination's* queue has room, so one hot destination can
    never squeeze the others out of the port (per-queue credits).
    In-flight reservations are tracked per destination because space is
    committed at transmission start, one link delay before arrival.
    """

    def __init__(self, host: PortHost, num_destinations: int) -> None:
        super().__init__(host)
        # The port memory is divided into as many queues as network
        # end-nodes; ``voqnet_queue_size`` is the *minimum* per-queue
        # share (§IV-A fixes it at 4 KiB, which sizes the 64-node
        # configuration's ports at 256 KiB).
        per_queue = max(host.params.voqnet_queue_size, host.pool.capacity // num_destinations)
        if per_queue * num_destinations > host.pool.capacity:
            raise ValueError(
                f"{host.name}: pool {host.pool.capacity}B cannot back "
                f"{num_destinations} VOQnet queues of {per_queue}B"
            )
        self.per_queue = per_queue
        self.voqs = [
            PacketQueue(f"{host.name}.d{d}", max_bytes=per_queue)
            for d in range(num_destinations)
        ]
        self._queues = list(self.voqs)
        self._pending = [0] * num_destinations

    def can_accept_extra(self, pkt: Packet) -> bool:
        q = self.voqs[pkt.dst]
        return q.bytes + self._pending[pkt.dst] + pkt.size <= self.per_queue

    def reserve_extra(self, pkt: Packet) -> None:
        self._pending[pkt.dst] += pkt.size

    def cancel_extra(self, pkt: Packet) -> None:
        self._pending[pkt.dst] -= pkt.size
        assert self._pending[pkt.dst] >= 0, "VOQnet pending accounting broken"

    def on_arrival(self, pkt: Packet) -> None:
        self._pending[pkt.dst] -= pkt.size
        assert self._pending[pkt.dst] >= 0, "VOQnet pending accounting broken"
        self.voqs[pkt.dst].push(pkt)
        self.invalidate_heads()
        self.host.kick()

    def _build_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        out = []
        for q in self.voqs:
            head = q.head()
            if head is not None:
                out.append((q, self.host.route(head), head))
        return out
