"""iSlip crossbar scheduling (McKeown [31]).

The evaluated switches arbitrate with iSlip: every output round-robins
over requesting inputs (grant), every input round-robins over granting
outputs (accept), and the handshake iterates.  Per [12] this gives fair
service of the input ports sharing a hot output — the property the
parking-lot analysis of §IV-C rests on.

**Granularity note.**  Classic iSlip advances a *pointer* one past the
port served, once per cell slot.  At packet granularity in an
event-driven simulation, pointer-RR exhibits *pointer capture*: a
periodic interleaving flow can reset an output's pointer before every
contested slot, permanently starving one input — behaviour a
cell-slotted switch does not show over time because pointer updates and
slots are much finer than packet service times.  The default selection
rule here is therefore **least-recently-granted** (LRG) round-robin:
each output serves the requesting input granted longest ago (and each
input accepts the output it least recently used).  LRG is the
long-run-fair fixed point pointer-RR approximates, and reproduces the
inter-port fairness of the paper's cycle-level iSlip.  The classic
pointer rule is kept as ``mode="pointer"`` for the arbitration ablation
bench, which demonstrates the capture artifact.

The matcher keeps only its RR state between calls; the switch invokes
:meth:`ISlip.match` event-driven with the currently free ports and
pending requests.  A plain single-iteration greedy matcher
(:class:`RoundRobin`) is provided for differential tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set

try:  # numpy accelerates match_matrix; everything degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None  # type: ignore[assignment]

__all__ = ["ISlip", "RoundRobin", "SlotArbiter"]


class ISlip:
    """Iterative round-robin matcher for one switch.

    Parameters
    ----------
    num_inputs, num_outputs:
        Port counts.
    iterations:
        Handshake rounds per matching.  iSlip converges in at most
        ``min(N, M)`` iterations; 2 recover most of the gain.
    mode:
        ``"lrg"`` (default, see module docstring) or ``"pointer"``
        (classic iSlip pointers, first-iteration updates only).
    """

    def __init__(
        self,
        num_inputs: int,
        num_outputs: int,
        iterations: int = 2,
        mode: str = "lrg",
    ) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ValueError("need at least one input and one output")
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if mode not in ("lrg", "pointer"):
            raise ValueError(f"unknown arbiter mode {mode!r}")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.iterations = iterations
        self.mode = mode
        # pointer state (mode="pointer")
        self.grant_ptr = [0] * num_outputs
        self.accept_ptr = [0] * num_inputs
        # LRG state (mode="lrg"): last service stamp per pair, plus a
        # monotone clock.  Initial stamps favour low indices, like
        # zeroed pointers.
        self._clock = 1
        self._grant_stamp = [[-inp for inp in range(num_inputs)] for _ in range(num_outputs)]
        self._accept_stamp = [[-out for out in range(num_outputs)] for _ in range(num_inputs)]

    def match(self, requests: Mapping[int, Iterable[int]]) -> Dict[int, int]:
        """Compute a conflict-free input→output matching.

        ``requests`` maps each requesting input port to the output
        ports it has an eligible head packet for.  Busy ports must be
        left out by the caller.  Returns ``{input: output}`` — always a
        valid matching (injective both ways) over the requested pairs.
        """
        req: Dict[int, Set[int]] = {i: set(outs) for i, outs in requests.items() if outs}
        matched_in: Dict[int, int] = {}
        matched_out: Dict[int, int] = {}

        for iteration in range(self.iterations):
            grants: Dict[int, List[int]] = {}  # input -> outputs granting it
            for out in range(self.num_outputs):
                if out in matched_out:
                    continue
                requesters = [
                    i for i, outs in req.items() if out in outs and i not in matched_in
                ]
                if not requesters:
                    continue
                winner = self._pick_grant(out, requesters)
                grants.setdefault(winner, []).append(out)
            if not grants:
                break
            for inp, outs in grants.items():
                choice = self._pick_accept(inp, outs)
                matched_in[inp] = choice
                matched_out[choice] = inp
                self._commit(inp, choice, iteration)
        return matched_in

    def match_matrix(self, requests: Sequence[Sequence[bool]]) -> Dict[int, int]:
        """Vectorized :meth:`match` over a dense request matrix.

        ``requests[i][o]`` is truthy when input ``i`` has an eligible
        head packet for output ``o`` — the natural shape when a slot
        driver batches arbitration across a whole fabric.  Produces the
        exact matching and the exact post-call arbiter state of
        ``match({i: [o for o if requests[i][o]]})``.

        Vectorization rests on two structural facts about one LRG
        iteration of :meth:`match`: every grant pick reads
        iteration-*start* grant stamps (the grant loop completes before
        any commit), and every accept pick reads a stamp row only its
        *own* later commit could touch — so both picks batch into masked
        argmins over integer keys ``stamp * n + index`` (monotone in the
        ``(stamp, index)`` tie-break for ``0 <= index < n``).  Only the
        commits are ordered: inputs in order of their first granting
        output, matching the scalar grants-dict insertion order, so the
        clock stamps land identically.  Pointer mode (and a missing
        numpy) delegates to the scalar path — both pointer picks are
        order-insensitive over the candidate set, so results agree.
        """
        if len(requests) != self.num_inputs:
            raise ValueError(
                f"request matrix has {len(requests)} rows, expected {self.num_inputs}"
            )
        if _np is None or self.mode == "pointer":
            req: Dict[int, List[int]] = {}
            for i, row in enumerate(requests):
                outs = [o for o in range(self.num_outputs) if row[o]]
                if outs:
                    req[i] = outs
            return self.match(req)

        mask = _np.asarray(requests, dtype=bool)
        if mask.shape != (self.num_inputs, self.num_outputs):
            raise ValueError(
                f"request matrix shape {mask.shape} != "
                f"({self.num_inputs}, {self.num_outputs})"
            )
        ni, no = self.num_inputs, self.num_outputs
        # Integer pick keys: stamp * n + index encodes the (stamp, index)
        # lexicographic tie-break in one argmin-able value.
        ikey = _np.asarray(self._grant_stamp, dtype=_np.int64) * ni + _np.arange(ni)
        okey = _np.asarray(self._accept_stamp, dtype=_np.int64) * no + _np.arange(no)
        big = _np.int64(1) << 62
        avail_in = _np.ones(ni, dtype=bool)
        avail_out = _np.ones(no, dtype=bool)
        out_ids = _np.arange(no)
        matched: Dict[int, int] = {}

        for iteration in range(self.iterations):
            live = mask & avail_in[:, None] & avail_out[None, :]
            gmask = live.T  # (out, in): requesters per unmatched output
            has_req = gmask.any(axis=1)
            if not has_req.any():
                break
            # Grant: each output's least-recently-granted requester.
            winners = _np.where(gmask, ikey, big).argmin(axis=1)
            granting = _np.nonzero(has_req)[0]
            G = _np.zeros((ni, no), dtype=bool)  # G[i, o]: o grants i
            G[winners[granting], granting] = True
            # Accept: each granted input's least-recently-used output.
            # Iteration-start okey is sound here — only an input's own
            # commit writes its accept row, and that happens post-pick.
            choice = _np.where(G, okey, big).argmin(axis=1)
            # Commit in scalar order: inputs by first granting output
            # (distinct per input — an output grants one winner).
            first_out = _np.where(G, out_ids, no).min(axis=1)
            granted = _np.nonzero(G.any(axis=1))[0]
            for inp in granted[_np.argsort(first_out[granted])]:
                i, o = int(inp), int(choice[inp])
                matched[i] = o
                avail_in[i] = False
                avail_out[o] = False
                self._commit(i, o, iteration)
                stamp = self._clock - 1
                ikey[o, i] = stamp * ni + i
                okey[i, o] = stamp * no + o
        return matched

    def match_single(self, inp: int, outs: Iterable[int]) -> int:
        """Fast path for rounds where exactly one input requests.

        With a single requester every requested output grants it on the
        first iteration, the input accepts one of them, and the second
        iteration has nothing left to do — so the full grant/accept
        bookkeeping of :meth:`match` collapses to one accept pick plus
        one state commit.  Returns the chosen output; state updates are
        exactly those ``match({inp: outs})`` would make (both pick
        rules are order-insensitive over the candidate set).
        """
        choice = self._pick_accept(inp, list(outs))
        self._commit(inp, choice, 0)
        return choice

    # ------------------------------------------------------------------
    def _pick_grant(self, out: int, requesters: List[int]) -> int:
        if self.mode == "pointer":
            return _next_from(requesters, self.grant_ptr[out])
        stamps = self._grant_stamp[out]
        return min(requesters, key=lambda i: (stamps[i], i))

    def _pick_accept(self, inp: int, outs: List[int]) -> int:
        if self.mode == "pointer":
            return _next_from(outs, self.accept_ptr[inp])
        stamps = self._accept_stamp[inp]
        return min(outs, key=lambda o: (stamps[o], o))

    def _commit(self, inp: int, out: int, iteration: int) -> None:
        if self.mode == "pointer":
            if iteration == 0:
                # Pointers move one position beyond the match, only for
                # first-iteration matches (the iSlip rule).
                self.grant_ptr[out] = (inp + 1) % self.num_inputs
                self.accept_ptr[inp] = (out + 1) % self.num_outputs
        else:
            self._grant_stamp[out][inp] = self._clock
            self._accept_stamp[inp][out] = self._clock
            self._clock += 1


class RoundRobin:
    """Single-pointer greedy matcher: outputs served in index order,
    each picking the next requesting input round-robin.

    Simpler than iSlip and less fair under asymmetric load; kept as a
    differential-testing and ablation baseline.
    """

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.ptr = [0] * num_outputs

    def match(self, requests: Mapping[int, Iterable[int]]) -> Dict[int, int]:
        req = {i: set(outs) for i, outs in requests.items() if outs}
        matched_in: Dict[int, int] = {}
        taken: Set[int] = set()
        for out in range(self.num_outputs):
            requesters = [
                i for i, outs in req.items() if out in outs and i not in matched_in
            ]
            if not requesters or out in taken:
                continue
            winner = _next_from(requesters, self.ptr[out])
            matched_in[winner] = out
            taken.add(out)
            self.ptr[out] = (winner + 1) % self.num_inputs
        return matched_in


class SlotArbiter:
    """Slot-synchronous arbitration driver for a set of switches.

    Where the event-driven path re-arbitrates one switch per ``kick``
    event, a slot driver sweeps **all** switches once per MTU slot:
    for each switch it pulls the request sets via
    ``collect_requests()``, matches them (through the vectorized
    :meth:`ISlip.match_matrix` when profitable), and starts the granted
    transmissions via ``apply_matches()`` — repeating per switch until
    the round is quiescent, exactly like the event path's re-kick loop.
    Works over anything duck-typed like
    :class:`~repro.network.switch.Switch` (``collect_requests``,
    ``apply_matches``, ``arbiter`` attributes).

    The driver produces the same matchings as the event path because it
    runs the same phases in the same order with the same arbiter state;
    it exists so the batch kernel (and the arbitration bench) can
    amortize the per-event scheduling overhead across a whole fabric.
    """

    # Below this many requesting inputs the dict path beats building a
    # dense matrix; measured crossover on 8-port switches.
    matrix_min_requests = 3

    def __init__(self, switches: Iterable[object]) -> None:
        self.switches = list(switches)
        self.rounds = 0
        self.matches = 0

    def arbitrate_slot(self) -> int:
        """Run every switch's matching to quiescence; return the number
        of transmissions started across the fabric this slot."""
        started = 0
        for sw in self.switches:
            while True:
                requests, candidates = sw.collect_requests()
                self.rounds += 1
                if not requests:
                    break
                matches = self._match_switch(sw, requests)
                if not sw.apply_matches(matches, candidates):
                    break
                started += len(matches)
        self.matches += started
        return started

    def _match_switch(self, sw: object, requests: Dict[int, List[int]]) -> Dict[int, int]:
        arbiter = sw.arbiter
        if len(requests) == 1:
            (inp, outs), = requests.items()
            return {inp: arbiter.match_single(inp, outs)}
        if (
            _np is not None
            and len(requests) >= self.matrix_min_requests
            and isinstance(arbiter, ISlip)
            and arbiter.mode == "lrg"
        ):
            matrix = _np.zeros((arbiter.num_inputs, arbiter.num_outputs), dtype=bool)
            for inp, outs in requests.items():
                matrix[inp, list(outs)] = True
            return arbiter.match_matrix(matrix)
        return arbiter.match(requests)


def _next_from(candidates: List[int], pointer: int) -> int:
    """Smallest candidate >= pointer, wrapping around (RR priority)."""
    best_wrap = None
    best = None
    for c in sorted(candidates):
        if c >= pointer:
            best = c
            break
        if best_wrap is None:
            best_wrap = c
    if best is not None:
        return best
    assert best_wrap is not None, "candidates must be non-empty"
    return best_wrap
