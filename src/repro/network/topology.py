"""Topology descriptions and builders.

A :class:`Topology` is a pure description (no simulator state): switch
port counts, node attachment points, inter-switch cables, per-link
bandwidths and a complete deterministic routing table — everything
:func:`repro.network.fabric.build_fabric` needs to instantiate a
running network.

Builders provided:

* :func:`k_ary_n_tree` — the fat-tree family used by the paper's
  Config #2 (2-ary 3-tree: 8 nodes / 12 switches) and Config #3
  (4-ary 3-tree: 64 nodes / 48 switches), with the deterministic
  destination-based DET routing of Gomez et al. [33]: at every upward
  stage the up-port is chosen by the corresponding digit of the
  destination address, so all traffic towards one destination converges
  onto a single tree — exactly the behaviour that shapes congestion
  trees in the evaluation.
* :func:`config1_adhoc` — the 2-switch / 7-node network of Fig. 5,
  reconstructed from the prose (see DESIGN.md §2): nodes 0–2 on
  switch 0, nodes 3–6 on switch 1, 2.5 GB/s node links and a 5 GB/s
  inter-switch link; flows F1 (1→4) and F2 (2→4) share the inter-switch
  input port of switch 1 with the victim F0 (0→3), while F5 (5→4) and
  F6 (6→4) own private input ports — the parking-lot setting of §IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Topology", "SwitchSpec", "k_ary_n_tree", "config1_adhoc", "TopologyError"]


class TopologyError(ValueError):
    """Raised for malformed topology descriptions."""


@dataclass
class SwitchSpec:
    """Static description of one switch."""

    id: int
    num_ports: int
    #: fat-tree level (0 = leaf) or -1 for ad-hoc topologies.
    level: int = -1
    #: fat-tree digit address, empty for ad-hoc topologies.
    address: Tuple[int, ...] = ()


@dataclass
class Topology:
    """Pure data: who connects to whom, at what speed, routed how."""

    name: str
    num_nodes: int
    switches: List[SwitchSpec]
    #: node_id -> (switch_id, switch_port, bandwidth bytes/ns)
    node_attach: Dict[int, Tuple[int, int, float]]
    #: (sw_a, port_a, sw_b, port_b, bandwidth) — bidirectional cables.
    switch_links: List[Tuple[int, int, int, int, float]]
    #: (switch_id, dst_node) -> output port.
    routes: Dict[Tuple[int, int], int]
    #: free-form extras (e.g. fat-tree (k, n)).
    meta: Dict[str, object] = field(default_factory=dict)
    #: switch crossbar bandwidth (bytes/ns); None = fastest attached
    #: link (Table I: 5 GB/s on Config #1, 2.5 GB/s on the fat trees).
    crossbar_bw: Optional[float] = None
    #: lazily built (switch, port) -> endpoint index backing
    #: :meth:`neighbor` (the 4-ary 3-tree has 256 cables; `path()`
    #: used to re-scan all of them per hop).
    _port_index: Optional[Dict[Tuple[int, int], Tuple[str, int, int]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: lazily built (switch, dst) -> minimal-output-candidate index
    #: backing :meth:`candidates` (adaptive routing); never built when
    #: only deterministic routing runs.
    _candidate_index: Optional[Dict[Tuple[int, int], Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def effective_crossbar_bw(self) -> float:
        """Resolve :attr:`crossbar_bw`, defaulting to the fastest link."""
        if self.crossbar_bw is not None:
            return self.crossbar_bw
        bws = [bw for (_s, _p, bw) in self.node_attach.values()]
        bws += [bw for (*_x, bw) in self.switch_links]
        return max(bws)

    # ------------------------------------------------------------------
    @property
    def num_switches(self) -> int:
        return len(self.switches)

    def neighbor(self, switch_id: int, port: int) -> Optional[Tuple[str, int, int]]:
        """What hangs off ``(switch_id, port)``.

        Returns ``("node", node_id, 0)``, ``("switch", other_id,
        other_port)`` or ``None`` for an unused port.  Backed by a
        prebuilt port index (O(1) per lookup); call
        :meth:`invalidate_port_index` after editing ``node_attach`` or
        ``switch_links`` in place.
        """
        index = self._port_index
        if index is None:
            index = self._port_index = self._build_port_index()
        return index.get((switch_id, port))

    def _build_port_index(self) -> Dict[Tuple[int, int], Tuple[str, int, int]]:
        index: Dict[Tuple[int, int], Tuple[str, int, int]] = {}
        for a, pa, b, pb, _bw in reversed(self.switch_links):
            index[(a, pa)] = ("switch", b, pb)
            index[(b, pb)] = ("switch", a, pa)
        # node attachments win over cables on a (bogus) shared port,
        # matching the historical scan order; validate() rejects such
        # topologies anyway.
        for nid, (sw, p, _bw) in self.node_attach.items():
            index[(sw, p)] = ("node", nid, 0)
        return index

    def invalidate_port_index(self) -> None:
        """Drop the cached port/candidate indexes (after in-place
        wiring edits)."""
        self._port_index = None
        self._candidate_index = None

    # ------------------------------------------------------------------
    # fault notifications (docs/faults.md)
    # ------------------------------------------------------------------
    def on_link_down(self, link_name: str) -> None:
        """A fabric built from this description lost ``link_name``.

        The description itself is pure data, so this only records the
        outage (``meta["links_down"]``) for diagnostics; the live
        consequences (routing recomputation, candidate exclusion) are
        handled by :class:`repro.sim.faults.FaultInjector` on the
        running fabric."""
        down = self.meta.setdefault("links_down", [])
        if link_name not in down:
            down.append(link_name)

    def on_link_up(self, link_name: str) -> None:
        """``link_name`` came back; drop it from the outage record."""
        down = self.meta.get("links_down")
        if down and link_name in down:
            down.remove(link_name)

    # ------------------------------------------------------------------
    # minimal-path output candidates (adaptive routing)
    # ------------------------------------------------------------------
    def candidates(self, switch_id: int, dst: int) -> Tuple[int, ...]:
        """Every output port of ``switch_id`` on a *minimal* path to
        node ``dst``, sorted ascending.

        Computed from per-destination BFS distances over the switch
        graph: a port qualifies when its neighbour switch is strictly
        closer to the destination's attach switch (or when it is the
        destination's own attach port).  Any walk that only crosses
        such ports monotonically decreases the remaining distance, so
        adaptive policies choosing among candidates are loop-free by
        construction.  On a k-ary n-tree this yields exactly the DET
        structure the paper assumes: all ``k`` up-ports while
        ascending, the unique down port while descending — the
        "upward candidate set" of Rocher-Gonzalez et al.

        Raises :class:`TopologyError` when ``dst`` is unreachable from
        ``switch_id``.  The index is built lazily on first use and
        cached; call :meth:`invalidate_port_index` after editing the
        wiring in place.
        """
        index = self._candidate_index
        if index is None:
            index = self._candidate_index = self._build_candidate_index()
        try:
            return index[(switch_id, dst)]
        except KeyError:
            raise TopologyError(
                f"switch {switch_id} has no minimal-path candidates for "
                f"destination {dst}"
            ) from None

    def candidate_map(self, switch_id: int) -> Dict[int, Tuple[int, ...]]:
        """``dst -> candidate ports`` for one switch (the per-switch
        slice of :meth:`candidates`, handed to routing policies)."""
        index = self._candidate_index
        if index is None:
            index = self._candidate_index = self._build_candidate_index()
        return {
            dst: ports for (sw, dst), ports in index.items() if sw == switch_id
        }

    def _build_candidate_index(self) -> Dict[Tuple[int, int], Tuple[int, ...]]:
        # Same adjacency + per-destination backward BFS as
        # repro.network.routing.build_routing, but keeping *every*
        # distance-decreasing port instead of the lowest one.
        adj: Dict[int, List[Tuple[int, str, int]]] = {s.id: [] for s in self.switches}
        for nid, (sw, p, _bw) in self.node_attach.items():
            adj[sw].append((p, "node", nid))
        for a, pa, b, pb, _bw in self.switch_links:
            adj[a].append((pa, "switch", b))
            adj[b].append((pb, "switch", a))
        for ports in adj.values():
            ports.sort()

        from collections import deque

        index: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        far = 1 << 30
        for dst in range(self.num_nodes):
            dst_sw, _dst_port, _bw = self.node_attach[dst]
            dist = {dst_sw: 0}
            frontier = deque([dst_sw])
            while frontier:
                sw = frontier.popleft()
                for _p, kind, other in adj[sw]:
                    if kind == "switch" and other not in dist:
                        dist[other] = dist[sw] + 1
                        frontier.append(other)
            for sw, ports in adj.items():
                if sw not in dist:
                    continue  # unreachable: lookup raises TopologyError
                if sw == dst_sw:
                    cands = tuple(
                        p for p, kind, other in ports if kind == "node" and other == dst
                    )
                else:
                    here = dist[sw]
                    cands = tuple(
                        p
                        for p, kind, other in ports
                        if kind == "switch" and dist.get(other, far) == here - 1
                    )
                if cands:
                    index[(sw, dst)] = cands
        return index

    def path(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Follow the routing tables from ``src`` to ``dst``.

        Returns the list of ``(switch_id, out_port)`` hops.  Raises
        :class:`TopologyError` on a routing loop or dead end — used by
        the validation tests.
        """
        if src == dst:
            return []
        sw, port, _bw = self.node_attach[src]
        hops: List[Tuple[int, int]] = []
        seen = set()
        where: Optional[Tuple[str, int, int]] = ("switch", sw, port)
        while where is not None and where[0] == "switch":
            sw_id = where[1]
            if sw_id in seen:
                raise TopologyError(f"routing loop at switch {sw_id} for {src}->{dst}")
            seen.add(sw_id)
            key = (sw_id, dst)
            if key not in self.routes:
                raise TopologyError(f"no route at switch {sw_id} for dst {dst}")
            out = self.routes[key]
            hops.append((sw_id, out))
            where = self.neighbor(sw_id, out)
        if where is None or where[0] != "node" or where[1] != dst:
            raise TopologyError(f"route {src}->{dst} ends at {where}")
        return hops

    def validate(self) -> None:
        """Check structural sanity and full any-to-any reachability."""
        used: set[Tuple[int, int]] = set()
        for nid, (sw, p, bw) in self.node_attach.items():
            if not (0 <= sw < self.num_switches):
                raise TopologyError(f"node {nid} attached to unknown switch {sw}")
            if not (0 <= p < self.switches[sw].num_ports):
                raise TopologyError(f"node {nid} attached to bad port {p}")
            if (sw, p) in used:
                raise TopologyError(f"port ({sw},{p}) used twice")
            used.add((sw, p))
            if bw <= 0:
                raise TopologyError(f"node {nid} link bandwidth {bw}")
        for a, pa, b, pb, bw in self.switch_links:
            for sw, p in ((a, pa), (b, pb)):
                if not (0 <= sw < self.num_switches):
                    raise TopologyError(f"cable on unknown switch {sw}")
                if not (0 <= p < self.switches[sw].num_ports):
                    raise TopologyError(f"cable on bad port ({sw},{p})")
                if (sw, p) in used:
                    raise TopologyError(f"port ({sw},{p}) used twice")
                used.add((sw, p))
            if bw <= 0:
                raise TopologyError(f"cable ({a},{pa})-({b},{pb}) bandwidth {bw}")
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src != dst:
                    self.path(src, dst)


# ----------------------------------------------------------------------
# k-ary n-tree
# ----------------------------------------------------------------------
def _digits(value: int, count: int, k: int) -> Tuple[int, ...]:
    """Base-``k`` digits of ``value``, least-significant first, length ``count``."""
    out = []
    for _ in range(count):
        out.append(value % k)
        value //= k
    return tuple(out)


def k_ary_n_tree(k: int, n: int, bandwidth: float = 2.5, name: Optional[str] = None) -> Topology:
    """Build a k-ary n-tree with DET deterministic routing.

    ``k**n`` nodes, ``n * k**(n-1)`` switches of radix ``2k`` arranged
    in ``n`` levels (level 0 attaches the nodes; the top level uses only
    its ``k`` down ports).  Port layout per switch: ports ``0..k-1`` go
    down (port ``j`` towards the neighbour whose distinguishing digit is
    ``j``), ports ``k..2k-1`` go up (port ``k+j`` towards the level
    above with this switch's free digit set to ``j``).

    Routing (DET, destination-based): a packet for destination ``d``
    (base-k digits ``d_0 d_1 ...``, least significant first — ``d_0``
    is the node's index within its leaf, ``d_{i+1}`` the leaf digits
    ``v_i``) ascends choosing up digit ``d_l`` at level ``l`` until it
    reaches a switch agreeing with the leaf digits ``v`` on all digits
    >= its level, then descends setting digit ``l-1 = v[l-1]`` at each
    step and finally exits on down port ``d_0``.

    Starting the ascent digits at ``d_0`` (not ``v_0``) is what makes
    DET balanced: every destination gets a private descent chain
    (apex → ... → leaf) whose capacity equals the destination's own
    node link, so uniform traffic saturates the fabric instead of
    funnelling each apex switch through a single down port, while all
    traffic towards one destination still converges onto a single tree.
    """
    if k < 2 or n < 1:
        raise TopologyError(f"need k>=2, n>=1, got k={k}, n={n}")
    num_nodes = k**n
    per_level = k ** (n - 1)
    ndigits = n - 1

    def sid(level: int, w: int) -> int:
        return level * per_level + w

    switches = [
        SwitchSpec(id=sid(l, w), num_ports=2 * k, level=l, address=_digits(w, ndigits, k))
        for l in range(n)
        for w in range(per_level)
    ]

    node_attach: Dict[int, Tuple[int, int, float]] = {}
    for node in range(num_nodes):
        leaf_w, down_port = node // k, node % k
        node_attach[node] = (sid(0, leaf_w), down_port, bandwidth)

    switch_links: List[Tuple[int, int, int, int, float]] = []
    for l in range(n - 1):
        for w in range(per_level):
            wd = list(_digits(w, ndigits, k))
            for j in range(k):
                # up port k+j of (l, w) -> level l+1 switch with digit l = j,
                # which receives us on its down port = our digit l.
                wu = wd.copy()
                down_digit = wu[l]
                wu[l] = j
                w_up = sum(d * (k**i) for i, d in enumerate(wu))
                switch_links.append(
                    (sid(l, w), k + j, sid(l + 1, w_up), down_digit, bandwidth)
                )

    routes: Dict[Tuple[int, int], int] = {}
    for l in range(n):
        for w in range(per_level):
            wd = _digits(w, ndigits, k)
            for dst in range(num_nodes):
                d = _digits(dst, n, k)
                v = d[1:]  # leaf digits
                if all(wd[i] == v[i] for i in range(l, ndigits)):
                    # On the destination's down path.
                    out = d[0] if l == 0 else v[l - 1]
                else:
                    out = k + d[l]
                routes[(sid(l, w), dst)] = out

    return Topology(
        name=name or f"{k}-ary {n}-tree",
        num_nodes=num_nodes,
        switches=switches,
        node_attach=node_attach,
        switch_links=switch_links,
        routes=routes,
        meta={"k": k, "n": n},
    )


# ----------------------------------------------------------------------
# Config #1 ad-hoc network (Fig. 5)
# ----------------------------------------------------------------------
def config1_adhoc(
    node_bandwidth: float = 2.5, interswitch_bandwidth: float = 5.0
) -> Topology:
    """The 7-node / 2-switch network of the paper's Config #1.

    * switch 0: ports 0,1,2 -> nodes 0,1,2; port 3 -> switch 1.
    * switch 1: ports 0,1,2,3 -> nodes 3,4,5,6; port 4 -> switch 0.

    The hot spot of Traffic Case #1 is node 4 (switch 1 port 1); the
    victim flow F0 (0→3) shares switch 1's inter-switch input port with
    the remote contributors F1 (1→4) and F2 (2→4).
    """
    switches = [SwitchSpec(id=0, num_ports=4), SwitchSpec(id=1, num_ports=5)]
    node_attach = {
        0: (0, 0, node_bandwidth),
        1: (0, 1, node_bandwidth),
        2: (0, 2, node_bandwidth),
        3: (1, 0, node_bandwidth),
        4: (1, 1, node_bandwidth),
        5: (1, 2, node_bandwidth),
        6: (1, 3, node_bandwidth),
    }
    switch_links = [(0, 3, 1, 4, interswitch_bandwidth)]
    routes: Dict[Tuple[int, int], int] = {}
    for dst in range(7):
        routes[(0, dst)] = dst if dst <= 2 else 3
        routes[(1, dst)] = 4 if dst <= 2 else dst - 3
    return Topology(
        name="config1-adhoc",
        num_nodes=7,
        switches=switches,
        node_attach=node_attach,
        switch_links=switch_links,
        routes=routes,
        meta={"hot_node": 4, "victim_dst": 3},
        crossbar_bw=5.0,
    )
