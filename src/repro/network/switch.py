"""The input-queued switch.

Architecture per §III-A: memory only at input ports (a
:class:`repro.network.buffers.BufferPool` organised by the configured
queue scheme), iSlip crossbar scheduling [31], table-based distributed
deterministic routing, and — for the CC-enabled schemes — the CAMs and
congestion-state machinery of FBICM/CCFIT plus FECN marking.

Event flow of one packet through the switch:

1. the upstream link delivers into an :class:`InputPort` (space was
   reserved at transmission start — lossless credit semantics);
2. the port's queue scheme files it (NFQ, VOQ, ...), post-processing and
   detection run (see :mod:`repro.core.isolation`), and the switch is
   *kicked*;
3. the next matching round (one event per time instant) collects every
   eligible queue head from every idle input port, filters by output
   availability and downstream space, and runs iSlip;
4. a matched packet is popped, possibly FECN-marked (output port in the
   congestion state), and handed to the output link; input port and
   output stay busy for the serialisation time;
5. on completion the input buffer bytes are released and a credit
   returns upstream.

Congestion-tree protocol messages from the downstream switch arrive at
the :class:`OutputPort` (reverse control channel) and are fanned out to
the input-port schemes; BECNs arriving at input ports are forwarded
towards their destination through the control plane.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cam import OutputCam, OutputCamLine
from repro.core.params import CCParams
from repro.core.scheme import MarkingPolicy
from repro.network.arbiter import ISlip
from repro.network.buffers import BufferPool, get_buffer_model
from repro.network.link import Link
from repro.network.packet import (
    Becn,
    CfqAlloc,
    CfqDealloc,
    CfqGo,
    CfqStop,
    ControlMessage,
    Packet,
    PfcPause,
    PfcResume,
)
from repro.network.queueing import CongestionControlScheme
from repro.network.routing import DetRoutingPolicy, RoutingPolicy, RoutingTable
from repro.sim.engine import Simulator

__all__ = ["Switch", "InputPort", "OutputPort"]


class InputPort:
    """One switch input port: buffer pool + queue scheme + protocol glue.

    Doubles as the *receiver* endpoint of the upstream link and as the
    *host* object its queue scheme talks to (see
    :class:`repro.network.queueing.PortHost` /
    :class:`repro.core.isolation.IsolationHost`).
    """

    def __init__(self, switch: "Switch", index: int) -> None:
        self.switch = switch
        self.index = index
        self.name = f"{switch.name}.in{index}"
        self.params = switch.params
        self.pool = BufferPool(switch.params.memory_size)
        self.scheme: CongestionControlScheme = None  # type: ignore[assignment]  # set by Switch
        self.link_in: Optional[Link] = None
        #: aggregate bandwidth (bytes/ns) of in-progress crossbar reads;
        #: bounded by the switch crossbar bandwidth, so a 2x crossbar
        #: lets one port stream to two outputs concurrently (Table I).
        self.active_rate = 0.0
        self.rr_counter = 0
        self.packets_received = 0

    @property
    def busy(self) -> bool:
        """True while at least one packet is being read (diagnostics)."""
        return self.active_rate > 0.0

    def can_read_at(self, rate: float) -> bool:
        """Could this port start another crossbar read at ``rate``?"""
        budget = self.switch.crossbar_bw
        if budget is None:
            return self.active_rate == 0.0
        return self.active_rate + rate <= budget * (1.0 + 1e-9)

    # -- PortHost / IsolationHost ----------------------------------------
    def route(self, pkt: Packet) -> int:
        # Generic fallback; Switch.__init__ shadows this per instance
        # with the policy's specialised callable (RoutingPolicy.route_for)
        # so the per-packet dispatch cost matches the pre-policy direct
        # table lookup.
        return self.switch.policy.route(self, pkt)

    def kick(self) -> None:
        self.switch.kick()

    def now(self) -> float:
        return self.switch.sim.now

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        self.switch.sim.post_in(delay, fn)

    def set_output_hot(self, out_port: int, source: object, hot: bool) -> None:
        self.switch.output_ports[out_port].set_hot((self.index, id(source)), hot)

    def send_upstream(self, msg: ControlMessage) -> None:
        if self.link_in is not None:
            self.link_in.send_reverse_control(msg)

    def announced_tree(self, dest: int) -> Optional[OutputCamLine]:
        # Congestion-tree state anchors on the policy's stable control
        # port (the DET port) even when the data path adapts.
        out = self.switch.policy.control_port(dest)
        return self.switch.output_ports[out].out_cam.lookup(dest)

    def root_cfq_hot_changed(self, dest: int, hot: bool) -> None:
        out = self.switch.policy.control_port(dest)
        self.switch.output_ports[out].set_hot((self.index, "root", dest), hot)

    # -- link receiver endpoint -------------------------------------------
    # The upstream link's credit view (`Link.can_send`) is whatever
    # `can_accept` answers.  The defaults below implement the static
    # buffer model (raw per-port pool bytes); non-static models shadow
    # all four methods per instance (BufferModel.attach) so their
    # admission logic becomes the credit view with no extra branch on
    # the golden path.
    def can_accept(self, pkt: Packet) -> bool:
        return self.pool.free >= pkt.size and self.scheme.can_accept_extra(pkt)

    def reserve(self, pkt: Packet) -> None:
        self.pool.reserve(pkt.size)
        self.scheme.reserve_extra(pkt)

    def cancel_reservation(self, pkt: Packet) -> None:
        """Undo :meth:`reserve` for a packet that died on the wire
        (fault drop): the committed space is released without the
        packet ever arriving, keeping the credit ledger balanced."""
        self.pool.release(pkt.size)
        self.scheme.cancel_extra(pkt)

    def release_packet(self, pkt: Packet) -> None:
        """Free the buffer bytes of a packet whose tail has left the
        input RAM (transmission complete)."""
        self.pool.release(pkt.size)

    def receive_packet(self, pkt: Packet, link: Link) -> None:
        self.packets_received += 1
        self.scheme.on_arrival(pkt)

    def receive_control(self, msg: ControlMessage, link: Link) -> None:
        self.switch.forward_control(msg)

    def occupancy(self) -> int:
        return self.pool.used


class OutputPort:
    """One switch output port: link, output CAM, congestion state."""

    def __init__(self, switch: "Switch", index: int) -> None:
        self.switch = switch
        self.index = index
        self.name = f"{switch.name}.out{index}"
        self.link_out: Optional[Link] = None
        self.out_cam = OutputCam(switch.params.num_cfqs)
        #: who keeps this port in the congestion state (root CFQs above
        #: High for CCFIT, hot VOQs for ITh) — congested while non-empty.
        self.hot_sources: set = set()
        #: priority groups the downstream device has PFC-paused; the
        #: matcher skips heads bound here on these priorities.  Always
        #: empty under the static buffer model.
        self.paused_priorities: set = set()
        #: the (input port, packet) currently crossing to this output.
        self.current: Optional[Tuple[InputPort, Packet]] = None
        self.entered_congestion_state = 0

    # -- congestion state ---------------------------------------------------
    @property
    def congested(self) -> bool:
        return bool(self.hot_sources)

    def set_hot(self, source_key: object, hot: bool) -> None:
        if hot:
            if not self.hot_sources:
                self.entered_congestion_state += 1
            self.hot_sources.add(source_key)
        else:
            self.hot_sources.discard(source_key)

    # -- link transmitter endpoint -------------------------------------------
    def on_tx_done(self, link: Link) -> None:
        self.switch.on_transmission_done(self)

    def on_credit(self, link: Link) -> None:
        self.switch.kick()

    def receive_reverse_control(self, msg: ControlMessage, link: Link) -> None:
        self.switch.on_tree_message(self, msg)


class Switch:
    """An input-queued switch with a pluggable queue scheme.

    Parameters
    ----------
    sim, name:
        Engine and diagnostic name.
    num_ports:
        Radix (bidirectional ports; one InputPort + one OutputPort each).
    routing:
        This switch's :class:`repro.network.routing.RoutingPolicy`.
        Passing a bare :class:`~repro.network.routing.RoutingTable` is
        deprecated but still works: it is auto-wrapped in the ``det``
        policy (with a :class:`DeprecationWarning`), so pre-policy
        callers and old pickled jobs keep running.
    params:
        CC parameters (thresholds, CFQ counts, marking).
    scheme_factory:
        ``f(input_port) -> CongestionControlScheme`` building each
        port's queues.
    marker:
        The scheme's :class:`repro.core.scheme.MarkingPolicy`, asked
        for every packet crossing an output port; None disables
        marking entirely (1Q/VOQsw/DBBM/VOQnet/FBICM).
    crossbar_bw:
        Crossbar bandwidth in bytes/ns (Table I: 5 GB/s on Config #1,
        2.5 GB/s on the fat trees).  An input port is busy reading a
        matched packet for ``size/crossbar_bw``; with crossbar speedup
        over the link rate, one input port can feed several outputs
        back-to-back — without it, a port mixing a victim and a
        congested flow could never drain faster than one link.
        ``None`` couples the read time to the output link (speedup 1).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int,
        routing: "RoutingPolicy | RoutingTable",
        params: CCParams,
        scheme_factory: Callable[[InputPort], CongestionControlScheme],
        marker: Optional[MarkingPolicy] = None,
        crossbar_bw: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.num_ports = num_ports
        if isinstance(routing, RoutingTable):
            import warnings

            warnings.warn(
                "Switch(routing=RoutingTable) is deprecated; pass a "
                "RoutingPolicy (the table was auto-wrapped in the 'det' "
                "policy)",
                DeprecationWarning,
                stacklevel=2,
            )
            routing = DetRoutingPolicy(routing)
        self.policy: RoutingPolicy = routing
        #: the policy's deterministic table (back-compat attribute; the
        #: pre-policy switch exposed the RoutingTable here).
        self.routing = routing.table
        # Give the table a way to stamp lookup errors with the switch
        # name and the current simulated time (satellite of
        # docs/faults.md: contextual TopologyError messages).
        self.routing.owner = self
        self.params = params
        self.crossbar_bw = crossbar_bw
        self.marker = marker
        self.input_ports = [InputPort(self, i) for i in range(num_ports)]
        self.output_ports = [OutputPort(self, i) for i in range(num_ports)]
        #: how this switch's RAM is carved up (docs/buffers.md).  Built
        #: and attached before the queue schemes so they see the final
        #: pool capacities (VOQnet sizes its queues off pool.capacity).
        self.buffer_model = get_buffer_model(
            getattr(params, "buffer_model", "static")
        ).build(self)
        self.buffer_model.attach()
        self._nprios: int = getattr(params, "pfc_priorities", 4)
        #: count of PFC-paused (output, priority) pairs; the matcher's
        #: pause filter costs one truthiness check while this is 0.
        self._paused_pairs = 0
        for port in self.input_ports:
            port.scheme = scheme_factory(port)
            # Shadow the generic InputPort.route with the policy's
            # specialised callable: for det this is a closure over
            # table.lookup, making the hot path cost what it did before
            # the policy layer existed (gated by `repro perf --routing`).
            port.route = routing.route_for(port)
        self.arbiter = ISlip(num_ports, num_ports, params.islip_iterations)
        #: arbitration slot (ns); resolved by the fabric builder when
        #: params.match_quantum is the -1 auto sentinel.  0 = match
        #: immediately on every event (the async ablation mode).
        self.quantum = params.match_quantum if params.match_quantum >= 0 else 0.0
        self._match_scheduled = False
        #: slowest attached output link (lazily computed) — lets the
        #: matcher skip saturated input ports without scanning queues.
        self._min_link_bw: Optional[float] = None
        self.packets_forwarded = 0
        self.fecn_marked = 0

    @property
    def marking(self) -> bool:
        """Does this switch run a marking policy? (diagnostics)"""
        return self.marker is not None

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Request a matching round at the next arbitration slot
        (kicks arriving within one slot are coalesced).

        A transmission ending exactly on a slot boundary must be
        matchable in that same slot, so boundary hits (within a float
        tolerance) are not pushed a whole slot into the future.
        """
        if not self._match_scheduled:
            self._match_scheduled = True
            q = self.quantum
            now = self.sim.now
            if q <= 0.0:
                when = now
            else:
                k = now / q
                when = max(now, round(k) * q if abs(k - round(k)) < 1e-6 else (now // q + 1.0) * q)
            self.sim.post(when, self._match)

    def collect_requests(
        self,
    ) -> Tuple[Dict[int, List[int]], Dict[Tuple[int, int], List[Tuple[object, Packet]]]]:
        """Phase 1 of a matching round: the eligible request sets.

        Asks every idle input port's scheme for its eligible queue heads
        (the unmodified public
        :meth:`~repro.network.queueing.CongestionControlScheme.eligible_heads`
        API), filters by output-link availability, downstream space and
        crossbar read budget, and returns ``(requests, candidates)``:
        ``requests`` maps each requesting input to its output list (the
        arbiter's input), ``candidates`` maps each (input, output) pair
        to its head-packet choices.  Shared by the event-driven
        :meth:`_match` and the slot-batched
        :class:`~repro.network.arbiter.SlotArbiter` driver.
        """
        if self._min_link_bw is None:
            self._min_link_bw = min(
                (op.link_out.bandwidth for op in self.output_ports if op.link_out),
                default=0.0,
            )
        requests: Dict[int, List[int]] = {}
        # (input, output) -> list of (queue, pkt) candidates.
        candidates: Dict[Tuple[int, int], List[Tuple[object, Packet]]] = {}
        output_ports = self.output_ports
        min_bw = self._min_link_bw
        paused = self._paused_pairs > 0
        nprios = self._nprios
        for port in self.input_ports:
            # The scheme caches this list between mutations, so an idle
            # port costs one truthiness check per round.
            heads = port.scheme.eligible_heads()
            if not heads:
                continue
            # Saturated read path: not even the slowest link fits.
            if not port.can_read_at(min_bw):
                continue
            outs: List[int] = []
            pidx = port.index
            for queue, out, pkt in heads:
                if paused and (pkt.dst % nprios) in output_ports[out].paused_priorities:
                    continue
                link = output_ports[out].link_out
                if link is None or not link.can_send(pkt):
                    continue
                if not port.can_read_at(link.bandwidth):
                    continue
                key = (pidx, out)
                cands = candidates.get(key)
                if cands is None:
                    candidates[key] = [(queue, pkt)]
                    outs.append(out)
                else:
                    cands.append((queue, pkt))
            if outs:
                requests[pidx] = outs
        return requests, candidates

    def apply_matches(
        self,
        matches: Dict[int, int],
        candidates: Dict[Tuple[int, int], List[Tuple[object, Packet]]],
    ) -> bool:
        """Phase 3 of a matching round: start one transmission per
        matched (input, output) pair, round-robining among that pair's
        head-packet candidates.  Returns True when anything started (the
        caller may immediately arbitrate again: with crossbar headroom
        an input port can feed several outputs in the same instant)."""
        for inp, out in matches.items():
            cands = candidates[(inp, out)]
            port = self.input_ports[inp]
            queue, pkt = cands[port.rr_counter % len(cands)]
            port.rr_counter += 1
            self._start_transmission(port, self.output_ports[out], queue, pkt)
        return bool(matches)

    def _match(self) -> None:
        self._match_scheduled = False
        requests, candidates = self.collect_requests()
        if not requests:
            return
        if len(requests) == 1:
            # One requesting input: skip the full grant/accept iteration
            # (ISlip.match_single commits identical arbiter state).
            (inp, outs), = requests.items()
            matches = {inp: self.arbiter.match_single(inp, outs)}
        else:
            matches = self.arbiter.match(requests)
        if self.apply_matches(matches, candidates):
            # A port with crossbar headroom left may start a second
            # concurrent read this very instant (iSlip grants one match
            # per input per round) — run another round.
            self.kick()

    def _start_transmission(self, port: InputPort, out_port: OutputPort, queue, pkt: Packet) -> None:
        popped = queue.pop()
        assert popped is pkt, "queue head changed between match and pop"
        rate = out_port.link_out.bandwidth
        port.active_rate += rate
        out_port.current = (port, pkt, rate)
        marker = self.marker
        if marker is not None and marker.should_mark(pkt, queue, out_port):
            pkt.fecn = True
            self.fecn_marked += 1
        out_port.link_out.send(pkt)
        self.packets_forwarded += 1
        port.scheme.after_dequeue(queue)

    def on_transmission_done(self, out_port: OutputPort) -> None:
        """Serialisation finished: the packet's tail has left both the
        crossbar and the input buffer — free the read capacity and the
        RAM, return the link-level credit, and re-arbitrate."""
        assert out_port.current is not None, "tx done with no transmission"
        port, pkt, rate = out_port.current
        out_port.current = None
        port.active_rate -= rate
        if port.active_rate < 1e-12:
            port.active_rate = 0.0
        port.release_packet(pkt)
        if port.link_in is not None:
            port.link_in.return_credit(pkt.size)
        self.kick()

    # ------------------------------------------------------------------
    # congestion-tree protocol (reverse control from downstream)
    # ------------------------------------------------------------------
    def on_tree_message(self, out_port: OutputPort, msg: ControlMessage) -> None:
        """Update this switch's output CAM, then fan the message out to
        every input-port scheme (``on_control_message`` hook) — schemes
        without a tree protocol inherit the no-op."""
        if isinstance(msg, CfqAlloc):
            out_port.out_cam.allocate(msg.destination)
        elif isinstance(msg, CfqStop):
            line = out_port.out_cam.lookup(msg.destination)
            if line is not None:
                line.stopped = True
        elif isinstance(msg, CfqGo):
            line = out_port.out_cam.lookup(msg.destination)
            if line is not None:
                line.stopped = False
        elif isinstance(msg, CfqDealloc):
            if out_port.out_cam.lookup(msg.destination) is not None:
                out_port.out_cam.free(msg.destination)
        elif isinstance(msg, PfcPause):
            # Stamp the egress the XOFF arrived on so the fan-out below
            # (and the PFC queue scheme) can pause just this (output,
            # priority) pair; the sender only knows its ingress.
            msg.out_port = out_port.index
            if msg.priority not in out_port.paused_priorities:
                out_port.paused_priorities.add(msg.priority)
                self._paused_pairs += 1
        elif isinstance(msg, PfcResume):
            msg.out_port = out_port.index
            if msg.priority in out_port.paused_priorities:
                out_port.paused_priorities.discard(msg.priority)
                self._paused_pairs -= 1
                self.kick()
        else:  # pragma: no cover - unknown control is a wiring bug
            raise TypeError(f"unexpected reverse control {msg!r}")
        for port in self.input_ports:
            port.scheme.on_control_message(msg)

    # ------------------------------------------------------------------
    # control-plane forwarding (BECNs travelling to their destination)
    # ------------------------------------------------------------------
    def forward_control(self, msg: ControlMessage) -> None:
        if isinstance(msg, Becn):
            out = self.policy.control_port(msg.dst)
            link = self.output_ports[out].link_out
            if link is not None:
                link.send_control(msg)
        else:  # pragma: no cover - unknown control is a wiring bug
            raise TypeError(f"unexpected forward control {msg!r}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_buffered_bytes(self) -> int:
        return sum(p.pool.used for p in self.input_ports)

    def allocated_cfqs(self) -> int:
        return sum(p.scheme.allocated_cfqs() for p in self.input_ports)

    def cam_alloc_failures(self) -> int:
        return sum(p.scheme.cam_alloc_failures() for p in self.input_ports)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state dump for watchdog diagnostics: per-port pool
        occupancy, non-empty queue depths, CAM/CFQ tables, and the
        congestion state of every output port."""
        inputs = []
        for port in self.input_ports:
            pool = port.pool.snapshot()
            entry: Dict[str, object] = {
                "name": port.name,
                "pool_used": pool["used"],
                "pool_capacity": pool["capacity"],
                "active_rate": port.active_rate,
            }
            entry.update(port.scheme.snapshot())
            inputs.append(entry)
        outputs = []
        for out in self.output_ports:
            cur = out.current
            outputs.append(
                {
                    "name": out.name,
                    "congested": out.congested,
                    "reading_from": cur[0].name if cur is not None else None,
                    "link_busy_until": out.link_out.busy_until if out.link_out else None,
                    "out_cam": {
                        ln.dest: ("STOP" if ln.stopped else "GO")
                        for ln in out.out_cam.lines()
                    },
                }
            )
        dump: Dict[str, object] = {
            "switch": self.name,
            "routing": self.policy.snapshot(),
            "inputs": inputs,
            "outputs": outputs,
        }
        if self.buffer_model.name != "static":
            dump["buffer_model"] = self.buffer_model.snapshot()
        return dump
