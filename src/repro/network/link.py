"""Lossless links with credit-based flow control.

A :class:`Link` is one *unidirectional* data channel (topologies create
one per direction).  It bundles:

* the wire itself — ``bandwidth`` (bytes/ns) and ``delay`` (ns), one
  packet serialised at a time;
* lossless **credit-based flow control**: a packet may start
  transmission only when the link is idle *and* the downstream buffer
  has committed space for it.  We implement credits by send-time
  reservation: ``send`` immediately calls ``rx.reserve(pkt)`` (the
  credit is consumed), and the receiver announces freed space through
  :meth:`return_credit`, which reaches the transmitter after the wire
  delay (the credit-return latency).  This is byte-exact VCT-style
  whole-packet buffering; the only simplification against hardware
  credit counters is that the transmitter's view of free space is fresh
  rather than one round-trip stale (~40 ns against the millisecond-scale
  dynamics the paper evaluates).  Overflow is impossible by
  construction and asserted downstream;
* a reverse **control channel** (CFQ Alloc/Dealloc/Stop/Go congestion
  propagation, credit notifications) and a forward control channel
  (BECN hop-by-hop forwarding) — out-of-band, see
  :mod:`repro.network.packet` and DESIGN.md §2.

Endpoints are duck-typed:

* the receiver implements ``can_accept(pkt)``, ``reserve(pkt)``,
  ``receive_packet(pkt, link)`` and ``receive_control(msg, link)``;
* the transmitter implements ``on_tx_done(link)`` (serialisation
  finished; the output port is free again), ``on_credit(link)`` and
  ``receive_reverse_control(msg, link)``.

Link bandwidth may be changed mid-simulation with
:meth:`set_bandwidth` — this models the frequency/voltage link scaling
the paper's introduction lists among congestion causes, and is used by
the ``link_downscaling`` example and ablation bench.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.network.packet import ControlMessage, Packet
from repro.sim.engine import Simulator

__all__ = ["Link", "LinkError", "CONTROL_HOP_DELAY"]

#: forwarding latency added to every control-message hop (ns).  Small
#: against the 819.2 ns MTU serialisation time, non-zero so control
#: information is never instantaneous.
CONTROL_HOP_DELAY = 10.0


class LinkError(RuntimeError):
    """Raised on protocol violations (sending while busy / without space)."""


class Link:
    """One unidirectional data channel plus its control channels."""

    __slots__ = (
        "sim",
        "name",
        "bandwidth",
        "delay",
        "jitter",
        "rng",
        "tx",
        "rx",
        "busy_until",
        "in_flight",
        "bytes_sent",
        "packets_sent",
        "bytes_received",
        "packets_received",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth: float,
        delay: float,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> None:
        """``jitter`` stretches each serialisation by a uniform factor in
        ``[0, jitter)`` (seeded ``rng`` required when non-zero).

        With every link and crossbar clocked at exact multiples of the
        819.2 ns MTU time, an event-driven packet-grain model can lock
        into pathological phase alignments (an input port busy at the
        exact instants an output frees, forever).  Real fabrics never
        sustain such alignment — every device runs its own oscillator
        and queueing noise decorrelates phases.  A fraction of a percent
        of seeded serialisation jitter restores that asynchrony at
        negligible bandwidth cost (DESIGN.md §5)."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if jitter < 0 or jitter >= 0.5:
            raise ValueError(f"jitter must be in [0, 0.5), got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires a seeded rng")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.delay = float(delay)
        self.jitter = float(jitter)
        self.rng = rng
        self.tx: Any = None
        self.rx: Any = None
        self.busy_until = 0.0
        self.in_flight: Optional[Packet] = None
        self.bytes_sent = 0
        self.packets_sent = 0
        #: delivered-side counters; sent minus received is exactly the
        #: wire-resident traffic (reserved downstream, not yet arrived),
        #: which the invariant guard balances against buffer accounting.
        self.bytes_received = 0
        self.packets_received = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(self, tx: Any, rx: Any) -> None:
        """Attach the transmitter and receiver endpoints."""
        self.tx = tx
        self.rx = rx

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self.sim.now >= self.busy_until

    def can_send(self, pkt: Packet) -> bool:
        """True when ``pkt`` could start transmission right now."""
        return self.idle and self.rx.can_accept(pkt)

    def serialization_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def send(self, pkt: Packet) -> float:
        """Start transmitting ``pkt``.

        Reserves downstream buffer space immediately (the credit is
        consumed), occupies the wire for ``size/bandwidth``, then
        delivers after the propagation delay.  Returns the
        serialisation-complete time (when the transmitter frees up).
        """
        if not self.idle:
            raise LinkError(f"{self.name}: send while busy until {self.busy_until}")
        if not self.rx.can_accept(pkt):
            raise LinkError(f"{self.name}: send without downstream space for {pkt!r}")
        self.rx.reserve(pkt)
        ser = pkt.size / self.bandwidth
        if self.jitter > 0.0:
            ser *= 1.0 + self.rng.random() * self.jitter
        done = self.sim.now + ser
        self.busy_until = done
        self.in_flight = pkt
        self.bytes_sent += pkt.size
        self.packets_sent += 1
        # One chained queue entry covers the whole wire lifetime of the
        # packet: serialisation-done at ``done``, delivery one
        # propagation delay later.  Both sequence numbers are reserved
        # here, so ordering is bit-identical to two separate schedules
        # while halving the busiest path's queue traffic.
        self.sim.schedule_pair(done, self._tx_done, (), done + self.delay, self._deliver, (pkt,))
        return done

    def _tx_done(self) -> None:
        self.in_flight = None
        if self.tx is not None:
            self.tx.on_tx_done(self)

    def _deliver(self, pkt: Packet) -> None:
        pkt.hops += 1
        self.bytes_received += pkt.size
        self.packets_received += 1
        self.rx.receive_packet(pkt, self)

    # ------------------------------------------------------------------
    # credits (reverse channel)
    # ------------------------------------------------------------------
    def return_credit(self, nbytes: int) -> None:
        """Called by the *receiver* when bytes leave its buffer; wakes
        the transmitter after the credit-return wire delay."""
        if nbytes <= 0:
            raise LinkError(f"{self.name}: non-positive credit {nbytes}")
        self.sim.post(self.sim.now + self.delay, self._credit_arrive)

    def _credit_arrive(self) -> None:
        if self.tx is not None:
            self.tx.on_credit(self)

    # ------------------------------------------------------------------
    # control channels
    # ------------------------------------------------------------------
    def send_control(self, msg: ControlMessage) -> None:
        """Forward-direction control (follows the data): e.g. BECN hops."""
        self.sim.post(
            self.sim.now + self.delay + CONTROL_HOP_DELAY, self._deliver_control, msg
        )

    def _deliver_control(self, msg: ControlMessage) -> None:
        self.rx.receive_control(msg, self)

    def send_reverse_control(self, msg: ControlMessage) -> None:
        """Reverse-direction control (against the data): CFQ
        Alloc/Dealloc/Stop/Go congestion propagation."""
        self.sim.post(
            self.sim.now + self.delay + CONTROL_HOP_DELAY,
            self._deliver_reverse_control,
            msg,
        )

    def _deliver_reverse_control(self, msg: ControlMessage) -> None:
        self.tx.receive_reverse_control(msg, self)

    # ------------------------------------------------------------------
    # extensions
    # ------------------------------------------------------------------
    def set_bandwidth(self, bandwidth: float) -> None:
        """Re-scale the link speed (takes effect for the next packet)."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = float(bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.bandwidth}B/ns busy_until={self.busy_until}>"
