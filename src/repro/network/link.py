"""Lossless links with credit-based flow control.

A :class:`Link` is one *unidirectional* data channel (topologies create
one per direction).  It bundles:

* the wire itself — ``bandwidth`` (bytes/ns) and ``delay`` (ns), one
  packet serialised at a time;
* lossless **credit-based flow control**: a packet may start
  transmission only when the link is idle *and* the downstream buffer
  has committed space for it.  We implement credits by send-time
  reservation: ``send`` immediately calls ``rx.reserve(pkt)`` (the
  credit is consumed), and the receiver announces freed space through
  :meth:`return_credit`, which reaches the transmitter after the wire
  delay (the credit-return latency).  This is byte-exact VCT-style
  whole-packet buffering; the only simplification against hardware
  credit counters is that the transmitter's view of free space is fresh
  rather than one round-trip stale (~40 ns against the millisecond-scale
  dynamics the paper evaluates).  Overflow is impossible by
  construction and asserted downstream.  The credit view is whatever
  the receiver's ``can_accept`` answers: under the default static
  buffer model that is raw per-port pool free bytes, while non-static
  models (``repro.network.buffers``, docs/buffers.md) shadow the
  receiver's admission methods so dynamic thresholds and PFC headroom
  become the credit view with no change here;
* a reverse **control channel** (CFQ Alloc/Dealloc/Stop/Go congestion
  propagation, PFC Pause/Resume, credit notifications) and a forward
  control channel
  (BECN hop-by-hop forwarding) — out-of-band, see
  :mod:`repro.network.packet` and DESIGN.md §2.
* an **operational/degraded state machine** for fault injection
  (docs/faults.md): :meth:`fail` takes the link down (in-flight packets
  are doomed and dropped at their would-be delivery time, with the
  downstream reservation cancelled and the credit returned so the
  guard's conservation ledger still balances), :meth:`restore` brings
  it back, and :meth:`degrade` models a CRC-retrying link with reduced
  bandwidth, added latency and/or seeded probabilistic corruption
  drops.  Fault-free fabrics never arm the machinery: the per-delivery
  cost is one ``None`` check on :attr:`_wire`.

Endpoints are duck-typed:

* the receiver implements ``can_accept(pkt)``, ``reserve(pkt)``,
  ``receive_packet(pkt, link)`` and ``receive_control(msg, link)``
  (plus optional ``cancel_reservation(pkt)`` for fault drops);
* the transmitter implements ``on_tx_done(link)`` (serialisation
  finished; the output port is free again), ``on_credit(link)`` and
  ``receive_reverse_control(msg, link)``.

Link bandwidth may be changed mid-simulation with
:meth:`set_bandwidth` — this models the frequency/voltage link scaling
the paper's introduction lists among congestion causes, and is used by
the ``link_downscaling`` example and ablation bench.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.network.packet import ControlMessage, Packet, free_packet
from repro.sim.engine import Simulator

__all__ = ["Link", "LinkError", "CONTROL_HOP_DELAY"]

#: forwarding latency added to every control-message hop (ns).  Small
#: against the 819.2 ns MTU serialisation time, non-zero so control
#: information is never instantaneous.
CONTROL_HOP_DELAY = 10.0


class LinkError(RuntimeError):
    """Raised on protocol violations (sending while busy / without
    space / on a failed link).  Messages carry the link name, both
    endpoints and the current simulated time."""


def _end_name(obj: Any) -> str:
    """Printable endpoint name for error context (ports have ``name``,
    end nodes have ``id``)."""
    if obj is None:
        return "unconnected"
    name = getattr(obj, "name", None)
    if name is not None:
        return str(name)
    nid = getattr(obj, "id", None)
    return f"node{nid}" if nid is not None else type(obj).__name__


class Link:
    """One unidirectional data channel plus its control channels."""

    __slots__ = (
        "sim",
        "name",
        "bandwidth",
        "delay",
        "jitter",
        "rng",
        "tx",
        "rx",
        "busy_until",
        "in_flight",
        "bytes_sent",
        "packets_sent",
        "bytes_received",
        "packets_received",
        "up",
        "drop_prob",
        "fault_rng",
        "bytes_dropped",
        "packets_dropped",
        "on_drop",
        "_wire",
        "_doomed",
        "_base",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth: float,
        delay: float,
        jitter: float = 0.0,
        rng: Any = None,
    ) -> None:
        """``jitter`` stretches each serialisation by a uniform factor in
        ``[0, jitter)`` (seeded ``rng`` required when non-zero).

        With every link and crossbar clocked at exact multiples of the
        819.2 ns MTU time, an event-driven packet-grain model can lock
        into pathological phase alignments (an input port busy at the
        exact instants an output frees, forever).  Real fabrics never
        sustain such alignment — every device runs its own oscillator
        and queueing noise decorrelates phases.  A fraction of a percent
        of seeded serialisation jitter restores that asynchrony at
        negligible bandwidth cost (DESIGN.md §5)."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if jitter < 0 or jitter >= 0.5:
            raise ValueError(f"jitter must be in [0, 0.5), got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires a seeded rng")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.delay = float(delay)
        self.jitter = float(jitter)
        self.rng = rng
        self.tx: Any = None
        self.rx: Any = None
        self.busy_until = 0.0
        self.in_flight: Optional[Packet] = None
        self.bytes_sent = 0
        self.packets_sent = 0
        #: delivered-side counters; sent minus received minus dropped is
        #: exactly the wire-resident traffic (reserved downstream, not
        #: yet arrived), which the invariant guard balances against
        #: buffer accounting.
        self.bytes_received = 0
        self.packets_received = 0
        #: operational state (fault injection); a down link refuses new
        #: sends and dooms its in-flight packets.
        self.up = True
        #: per-packet corruption-drop probability while degraded.
        self.drop_prob = 0.0
        self.fault_rng: Any = None
        #: expected-loss ledger terms (guard conservation).
        self.bytes_dropped = 0
        self.packets_dropped = 0
        #: ``hook(link, pkt, kind)`` observer, called on every fault
        #: drop before the packet returns to the pool.
        self.on_drop: Any = None
        #: packets between send and delivery; ``None`` until a fault
        #: injector arms the fabric (the fault-free fast path).
        self._wire: Optional[set] = None
        #: in-flight packets condemned by :meth:`fail`, intercepted at
        #: their (non-cancellable) delivery event.
        self._doomed: Optional[set] = None
        #: pristine ``(bandwidth, delay)`` while a degrade is active.
        self._base: Optional[tuple] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(self, tx: Any, rx: Any) -> None:
        """Attach the transmitter and receiver endpoints."""
        self.tx = tx
        self.rx = rx

    def _context(self) -> str:
        """Error-message suffix: endpoints + current simulated time."""
        return (
            f" (tx={_end_name(self.tx)}, rx={_end_name(self.rx)}, "
            f"t={self.sim.now})"
        )

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self.sim.now >= self.busy_until

    def can_send(self, pkt: Packet) -> bool:
        """True when ``pkt`` could start transmission right now."""
        return self.up and self.idle and self.rx.can_accept(pkt)

    def serialization_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def send(self, pkt: Packet) -> float:
        """Start transmitting ``pkt``.

        Reserves downstream buffer space immediately (the credit is
        consumed), occupies the wire for ``size/bandwidth``, then
        delivers after the propagation delay.  Returns the
        serialisation-complete time (when the transmitter frees up).
        """
        if not self.up:
            raise LinkError(f"{self.name}: send on a failed link{self._context()}")
        if not self.idle:
            raise LinkError(
                f"{self.name}: send while busy until "
                f"{self.busy_until}{self._context()}"
            )
        if not self.rx.can_accept(pkt):
            raise LinkError(
                f"{self.name}: send without downstream space for "
                f"{pkt!r}{self._context()}"
            )
        self.rx.reserve(pkt)
        ser = pkt.size / self.bandwidth
        if self.jitter > 0.0:
            ser *= 1.0 + self.rng.random() * self.jitter
        done = self.sim.now + ser
        self.busy_until = done
        self.in_flight = pkt
        self.bytes_sent += pkt.size
        self.packets_sent += 1
        if self._wire is not None:
            self._wire.add(pkt)
        # One chained queue entry covers the whole wire lifetime of the
        # packet: serialisation-done at ``done``, delivery one
        # propagation delay later.  Both sequence numbers are reserved
        # here, so ordering is bit-identical to two separate schedules
        # while halving the busiest path's queue traffic.
        self.sim.schedule_pair(done, self._tx_done, (), done + self.delay, self._deliver, (pkt,))
        return done

    def _tx_done(self) -> None:
        self.in_flight = None
        if self.tx is not None:
            self.tx.on_tx_done(self)

    def _deliver(self, pkt: Packet) -> None:
        wire = self._wire
        if wire is not None:
            wire.discard(pkt)
            doomed = self._doomed
            if doomed is not None and pkt in doomed:
                doomed.discard(pkt)
                self._drop(pkt, "fault-drop")
                return
            if self.drop_prob > 0.0 and self.fault_rng.random() < self.drop_prob:
                self._drop(pkt, "fault-corrupt")
                return
        pkt.hops += 1
        self.bytes_received += pkt.size
        self.packets_received += 1
        self.rx.receive_packet(pkt, self)

    def _drop(self, pkt: Packet, kind: str) -> None:
        """Drop an in-flight packet (link failure or corruption):
        reconcile the credit the send consumed — cancel the downstream
        reservation and return the credit the normal delivery path
        would eventually have produced — then record the loss in the
        expected-loss ledger and recycle the packet."""
        self.bytes_dropped += pkt.size
        self.packets_dropped += 1
        cancel = getattr(self.rx, "cancel_reservation", None)
        if cancel is not None:
            cancel(pkt)
        self.return_credit(pkt.size)
        hook = self.on_drop
        if hook is not None:
            hook(self, pkt, kind)
        free_packet(pkt)

    # ------------------------------------------------------------------
    # fault state machine
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the link down: refuse new sends and doom every packet
        currently between send and delivery (their non-cancellable
        delivery events are intercepted in :meth:`_deliver`).  The
        serialisation-done event still fires so the transmitter frees
        up normally.  Requires an armed fabric (``_wire`` tracking)."""
        if not self.up:
            return
        self.up = False
        wire = self._wire
        if wire:
            if self._doomed is None:
                self._doomed = set(wire)
            else:
                self._doomed.update(wire)

    def restore(self) -> None:
        """Bring the link back up and wake the transmitter.  Packets
        doomed while the link was down stay doomed — they were on a
        dead wire."""
        if self.up:
            return
        self.up = True
        if self.tx is not None:
            self.tx.on_credit(self)

    def degrade(
        self,
        *,
        bandwidth_factor: float = 1.0,
        extra_delay: float = 0.0,
        drop_prob: float = 0.0,
        rng: Any = None,
    ) -> None:
        """Degrade the link in place (CRC-retry model): scale bandwidth,
        add propagation delay and/or drop packets with ``drop_prob``
        (seeded ``rng`` required).  Repeated calls re-derive from the
        pristine parameters; :meth:`clear_degrade` restores them."""
        if bandwidth_factor <= 0:
            raise ValueError(
                f"bandwidth_factor must be positive, got {bandwidth_factor}"
            )
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        if drop_prob > 0.0 and rng is None:
            raise ValueError("drop_prob requires a seeded rng")
        if self._base is None:
            self._base = (self.bandwidth, self.delay)
        base_bandwidth, base_delay = self._base
        self.bandwidth = base_bandwidth * bandwidth_factor
        self.delay = base_delay + extra_delay
        self.drop_prob = float(drop_prob)
        if rng is not None:
            self.fault_rng = rng

    def clear_degrade(self) -> None:
        """Undo :meth:`degrade`: restore pristine bandwidth/delay and
        stop corrupting packets."""
        if self._base is not None:
            self.bandwidth, self.delay = self._base
            self._base = None
        self.drop_prob = 0.0

    # ------------------------------------------------------------------
    # credits (reverse channel)
    # ------------------------------------------------------------------
    def return_credit(self, nbytes: int) -> None:
        """Called by the *receiver* when bytes leave its buffer; wakes
        the transmitter after the credit-return wire delay."""
        if nbytes <= 0:
            raise LinkError(
                f"{self.name}: non-positive credit {nbytes}{self._context()}"
            )
        self.sim.post(self.sim.now + self.delay, self._credit_arrive)

    def _credit_arrive(self) -> None:
        if self.tx is not None:
            self.tx.on_credit(self)

    # ------------------------------------------------------------------
    # control channels
    # ------------------------------------------------------------------
    def send_control(self, msg: ControlMessage) -> None:
        """Forward-direction control (follows the data): e.g. BECN hops.

        Control channels stay available while the data path is down —
        the out-of-band network keeps Stop/Go and CFQ state coherent
        through data-link faults (docs/faults.md)."""
        self.sim.post(
            self.sim.now + self.delay + CONTROL_HOP_DELAY, self._deliver_control, msg
        )

    def _deliver_control(self, msg: ControlMessage) -> None:
        self.rx.receive_control(msg, self)

    def send_reverse_control(self, msg: ControlMessage) -> None:
        """Reverse-direction control (against the data): CFQ
        Alloc/Dealloc/Stop/Go congestion propagation."""
        self.sim.post(
            self.sim.now + self.delay + CONTROL_HOP_DELAY,
            self._deliver_reverse_control,
            msg,
        )

    def _deliver_reverse_control(self, msg: ControlMessage) -> None:
        self.tx.receive_reverse_control(msg, self)

    # ------------------------------------------------------------------
    # extensions
    # ------------------------------------------------------------------
    def set_bandwidth(self, bandwidth: float) -> None:
        """Re-scale the link speed (takes effect for the next packet)."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = float(bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.bandwidth}B/ns busy_until={self.busy_until}>"
