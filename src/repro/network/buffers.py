"""Input-port RAM: shared buffer pool and packet queues.

The evaluated switches are input-queued with one RAM per input port
("Memory Size 64 KBytes", Table I), *dynamically organised in queues*
(§III-A).  We model that RAM as a :class:`BufferPool` with byte-exact
accounting, and each logical queue (NFQ, CFQ, VOQ, …) as a
:class:`PacketQueue` drawing from the pool.

The pool is the unit of credit-based link-level flow control: the
upstream transmitter holds credits equal to the pool's free bytes, so
the pool can never overflow — an invariant the test-suite checks both
directly and via hypothesis.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.network.packet import Packet

__all__ = ["BufferPool", "PacketQueue", "BufferError"]


class BufferError(RuntimeError):
    """Raised when buffer accounting would be violated (a sim bug:
    lossless flow control must make overflow impossible)."""


class BufferPool:
    """Byte-accounted shared RAM of one input port.

    ``reserve``/``release`` are called by the owning port as packets
    enter and leave.  Queues moving a packet among themselves (the CCFIT
    post-processing NFQ→CFQ move) do not touch the pool: the packet
    stays in the same RAM.
    """

    __slots__ = ("capacity", "used")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"pool capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def reserve(self, nbytes: int) -> None:
        """Account ``nbytes`` as occupied.  Raises on overflow."""
        if nbytes < 0:
            raise BufferError(f"negative reserve {nbytes}")
        if self.used + nbytes > self.capacity:
            raise BufferError(
                f"pool overflow: used={self.used} + {nbytes} > cap={self.capacity}"
            )
        self.used += nbytes

    def release(self, nbytes: int) -> None:
        """Account ``nbytes`` as freed.  Raises on underflow."""
        if nbytes < 0:
            raise BufferError(f"negative release {nbytes}")
        if nbytes > self.used:
            raise BufferError(
                f"pool underflow: releasing {nbytes} with only {self.used} used"
            )
        self.used -= nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BufferPool {self.used}/{self.capacity}B>"


class PacketQueue:
    """FIFO of packets with byte and packet occupancy counters.

    A queue optionally enforces its own byte cap (``max_bytes``) on top
    of the shared pool — used by VOQnet, whose fixed per-destination
    queues each get ``memory/num_destinations`` bytes.
    """

    __slots__ = ("name", "max_bytes", "_q", "bytes", "dest_bytes")

    def __init__(
        self, name: str, max_bytes: Optional[int] = None, track_dests: bool = False
    ) -> None:
        self.name = name
        self.max_bytes = max_bytes
        self._q: Deque[Packet] = deque()
        self.bytes = 0
        #: per-destination byte occupancy, maintained incrementally when
        #: ``track_dests`` — the congestion-detection logic needs it on
        #: every queue mutation, so scanning would be O(n) per event.
        self.dest_bytes: Optional[dict[int, int]] = {} if track_dests else None

    # -- state ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._q)

    @property
    def empty(self) -> bool:
        return not self._q

    def fits(self, nbytes: int) -> bool:
        """Would a packet of ``nbytes`` respect this queue's own cap?"""
        return self.max_bytes is None or self.bytes + nbytes <= self.max_bytes

    # -- mutation ------------------------------------------------------
    def push(self, pkt: Packet) -> None:
        if not self.fits(pkt.size):
            raise BufferError(
                f"queue {self.name} overflow: {self.bytes}+{pkt.size} > {self.max_bytes}"
            )
        self._q.append(pkt)
        self.bytes += pkt.size
        if self.dest_bytes is not None:
            self.dest_bytes[pkt.dst] = self.dest_bytes.get(pkt.dst, 0) + pkt.size

    def push_front(self, pkt: Packet) -> None:
        """Re-insert at the head (used only by unit tests and rollback)."""
        if not self.fits(pkt.size):
            raise BufferError(f"queue {self.name} overflow on push_front")
        self._q.appendleft(pkt)
        self.bytes += pkt.size
        if self.dest_bytes is not None:
            self.dest_bytes[pkt.dst] = self.dest_bytes.get(pkt.dst, 0) + pkt.size

    def pop(self) -> Packet:
        if not self._q:
            raise BufferError(f"pop from empty queue {self.name}")
        pkt = self._q.popleft()
        self.bytes -= pkt.size
        if self.dest_bytes is not None:
            left = self.dest_bytes[pkt.dst] - pkt.size
            if left:
                self.dest_bytes[pkt.dst] = left
            else:
                del self.dest_bytes[pkt.dst]
        return pkt

    def head(self) -> Optional[Packet]:
        return self._q[0] if self._q else None

    # -- validation hook ----------------------------------------------
    def audit(self) -> None:
        """Recompute the incremental counters from the queue contents
        and raise :class:`BufferError` on any drift (invariant-guard
        hook; O(n), never called on the default fast path)."""
        actual = sum(p.size for p in self._q)
        if actual != self.bytes:
            raise BufferError(
                f"queue {self.name}: byte counter {self.bytes} != contents {actual}"
            )
        if self.dest_bytes is not None:
            per_dest: dict[int, int] = {}
            for p in self._q:
                per_dest[p.dst] = per_dest.get(p.dst, 0) + p.size
            if per_dest != self.dest_bytes:
                raise BufferError(
                    f"queue {self.name}: dest_bytes {self.dest_bytes} != contents {per_dest}"
                )
        if self.max_bytes is not None and self.bytes > self.max_bytes:
            raise BufferError(
                f"queue {self.name}: {self.bytes}B exceeds cap {self.max_bytes}B"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Q {self.name} n={len(self._q)} {self.bytes}B>"
