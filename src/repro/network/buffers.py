"""Input-port RAM: buffer pools, packet queues and buffer models.

The evaluated switches are input-queued with one RAM per input port
("Memory Size 64 KBytes", Table I), *dynamically organised in queues*
(§III-A).  We model that RAM as a :class:`BufferPool` with byte-exact
accounting, and each logical queue (NFQ, CFQ, VOQ, …) as a
:class:`PacketQueue` drawing from the pool.

The pool is the unit of credit-based link-level flow control: the
upstream transmitter holds credits equal to the pool's free bytes, so
the pool can never overflow — an invariant the test-suite checks both
directly and via hypothesis.

**Buffer models** (docs/buffers.md) decide how a whole switch's RAM is
carved up.  The paper's architecture — and the default — is the
``static`` model: every input port owns its private Table-I pool, and
admission is exactly the pool-free check above.  The ``shared`` model
instead arbitrates *one* switch-wide pool the datacenter way (the
SONiC shared-headroom-pool design): per-(port, priority) reserved
minimums, a dynamic threshold ``alpha * free`` on the shared space,
and a PFC headroom account that absorbs the in-flight bytes arriving
between an XOFF decision and the upstream honouring the PAUSE.  Models
register through :func:`register_buffer_model` — mirroring the scheme
(:func:`repro.core.ccfit.register_scheme`) and routing
(:func:`repro.network.routing.register_policy`) registries — so the
fabric builder, CLI and sweep engine discover them by name.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.network.packet import Packet, PfcPause, PfcResume

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.switch import InputPort, Switch

__all__ = [
    "BufferPool",
    "PacketQueue",
    "BufferError",
    "BufferModel",
    "StaticBufferModel",
    "SharedBufferModel",
    "BufferModelSpec",
    "register_buffer_model",
    "get_buffer_model",
    "buffer_model_names",
    "BUFFER_MODELS",
]


class BufferError(RuntimeError):
    """Raised when buffer accounting would be violated (a sim bug:
    lossless flow control must make overflow impossible)."""


class BufferPool:
    """Byte-accounted shared RAM of one input port.

    ``reserve``/``release`` are called by the owning port as packets
    enter and leave.  Queues moving a packet among themselves (the CCFIT
    post-processing NFQ→CFQ move) do not touch the pool: the packet
    stays in the same RAM.
    """

    __slots__ = ("capacity", "used")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"pool capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def reserve(self, nbytes: int) -> None:
        """Account ``nbytes`` as occupied.  Raises on overflow."""
        if nbytes < 0:
            raise BufferError(f"negative reserve {nbytes}")
        if self.used + nbytes > self.capacity:
            raise BufferError(
                f"pool overflow: used={self.used} + {nbytes} > cap={self.capacity}"
            )
        self.used += nbytes

    def release(self, nbytes: int) -> None:
        """Account ``nbytes`` as freed.  Raises on underflow."""
        if nbytes < 0:
            raise BufferError(f"negative release {nbytes}")
        if nbytes > self.used:
            raise BufferError(
                f"pool underflow: releasing {nbytes} with only {self.used} used"
            )
        self.used -= nbytes

    # -- introspection hooks (guard / telemetry / watchdog dumps) -------
    def snapshot(self) -> Dict[str, int]:
        """JSON-safe occupancy dump, same shape every fabric component
        exposes (used/capacity/free)."""
        return {"used": self.used, "capacity": self.capacity, "free": self.free}

    def audit(self) -> None:
        """Invariant-guard hook: the counters must describe a physical
        RAM — ``0 <= used <= capacity``.  (Drift against queue contents
        is the owning device's cross-check; the pool itself only knows
        bytes.)"""
        if not 0 <= self.used <= self.capacity:
            raise BufferError(
                f"pool accounting corrupt: used={self.used} outside "
                f"[0, {self.capacity}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BufferPool {self.used}/{self.capacity}B>"


class PacketQueue:
    """FIFO of packets with byte and packet occupancy counters.

    A queue optionally enforces its own byte cap (``max_bytes``) on top
    of the shared pool — used by VOQnet, whose fixed per-destination
    queues each get ``memory/num_destinations`` bytes.
    """

    __slots__ = ("name", "max_bytes", "_q", "bytes", "dest_bytes")

    def __init__(
        self, name: str, max_bytes: Optional[int] = None, track_dests: bool = False
    ) -> None:
        self.name = name
        self.max_bytes = max_bytes
        self._q: Deque[Packet] = deque()
        self.bytes = 0
        #: per-destination byte occupancy, maintained incrementally when
        #: ``track_dests`` — the congestion-detection logic needs it on
        #: every queue mutation, so scanning would be O(n) per event.
        self.dest_bytes: Optional[dict[int, int]] = {} if track_dests else None

    # -- state ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._q)

    @property
    def empty(self) -> bool:
        return not self._q

    def fits(self, nbytes: int) -> bool:
        """Would a packet of ``nbytes`` respect this queue's own cap?"""
        return self.max_bytes is None or self.bytes + nbytes <= self.max_bytes

    # -- mutation ------------------------------------------------------
    def _admit(self, pkt: Packet, where: str) -> None:
        """Shared admission accounting for :meth:`push`/:meth:`push_front`
        (cap check + byte and per-destination counters)."""
        if not self.fits(pkt.size):
            raise BufferError(
                f"queue {self.name} overflow on {where}: "
                f"{self.bytes}+{pkt.size} > {self.max_bytes}"
            )
        self.bytes += pkt.size
        if self.dest_bytes is not None:
            self.dest_bytes[pkt.dst] = self.dest_bytes.get(pkt.dst, 0) + pkt.size

    def push(self, pkt: Packet) -> None:
        self._admit(pkt, "push")
        self._q.append(pkt)

    def push_front(self, pkt: Packet) -> None:
        """Re-insert at the head (used only by unit tests and rollback)."""
        self._admit(pkt, "push_front")
        self._q.appendleft(pkt)

    def pop(self) -> Packet:
        if not self._q:
            raise BufferError(f"pop from empty queue {self.name}")
        pkt = self._q.popleft()
        self.bytes -= pkt.size
        if self.dest_bytes is not None:
            left = self.dest_bytes[pkt.dst] - pkt.size
            if left:
                self.dest_bytes[pkt.dst] = left
            else:
                del self.dest_bytes[pkt.dst]
        return pkt

    def head(self) -> Optional[Packet]:
        return self._q[0] if self._q else None

    # -- validation hook ----------------------------------------------
    def audit(self) -> None:
        """Recompute the incremental counters from the queue contents
        and raise :class:`BufferError` on any drift (invariant-guard
        hook; O(n), never called on the default fast path)."""
        actual = sum(p.size for p in self._q)
        if actual != self.bytes:
            raise BufferError(
                f"queue {self.name}: byte counter {self.bytes} != contents {actual}"
            )
        if self.dest_bytes is not None:
            per_dest: dict[int, int] = {}
            for p in self._q:
                per_dest[p.dst] = per_dest.get(p.dst, 0) + p.size
            if per_dest != self.dest_bytes:
                raise BufferError(
                    f"queue {self.name}: dest_bytes {self.dest_bytes} != contents {per_dest}"
                )
        if self.max_bytes is not None and self.bytes > self.max_bytes:
            raise BufferError(
                f"queue {self.name}: {self.bytes}B exceeds cap {self.max_bytes}B"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Q {self.name} n={len(self._q)} {self.bytes}B>"


# ======================================================================
# buffer models: how one switch's RAM is carved up (docs/buffers.md)
# ======================================================================
class BufferModel:
    """Switch-wide buffer arbitration policy.

    One instance is built per :class:`~repro.network.switch.Switch`
    (``spec.build(switch)``) right after its ports exist and *before*
    the queue schemes, so schemes see the final pool capacities.  The
    base class is the identity — :meth:`attach` leaves every port on
    its private Table-I pool and the default admission methods — which
    is exactly the ``static`` model, so the hot path of the golden
    configurations never pays for the abstraction.

    A model that changes admission shadows the port's
    ``can_accept``/``reserve``/``cancel_reservation``/``release_packet``
    methods per instance (the same idiom ``Switch.__init__`` uses for
    ``port.route``), keeping the device layer free of per-packet
    branches on the model kind.
    """

    name = "static"

    def __init__(self, switch: "Switch") -> None:
        self.switch = switch

    def attach(self) -> None:
        """Install the model on the switch's ports (no-op for static)."""

    def stats(self) -> Dict[str, float]:
        """Aggregate counters for :meth:`Fabric.stats`; static returns
        nothing so healthy stats dicts keep their seed bytes."""
        return {}

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for watchdog dumps."""
        return {"model": self.name}

    def audit(self) -> None:
        """Invariant-guard hook; the static model has no state to drift."""


class StaticBufferModel(BufferModel):
    """The paper's per-port statically partitioned RAM (Table I) — the
    golden reference and the default.  Everything stays on the
    :class:`BufferPool` fast path."""


class SharedBufferModel(BufferModel):
    """One switch-wide pool with dynamic thresholds and PFC headroom.

    Follows the SONiC/Broadcom shared-headroom-pool design:

    * the switch RAM (``memory_size`` x num_ports) splits into a
      *reserved* region (``shared_reserved`` bytes guaranteed to every
      (port, priority) group), a *headroom* pool (``pfc_headroom`` x
      num_ports, shared by all PGs), and the remaining *shared* space;
    * a PG may draw shared bytes up to the dynamic threshold
      ``alpha * free_shared`` (``shared_alpha``);
    * when a PG can no longer admit one MTU it turns XOFF: a
      :class:`~repro.network.packet.PfcPause` travels up the ingress
      link and bytes arriving before the upstream honours it charge the
      headroom pool;
    * the PG turns XON (:class:`~repro.network.packet.PfcResume`) once
      its headroom bytes drained and its shared occupancy fell below
      ``pfc_xon_fraction`` of the dynamic threshold.  An *empty* PG
      always satisfies both, so XOFF can never deadlock — the property
      the hypothesis suite drives.

    Per-port pools stay, re-sized to the switch total, so per-port byte
    accounting (and the guard's credit-conservation check) is unchanged;
    the model enforces the real capacity split on top.
    """

    name = "shared"

    def __init__(self, switch: "Switch") -> None:
        super().__init__(switch)
        params = switch.params
        n = switch.num_ports
        self.nprios: int = getattr(params, "pfc_priorities", 4)
        self.alpha: float = getattr(params, "shared_alpha", 2.0)
        self.xon_fraction: float = getattr(params, "pfc_xon_fraction", 0.5)
        self.mtu: int = params.mtu
        self.total: int = params.memory_size * n
        self.reserved_min: int = getattr(params, "shared_reserved", params.mtu)
        self.headroom_capacity: int = getattr(params, "pfc_headroom", 2 * params.mtu) * n
        reserved_total = self.reserved_min * n * self.nprios
        self.shared_capacity: int = self.total - self.headroom_capacity - reserved_total
        if self.shared_capacity < params.mtu:
            raise ValueError(
                f"{switch.name}: shared buffer model leaves {self.shared_capacity}B "
                f"of shared space (total={self.total}B - headroom="
                f"{self.headroom_capacity}B - reserved={reserved_total}B); "
                f"lower shared_reserved/pfc_headroom or raise memory_size"
            )
        # per-(port, priority-group) byte decomposition: used = base
        # (inside the reserved minimum) + shared + headroom.
        self._base: List[List[int]] = [[0] * self.nprios for _ in range(n)]
        self._shared: List[List[int]] = [[0] * self.nprios for _ in range(n)]
        self._head: List[List[int]] = [[0] * self.nprios for _ in range(n)]
        self._paused: List[List[bool]] = [[False] * self.nprios for _ in range(n)]
        self.shared_used = 0
        self.headroom_used = 0
        # evaluation counters (the PAUSE-storm metrics).
        self.pauses_sent = 0
        self.resumes_sent = 0
        self.headroom_peak = 0
        self.shared_peak = 0

    # -- wiring ---------------------------------------------------------
    def attach(self) -> None:
        for port in self.switch.input_ports:
            port.pool = BufferPool(self.total)
            self._install_hooks(port)

    def _install_hooks(self, port: "InputPort") -> None:
        model = self
        nprios = self.nprios

        def can_accept(pkt: Packet) -> bool:
            return model.admissible(
                port.index, pkt.dst % nprios, pkt.size
            ) and port.scheme.can_accept_extra(pkt)

        def reserve(pkt: Packet) -> None:
            model.reserve_bytes(port, pkt)
            port.scheme.reserve_extra(pkt)

        def cancel_reservation(pkt: Packet) -> None:
            model.release_bytes(port, pkt)
            port.scheme.cancel_extra(pkt)

        def release_packet(pkt: Packet) -> None:
            model.release_bytes(port, pkt)

        port.can_accept = can_accept
        port.reserve = reserve
        port.cancel_reservation = cancel_reservation
        port.release_packet = release_packet

    # -- admission ------------------------------------------------------
    def priority(self, pkt: Packet) -> int:
        """Priority group of a packet (destination-hashed, like DBBM's
        bucket map — a stand-in for the DSCP/TC field real headers
        carry)."""
        return pkt.dst % self.nprios

    def _shared_delta(self, p: int, g: int, size: int) -> int:
        """Bytes of ``size`` that must come out of the shared space
        after the PG's reserved minimum absorbed what it can."""
        headroom_in_reserve = self.reserved_min - self._base[p][g]
        if headroom_in_reserve >= size:
            return 0
        return size - max(0, headroom_in_reserve)

    def _fits_unpaused(self, p: int, g: int, size: int) -> bool:
        """Would ``size`` bytes be admitted to PG (p, g) under the
        dynamic threshold (ignoring any PAUSE state)?"""
        delta = self._shared_delta(p, g, size)
        if delta == 0:
            return True
        free = self.shared_capacity - self.shared_used
        if delta > free:
            return False
        return self._shared[p][g] + delta <= self.alpha * (free - delta)

    def admissible(self, p: int, g: int, size: int) -> bool:
        """May ``size`` bytes enter priority group ``g`` of port ``p``?
        A paused PG only admits into the headroom pool (the in-flight
        window); an unpaused PG admits into its reserve, then the
        shared space under the ``alpha * free`` threshold."""
        if self._paused[p][g]:
            return self.headroom_used + size <= self.headroom_capacity
        return self._fits_unpaused(p, g, size)

    def reserve_bytes(self, port: "InputPort", pkt: Packet) -> None:
        p, g, size = port.index, pkt.dst % self.nprios, pkt.size
        port.pool.reserve(size)
        if self._paused[p][g]:
            # XOFF already sent: these bytes were in flight when the
            # threshold crossed — they land in the headroom account.
            self._head[p][g] += size
            self.headroom_used += size
            if self.headroom_used > self.headroom_peak:
                self.headroom_peak = self.headroom_used
            if self.headroom_used > self.headroom_capacity:
                raise BufferError(
                    f"{port.name}: PFC headroom overflow — "
                    f"{self.headroom_used}B > {self.headroom_capacity}B"
                )
            return
        take_base = min(size, self.reserved_min - self._base[p][g])
        if take_base > 0:
            self._base[p][g] += take_base
        delta = size - max(0, take_base)
        if delta > 0:
            self._shared[p][g] += delta
            self.shared_used += delta
            if self.shared_used > self.shared_peak:
                self.shared_peak = self.shared_used
            if self.shared_used > self.shared_capacity:
                raise BufferError(
                    f"{port.name}: shared pool overflow — "
                    f"{self.shared_used}B > {self.shared_capacity}B"
                )
        # XOFF threshold: the PG can no longer absorb one more MTU
        # without headroom, so tell the upstream to stop this priority.
        if not self._fits_unpaused(p, g, self.mtu):
            self._paused[p][g] = True
            self.pauses_sent += 1
            port.send_upstream(PfcPause(g))

    def release_bytes(self, port: "InputPort", pkt: Packet) -> None:
        p, g, size = port.index, pkt.dst % self.nprios, pkt.size
        port.pool.release(size)
        # Drain LIFO against the admission order: headroom first (the
        # newest bytes), then shared, then the reserved base.
        take = min(size, self._head[p][g])
        if take > 0:
            self._head[p][g] -= take
            self.headroom_used -= take
            size -= take
        take = min(size, self._shared[p][g])
        if take > 0:
            self._shared[p][g] -= take
            self.shared_used -= take
            size -= take
        if size > 0:
            if size > self._base[p][g]:
                raise BufferError(
                    f"{port.name}: shared-model underflow — releasing "
                    f"{size}B beyond PG{g}'s {self._base[p][g]}B base"
                )
            self._base[p][g] -= size
        # XON: all in-flight headroom bytes drained and the PG's shared
        # occupancy fell below the hysteresis fraction of the dynamic
        # threshold.  An empty PG trivially satisfies both, so a paused
        # PG that drains completely always resumes (no XOFF deadlock).
        if (
            self._paused[p][g]
            and self._head[p][g] == 0
            and self._shared[p][g]
            <= self.xon_fraction
            * self.alpha
            * (self.shared_capacity - self.shared_used)
        ):
            self._paused[p][g] = False
            self.resumes_sent += 1
            port.send_upstream(PfcResume(g))

    # -- introspection ---------------------------------------------------
    def pg_used(self, p: int, g: int) -> int:
        """Bytes held by priority group ``g`` of port ``p``."""
        return self._base[p][g] + self._shared[p][g] + self._head[p][g]

    def paused_pairs(self) -> List[Tuple[int, int]]:
        return [
            (p, g)
            for p, row in enumerate(self._paused)
            for g, paused in enumerate(row)
            if paused
        ]

    def stats(self) -> Dict[str, float]:
        return {
            "pfc_pauses_sent": float(self.pauses_sent),
            "pfc_resumes_sent": float(self.resumes_sent),
            "pfc_headroom_peak": float(self.headroom_peak),
            "shared_pool_peak": float(self.shared_peak),
        }

    def snapshot(self) -> Dict[str, object]:
        return {
            "model": self.name,
            "shared_used": self.shared_used,
            "shared_capacity": self.shared_capacity,
            "headroom_used": self.headroom_used,
            "headroom_capacity": self.headroom_capacity,
            "paused": [f"p{p}.pg{g}" for p, g in self.paused_pairs()],
            "pauses_sent": self.pauses_sent,
            "resumes_sent": self.resumes_sent,
        }

    def audit(self) -> None:
        """Shared-pool conservation: the PG decomposition must re-sum to
        every pool/account counter, caps must hold, and a PG that is
        not paused must hold no headroom bytes."""
        shared_sum = 0
        head_sum = 0
        for p, port in enumerate(self.switch.input_ports):
            port_sum = 0
            for g in range(self.nprios):
                base, shared, head = self._base[p][g], self._shared[p][g], self._head[p][g]
                if base < 0 or shared < 0 or head < 0:
                    raise BufferError(
                        f"{port.name}: negative PG{g} account "
                        f"(base={base}, shared={shared}, headroom={head})"
                    )
                if base > self.reserved_min:
                    raise BufferError(
                        f"{port.name}: PG{g} base {base}B exceeds the "
                        f"reserved minimum {self.reserved_min}B"
                    )
                if head and not self._paused[p][g]:
                    raise BufferError(
                        f"{port.name}: PG{g} holds {head}B of headroom "
                        f"while not paused"
                    )
                port_sum += base + shared + head
                shared_sum += shared
                head_sum += head
            if port_sum != port.pool.used:
                raise BufferError(
                    f"{port.name}: PG accounts sum to {port_sum}B but the "
                    f"pool holds {port.pool.used}B"
                )
        if shared_sum != self.shared_used:
            raise BufferError(
                f"{self.switch.name}: shared_used={self.shared_used}B but "
                f"PG shares sum to {shared_sum}B"
            )
        if head_sum != self.headroom_used:
            raise BufferError(
                f"{self.switch.name}: headroom_used={self.headroom_used}B "
                f"but PG headrooms sum to {head_sum}B"
            )
        if self.shared_used > self.shared_capacity:
            raise BufferError(
                f"{self.switch.name}: shared pool over capacity "
                f"({self.shared_used}B > {self.shared_capacity}B)"
            )
        if self.headroom_used > self.headroom_capacity:
            raise BufferError(
                f"{self.switch.name}: headroom pool over capacity "
                f"({self.headroom_used}B > {self.headroom_capacity}B)"
            )


# ----------------------------------------------------------------------
# the registry (mirrors the scheme / routing-policy registries)
# ----------------------------------------------------------------------
class BufferModelSpec:
    """A named buffer model: ``build(switch)`` returns the per-switch
    model instance.  Register with :func:`register_buffer_model`."""

    __slots__ = ("name", "build", "description")

    def __init__(
        self,
        name: str,
        build: Callable[["Switch"], BufferModel],
        description: str = "",
    ) -> None:
        self.name = name
        self.build = build
        self.description = description


#: the live buffer-model registry (name -> spec), registration order.
BUFFER_MODELS: Dict[str, BufferModelSpec] = {}


def register_buffer_model(spec: BufferModelSpec, *, replace: bool = False) -> BufferModelSpec:
    """Add ``spec`` to the registry; the fabric builder, CLI
    (``--buffer-model``) and sweep engine discover it immediately.
    Raises ``ValueError`` on a duplicate name unless ``replace=True``."""
    if not spec.name:
        raise ValueError("buffer model name must be non-empty")
    if spec.name in BUFFER_MODELS and not replace:
        raise ValueError(
            f"buffer model {spec.name!r} is already registered "
            f"(pass replace=True to shadow it)"
        )
    BUFFER_MODELS[spec.name] = spec
    return spec


def get_buffer_model(name: str) -> BufferModelSpec:
    """Look up a registered buffer model (KeyError with the known names
    on a miss)."""
    try:
        return BUFFER_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown buffer model {name!r}; choose from {sorted(BUFFER_MODELS)}"
        ) from None


def buffer_model_names() -> Tuple[str, ...]:
    """Currently registered buffer-model names, in registration order."""
    return tuple(BUFFER_MODELS)


register_buffer_model(BufferModelSpec(
    "static", StaticBufferModel,
    description="per-port statically partitioned RAM (Table I; the paper)",
))
register_buffer_model(BufferModelSpec(
    "shared", SharedBufferModel,
    description="switch-wide shared pool: alpha*free thresholds + PFC headroom",
))
