"""Interconnection-network substrate.

Everything the paper's simulator models below the congestion-control
layer lives here: packets, lossless credit-based links, input-port
buffer pools and queue schemes, input-queued switches with iSlip
scheduling, end nodes (sinks and Input Adapters), deterministic
table-based routing, and topology builders for the three evaluated
network configurations.
"""

from repro.network.packet import (
    Becn,
    CfqAlloc,
    CfqDealloc,
    CfqGo,
    CfqStop,
    ControlMessage,
    CreditReturn,
    Packet,
)
from repro.network.buffers import BufferPool, PacketQueue
from repro.network.link import Link
from repro.network.topology import Topology, config1_adhoc, k_ary_n_tree
from repro.network.routing import RoutingTable, build_routing

# NOTE: repro.network.fabric is intentionally not imported here — it
# depends on repro.core (scheme presets), which depends back on the
# queue/buffer primitives of this package.  Import it explicitly:
# ``from repro.network.fabric import build_fabric`` (also re-exported
# at the top level as ``repro.build_fabric``).

__all__ = [
    "Packet",
    "ControlMessage",
    "Becn",
    "CfqAlloc",
    "CfqDealloc",
    "CfqStop",
    "CfqGo",
    "CreditReturn",
    "BufferPool",
    "PacketQueue",
    "Link",
    "Topology",
    "config1_adhoc",
    "k_ary_n_tree",
    "RoutingTable",
    "build_routing",
]
