"""End nodes: traffic sink plus the CCFIT Input Adapter (§III-B/D).

One :class:`EndNode` owns both directions of a node's connection:

* **sink side** (receiver of the downlink): consumes packets at link
  rate, timestamps deliveries for the metrics collector, and — the
  forward half of the notification loop — answers every FECN-marked
  packet with a :class:`repro.network.packet.Becn` sent back to the
  packet's source through the switches' prioritised control plane;
* **Input Adapter (IA)** side (transmitter of the uplink), per Fig. 2:

  - one **AdVOQ** per destination absorbs generated traffic without
    injection HoL blocking;
  - an **output stage** models the IA's output buffer.  Its layout
    follows the evaluated scheme: FBICM/CCFIT get the full
    NFQ+CFQs+CAM organisation participating in the congestion-tree
    protocol announced by the first switch; the other schemes use a
    two-MTU staging FIFO (1Q/ITh/VOQsw) or inject straight from the
    AdVOQs (VOQnet, whose admission is per-destination anyway);
  - the **throttling state** (CCT/CCTI/Timer/LTI) gates the RR arbiter
    that moves packets from AdVOQs into the output stage: a packet for
    destination *i* may move only when ``now >= LTI[i] + IRD[i]``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.cam import OutputCamLine
from repro.core.params import CCParams
from repro.core.scheme import InjectionGate
from repro.core.throttling import ThrottleState
from repro.network.buffers import BufferPool, PacketQueue
from repro.network.link import Link
from repro.network.packet import (
    Becn,
    CfqAlloc,
    CfqDealloc,
    CfqGo,
    CfqStop,
    ControlMessage,
    Packet,
    PfcPause,
    PfcResume,
    free_packet,
)
from repro.network.queueing import CongestionControlScheme, OneQScheme
from repro.sim.engine import Simulator

__all__ = ["EndNode", "IaStage"]

#: staging FIFO depth (bytes) for schemes without IA isolation: just a
#: link staging register, so the IA itself is never a HoL point.
FIFO_STAGING_BYTES = 2 * 2048


def _default_stage_factory(
    staging: str,
) -> Callable[["IaStage"], CongestionControlScheme]:
    """Stage scheme for nodes built without an explicit factory
    (back-compat construction outside the fabric builder)."""
    if staging == "isolation":
        from repro.core.isolation import NfqCfqScheme

        return lambda stage: NfqCfqScheme(stage, drive_congestion_state=False)
    return OneQScheme


class IaStage:
    """Host object for the IA output-stage queue scheme.

    Satisfies :class:`repro.core.isolation.IsolationHost` so the exact
    same :class:`NfqCfqScheme` used by switch ports runs at the IA
    ("IA has a CAM with the same behavior as the ones located at
    switches", §III-B).  The stage's single "output port" is the
    injection link, so ``route`` is always 0 (end nodes have a single
    uplink — the switch-side :class:`~repro.network.routing.RoutingPolicy`
    never applies here); there is nothing above the AdVOQs, so
    upstream propagation is a no-op.
    """

    def __init__(self, node: "EndNode", capacity: int) -> None:
        self.node = node
        self.name = f"node{node.id}.ia"
        self.params = node.params
        self.pool = BufferPool(capacity)

    def route(self, pkt: Packet) -> int:
        return 0

    def kick(self) -> None:
        self.node.kick_injection()
        # protocol state changes (Go, deallocation) may release AdVOQ
        # packets the pump was holding back on CAM state
        self.node.pump()

    def now(self) -> float:
        return self.node.sim.now

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        self.node.sim.post_in(delay, fn)

    def send_upstream(self, msg: ControlMessage) -> None:
        pass  # the IA is the top of every congestion tree

    def announced_tree(self, dest: int) -> Optional[OutputCamLine]:
        return self.node._announced.get(dest)

    def root_cfq_hot_changed(self, dest: int, hot: bool) -> None:
        pass  # IAs never FECN-mark (only switch output ports do)

    def set_output_hot(self, out_port: int, source: object, hot: bool) -> None:
        pass


class EndNode:
    """A processing node: sink + Input Adapter.

    Parameters
    ----------
    sim, node_id, num_nodes:
        Engine, this node's id, and the network size (AdVOQ count).
    params:
        CC parameters.
    staging:
        ``"isolation"`` (NFQ+CFQs, FBICM/CCFIT), ``"fifo"`` (two-MTU
        FIFO, 1Q/VOQsw/ITh) or ``"bypass"`` (inject from AdVOQs,
        VOQnet).  Decides the stage RAM size and whether a stage
        exists at all.
    throttling:
        Install the paper's CCT/CCTI source reaction (shorthand for
        ``gate_factory=ThrottleState`` — ITh/CCFIT).
    stage_factory:
        ``f(stage) -> CongestionControlScheme`` building the output
        stage's queue scheme (the spec's ``ia_scheme``); None falls
        back to the staging mode's default.
    gate_factory:
        ``f(sim, params, on_release) -> InjectionGate`` building the
        source-side gate (the spec's ``injection_gate``); overrides
        ``throttling`` when given.
    on_delivery:
        Callback ``f(pkt, now)`` for the metrics collector.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        num_nodes: int,
        params: CCParams,
        staging: str = "fifo",
        throttling: bool = False,
        stage_factory: Optional[
            Callable[["IaStage"], CongestionControlScheme]
        ] = None,
        gate_factory: Optional[Callable[..., InjectionGate]] = None,
        on_delivery: Optional[Callable[[Packet, float], None]] = None,
    ) -> None:
        if staging not in ("isolation", "fifo", "bypass"):
            raise ValueError(f"unknown staging mode {staging!r}")
        self.sim = sim
        self.id = node_id
        self.num_nodes = num_nodes
        self.params = params
        self.staging_mode = staging
        self.on_delivery = on_delivery
        self.uplink: Optional[Link] = None
        self.downlink: Optional[Link] = None

        cap_bytes = params.advoq_cap_packets * params.mtu
        self.advoqs: List[PacketQueue] = [
            PacketQueue(f"node{node_id}.advoq{d}", max_bytes=cap_bytes)
            for d in range(num_nodes)
        ]
        #: destinations with a non-empty AdVOQ (the pump and bypass
        #: arbiters iterate this instead of all ``num_nodes`` queues).
        self._active_dests: set = set()

        self.stage: Optional[IaStage] = None
        self.stage_scheme: Optional[CongestionControlScheme] = None
        if staging == "isolation":
            self.stage = IaStage(self, params.ia_memory_size)
        elif staging == "fifo":
            self.stage = IaStage(self, FIFO_STAGING_BYTES)
        if self.stage is not None:
            if stage_factory is None:
                stage_factory = _default_stage_factory(staging)
            self.stage_scheme = stage_factory(self.stage)

        self.throttle: Optional[InjectionGate] = None
        if gate_factory is not None:
            self.throttle = gate_factory(sim, params, self.pump)
        elif throttling:
            self.throttle = ThrottleState(sim, params, on_release=self.pump)

        self._announced: Dict[int, OutputCamLine] = {}
        #: priority groups the first switch has PFC-paused (shared
        #: buffer model only); the injection arbiters skip matching
        #: packets.  End nodes have one uplink, so the pause is
        #: port-wide — exactly 802.1Qbb at a NIC.
        self.paused_priorities: set = set()
        self._nprios: int = max(1, getattr(params, "pfc_priorities", 4))
        self._stage_inflight: Optional[int] = None
        self._inject_scheduled = False
        self._pump_event = None
        self._pump_ptr = 0
        self._inject_ptr = 0
        self._in_pump = False
        self.packets_generated = 0
        self.packets_injected = 0
        self.packets_delivered = 0
        self.becns_sent = 0
        self.offers_rejected = 0
        #: destinations currently unreachable through live links
        #: (maintained by the fault injector); ``None`` — the
        #: fault-free common case — keeps ``offer`` on one check.
        self.fault_doomed: Optional[set] = None
        #: packets dropped at generation because their destination was
        #: unroutable (part of the guard's expected-loss ledger).
        self.source_drops = 0
        #: ``hook(node, pkt)`` observer, called on every source drop
        #: before the packet returns to the pool.
        self.on_fault_drop: Optional[Callable[["EndNode", Packet], None]] = None

    # ------------------------------------------------------------------
    # traffic generation interface
    # ------------------------------------------------------------------
    def offer(self, pkt: Packet) -> bool:
        """Admit a freshly generated packet into its AdVOQ.

        Returns False (and the generator must retry later) when the
        AdVOQ is full — application backpressure.
        """
        if pkt.dst == self.id:
            raise ValueError(f"node {self.id} generating traffic to itself")
        doomed = self.fault_doomed
        if doomed is not None and pkt.dst in doomed:
            # Unroutable destination (fault injection): degrade to a
            # traced source drop instead of wedging the lossless
            # fabric.  Counted as generated so delivered fraction
            # reflects the loss; True so generators don't retry-spin.
            self.packets_generated += 1
            self.source_drops += 1
            hook = self.on_fault_drop
            if hook is not None:
                hook(self, pkt)
            free_packet(pkt)
            return True
        q = self.advoqs[pkt.dst]
        if not q.fits(pkt.size):
            self.offers_rejected += 1
            return False
        q.push(pkt)
        self._active_dests.add(pkt.dst)
        self.packets_generated += 1
        if self.staging_mode == "bypass":
            self.kick_injection()
        else:
            self.pump()
        return True

    def advoq_backlog(self) -> int:
        """Total bytes waiting in AdVOQs (generation backlog)."""
        return sum(q.bytes for q in self.advoqs)

    # ------------------------------------------------------------------
    # AdVOQ -> output stage mover (Event #8), gated by the IRD
    # ------------------------------------------------------------------
    def pump(self) -> None:
        if self.stage is None or self._in_pump:
            return
        self._in_pump = True
        try:
            self._pump_loop()
        finally:
            self._in_pump = False

    def _pump_loop(self) -> None:
        now = self.sim.now
        earliest_blocked: Optional[float] = None
        progressed = True
        while progressed:
            progressed = False
            if not self._active_dests:
                break
            # RR over the non-empty AdVOQs, starting at the pointer.
            ptr = self._pump_ptr
            order = sorted(self._active_dests, key=lambda d: (d < ptr, d))
            for dest in order:
                q = self.advoqs[dest]
                pkt = q.head()
                if pkt is None:
                    continue
                if self.throttle is not None:
                    allowed = self.throttle.next_allowed(dest)
                    if now < allowed:
                        if earliest_blocked is None or allowed < earliest_blocked:
                            earliest_blocked = allowed
                        continue
                if self.stage_scheme.holds_destination(dest):
                    # §III-D: the arbiter decision consults the staging
                    # scheme (the CAM, for FBICM/CCFIT) — a destination
                    # whose stage CFQ is stopped (or at its Stop level)
                    # stays in its AdVOQ, so congested packets cannot
                    # hog the stage RAM and starve the node's other
                    # flows.  Resumed by the Go/dealloc kicks.
                    continue
                if self.stage.pool.free < pkt.size:
                    # Shared stage RAM full: nothing else fits either.
                    self._schedule_pump(earliest_blocked)
                    return
                q.pop()
                if q.empty:
                    self._active_dests.discard(dest)
                self.stage.pool.reserve(pkt.size)
                if self.throttle is not None:
                    self.throttle.record_injection(dest, now, pkt.size)
                self.stage_scheme.on_arrival(pkt)
                self._pump_ptr = (dest + 1) % self.num_nodes
                progressed = True
        self._schedule_pump(earliest_blocked)

    def _schedule_pump(self, at: Optional[float]) -> None:
        if at is None:
            return
        ev = self._pump_event
        # Only coalesce against an event that is still in the future —
        # a fired event's handle lingers here and must not block
        # scheduling the next IRD wake-up.
        if ev is not None and not ev.cancelled and ev.time > self.sim.now:
            if ev.time <= at:
                return
            ev.cancel()
        self._pump_event = self.sim.schedule(at, self.pump)

    # ------------------------------------------------------------------
    # output stage -> link (the injection arbiter)
    # ------------------------------------------------------------------
    def kick_injection(self) -> None:
        if not self._inject_scheduled:
            self._inject_scheduled = True
            self.sim.post(self.sim.now, self._inject)

    def _inject(self) -> None:
        self._inject_scheduled = False
        link = self.uplink
        if link is None or not link.idle:
            return
        if self.staging_mode == "bypass":
            self._inject_bypass(link)
        else:
            self._inject_staged(link)

    def _inject_staged(self, link: Link) -> None:
        heads = self.stage_scheme.eligible_heads()
        paused = self.paused_priorities
        if paused:
            nprios = self._nprios
            heads = [h for h in heads if (h[2].dst % nprios) not in paused]
        sendable = [(q, pkt) for q, _out, pkt in heads if link.can_send(pkt)]
        if not sendable:
            return
        queue, pkt = sendable[self._inject_ptr % len(sendable)]
        self._inject_ptr += 1
        queue.pop()
        pkt.injected_at = self.sim.now
        self.packets_injected += 1
        self._stage_inflight = pkt.size
        link.send(pkt)
        self.stage_scheme.after_dequeue(queue)

    def _inject_bypass(self, link: Link) -> None:
        ptr = self._inject_ptr
        paused = self.paused_priorities
        for dest in sorted(self._active_dests, key=lambda d: (d < ptr, d)):
            if paused and (dest % self._nprios) in paused:
                continue
            q = self.advoqs[dest]
            pkt = q.head()
            if pkt is None or not link.can_send(pkt):
                continue
            q.pop()
            if q.empty:
                self._active_dests.discard(dest)
            pkt.injected_at = self.sim.now
            self.packets_injected += 1
            link.send(pkt)
            self._inject_ptr = (dest + 1) % self.num_nodes
            return

    # ------------------------------------------------------------------
    # uplink transmitter endpoint
    # ------------------------------------------------------------------
    def on_tx_done(self, link: Link) -> None:
        # The packet left the stage RAM when serialisation finished.
        if self.stage is not None and self._stage_inflight is not None:
            self.stage.pool.release(self._stage_inflight)
            self._stage_inflight = None
            self.pump()
        self.kick_injection()

    def on_credit(self, link: Link) -> None:
        self.kick_injection()

    def receive_reverse_control(self, msg: ControlMessage, link: Link) -> None:
        """Congestion-tree protocol announced by the first switch:
        update the IA's announcement record, then hand the message to
        the stage scheme's ``on_control_message`` hook."""
        if isinstance(msg, CfqAlloc):
            if msg.destination not in self._announced:
                self._announced[msg.destination] = OutputCamLine(msg.destination)
        elif isinstance(msg, CfqStop):
            rec = self._announced.get(msg.destination)
            if rec is not None:
                rec.stopped = True
        elif isinstance(msg, CfqGo):
            rec = self._announced.get(msg.destination)
            if rec is not None:
                rec.stopped = False
        elif isinstance(msg, CfqDealloc):
            self._announced.pop(msg.destination, None)
        elif isinstance(msg, PfcPause):
            self.paused_priorities.add(msg.priority)
        elif isinstance(msg, PfcResume):
            self.paused_priorities.discard(msg.priority)
            self.kick_injection()
        if self.stage_scheme is not None:
            self.stage_scheme.on_control_message(msg)

    # ------------------------------------------------------------------
    # downlink receiver endpoint (the sink)
    # ------------------------------------------------------------------
    def can_accept(self, pkt: Packet) -> bool:
        return True  # the node consumes at link rate

    def reserve(self, pkt: Packet) -> None:
        pass

    def cancel_reservation(self, pkt: Packet) -> None:
        pass  # sinks never hold space, so there is nothing to undo

    def receive_packet(self, pkt: Packet, link: Link) -> None:
        pkt.delivered_at = self.sim.now
        self.packets_delivered += 1
        if pkt.fecn and self.uplink is not None:
            self.becns_sent += 1
            self.uplink.send_control(Becn(self.id, pkt.src, pkt.dst))
        if self.on_delivery is not None:
            self.on_delivery(pkt, self.sim.now)
        # The sink is the end of the line; the collector keeps only
        # scalars, so a pooled packet can be recycled immediately.
        free_packet(pkt)

    def receive_control(self, msg: ControlMessage, link: Link) -> None:
        if isinstance(msg, Becn) and msg.dst == self.id:
            if self.throttle is not None:
                self.throttle.on_becn(msg.congested_destination)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state dump for watchdog diagnostics: AdVOQ backlog,
        stage occupancy, and the throttle table."""
        entry: Dict[str, object] = {
            "node": self.id,
            "generated": self.packets_generated,
            "injected": self.packets_injected,
            "delivered": self.packets_delivered,
            "advoq_backlog": {
                str(d): {"packets": len(q), "bytes": q.bytes}
                for d, q in enumerate(self.advoqs)
                if len(q)
            },
            "stage_inflight": self._stage_inflight,
        }
        if self.source_drops:
            entry["source_drops"] = self.source_drops
        if self.paused_priorities:
            entry["pfc_paused"] = sorted(self.paused_priorities)
        if self.fault_doomed:
            entry["fault_doomed"] = sorted(self.fault_doomed)
        if self.stage is not None:
            entry["stage_pool_used"] = self.stage.pool.used
            entry["stage_pool_capacity"] = self.stage.pool.capacity
            entry["stage_queues"] = self.stage_scheme.snapshot()["queues"]
        if self.throttle is not None:
            entry["ccti"] = self.throttle.snapshot()
        return entry
