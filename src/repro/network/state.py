"""Struct-of-arrays fabric state for the batch kernel.

The event-driven network model keeps its state where it belongs — on
``Switch``/``EndNode``/``Link`` objects — which is ideal for per-event
callbacks but hostile to batch processing: a slot-synchronous sweep
(:class:`~repro.network.arbiter.SlotArbiter`) or a vectorized analysis
pass wants flat parallel arrays it can mask and reduce without touching
a Python object per port.

:class:`FabricState` is that flat mirror: one :meth:`FabricState.capture`
call walks a built :class:`~repro.network.fabric.Fabric` and lifts the
hot per-port and per-link quantities (buffer occupancy, crossbar read
rates, link timers, byte counters, congestion flags) plus the in-flight
packet headers (dst/size/fecn — §III-A: destination is the only routing
information a header needs) into numpy arrays (plain ``array`` module
arrays when numpy is unavailable).  The mirror is a *snapshot*, not a
live view — re-capture per slot; the object graph stays authoritative,
which is what keeps the batch kernel byte-identical to the event
kernels.

The two adapters at the bottom drive the **unmodified** public
congestion-scheme and routing APIs in batches:

* :class:`BatchSchemeAdapter` turns a switch's per-scheme
  ``eligible_heads()`` answers (via ``Switch.collect_requests``) into
  the dense boolean request matrix
  :meth:`~repro.network.arbiter.ISlip.match_matrix` consumes.
* :class:`BatchRoutingAdapter` runs one ``RoutingPolicy.route`` lookup
  per destination in a vector through lightweight header shims, so
  det/ecmp/adaptive/flowlet all work without growing a batch method.

Nothing here mutates simulation state; CCFIT/FBICM/ITh/RCM and every
routing policy run exactly the code the event path runs.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import Fabric
    from repro.network.switch import Switch

__all__ = ["FabricState", "BatchSchemeAdapter", "BatchRoutingAdapter"]


def _f64(values: List[float]):
    """Float64 parallel array: numpy when available, stdlib otherwise."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.float64)
    return array("d", values)


def _i64(values: List[int]):
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


def _u8(values: List[int]):
    if _np is not None:
        return _np.asarray(values, dtype=_np.uint8)
    return array("B", values)


class FabricState:
    """Flat parallel-array snapshot of a fabric's hot state.

    Ports across all switches share one index space (switch-major,
    port-minor): port array index ``p`` belongs to switch
    ``port_switch[p]``, local port ``port_index[p]``.  ``switch_base``
    maps a switch id to its first port slot, so slicing
    ``pool_used[switch_base[s]:switch_base[s] + num_ports[s]]`` yields
    one switch's ports.  In-flight packet headers concatenate every
    link's ``in_flight`` list, link-major, keyed by ``pkt_link``.
    """

    __slots__ = (
        "time",
        # per-port (switch-major) -----------------------------------
        "switch_base",
        "num_ports",
        "port_switch",
        "port_index",
        "pool_used",
        "pool_capacity",
        "active_rate",
        "rr_counter",
        "congested",
        # per-switch shared-buffer accounting (zeros under the static
        # model, which keeps no switch-wide state) ------------------
        "shared_used",
        "headroom_used",
        "paused_pairs",
        # per-link (Fabric.links order) -----------------------------
        "link_bandwidth",
        "link_busy_until",
        "link_bytes_sent",
        "link_packets_sent",
        "link_bytes_received",
        "link_packets_received",
        # in-flight packet headers (link-major) ---------------------
        "pkt_link",
        "pkt_dst",
        "pkt_size",
        "pkt_fecn",
        "pkt_hops",
    )

    def __init__(self, **fields: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @classmethod
    def capture(cls, fabric: "Fabric") -> "FabricState":
        """Snapshot ``fabric`` into parallel arrays at the current time."""
        switch_base: List[int] = []
        num_ports: List[int] = []
        port_switch: List[int] = []
        port_index: List[int] = []
        pool_used: List[int] = []
        pool_capacity: List[int] = []
        active_rate: List[float] = []
        rr_counter: List[int] = []
        congested: List[int] = []
        shared_used: List[int] = []
        headroom_used: List[int] = []
        paused_pairs: List[int] = []
        for s, sw in enumerate(fabric.switches):
            switch_base.append(len(port_switch))
            num_ports.append(sw.num_ports)
            model = sw.buffer_model
            shared_used.append(getattr(model, "shared_used", 0))
            headroom_used.append(getattr(model, "headroom_used", 0))
            paused_pairs.append(
                len(model.paused_pairs()) if hasattr(model, "paused_pairs") else 0
            )
            for port in sw.input_ports:
                port_switch.append(s)
                port_index.append(port.index)
                pool_used.append(port.pool.used)
                pool_capacity.append(port.pool.capacity)
                active_rate.append(port.active_rate)
                rr_counter.append(port.rr_counter)
            for out in sw.output_ports:
                congested.append(1 if out.congested else 0)

        link_bandwidth: List[float] = []
        link_busy_until: List[float] = []
        link_bytes_sent: List[int] = []
        link_packets_sent: List[int] = []
        link_bytes_received: List[int] = []
        link_packets_received: List[int] = []
        pkt_link: List[int] = []
        pkt_dst: List[int] = []
        pkt_size: List[int] = []
        pkt_fecn: List[int] = []
        pkt_hops: List[int] = []
        for li, link in enumerate(fabric.links):
            link_bandwidth.append(link.bandwidth)
            link_busy_until.append(link.busy_until)
            link_bytes_sent.append(link.bytes_sent)
            link_packets_sent.append(link.packets_sent)
            link_bytes_received.append(link.bytes_received)
            link_packets_received.append(link.packets_received)
            pkt = link.in_flight  # at most one packet serialises per link
            if pkt is not None:
                pkt_link.append(li)
                pkt_dst.append(pkt.dst)
                pkt_size.append(pkt.size)
                pkt_fecn.append(1 if pkt.fecn else 0)
                pkt_hops.append(pkt.hops)

        return cls(
            time=fabric.sim.now,
            switch_base=_i64(switch_base),
            num_ports=_i64(num_ports),
            port_switch=_i64(port_switch),
            port_index=_i64(port_index),
            pool_used=_i64(pool_used),
            pool_capacity=_i64(pool_capacity),
            active_rate=_f64(active_rate),
            rr_counter=_i64(rr_counter),
            congested=_u8(congested),
            shared_used=_i64(shared_used),
            headroom_used=_i64(headroom_used),
            paused_pairs=_i64(paused_pairs),
            link_bandwidth=_f64(link_bandwidth),
            link_busy_until=_f64(link_busy_until),
            link_bytes_sent=_i64(link_bytes_sent),
            link_packets_sent=_i64(link_packets_sent),
            link_bytes_received=_i64(link_bytes_received),
            link_packets_received=_i64(link_packets_received),
            pkt_link=_i64(pkt_link),
            pkt_dst=_i64(pkt_dst),
            pkt_size=_i64(pkt_size),
            pkt_fecn=_u8(pkt_fecn),
            pkt_hops=_i64(pkt_hops),
        )

    # -- aggregate views (used by the bench and diagnostics) ------------
    @property
    def num_switch_ports(self) -> int:
        return len(self.port_switch)

    @property
    def in_flight(self) -> int:
        return len(self.pkt_link)

    def total_buffered_bytes(self) -> int:
        return int(sum(self.pool_used))

    def congested_ports(self) -> int:
        return int(sum(self.congested))

    def utilisation(self) -> float:
        """Fraction of total switch buffer capacity currently reserved."""
        cap = int(sum(self.pool_capacity))
        return float(sum(self.pool_used)) / cap if cap else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "time": float(self.time),
            "ports": float(self.num_switch_ports),
            "buffered_bytes": float(self.total_buffered_bytes()),
            "utilisation": self.utilisation(),
            "congested_ports": float(self.congested_ports()),
            "in_flight": float(self.in_flight),
            "bytes_sent": float(sum(self.link_bytes_sent)),
            "shared_used": float(sum(self.shared_used)),
            "headroom_used": float(sum(self.headroom_used)),
            "paused_pairs": float(sum(self.paused_pairs)),
        }


class BatchSchemeAdapter:
    """Dense request-matrix view over one switch's queue schemes.

    Drives the public ``CongestionControlScheme.eligible_heads()`` API
    (through ``Switch.collect_requests``, which also applies link and
    crossbar admission) and exposes the result as the boolean
    ``(num_ports, num_ports)`` matrix
    :meth:`~repro.network.arbiter.ISlip.match_matrix` consumes, keeping
    the ``candidates`` map around for ``Switch.apply_matches``.  The
    schemes themselves — 1Q/4Q8Q/VOQ, ITh, FBICM, CCFIT, RCM — run
    unmodified.
    """

    __slots__ = ("switch", "candidates")

    def __init__(self, switch: "Switch") -> None:
        self.switch = switch
        self.candidates: Dict[Tuple[int, int], List[Any]] = {}

    def request_matrix(self):
        """Collect eligible requests; return the dense bool matrix (or
        None when no port requests, saving the allocation)."""
        requests, candidates = self.switch.collect_requests()
        self.candidates = candidates
        if not requests:
            return None
        n = self.switch.num_ports
        if _np is not None:
            matrix = _np.zeros((n, n), dtype=bool)
            for inp, outs in requests.items():
                matrix[inp, list(outs)] = True
            return matrix
        matrix = [[False] * n for _ in range(n)]
        for inp, outs in requests.items():
            row = matrix[inp]
            for out in outs:
                row[out] = True
        return matrix

    def apply(self, matches: Dict[int, int]) -> bool:
        """Start the matched transmissions (``Switch.apply_matches``)."""
        return self.switch.apply_matches(matches, self.candidates)


class _HeaderShim:
    """Minimal packet stand-in for batched routing lookups.

    Carries exactly the header fields the routing policies read
    (``src``, ``dst``, ``flow``, ``size``) so a routing decision for a
    bare destination vector costs no
    :class:`~repro.network.packet.Packet` allocation.  Mutable ``dst``
    lets one shim serve a whole batch.
    """

    __slots__ = ("src", "dst", "flow", "size")

    def __init__(self) -> None:
        self.src = 0
        self.dst = 0
        self.flow = ""
        self.size = 0


class BatchRoutingAdapter:
    """Vectorized routing lookups through an unmodified policy.

    Wraps one input port's specialised ``route`` callable (installed by
    ``RoutingPolicy.route_for``) and maps a destination vector to an
    output-port vector.  Works with every registered policy —
    det/ecmp/adaptive/flowlet — because each lookup *is* the policy's
    own per-packet decision, just driven in a tight loop over header
    shims instead of one event callback per packet.
    """

    __slots__ = ("port", "_route", "_shim")

    def __init__(self, port: Any) -> None:
        self.port = port
        self._route = port.route
        self._shim = _HeaderShim()

    def route_many(self, dsts, src: int = 0, flow: str = "", size: int = 0):
        """Output port for each destination in ``dsts`` (int64 array)."""
        shim = self._shim
        shim.src = src
        shim.flow = flow
        shim.size = size
        route = self._route
        outs = []
        for dst in dsts:
            shim.dst = int(dst)
            outs.append(route(shim))
        return _i64(outs)
