"""Curve-shape analysis.

The reproduction criterion is *shape*, not absolute numbers (our
substrate is a packet-grain simulator, not the authors' testbed): who
wins, by roughly what factor, where the regime changes.  These helpers
turn bandwidth series into the comparable quantities EXPERIMENTS.md
and the shape tests assert on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "jain_index",
    "series_mean",
    "mean_in_window",
    "oscillation_score",
    "ordering",
    "recovery_time",
]


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly fair, 1/n = maximally unfair.

    ``(sum x)^2 / (n * sum x^2)`` over per-flow bandwidths.  Degenerate
    all-zero inputs return 1.0 (everyone equally starved is "fair").
    """
    x = np.asarray(list(rates), dtype=float)
    if x.size == 0:
        raise ValueError("need at least one rate")
    if np.any(x < 0):
        raise ValueError("rates must be non-negative")
    peak = x.max()
    if peak == 0:
        return 1.0
    x = x / peak  # scale-invariant; avoids under/overflow in the squares
    total = x.sum()
    return float(total**2 / (x.size * np.square(x).sum()))


def series_mean(times: np.ndarray, values: np.ndarray) -> float:
    """Mean of a series (uniform bins)."""
    if len(values) == 0:
        raise ValueError("empty series")
    return float(np.mean(values))


def mean_in_window(
    times: np.ndarray, values: np.ndarray, t0: float, t1: float
) -> float:
    """Mean of the series over bins whose mid-time lies in [t0, t1)."""
    mask = (times >= t0) & (times < t1)
    if not np.any(mask):
        raise ValueError(f"no samples in [{t0}, {t1})")
    return float(np.mean(values[mask]))


def oscillation_score(values: np.ndarray) -> float:
    """Relative sawtooth-iness of a series: mean absolute first
    difference over the series mean.  The "saw-shape" instability the
    paper attributes to ITh (Fig. 8b) shows up as a higher score."""
    v = np.asarray(values, dtype=float)
    if v.size < 2:
        return 0.0
    mean = v.mean()
    if mean == 0:
        return 0.0
    return float(np.abs(np.diff(v)).mean() / mean)


def ordering(throughputs: Dict[str, float]) -> List[str]:
    """Scheme names sorted best-first (ties broken alphabetically so
    the result is deterministic)."""
    return sorted(throughputs, key=lambda k: (-throughputs[k], k))


def recovery_time(
    times: np.ndarray,
    values: np.ndarray,
    t_event: float,
    level: float,
    sustain_bins: int = 3,
) -> float:
    """First time after ``t_event`` the series stays at or above
    ``level`` for ``sustain_bins`` consecutive bins; ``inf`` if never.

    Measures how quickly a scheme restores throughput after a
    congestion burst ends — the reaction-time axis of the paper's
    ITh-vs-CCFIT comparison.
    """
    mask = times >= t_event
    t = times[mask]
    v = values[mask]
    run = 0
    for i in range(len(v)):
        run = run + 1 if v[i] >= level else 0
        if run >= sustain_bins:
            return float(t[i - sustain_bins + 1])
    return float("inf")
