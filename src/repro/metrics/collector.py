"""Delivery accounting.

The paper bases its evaluation on two metrics (§IV-A): *Flow
Bandwidth* (throughput achieved by each traffic flow over time) and
*network throughput*.  The :class:`Collector` accumulates delivered
bytes into fixed time bins per flow; series extraction then gives the
exact curves of Figs. 7–10.

Unit convenience: with time in nanoseconds and sizes in bytes,
**1 byte/ns = 1 GB/s**, so all rates below read directly in GB/s.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.network.packet import Packet

__all__ = ["Collector"]


class Collector:
    """Time-binned delivery recorder.

    Parameters
    ----------
    bin_ns:
        Width of a measurement bin (default 100 µs — fine enough to
        show the staircases and saw-teeth of the paper's 10 ms plots).
    """

    #: per-flow latency reservoir size (uniform reservoir sampling keeps
    #: percentile queries O(1) memory regardless of run length).
    RESERVOIR = 512

    def __init__(self, bin_ns: float = 100_000.0, latency_seed: int = 0) -> None:
        if bin_ns <= 0:
            raise ValueError(f"bin width must be positive, got {bin_ns}")
        self.bin_ns = float(bin_ns)
        self._flow_bins: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._total_bins: Dict[int, int] = defaultdict(int)
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self._latency_sum: Dict[str, float] = defaultdict(float)
        self._latency_n: Dict[str, int] = defaultdict(int)
        self._latency_samples: Dict[str, list] = defaultdict(list)
        self._latency_rng = np.random.default_rng(latency_seed)

    # ------------------------------------------------------------------
    def record_delivery(self, pkt: Packet, now: float) -> None:
        """Hook installed on every end node's sink."""
        b = int(now // self.bin_ns)
        self._flow_bins[pkt.flow][b] += pkt.size
        self._total_bins[b] += pkt.size
        self.delivered_packets += 1
        self.delivered_bytes += pkt.size
        if pkt.injected_at is not None:
            lat = now - pkt.injected_at
            self._latency_sum[pkt.flow] += lat
            n = self._latency_n[pkt.flow]
            self._latency_n[pkt.flow] = n + 1
            samples = self._latency_samples[pkt.flow]
            if len(samples) < self.RESERVOIR:
                samples.append(lat)
            else:
                # classic uniform reservoir: replace with prob R/(n+1)
                j = int(self._latency_rng.integers(0, n + 1))
                if j < self.RESERVOIR:
                    samples[j] = lat

    # ------------------------------------------------------------------
    # series extraction
    # ------------------------------------------------------------------
    def flows(self) -> List[str]:
        return sorted(self._flow_bins)

    def flow_series(self, flow: str, t_end: float, t_start: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """(bin mid-times ns, bandwidth GB/s) for one flow."""
        return self._series(self._flow_bins.get(flow, {}), t_end, t_start)

    def throughput_series(self, t_end: float, t_start: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """(bin mid-times ns, aggregate delivered GB/s)."""
        return self._series(self._total_bins, t_end, t_start)

    def _series(self, bins: Dict[int, int], t_end: float, t_start: float) -> Tuple[np.ndarray, np.ndarray]:
        first = int(t_start // self.bin_ns)
        last = int(np.ceil(t_end / self.bin_ns))
        idx = np.arange(first, last)
        times = (idx + 0.5) * self.bin_ns
        rates = np.array([bins.get(int(i), 0) for i in idx], dtype=float) / self.bin_ns
        return times, rates

    # ------------------------------------------------------------------
    # window aggregates
    # ------------------------------------------------------------------
    def flow_bandwidth(self, flow: str, t0: float, t1: float) -> float:
        """Mean delivered bandwidth of ``flow`` over the bins covering
        [t0, t1) — GB/s.  The window is widened to bin boundaries, and
        the division uses the widened span, so a rate can never exceed
        what the bins actually contain."""
        bins = self._flow_bins.get(flow, {})
        total, span = self._window_bytes(bins, t0, t1)
        return total / span

    def total_bandwidth(self, t0: float, t1: float) -> float:
        total, span = self._window_bytes(self._total_bins, t0, t1)
        return total / span

    def _window_bytes(self, bins: Dict[int, int], t0: float, t1: float) -> Tuple[int, float]:
        if t1 <= t0:
            raise ValueError(f"empty window [{t0}, {t1})")
        b0 = int(t0 // self.bin_ns)
        b1 = max(int(np.ceil(t1 / self.bin_ns)), b0 + 1)
        total = sum(bins.get(b, 0) for b in range(b0, b1))
        return total, (b1 - b0) * self.bin_ns

    def mean_latency(self, flow: str) -> Optional[float]:
        """Mean injection→delivery latency of a flow (ns), if observed."""
        n = self._latency_n.get(flow, 0)
        if n == 0:
            return None
        return self._latency_sum[flow] / n

    def latency_percentile(self, flow: str, q: float) -> Optional[float]:
        """Approximate latency percentile (ns) from the flow's
        reservoir sample (exact while <= RESERVOIR deliveries).

        ``q`` in [0, 100].  Congestion's other victim signature: HoL
        blocking shows up as a p99 explosion long before the mean moves.

        Past :attr:`RESERVOIR` deliveries the value is an estimate
        over a uniform random subsample of all observed latencies —
        deterministic for a fixed ``latency_seed`` (reservoir
        replacement draws come from a dedicated
        ``np.random.default_rng(latency_seed)`` stream, untouched by
        the simulation RNGs), but not guaranteed to equal the exact
        percentile of the full population.
        """
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        samples = self._latency_samples.get(flow)
        if not samples:
            return None
        return float(np.percentile(np.asarray(samples), q))

    def fairness(self, flows: Iterable[str], t0: float, t1: float) -> float:
        """Jain index of the given flows' bandwidth over a window.

        An empty ``flows`` iterable returns ``nan`` (fairness of
        nothing is undefined, not an error) rather than propagating
        :func:`~repro.metrics.analysis.jain_index`'s ``ValueError``;
        callers aggregating over dynamic flow sets can filter with
        ``math.isnan``.
        """
        from repro.metrics.analysis import jain_index

        rates = [self.flow_bandwidth(f, t0, t1) for f in flows]
        if not rates:
            return float("nan")
        return jain_index(rates)
