"""Measurement: time-binned per-flow bandwidth, network throughput,
fairness indices, and curve-shape analysis utilities used to compare
our runs against the paper's figures."""

from repro.metrics.collector import Collector
from repro.metrics.analysis import (
    jain_index,
    mean_in_window,
    oscillation_score,
    series_mean,
)
from repro.metrics.trace import ProtocolTrace, TraceEvent

__all__ = [
    "Collector",
    "jain_index",
    "mean_in_window",
    "oscillation_score",
    "series_mean",
    "ProtocolTrace",
    "TraceEvent",
]
