"""Structured tracing of congestion-control protocol events.

A :class:`ProtocolTrace` records the CC state machine's decisions —
detections, CFQ allocations/deallocations, Stop/Go transitions,
congestion-state entries, FECN marks, BECN receipts, throttle steps —
as timestamped structured events.  Attach one to a fabric to debug a
scenario or to analyse protocol dynamics (reaction latencies, tree
lifetimes) quantitatively:

    trace = ProtocolTrace()
    fabric = build_fabric(topo, scheme="CCFIT", seed=1)
    trace.attach(fabric)
    ...
    fabric.run(until=...)
    for ev in trace.query(kind="detect"):
        print(ev)
    print(trace.tree_lifetimes())

Tracing is entirely optional and costs nothing unless attached (it
wraps the relevant methods at attach time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["TraceEvent", "ProtocolTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One protocol decision."""

    time: float
    kind: str
    where: str
    dest: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        d = f" dest={self.dest}" if self.dest is not None else ""
        info = f" ({self.detail})" if self.detail else ""
        return f"[{self.time / 1e3:10.2f} us] {self.kind:10s} {self.where}{d}{info}"


class ProtocolTrace:
    """Event recorder; attach to a fabric before running it."""

    def __init__(self, limit: int = 1_000_000) -> None:
        self.events: List[TraceEvent] = []
        self.limit = limit
        #: events discarded after :attr:`limit` was reached.  The first
        #: drop emits a RuntimeWarning; queries over a trace with
        #: ``dropped > 0`` only see the run's head.
        self.dropped = 0
        self._fabric = None

    # ------------------------------------------------------------------
    def attach(self, fabric) -> "ProtocolTrace":
        """Instrument every isolation scheme, marker and throttle state
        of ``fabric``.  Call once, before running."""
        from repro.core.isolation import NfqCfqScheme

        if self._fabric is not None:
            raise RuntimeError("trace already attached")
        self._fabric = fabric
        sim = fabric.sim

        def record(kind: str, where: str, dest=None, detail="") -> None:
            if len(self.events) < self.limit:
                self.events.append(TraceEvent(sim.now, kind, where, dest, detail))
            else:
                if self.dropped == 0:
                    import warnings

                    warnings.warn(
                        f"ProtocolTrace reached its {self.limit}-event limit at "
                        f"t={sim.now:.0f} ns; further events are dropped "
                        f"(counted in .dropped)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                self.dropped += 1

        for sw in fabric.switches:
            for port in sw.input_ports:
                scheme = port.scheme
                if isinstance(scheme, NfqCfqScheme):
                    self._wrap_scheme(scheme, port.name, record)
            self._wrap_marker(sw, record)
        for node in fabric.nodes:
            if node.throttle is not None:
                self._wrap_throttle(node, record)
        # An armed fault injector reports its events (link-down/up,
        # fault-drop, reroute, ...) through the same recorder, so fault
        # timelines interleave with the protocol's reactions.
        faults = getattr(fabric, "faults", None)
        if faults is not None:
            faults.recorder = record
        return self

    # -- wrappers ----------------------------------------------------------
    @staticmethod
    def _wrap_scheme(scheme, name: str, record: Callable) -> None:
        cam = scheme.cam
        orig_alloc = cam.allocate
        orig_free = cam.free
        orig_note = cam.note_full

        def allocate(dest, root, now):
            line = orig_alloc(dest, root, now)
            if line is None:
                record("cam-full", name, dest)
            else:
                record("detect" if root else "adopt", name, dest,
                       f"cfq{line.cfq_index}")
            return line

        def free(line):
            record("dealloc", name, line.dest, f"cfq{line.cfq_index}")
            return orig_free(line)

        def note_full():
            # detection's saturated fast path: the scan (and thus the
            # blamed destination) is skipped, so no dest to report
            record("cam-full", name, None)
            return orig_note()

        cam.allocate = allocate
        cam.free = free
        cam.note_full = note_full

        orig_stopped = scheme.tree_stopped

        def tree_stopped(dest, stopped):
            record("stop" if stopped else "go", name, dest)
            return orig_stopped(dest, stopped)

        scheme.tree_stopped = tree_stopped

        orig_hot = scheme.host.root_cfq_hot_changed

        def hot_changed(dest, hot):
            record("cs-enter" if hot else "cs-exit", name, dest)
            return orig_hot(dest, hot)

        scheme.host.root_cfq_hot_changed = hot_changed

    @staticmethod
    def _wrap_marker(sw, record: Callable) -> None:
        # Marking policies may be __slots__-ed; interpose a delegating
        # proxy on the switch instead of patching the marker itself.
        inner = sw.marker
        if inner is None:
            return  # the scheme never marks

        class _MarkerProxy:
            def should_mark(self, pkt, queue, out_port):
                marked = inner.should_mark(pkt, queue, out_port)
                if marked:
                    record("fecn", sw.name, pkt.dst, pkt.flow)
                return marked

            def __getattr__(self, item):
                return getattr(inner, item)

        sw.marker = _MarkerProxy()

    @staticmethod
    def _wrap_throttle(node, record: Callable) -> None:
        ts = node.throttle
        orig = ts.on_becn
        # the CCT gate reports its table index; other gates (e.g. the
        # rate-based RCM one) describe themselves via their snapshot.
        ccti = getattr(ts, "ccti", None)

        def on_becn(dest):
            orig(dest)
            if ccti is not None:
                detail = f"ccti={ccti(dest)}"
            else:
                detail = f"state={ts.snapshot().get(dest)}"
            record("becn", f"node{node.id}", dest, detail)

        ts.on_becn = on_becn

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        kind: Optional[str] = None,
        dest: Optional[int] = None,
        where: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Filter recorded events."""
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if dest is not None:
            out = [e for e in out if e.dest == dest]
        if where is not None:
            out = [e for e in out if e.where == where]
        return list(out)

    def counts(self) -> Dict[str, int]:
        """Events per kind."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def tree_lifetimes(self) -> List[Dict[str, float]]:
        """Pair each CFQ allocation with its deallocation (per port and
        destination): how long did each congestion tree hold resources?
        Unclosed allocations (still live at the end) are omitted."""
        open_allocs: Dict[tuple, float] = {}
        lifetimes: List[Dict[str, float]] = []
        for e in self.events:
            key = (e.where, e.dest)
            if e.kind in ("detect", "adopt"):
                open_allocs.setdefault(key, e.time)
            elif e.kind == "dealloc" and key in open_allocs:
                start = open_allocs.pop(key)
                lifetimes.append(
                    {"where": e.where, "dest": e.dest, "start": start,
                     "end": e.time, "lifetime": e.time - start}
                )
        return lifetimes

    def reaction_latency(self, dest: int) -> Optional[float]:
        """Time from the first detection of ``dest``'s tree to the
        first BECN its sources received — the closed-loop reaction
        time the paper contrasts ITh and CCFIT on."""
        t_detect = next((e.time for e in self.events
                         if e.kind == "detect" and e.dest == dest), None)
        t_becn = next((e.time for e in self.events
                       if e.kind == "becn" and e.dest == dest), None)
        if t_detect is None or t_becn is None:
            return None
        return t_becn - t_detect
