"""Dependency-free SVG line charts for the paper's figures.

The evaluation plots are throughput-vs-time and bandwidth-vs-time line
charts; this tiny plotter renders them as standalone SVG files so the
reproduction can produce *figures*, not just ASCII tables, without any
plotting dependency (the environment is offline).

    from repro.metrics.svgplot import LineChart
    chart = LineChart(title="Fig. 8b", xlabel="time (ms)", ylabel="GB/s")
    chart.add_series("CCFIT", times_ms, rates)
    chart.write("fig8b.svg")

Colours follow a fixed, colour-blind-safe cycle; axes get padded
"nice" ticks.  The output is plain SVG 1.1 — any browser renders it.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["LineChart"]

#: Okabe-Ito palette (colour-blind safe), minus yellow-on-white.
_PALETTE = ["#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00", "#000000"]


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """~n human-friendly tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if raw <= step:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks


def _fmt(v: float) -> str:
    if v == int(v):
        return str(int(v))
    return f"{v:g}"


class LineChart:
    """A minimal multi-series line chart."""

    def __init__(
        self,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
        width: int = 640,
        height: int = 400,
        y_min: Optional[float] = 0.0,
    ) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.y_min = y_min
        self._series: List[Tuple[str, List[float], List[float]]] = []

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        xs, ys = list(map(float, xs)), list(map(float, ys))
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: {len(xs)} x vs {len(ys)} y values")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        self._series.append((name, xs, ys))

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Return the chart as an SVG document string."""
        if not self._series:
            raise ValueError("no series to plot")
        margin_l, margin_r, margin_t, margin_b = 64, 150, 36, 48
        pw = self.width - margin_l - margin_r
        ph = self.height - margin_t - margin_b

        x_lo = min(min(xs) for _n, xs, _y in self._series)
        x_hi = max(max(xs) for _n, xs, _y in self._series)
        y_lo = min(min(ys) for _n, _x, ys in self._series)
        y_hi = max(max(ys) for _n, _x, ys in self._series)
        if self.y_min is not None:
            y_lo = min(self.y_min, y_lo)
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0
        y_hi *= 1.05

        def sx(x: float) -> float:
            return margin_l + (x - x_lo) / (x_hi - x_lo or 1.0) * pw

        def sy(y: float) -> float:
            return margin_t + ph - (y - y_lo) / (y_hi - y_lo) * ph

        out: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        if self.title:
            out.append(
                f'<text x="{self.width / 2:.0f}" y="20" text-anchor="middle" '
                f'font-size="15" font-weight="bold">{self.title}</text>'
            )

        # gridlines + ticks
        for t in _nice_ticks(y_lo, y_hi):
            y = sy(t)
            out.append(
                f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + pw}" '
                f'y2="{y:.1f}" stroke="#dddddd"/>'
            )
            out.append(
                f'<text x="{margin_l - 6}" y="{y + 4:.1f}" text-anchor="end">{_fmt(t)}</text>'
            )
        for t in _nice_ticks(x_lo, x_hi, 6):
            x = sx(t)
            out.append(
                f'<line x1="{x:.1f}" y1="{margin_t + ph}" x2="{x:.1f}" '
                f'y2="{margin_t + ph + 4}" stroke="#333333"/>'
            )
            out.append(
                f'<text x="{x:.1f}" y="{margin_t + ph + 18}" text-anchor="middle">{_fmt(t)}</text>'
            )

        # axes
        out.append(
            f'<rect x="{margin_l}" y="{margin_t}" width="{pw}" height="{ph}" '
            f'fill="none" stroke="#333333"/>'
        )
        if self.xlabel:
            out.append(
                f'<text x="{margin_l + pw / 2:.0f}" y="{self.height - 10}" '
                f'text-anchor="middle">{self.xlabel}</text>'
            )
        if self.ylabel:
            out.append(
                f'<text x="16" y="{margin_t + ph / 2:.0f}" text-anchor="middle" '
                f'transform="rotate(-90 16 {margin_t + ph / 2:.0f})">{self.ylabel}</text>'
            )

        # series + legend
        for i, (name, xs, ys) in enumerate(self._series):
            colour = _PALETTE[i % len(_PALETTE)]
            pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
            out.append(
                f'<polyline points="{pts}" fill="none" stroke="{colour}" '
                f'stroke-width="1.8"/>'
            )
            ly = margin_t + 12 + i * 18
            lx = margin_l + pw + 12
            out.append(
                f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
                f'stroke="{colour}" stroke-width="3"/>'
            )
            out.append(f'<text x="{lx + 28}" y="{ly + 4}">{name}</text>')

        out.append("</svg>")
        return "\n".join(out)

    def write(self, path: str) -> str:
        """Render and write the SVG file; returns ``path``."""
        svg = self.render()
        with open(path, "w") as fh:
            fh.write(svg)
        return path


def chart_results(results, title: str, per_flow: bool = False) -> LineChart:
    """Build a chart from a ``{scheme: CaseResult}`` mapping.

    ``per_flow=False`` plots each scheme's network-throughput series
    (Figs. 7/8); ``per_flow=True`` plots each flow of a *single*
    result (Figs. 9/10 panels).
    """
    chart = LineChart(title=title, xlabel="time (ms)", ylabel="throughput (GB/s)")
    if per_flow:
        (scheme, res), = results.items()
        chart.title = f"{title} — {scheme}"
        for flow, (times, rates) in sorted(res.flow_series.items()):
            chart.add_series(flow, times / 1e6, rates)
    else:
        for scheme, res in results.items():
            times, rates = res.throughput
            chart.add_series(scheme, times / 1e6, rates)
    return chart
