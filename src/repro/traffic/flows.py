"""Traffic generators.

Two source models, both *greedy up to a rate* with AdVOQ backpressure
(the application keeps offering; a full AdVOQ stalls it — so a
throttled or blocked flow resumes at full demand the moment the
network lets it, which is what lets the paper's staircase and recovery
shapes appear):

* :class:`FlowGenerator` — one point-to-point flow from a
  :class:`FlowSpec` (source, destination, rate, active interval).
  Cases #1 and #2 are lists of these.
* :class:`UniformGenerator` — a node sending every packet to an
  independently drawn uniform-random destination (Cases #3 and #4).

Generators tick at their packet emission interval; a rejected offer
(full AdVOQ) is retried next tick, modelling an application with
pending demand rather than an unbounded queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.network.endnode import EndNode
from repro.network.fabric import Fabric
from repro.network.packet import alloc_packet, free_packet
from repro.sim.engine import Simulator

__all__ = ["FlowSpec", "FlowGenerator", "UniformGenerator", "attach_traffic"]


@dataclass(frozen=True)
class FlowSpec:
    """A constant-rate point-to-point flow.

    rate is in bytes/ns (= GB/s); ``start``/``end`` in ns bound the
    active interval (``end`` = None → active forever).
    """

    name: str
    src: int
    dst: int
    rate: float
    start: float = 0.0
    end: Optional[float] = None
    packet_size: int = 2048

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"flow {self.name}: rate must be positive")
        if self.src == self.dst:
            raise ValueError(f"flow {self.name}: src == dst == {self.src}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(f"flow {self.name}: empty active interval")
        if self.packet_size <= 0:
            raise ValueError(f"flow {self.name}: bad packet size")

    @property
    def interval(self) -> float:
        """Packet emission period at the nominal rate (ns)."""
        return self.packet_size / self.rate


class FlowGenerator:
    """Drives one :class:`FlowSpec` against an end node."""

    def __init__(self, sim: Simulator, node: EndNode, spec: FlowSpec) -> None:
        if node.id != spec.src:
            raise ValueError(f"flow {spec.name} sources at {spec.src}, not node {node.id}")
        self.sim = sim
        self.node = node
        self.spec = spec
        self.offered = 0
        self.rejected = 0
        sim.post(spec.start, self._tick)

    def _tick(self) -> None:
        spec = self.spec
        now = self.sim.now
        if spec.end is not None and now >= spec.end:
            return
        pkt = alloc_packet(spec.src, spec.dst, spec.packet_size, spec.name, created_at=now)
        if self.node.offer(pkt):
            self.offered += 1
        else:
            self.rejected += 1
            free_packet(pkt)
        self.sim.post(now + spec.interval, self._tick)


class UniformGenerator:
    """A node emitting to uniform-random destinations at a fixed rate."""

    def __init__(
        self,
        sim: Simulator,
        node: EndNode,
        rate: float,
        rng: np.random.Generator,
        name: Optional[str] = None,
        start: float = 0.0,
        end: Optional[float] = None,
        packet_size: int = 2048,
        destinations: Optional[Sequence[int]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.node = node
        self.rate = rate
        self.rng = rng
        self.name = name or f"uni{node.id}"
        self.start = start
        self.end = end
        self.packet_size = packet_size
        self.dests = [
            d
            for d in (destinations if destinations is not None else range(node.num_nodes))
            if d != node.id
        ]
        if not self.dests:
            raise ValueError("no eligible destinations")
        self.offered = 0
        self.rejected = 0
        sim.post(start, self._tick)

    @property
    def interval(self) -> float:
        return self.packet_size / self.rate

    def _tick(self) -> None:
        now = self.sim.now
        if self.end is not None and now >= self.end:
            return
        dst = self.dests[int(self.rng.integers(len(self.dests)))]
        pkt = alloc_packet(self.node.id, dst, self.packet_size, self.name, created_at=now)
        if self.node.offer(pkt):
            self.offered += 1
        else:
            self.rejected += 1
            free_packet(pkt)
        self.sim.post(now + self.interval, self._tick)


def attach_traffic(
    fabric: Fabric,
    flows: Iterable[FlowSpec] = (),
    uniform: Iterable[dict] = (),
) -> List[object]:
    """Install generators on a fabric.

    ``flows`` is a list of :class:`FlowSpec`; ``uniform`` a list of
    kwargs dicts for :class:`UniformGenerator` (each must include
    ``node`` — the source id — and ``rate``; an RNG stream is derived
    from the fabric seed automatically).  Returns the generators, which
    are also kept alive on ``fabric.generators``.
    """
    gens: List[object] = []
    for spec in flows:
        gens.append(FlowGenerator(fabric.sim, fabric.nodes[spec.src], spec))
    for kw in uniform:
        kw = dict(kw)
        nid = kw.pop("node")
        rng = fabric.rngs.stream(f"uniform.n{nid}")
        gens.append(UniformGenerator(fabric.sim, fabric.nodes[nid], rng=rng, **kw))
    fabric.generators.extend(gens)
    return gens
