"""Workload generation: rate-limited flows, uniform background traffic,
and the paper's four evaluated traffic cases."""

from repro.traffic.flows import FlowSpec, FlowGenerator, UniformGenerator, attach_traffic
from repro.traffic.patterns import (
    case1_flows,
    case2_flows,
    case3_traffic,
    case4_traffic,
)

__all__ = [
    "FlowSpec",
    "FlowGenerator",
    "UniformGenerator",
    "attach_traffic",
    "case1_flows",
    "case2_flows",
    "case3_traffic",
    "case4_traffic",
]
