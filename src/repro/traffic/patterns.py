"""The paper's four traffic cases (§IV-A), as workload builders.

All rates are 100 % of the 2.5 GB/s node links.  Times are in ns
(1 ms = 1e6 ns); every case takes a ``time_scale`` so the benches can
run shortened-but-shape-preserving versions (the paper's 10 ms windows
shrink proportionally).

* **Case #1** (Config #1): staircase onto hot node 4.  F0 (0→3, the
  victim) runs the whole simulation; F1 (1→4) from 2 ms, F2 (2→4) from
  4 ms, F5 (5→4) from 6 ms, F6 (6→4) from 8 ms — all until 10 ms.  The
  congestion point is the link switch 1 → node 4; F1/F2 share switch
  1's inter-switch input port with F0 (victimisation) while F5/F6 own
  private ports (parking-lot winners).
* **Case #2** (Config #2): five flows onto *two* hot nodes of the
  2-ary 3-tree, activated stepwise, creating "several congestion
  points in the network which divide the link bandwidth among all the
  flows contributing to congestion".  F1 (1→7) runs the whole
  simulation; F0 (0→5) joins at 2 ms, F4 (4→7) at 4 ms, F2 (2→7) and
  F3 (3→5) at 6 ms.  Both destinations sit on the same DET ascent
  plane (d₀ = 1), so the two trees mix in the level-1 input queues
  (inter-tree HoL under 1Q; exactly two CFQs needed under FBICM),
  while node 7's apex receives F4 on a private input port and F1+F2
  through a shared one — the parking lot of §IV-C.
* **Case #3**: Case #2 plus three uniform sources (nodes 5, 6, 7) at
  full rate — short-lived congestion appearing and vanishing quickly.
* **Case #4** (Config #3): 75 % of the 64 nodes send uniform traffic
  at full rate; the remaining 25 % (one node per leaf switch, ids
  ≡ 3 mod 4) blast hotspot traffic during [1 ms, 2 ms] at 1, 4 or 6
  hot destinations — 1/4/6 simultaneous congestion trees whose
  branches span the fabric and collide on switch ports (see
  :func:`case4_hot_destinations`), the Fig. 8 scalability probe.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.traffic.flows import FlowSpec

__all__ = [
    "MS",
    "case1_flows",
    "case2_flows",
    "case3_traffic",
    "case4_traffic",
    "CASE2_HOT_NODE",
]

#: one millisecond in simulation time units (ns).
MS = 1_000_000.0

#: the primary hot destination of Case #2 (three contributors, with
#: the parking lot at its apex switch) and the secondary one (two).
CASE2_HOT_NODE = 7
CASE2_SECOND_HOT_NODE = 5


def case1_flows(rate: float = 2.5, time_scale: float = 1.0) -> List[FlowSpec]:
    """Traffic Case #1 on Config #1 (see module docstring)."""
    t = MS * time_scale
    return [
        FlowSpec("F0", src=0, dst=3, rate=rate, start=0.0, end=10 * t),
        FlowSpec("F1", src=1, dst=4, rate=rate, start=2 * t, end=10 * t),
        FlowSpec("F2", src=2, dst=4, rate=rate, start=4 * t, end=10 * t),
        FlowSpec("F5", src=5, dst=4, rate=rate, start=6 * t, end=10 * t),
        FlowSpec("F6", src=6, dst=4, rate=rate, start=8 * t, end=10 * t),
    ]


def case2_flows(rate: float = 2.5, time_scale: float = 1.0) -> List[FlowSpec]:
    """Traffic Case #2 on Config #2 (see the module docstring):
    staircase of five flows onto hot nodes 7 (F1, F4, F2) and 5
    (F0, F3), with F1 always on."""
    t = MS * time_scale
    hot, hot2 = CASE2_HOT_NODE, CASE2_SECOND_HOT_NODE
    return [
        FlowSpec("F1", src=1, dst=hot, rate=rate, start=0.0, end=10 * t),
        FlowSpec("F0", src=0, dst=hot2, rate=rate, start=2 * t, end=10 * t),
        FlowSpec("F4", src=4, dst=hot, rate=rate, start=4 * t, end=10 * t),
        FlowSpec("F2", src=2, dst=hot, rate=rate, start=6 * t, end=10 * t),
        FlowSpec("F3", src=3, dst=hot2, rate=rate, start=6 * t, end=10 * t),
    ]


def case3_traffic(
    rate: float = 2.5, time_scale: float = 1.0
) -> Tuple[List[FlowSpec], List[Dict]]:
    """Traffic Case #3: Case #2 plus uniform sources at nodes 5, 6, 7."""
    t = MS * time_scale
    flows = case2_flows(rate=rate, time_scale=time_scale)
    uniform = [
        {"node": n, "rate": rate, "name": f"U{n}", "start": 0.0, "end": 10 * t}
        for n in (5, 6)
    ]
    # Node 7 is also the hot destination; it still *sends* uniform
    # traffic (receiving and sending are independent directions).
    uniform.append({"node": 7, "rate": rate, "name": "U7", "start": 0.0, "end": 10 * t})
    return flows, uniform


def case4_hot_senders(num_nodes: int = 64) -> List[int]:
    """The 25 % of nodes that blast hotspot traffic during the burst:
    one node per leaf switch (ids ≡ 3 mod 4), so every congestion tree
    gathers contributors from all over the fabric."""
    return [n for n in range(num_nodes) if n % 4 == 3]


def case4_hot_destinations(num_trees: int, num_nodes: int = 64) -> List[int]:
    """Hot destinations for Case #4 on the 4-ary 3-tree, chosen so the
    congestion trees *collide on switch ports*.

    Fig. 8 probes what happens when "more congestion trees than the
    number of CFQs [2] are present" at a port.  Under DET routing,
    traffic to destination ``d`` ascends by digits ``d_0, d_1`` and all
    of it converges at one apex switch, so two trees share ports when
    their destinations share those digits.  Destinations are therefore
    grouped by identical ``(d_0, d_1)``: the whole group's trees merge
    through the same apex input ports and, as congestion spreads, the
    same level-1 switches — a port on that plane must isolate one CFQ
    *per tree*, exceeding the two available and reproducing the FBICM
    exhaustion of Fig. 8b/8c.  Six trees form *two* groups on disjoint
    ascent planes (``d_0`` = 1 and 2), matching the paper's remark that
    the congested traffic is then "better balanced in the network".

    None of the destinations is a hotspot sender (those have
    ``d_0 = 3``, see :func:`case4_hot_senders`).
    """
    if not 1 <= num_trees <= 8:
        raise ValueError(f"supported num_trees is 1..8, got {num_trees}")
    if num_nodes != 64:
        raise ValueError("Case #4 destinations are defined for the 64-node tree")
    num_groups = 1 if num_trees <= 4 else 2
    dests = []
    for t in range(num_trees):
        group, member = t % num_groups, t // num_groups
        d0 = 1 + group  # ascent plane (digit d_0)
        v0 = d0  # second ascent digit (= apex column)
        leaf = v0 + 4 * member  # distinct leaves: v1 = member
        dests.append(leaf * 4 + d0)
    return dests


def case4_traffic(
    num_trees: int,
    num_nodes: int = 64,
    rate: float = 2.5,
    time_scale: float = 1.0,
    burst_start: float = 1.0,
    burst_end: float = 2.0,
) -> Tuple[List[FlowSpec], List[Dict]]:
    """Traffic Case #4 on Config #3.

    75 % of the nodes send uniform traffic for the whole run; the
    remaining 25 % (one per leaf switch) each blast one hot destination
    at full rate during the burst window (ms, scaled), distributed
    round-robin over the ``num_trees`` destinations.
    """
    t = MS * time_scale
    senders = case4_hot_senders(num_nodes)
    hot = case4_hot_destinations(num_trees, num_nodes)
    uniform = [
        {"node": n, "rate": rate, "name": f"U{n}", "start": 0.0}
        for n in range(num_nodes)
        if n not in set(senders)
    ]
    flows = []
    for i, src in enumerate(senders):
        dst = hot[i % num_trees]
        flows.append(
            FlowSpec(
                f"H{src}",
                src=src,
                dst=dst,
                rate=rate,
                start=burst_start * t,
                end=burst_end * t,
            )
        )
    return flows, uniform
