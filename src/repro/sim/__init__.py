"""Discrete-event simulation substrate.

The engine in :mod:`repro.sim.engine` is the clock and scheduler every
other component of the reproduction runs on.  Two interchangeable
kernels implement the same deterministic contract (events fire in
``(time, seq)`` order): the default calendar/bucket queue with pooled
entries, and the original binary-heap engine kept as the golden
reference (``Simulator(kernel="heap")`` / ``REPRO_SIM_KERNEL=heap``).
See docs/performance.md and :mod:`repro.perf`.
"""

from repro.sim.engine import (
    DEFAULT_KERNEL,
    KERNELS,
    Event,
    SimulationError,
    Simulator,
    resolve_kernel,
)
from repro.sim.faults import FaultEvent, FaultInjector, FaultPlan, FaultPlanError
from repro.sim.rng import RngFactory

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "RngFactory",
    "KERNELS",
    "DEFAULT_KERNEL",
    "resolve_kernel",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
]
