"""Discrete-event simulation substrate.

The engine in :mod:`repro.sim.engine` is the clock and scheduler every
other component of the reproduction runs on.  It is deliberately small:
a binary-heap event queue with deterministic FIFO tie-breaking, plus a
few conveniences (periodic tasks, run-until predicates).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngFactory

__all__ = ["Event", "Simulator", "RngFactory"]
