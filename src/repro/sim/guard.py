"""Runtime invariant guard: conservation checks + no-progress watchdog.

The paper's claims rest on conservation properties — credits, packets
and dynamically allocated CFQs must balance *exactly* (PAPER.md §III).
A bookkeeping bug (leaked CFQ, lost credit, stuck Stop/Go) would
otherwise surface only as a mysteriously wrong curve.  This module
turns those properties into executable checks:

* **credit / buffer conservation** — per switch input port, the pool's
  byte occupancy must equal the queued bytes plus the packets being
  read through the crossbar plus the inbound wire-resident bytes whose
  space was committed at transmission start (send-time reservation is
  the credit model, see :mod:`repro.network.link`);
* **packet conservation** — every generated packet is exactly one of:
  delivered, queued in an AdVOQ / IA stage / switch queue, or on a
  wire (``packets_sent - packets_received`` per link).  Delivered
  packets return to the allocation pool and drop out of the balance;
* **CFQ allocate/deallocate balance and CAM consistency** — via the
  ``audit()`` hooks on :class:`repro.core.cam.InputCam` and
  :class:`repro.core.isolation.NfqCfqScheme`;
* **shared-pool conservation** (non-static buffer models,
  docs/buffers.md) — per switch, the per-(port, priority-group) byte
  decomposition re-sums to every pool and headroom counter, a PG that
  is not paused holds no headroom bytes, and the XOFF ledger balances
  (pauses − resumes == currently paused pairs);
* **CCTI bounds** — every throttle index stays inside the CCT and
  every raised index keeps a live decay timer
  (:meth:`repro.core.throttling.ThrottleState.audit`);
* a **no-progress watchdog** — a run whose packet counters freeze (or
  whose event queue dies) while packets are still buffered raises
  :class:`StallError` carrying a structured diagnostic dump (event
  histogram, per-port queue depths, CFQ tables) instead of hanging or
  silently returning a flat curve.

Guard mode is opt-in: ``build_fabric(..., validate=True)`` or
``REPRO_SIM_VALIDATE=1`` in the environment (the CLI flag
``--validate`` sets the latter so sweep workers inherit it).  When off
the cost is a single ``None`` check per :meth:`Fabric.run` call.

The guard runs checks **between** engine chunks, never from scheduled
events: :meth:`FabricGuard.run_guarded` advances the simulator in
``check_interval`` slices with ``sim.run(until=..., max_events=...)``
and sweeps the invariants while the event loop is quiescent.  No
events are injected, so event ordering, ``stats()["events"]`` and
every :class:`~repro.experiments.runner.CaseResult` are bit-identical
with the guard on or off — guard mode can never poison the result
cache.  See docs/robustness.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "validation_enabled",
    "InvariantViolation",
    "StallError",
    "GuardConfig",
    "FabricGuard",
]

#: environment switch; truthy values: 1/true/yes/on (case-insensitive).
ENV_VALIDATE = "REPRO_SIM_VALIDATE"
_TRUTHY = ("1", "true", "yes", "on")


def validation_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the guard switch: an explicit ``flag`` wins, otherwise
    the ``REPRO_SIM_VALIDATE`` environment variable decides."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(ENV_VALIDATE, "").strip().lower() in _TRUTHY


class InvariantViolation(RuntimeError):
    """A conservation property failed mid-run.

    Attributes
    ----------
    violations:
        One message per failed check (the exception text joins them).
    dump:
        The structured diagnostic state at the moment of failure.
    """

    def __init__(self, violations: List[str], dump: Dict[str, Any]) -> None:
        self.violations = list(violations)
        self.dump = dump
        lines = "\n  - ".join(violations)
        super().__init__(
            f"{len(violations)} simulation invariant violation(s) at "
            f"t={dump.get('now')}:\n  - {lines}"
        )


class StallError(RuntimeError):
    """The watchdog declared the run stalled (no packet progress while
    packets remain buffered).  ``dump`` holds the diagnostic state;
    ``kind`` is ``"deadlock"`` (event queue dead) or ``"stall"``
    (events firing, packets frozen)."""

    def __init__(self, kind: str, queued: int, dump: Dict[str, Any]) -> None:
        self.kind = kind
        self.dump = dump
        top = sorted(
            dump.get("event_histogram", {}).items(), key=lambda kv: -kv[1]
        )[:5]
        waiting = ", ".join(f"{name} x{n}" for name, n in top) or "nothing"
        super().__init__(
            f"simulation {kind} at t={dump.get('now')}: {queued} packet(s) "
            f"buffered with no progress; event queue holds {waiting} "
            f"(see .dump for per-port queue depths and CFQ tables)"
        )


@dataclass(frozen=True)
class GuardConfig:
    """Tuning for :class:`FabricGuard` (defaults fit the paper cases)."""

    #: sim-time between invariant sweeps (ns).
    check_interval: float = 100_000.0
    #: per-chunk event budget — bounds a same-timestamp livelock so the
    #: guard regains control even when sim time stops advancing.
    max_events_per_chunk: int = 5_000_000
    #: consecutive no-progress sweeps (with packets buffered) before
    #: declaring a stall: 10 x 100 us = 1 ms of a frozen network.
    stall_checks: int = 10


class FabricGuard:
    """Invariant checker + watchdog bound to one
    :class:`repro.network.fabric.Fabric`.

    Read-only: checks never mutate simulation state, so a guarded run
    is observationally identical to an unguarded one.
    """

    def __init__(self, fabric, config: Optional[GuardConfig] = None) -> None:
        self.fabric = fabric
        self.config = config if config is not None else GuardConfig()
        #: invariant sweeps performed.
        self.checks = 0

    # ------------------------------------------------------------------
    # guarded execution
    # ------------------------------------------------------------------
    def run_guarded(self, until: float) -> None:
        """Advance the fabric to ``until`` in chunks, sweeping the
        invariants between chunks and watching for stalls."""
        sim = self.fabric.sim
        cfg = self.config
        stalled = 0
        last_progress = self._progress()
        while True:
            chunk_end = min(until, sim.now + cfg.check_interval)
            sim.run(until=chunk_end, max_events=cfg.max_events_per_chunk)
            self.check_all()
            progress = self._progress()
            queued = self.fabric.in_flight_packets()
            if sim.now >= until:
                break
            if queued > 0 and progress == last_progress:
                if sim.pending() == 0:
                    # nothing left to fire, packets still buffered: the
                    # network is provably dead — no need to wait it out.
                    raise StallError("deadlock", queued, self.dump())
                stalled += 1
                if stalled >= cfg.stall_checks:
                    raise StallError("stall", queued, self.dump())
            else:
                stalled = 0
            last_progress = progress

    def _progress(self) -> Tuple[int, int, int]:
        f = self.fabric
        return (
            int(f.collector.delivered_packets),
            sum(n.packets_injected for n in f.nodes),
            sum(sw.packets_forwarded for sw in f.switches),
        )

    # ------------------------------------------------------------------
    # the invariant sweep
    # ------------------------------------------------------------------
    def check_all(self) -> None:
        """Sweep every invariant; raise :class:`InvariantViolation`
        listing all failures when any check trips."""
        self.checks += 1
        violations: List[str] = []
        self._check_ports(violations)
        self._check_nodes(violations)
        self._check_packet_conservation(violations)
        if violations:
            raise InvariantViolation(violations, self.dump())

    def _check_ports(self, out: List[str]) -> None:
        """Credit/buffer conservation and CFQ/CAM consistency at every
        switch input port, plus the routing policy's own audit (every
        candidate set minimal and non-empty) and the buffer model's
        shared-pool conservation (PG decomposition re-sums to every
        pool counter; a PAUSE-free PG holds no headroom bytes)."""
        for sw in self.fabric.switches:
            try:
                sw.policy.audit()
            except Exception as exc:  # TopologyError
                out.append(f"{sw.name}: {exc}")
            try:
                sw.buffer_model.audit()
            except Exception as exc:  # BufferError
                out.append(f"{sw.name}: {exc}")
            self._check_pause_discipline(sw, out)
            reading: Dict[int, int] = {}
            for op in sw.output_ports:
                if op.current is not None:
                    port, pkt, _rate = op.current
                    reading[port.index] = reading.get(port.index, 0) + pkt.size
            for port in sw.input_ports:
                where = port.name
                scheme = port.scheme
                try:
                    for q in scheme.queues():
                        q.audit()
                    audit = getattr(scheme, "audit", None)
                    if audit is not None:
                        audit()
                except Exception as exc:  # CamError / BufferError
                    out.append(f"{where}: {exc}")
                    continue
                wire = 0
                if port.link_in is not None:
                    # Bytes dropped on the wire (fault injection) had
                    # their reservation cancelled, so they are neither
                    # wire-resident nor buffered — the expected-loss
                    # ledger removes them from the balance (zero on
                    # healthy fabrics).
                    wire = (
                        port.link_in.bytes_sent
                        - port.link_in.bytes_received
                        - port.link_in.bytes_dropped
                    )
                    if wire < 0:
                        out.append(
                            f"{where}: link {port.link_in.name} received more "
                            f"bytes than were sent ({-wire}B excess)"
                        )
                expected = scheme.total_bytes() + reading.get(port.index, 0) + wire
                if port.pool.used != expected:
                    out.append(
                        f"{where}: credit imbalance — pool holds "
                        f"{port.pool.used}B but queues({scheme.total_bytes()}) "
                        f"+ crossbar({reading.get(port.index, 0)}) + "
                        f"wire({wire}) = {expected}B"
                    )

    def _check_pause_discipline(self, sw, out: List[str]) -> None:
        """PFC conservation for non-static buffer models: every PAUSE is
        eventually matched by exactly one RESUME, so the XOFF ledger
        (pauses - resumes) must equal the count of currently paused
        (port, priority) pairs — a drifted ledger means a lost or
        duplicated control message (a deadlocked PG upstream)."""
        paused_pairs = getattr(sw.buffer_model, "paused_pairs", None)
        if paused_pairs is None:
            return
        open_pauses = sw.buffer_model.pauses_sent - sw.buffer_model.resumes_sent
        if open_pauses != len(paused_pairs()):
            out.append(
                f"{sw.name}: PFC ledger drift — {sw.buffer_model.pauses_sent} "
                f"pauses vs {sw.buffer_model.resumes_sent} resumes leaves "
                f"{open_pauses} open, but {len(paused_pairs())} pairs are "
                f"marked paused"
            )

    def _check_nodes(self, out: List[str]) -> None:
        """IA stage accounting and throttle-table sanity per end node."""
        for node in self.fabric.nodes:
            where = f"node{node.id}"
            for q in node.advoqs:
                if len(q):
                    try:
                        q.audit()
                    except Exception as exc:
                        out.append(f"{where}: {exc}")
            if node.stage is not None:
                try:
                    for q in node.stage_scheme.queues():
                        q.audit()
                    audit = getattr(node.stage_scheme, "audit", None)
                    if audit is not None:
                        audit()
                except Exception as exc:
                    out.append(f"{where}.ia: {exc}")
                else:
                    inflight = node._stage_inflight or 0
                    expected = node.stage_scheme.total_bytes() + inflight
                    if node.stage.pool.used != expected:
                        out.append(
                            f"{where}.ia: stage pool holds "
                            f"{node.stage.pool.used}B but queues"
                            f"({node.stage_scheme.total_bytes()}) + "
                            f"inflight({inflight}) = {expected}B"
                        )
            if node.throttle is not None:
                try:
                    node.throttle.audit()
                except Exception as exc:
                    out.append(f"{where}: {exc}")

    def _check_packet_conservation(self, out: List[str]) -> None:
        """Global balance: generated == delivered + queued + on-wire +
        expected losses.  The loss terms (wire drops on failing or
        degraded links, source drops of unroutable traffic) are the
        fault injector's expected-loss ledger — all zero on a healthy
        fabric, so the check degenerates to strict conservation."""
        f = self.fabric
        generated = sum(n.packets_generated for n in f.nodes)
        delivered_nodes = sum(n.packets_delivered for n in f.nodes)
        delivered = int(f.collector.delivered_packets)
        if delivered != delivered_nodes:
            out.append(
                f"collector counted {delivered} deliveries but nodes "
                f"counted {delivered_nodes}"
            )
        queued = 0
        for node in f.nodes:
            queued += sum(len(q) for q in node.advoqs)
            if node.stage_scheme is not None:
                queued += node.stage_scheme.total_packets()
        for sw in f.switches:
            for port in sw.input_ports:
                queued += port.scheme.total_packets()
        on_wire = 0
        wire_dropped = 0
        for lk in f.links:
            on_wire += lk.packets_sent - lk.packets_received - lk.packets_dropped
            wire_dropped += lk.packets_dropped
        source_drops = sum(getattr(n, "source_drops", 0) for n in f.nodes)
        accounted = delivered_nodes + queued + on_wire + wire_dropped + source_drops
        if generated != accounted:
            lost = ""
            if wire_dropped or source_drops:
                lost = (
                    f" + wire_dropped({wire_dropped}) + "
                    f"source_dropped({source_drops})"
                )
            out.append(
                f"packet conservation broken: generated {generated} != "
                f"delivered({delivered_nodes}) + queued({queued}) + "
                f"wire({on_wire}){lost} = {accounted}"
            )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """Structured state snapshot (JSON-safe): what the simulation is
        waiting on and where every packet sits."""
        f = self.fabric
        sim = f.sim
        dump = {
            "now": sim.now,
            "kernel": sim.kernel,
            "pending_events": sim.pending(),
            "events_dispatched": sim.events_dispatched,
            "event_histogram": sim.queue_snapshot(),
            "stats": f.stats(),
            "in_flight_packets": f.in_flight_packets(),
            "switches": [sw.snapshot() for sw in f.switches],
            "nodes": [n.snapshot() for n in f.nodes],
            "checks_run": self.checks,
        }
        # A stall on a faulted fabric is usually *caused* by the fault
        # (dead route, partition): put the injector state right in the
        # watchdog's hands.
        if f.faults is not None:
            dump["faults"] = f.faults.snapshot()
        return dump
