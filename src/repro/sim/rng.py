"""Seeded random-number streams.

Every stochastic component (uniform traffic sources, FECN marking
lottery, iSlip pointer initialisation when randomised) pulls an
independent ``numpy`` Generator from one :class:`RngFactory`, keyed by a
stable string.  Two simulations built with the same root seed therefore
consume identical random streams regardless of component construction
order — the property our determinism regression test relies on.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Derive independent, reproducible RNG streams from one root seed.

    >>> rngs = RngFactory(42)
    >>> a = rngs.stream("node3.uniform")
    >>> b = rngs.stream("node4.uniform")

    Streams are keyed by name, not creation order: ``stream(name)``
    always returns a generator seeded by ``SHA256(root_seed || name)``.
    Asking twice for the same name returns the *same* generator object.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngFactory":
        """Derive a child factory (namespaced) for a sub-component tree."""
        digest = hashlib.sha256(f"{self.seed}:{name}:factory".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))
