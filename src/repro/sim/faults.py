"""Deterministic fabric fault injection (docs/faults.md).

Production HPC interconnects routinely see link flaps, degraded
(CRC-retry) links and drained switches, and congestion pathologies are
amplified by such events.  This module lets every experiment ask the
question the paper's fault-free fabric cannot: do congested-flow
isolation and injection throttling still work — and does adaptive or
flowlet routing help or hurt — when the topology is failing underneath
them?

Three pieces:

* :class:`FaultEvent` — one scheduled fault action (``down``/``up``/
  ``kill``/``degrade``/``restore``/``drain``/``fail``) against a link
  or a switch at an absolute simulated time;
* :class:`FaultPlan` — a frozen, hashable, picklable bundle of events
  plus the fault RNG seed and the control-plane re-route delay.  Plans
  ride on :class:`~repro.experiments.sweep.SimJob` cells into worker
  processes and cache keys (``FaultPlan.to_dict()`` is the cache-key
  contribution; the cosmetic :attr:`FaultPlan.name` is excluded so two
  plans with equal content share cache entries).  :meth:`FaultPlan.parse`
  accepts the CLI ``--faults`` spec grammar;
* :class:`FaultInjector` — armed on a built fabric by
  :func:`repro.network.fabric.build_fabric`; schedules one engine event
  per plan entry and wires the consequences through every layer:
  :meth:`repro.network.link.Link.fail`/``restore``/``degrade``,
  :meth:`repro.network.routing.RoutingPolicy.on_link_down` dead-port
  exclusion, deterministic-table recomputation over the surviving
  links after :attr:`FaultPlan.reroute_delay`, and per-node
  unroutable-destination sets so sources degrade to traced drops
  instead of wedging the lossless fabric.

Determinism contract: with no plan nothing here is imported at all and
results are byte-identical to a fault-free build; with a fixed plan and
seed, every kernel event — including the probabilistic corruption drops
(seeded by :attr:`FaultPlan.seed`) — replays identically, so faulted
cells are cacheable exactly like healthy ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "FaultPlanError"]

#: recognised fault actions (the spec grammar's verbs).
ACTIONS = ("down", "up", "kill", "degrade", "restore", "drain", "fail")

#: default control-plane re-route latency (ns): how long after a
#: link-state change the deterministic tables are recomputed (200 µs —
#: the order of a subnet-manager sweep, scaled with ``time_scale``).
DEFAULT_REROUTE_DELAY = 200_000.0


class FaultPlanError(ValueError):
    """A fault-plan spec string or event is malformed."""


def _parse_time(text: str) -> float:
    """``"1.2ms"`` / ``"60us"`` / ``"5000"`` (ns) -> nanoseconds."""
    text = text.strip()
    scale = 1.0
    if text.endswith("ms"):
        text, scale = text[:-2], 1e6
    elif text.endswith("us"):
        text, scale = text[:-2], 1e3
    elif text.endswith("ns"):
        text = text[:-2]
    try:
        return float(text) * scale
    except ValueError:
        raise FaultPlanError(f"bad time {text!r} (expected e.g. 1.2ms, 60us, 5000)") from None


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``target`` is a link name (e.g. ``"s0p4->s16p0"``, as printed by
    ``Link.name``) or a switch (``"s16"`` / ``"sw16"``), which the
    injector expands to the switch's attached links.  The degrade knobs
    apply only to ``action="degrade"``.
    """

    time: float
    action: str
    target: str
    #: multiply the link bandwidth (degrade); 1.0 = unchanged.
    bandwidth_factor: float = 1.0
    #: add to the link propagation delay in ns (degrade).
    extra_delay: float = 0.0
    #: per-packet corruption-drop probability in [0, 1) (degrade).
    drop_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r}; choose from {ACTIONS}"
            )
        if self.time < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.bandwidth_factor <= 0:
            raise FaultPlanError(
                f"bandwidth_factor must be positive, got {self.bandwidth_factor}"
            )
        if not 0.0 <= self.drop_prob < 1.0:
            raise FaultPlanError(f"drop_prob must be in [0, 1), got {self.drop_prob}")
        if self.extra_delay < 0:
            raise FaultPlanError(f"extra_delay must be >= 0, got {self.extra_delay}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "action": self.action,
            "target": self.target,
            "bandwidth_factor": self.bandwidth_factor,
            "extra_delay": self.extra_delay,
            "drop_prob": self.drop_prob,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            time=float(data["time"]),
            action=str(data["action"]),
            target=str(data["target"]),
            bandwidth_factor=float(data.get("bandwidth_factor", 1.0)),
            extra_delay=float(data.get("extra_delay", 0.0)),
            drop_prob=float(data.get("drop_prob", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fabric faults.

    Frozen and hashable so it can ride on frozen
    :class:`~repro.experiments.sweep.SimJob` cells, cross process
    boundaries by pickle, and contribute to cache keys via
    :meth:`to_dict` (which deliberately **excludes** :attr:`name`: the
    label is cosmetic; two plans with identical content are the same
    experiment).

    Event times are expressed at ``time_scale=1.0``;
    :func:`repro.experiments.runner.run_case` applies
    :meth:`scaled` automatically so a plan stays aligned with the
    traffic pattern at every scale.
    """

    events: Tuple[FaultEvent, ...] = ()
    #: seeds the corruption-drop RNG (degraded links).
    seed: int = 0
    #: delay (ns) from a link-state change to the deterministic-table
    #: recomputation; ``None`` disables re-routing entirely (``det``
    #: then drops unroutable traffic at the source for the fault's
    #: whole duration).
    reroute_delay: Optional[float] = DEFAULT_REROUTE_DELAY
    #: cosmetic label (experiment scenario name); NOT part of
    #: :meth:`to_dict`, so it never splits the cache.
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.reroute_delay is not None and self.reroute_delay < 0:
            raise FaultPlanError(
                f"reroute_delay must be >= 0 or None, got {self.reroute_delay}"
            )

    # -- serialization (cache keys + results) ---------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [ev.to_dict() for ev in self.events],
            "seed": self.seed,
            "reroute_delay": self.reroute_delay,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], name: str = "") -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
            seed=int(data.get("seed", 0)),
            reroute_delay=(
                None
                if data.get("reroute_delay") is None
                else float(data["reroute_delay"])
            ),
            name=name,
        )

    def scaled(self, factor: float) -> "FaultPlan":
        """The same plan with every time (event times and the re-route
        delay) multiplied by ``factor`` — how ``time_scale`` shrinks a
        plan together with the traffic pattern."""
        if factor == 1.0:
            return self
        if factor <= 0:
            raise FaultPlanError(f"scale factor must be positive, got {factor}")
        return FaultPlan(
            events=tuple(
                FaultEvent(
                    time=ev.time * factor,
                    action=ev.action,
                    target=ev.target,
                    bandwidth_factor=ev.bandwidth_factor,
                    extra_delay=ev.extra_delay * factor,
                    drop_prob=ev.drop_prob,
                )
                for ev in self.events
            ),
            seed=self.seed,
            reroute_delay=(
                None if self.reroute_delay is None else self.reroute_delay * factor
            ),
            name=self.name,
        )

    # -- the CLI spec grammar -------------------------------------------
    @classmethod
    def parse(cls, spec: str, name: str = "") -> "FaultPlan":
        """Parse the ``--faults`` spec grammar (docs/faults.md)::

            spec    := clause (';' clause)*
            clause  := 'seed=' INT
                     | 'reroute=' (TIME | 'none')
                     | ACTION ':' TARGET '@' TIME [':' OPTS]
            ACTION  := down|up|kill|degrade|restore|drain|fail
            OPTS    := KEY '=' VALUE (',' KEY '=' VALUE)*   # degrade only
            KEY     := bw (bandwidth factor) | delay (extra, TIME)
                     | drop (probability)
            TIME    := FLOAT ['us'|'ms'|'ns']               # default ns

        Example: ``"down:s0p4->s16p0@1.2ms;up:s0p4->s16p0@1.5ms"`` —
        a transient flap of the first leaf's first uplink.
        """
        events: List[FaultEvent] = []
        seed = 0
        reroute: Optional[float] = DEFAULT_REROUTE_DELAY
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[5:])
                except ValueError:
                    raise FaultPlanError(f"bad seed clause {clause!r}") from None
                continue
            if clause.startswith("reroute="):
                value = clause[8:].strip()
                reroute = None if value == "none" else _parse_time(value)
                continue
            action, sep, rest = clause.partition(":")
            if not sep or action not in ACTIONS:
                raise FaultPlanError(
                    f"bad fault clause {clause!r}: expected "
                    f"'<action>:<target>@<time>' with action in {ACTIONS}"
                )
            target, sep, rest = rest.partition("@")
            if not sep or not target:
                raise FaultPlanError(
                    f"bad fault clause {clause!r}: missing '@<time>'"
                )
            when, _sep, opts = rest.partition(":")
            kwargs: Dict[str, float] = {}
            if opts:
                if action != "degrade":
                    raise FaultPlanError(
                        f"options {opts!r} are only valid on 'degrade' clauses"
                    )
                for item in opts.split(","):
                    key, sep, value = item.partition("=")
                    key = key.strip()
                    if not sep:
                        raise FaultPlanError(f"bad degrade option {item!r}")
                    if key == "bw":
                        kwargs["bandwidth_factor"] = float(value)
                    elif key == "delay":
                        kwargs["extra_delay"] = _parse_time(value)
                    elif key == "drop":
                        kwargs["drop_prob"] = float(value)
                    else:
                        raise FaultPlanError(
                            f"unknown degrade option {key!r} (bw/delay/drop)"
                        )
            events.append(
                FaultEvent(
                    time=_parse_time(when), action=action, target=target, **kwargs
                )
            )
        if not events:
            raise FaultPlanError(f"fault spec {spec!r} contains no fault events")
        return cls(events=tuple(events), seed=seed, reroute_delay=reroute, name=name)

    def label(self) -> str:
        return self.name or f"{len(self.events)}ev"


class FaultInjector:
    """Applies one :class:`FaultPlan` to one built fabric.

    Armed by :func:`repro.network.fabric.build_fabric` (never present
    on a fault-free fabric, so the no-plan hot path pays exactly one
    ``None`` check per packet delivery).  The injector owns all fault
    bookkeeping:

    * scheduling — one engine event per plan entry, switch targets
      expanded to their attached links at apply time;
    * routing reaction — immediate
      :meth:`~repro.network.routing.RoutingPolicy.on_link_down`
      notifications (adaptive/flowlet exclude dead candidates on the
      very next decision) and a deterministic-table recomputation over
      the *surviving* links ``reroute_delay`` ns later (modelling the
      fabric manager's sweep);
    * source protection — per-node unroutable-destination sets
      (``EndNode.fault_doomed``) so generated traffic to a partitioned
      destination becomes a traced source drop instead of wedging the
      lossless fabric;
    * the expected-loss ledger the invariant guard balances against
      (:meth:`packets_lost`, per-link drop counters) and the
      trace/telemetry surface (:attr:`recorder`, :meth:`snapshot`,
      :meth:`windows`).
    """

    def __init__(self, fabric, plan: FaultPlan) -> None:
        self.fabric = fabric
        self.plan = plan
        #: ``record(kind, where, dest, detail)`` hook; wired by
        #: :meth:`repro.metrics.trace.ProtocolTrace.attach`.
        self.recorder: Optional[Callable[..., None]] = None
        #: applied link-level actions: {"time", "action", "target"}.
        self.log: List[Dict[str, Any]] = []
        #: names of links currently down (killed ones included).
        self.down: set = set()
        #: names of permanently failed links (never restorable).
        self.killed: set = set()
        #: names of links with an active degrade.
        self.degraded: set = set()
        self._drop_rng = random.Random(plan.seed)
        self._by_name = {lk.name: lk for lk in fabric.links}
        self._sw_by_id = {
            spec.id: sw for spec, sw in zip(fabric.topo.switches, fabric.switches)
        }
        self._id_of = {id(sw): sid for sid, sw in self._sw_by_id.items()}
        self._armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Validate the plan against this fabric, install the drop
        hooks, and schedule every fault event.  Call once."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        for ev in self.plan.events:
            self._targets(ev)  # raises FaultPlanError on unknown targets
        for lk in self.fabric.links:
            lk._wire = set()
            lk.on_drop = self._on_wire_drop
        for node in self.fabric.nodes:
            node.fault_doomed = None
            node.on_fault_drop = self._on_source_drop
        sim = self.fabric.sim
        for ev in self.plan.events:
            sim.post(ev.time, self._apply, ev)
        return self

    def _targets(self, ev: FaultEvent) -> List[Any]:
        """Expand an event target to concrete links."""
        lk = self._by_name.get(ev.target)
        if lk is not None:
            return [lk]
        sid = self._switch_id(ev.target)
        if sid is not None:
            sw = self._sw_by_id.get(sid)
            if sw is None:
                raise FaultPlanError(
                    f"fault target {ev.target!r}: no switch {sid} in this fabric"
                )
            incoming = [
                link
                for link in self.fabric.links
                if getattr(link.rx, "switch", None) is sw
            ]
            outgoing = [
                link
                for link in self.fabric.links
                if getattr(link.tx, "switch", None) is sw
            ]
            if ev.action in ("down", "drain"):
                # drain: stop accepting new traffic (incoming links
                # down); the switch still empties its queues.
                return incoming
            return incoming + outgoing
        raise FaultPlanError(
            f"unknown fault target {ev.target!r}: not a link name or a "
            f"switch ('sN'); this fabric has {len(self._by_name)} link(s)"
        )

    @staticmethod
    def _switch_id(target: str) -> Optional[int]:
        body = target[2:] if target.startswith("sw") else (
            target[1:] if target.startswith("s") else None
        )
        if body is not None and body.isdigit():
            return int(body)
        return None

    # ------------------------------------------------------------------
    # applying events
    # ------------------------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        action = ev.action
        permanent = action in ("kill", "fail")
        for lk in self._targets(ev):
            if action in ("down", "drain", "kill", "fail"):
                self._link_down(lk, permanent=permanent)
            elif action == "up":
                self._link_up(lk)
            elif action == "degrade":
                self._degrade(lk, ev)
            elif action == "restore":
                self._restore(lk)

    def _log_action(self, action: str, target: str) -> None:
        self.log.append(
            {"time": self.fabric.sim.now, "action": action, "target": target}
        )

    def _record(self, kind: str, where: str, dest=None, detail: str = "") -> None:
        rec = self.recorder
        if rec is not None:
            rec(kind, where, dest, detail)

    def _link_down(self, lk, permanent: bool) -> None:
        name = lk.name
        if permanent:
            self.killed.add(name)
        if name in self.down:
            return  # already down; possibly just upgraded to killed
        self.down.add(name)
        lk.fail()
        tx = lk.tx
        sw = getattr(tx, "switch", None)
        if sw is not None:  # tx is a switch OutputPort
            sw.policy.on_link_down(tx.index)
        hook = getattr(self.fabric.topo, "on_link_down", None)
        if hook is not None:
            hook(name)
        kind = "link-kill" if permanent else "link-down"
        self._log_action("kill" if permanent else "down", name)
        self._record(kind, name)
        self._topology_changed()

    def _link_up(self, lk) -> None:
        name = lk.name
        if name in self.killed or name not in self.down:
            return  # killed links never come back; idempotent ups
        self.down.discard(name)
        lk.restore()
        tx = lk.tx
        sw = getattr(tx, "switch", None)
        if sw is not None:
            sw.policy.on_link_up(tx.index)
        hook = getattr(self.fabric.topo, "on_link_up", None)
        if hook is not None:
            hook(name)
        self._log_action("up", name)
        self._record("link-up", name)
        self._topology_changed()

    def _degrade(self, lk, ev: FaultEvent) -> None:
        self.degraded.add(lk.name)
        lk.degrade(
            bandwidth_factor=ev.bandwidth_factor,
            extra_delay=ev.extra_delay,
            drop_prob=ev.drop_prob,
            rng=self._drop_rng if ev.drop_prob > 0.0 else None,
        )
        self._log_action("degrade", lk.name)
        self._record(
            "link-degrade",
            lk.name,
            detail=f"bw={ev.bandwidth_factor},delay={ev.extra_delay},drop={ev.drop_prob}",
        )

    def _restore(self, lk) -> None:
        if lk.name not in self.degraded:
            return
        self.degraded.discard(lk.name)
        lk.clear_degrade()
        self._log_action("restore", lk.name)
        self._record("link-restore", lk.name)

    # ------------------------------------------------------------------
    # routing reaction
    # ------------------------------------------------------------------
    def _topology_changed(self) -> None:
        self._recompute_doomed()
        delay = self.plan.reroute_delay
        if delay is not None:
            sim = self.fabric.sim
            sim.post(sim.now + delay, self._reroute)

    def _reroute(self) -> None:
        """Recompute every deterministic table over the surviving links
        (the fabric manager's sweep), then wake everything that may
        have been parked on a dead route."""
        changed = self._recompute_tables()
        self._recompute_doomed()
        self._log_action("reroute", f"{changed} route(s)")
        self._record("reroute", "fabric", detail=f"{changed} route(s) updated")
        if not changed:
            return
        for sw in self.fabric.switches:
            sw.policy.rerouted = True
            for port in sw.input_ports:
                port.scheme.invalidate_heads()
            sw.kick()
        for node in self.fabric.nodes:
            node.pump()
            node.kick_injection()

    def _live_ports(self, sw, dst: int) -> Tuple[int, ...]:
        """Output ports the routing layer may use at ``sw`` for ``dst``
        (the policy's minimal candidates, or the det table port)."""
        pol = sw.policy
        cands = None if pol.candidates is None else pol.candidates.get(dst)
        if cands is not None:
            return cands
        port = pol.table._table.get(dst)
        return () if port is None else (port,)

    def _recompute_tables(self) -> int:
        """Deterministic BFS re-route over the live links: per
        destination, backward BFS from its attach switch with the
        lowest-port tie-break (the same discipline as
        :func:`repro.network.routing.build_routing`), merged in place
        into every switch's det table.  Destinations a switch can no
        longer reach keep their old (dead) route — the per-node doomed
        sets make sources drop that traffic instead.  Returns the
        number of table entries that changed."""
        fabric = self.fabric
        adj: Dict[int, List[Tuple[int, str, int]]] = {
            sid: [] for sid in self._sw_by_id
        }
        radj: Dict[int, List[int]] = {sid: [] for sid in self._sw_by_id}
        node_sw: Dict[int, int] = {}
        for sid, sw in self._sw_by_id.items():
            for p, op in enumerate(sw.output_ports):
                link = op.link_out
                if link is None or not link.up:
                    continue
                other = getattr(link.rx, "switch", None)
                if other is None:
                    adj[sid].append((p, "node", link.rx.id))
                    node_sw[link.rx.id] = sid
                else:
                    oid = self._id_of[id(other)]
                    adj[sid].append((p, "switch", oid))
                    radj[oid].append(sid)
        for ports in adj.values():
            ports.sort()

        changed = 0
        for dst in range(fabric.topo.num_nodes):
            dst_sw = node_sw.get(dst)
            if dst_sw is None:
                continue  # downlink dead: keep old routes, sources drop
            dist = {dst_sw: 0}
            frontier = [dst_sw]
            while frontier:
                nxt: List[int] = []
                for s in frontier:
                    for o in radj[s]:
                        if o not in dist:
                            dist[o] = dist[s] + 1
                            nxt.append(o)
                frontier = nxt
            for sid, ports in adj.items():
                if sid not in dist:
                    continue  # partitioned from dst: keep old route
                new_port: Optional[int] = None
                if sid == dst_sw:
                    for p, kind, other in ports:
                        if kind == "node" and other == dst:
                            new_port = p
                            break
                else:
                    want = dist[sid] - 1
                    for p, kind, other in ports:
                        if kind == "switch" and dist.get(other, -2) == want:
                            new_port = p
                            break
                if new_port is None:
                    continue
                table = self._sw_by_id[sid].policy.table
                if table._table.get(dst) != new_port:
                    table._table[dst] = new_port
                    changed += 1
        return changed

    # ------------------------------------------------------------------
    # source protection (unroutable destinations)
    # ------------------------------------------------------------------
    def _recompute_doomed(self) -> None:
        """Refresh every node's unroutable-destination set: a
        destination is doomed for a node when no sequence of live,
        routing-usable ports connects them.  ``None`` (everything
        reachable) keeps the generation hot path on a single check."""
        fabric = self.fabric
        if not self.down:
            for node in fabric.nodes:
                node.fault_doomed = None
            return
        num = fabric.topo.num_nodes
        reaching = [self._switches_reaching(dst) for dst in range(num)]
        for node in fabric.nodes:
            up = node.uplink
            if up is None or not up.up:
                doomed = set(range(num))
                doomed.discard(node.id)
                node.fault_doomed = doomed
                continue
            attach = getattr(up.rx, "switch", None)
            akey = id(attach)
            doomed = {
                dst
                for dst in range(num)
                if dst != node.id and akey not in reaching[dst]
            }
            node.fault_doomed = doomed if doomed else None

    def _switches_reaching(self, dst: int) -> set:
        """``id(switch)`` set of switches that can deliver to ``dst``
        through live links along routing-usable ports."""
        edges_in: Dict[int, List[Any]] = {}
        seeds: List[Any] = []
        for sw in self.fabric.switches:
            for p in self._live_ports(sw, dst):
                link = sw.output_ports[p].link_out
                if link is None or not link.up:
                    continue
                nxt = getattr(link.rx, "switch", None)
                if nxt is None:
                    if link.rx.id == dst:
                        seeds.append(sw)
                else:
                    edges_in.setdefault(id(nxt), []).append(sw)
        reach: set = set()
        stack = seeds
        while stack:
            sw = stack.pop()
            key = id(sw)
            if key in reach:
                continue
            reach.add(key)
            stack.extend(edges_in.get(key, ()))
        return reach

    # ------------------------------------------------------------------
    # drop hooks (ledger + trace)
    # ------------------------------------------------------------------
    def _on_wire_drop(self, link, pkt, kind: str) -> None:
        self._record(kind, link.name, pkt.dst, f"src={pkt.src}")

    def _on_source_drop(self, node, pkt) -> None:
        self._record("fault-source-drop", f"node{node.id}", pkt.dst)

    # ------------------------------------------------------------------
    # accounting surface
    # ------------------------------------------------------------------
    def wire_drops(self) -> int:
        return sum(lk.packets_dropped for lk in self.fabric.links)

    def wire_bytes_dropped(self) -> int:
        return sum(lk.bytes_dropped for lk in self.fabric.links)

    def source_drops(self) -> int:
        return sum(n.source_drops for n in self.fabric.nodes)

    def packets_lost(self) -> int:
        """Total expected loss (the guard's ledger term): packets
        dropped on failing/degraded wires plus source drops of
        unroutable traffic."""
        return self.wire_drops() + self.source_drops()

    def windows(self) -> List[Tuple[float, Optional[float]]]:
        """Per-target fault windows (start, end) from the applied log;
        an interval still open at the end of the run has ``end=None``.
        Telemetry uses these for "born during a fault" attribution."""
        out: List[Tuple[float, Optional[float]]] = []
        open_: Dict[str, float] = {}
        for entry in self.log:
            action, target, t = entry["action"], entry["target"], entry["time"]
            if action in ("down", "kill", "degrade"):
                open_.setdefault(target, t)
            elif action in ("up", "restore"):
                t0 = open_.pop(target, None)
                if t0 is not None:
                    out.append((t0, t))
        out.extend((t0, None) for t0 in open_.values())
        out.sort(key=lambda w: w[0])
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe fault state: rides on CaseResults, the telemetry
        bundle and the watchdog dump."""
        doomed = {
            str(n.id): sorted(n.fault_doomed)
            for n in self.fabric.nodes
            if getattr(n, "fault_doomed", None)
        }
        snap: Dict[str, Any] = {
            "plan": self.plan.to_dict(),
            "applied": list(self.log),
            "links_down": sorted(self.down),
            "killed": sorted(self.killed),
            "degraded": sorted(self.degraded),
            "wire_drops": self.wire_drops(),
            "wire_bytes_dropped": self.wire_bytes_dropped(),
            "source_drops": self.source_drops(),
            "doomed": doomed,
        }
        if self.plan.name:
            snap["name"] = self.plan.name
        return snap
