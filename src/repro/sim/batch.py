"""Struct-of-arrays batch kernel: slot-synchronous event dispatch.

:class:`BatchSimulator` is the third engine kernel
(``Simulator(kernel="batch")`` / ``REPRO_SIM_KERNEL=batch``).  It keeps
the engine's determinism contract — callbacks fire in exactly the same
``(time, seq)`` order as the bucket and heap kernels, so every
simulation stays byte-for-byte reproducible — but swaps the per-event
data structures for flat parallel arrays processed one MTU slot at a
time:

* **Slot calendar.**  Pending events are appended to five parallel
  arrays (time / seq / fn / args / handle) keyed by slot index
  ``int(time / SLOT_NS)`` — a struct-of-arrays layout instead of one
  entry object per event.  A min-heap of slot indices orders the slots;
  a slot's arrays are sorted **once**, with a vectorised
  :func:`numpy.lexsort` on the ``(time, seq)`` columns when the slot is
  large, at the moment the clock enters it.  Events scheduled into the
  slot being consumed merge through a small descending-sorted spill
  list (the same ``_insort_desc`` the bucket kernel uses).
* **Channels.**  The real win: a homogeneous population of recurring
  events (every link serialisation tick, every credit return, ...) can
  be registered as a :class:`BatchChannel` — one float array of
  next-firing times plus a period.  Each MTU slot the kernel fires the
  whole due population with a handful of vectorised array operations
  (compare, masked add) instead of one Python callback per event.
  Within a slot, **general events fire first, then channels** — the
  slot-synchronous contract (see docs/performance.md).  Channel
  firings count toward ``events_dispatched`` and honour ``max_events``
  exactly (the final slot is cut with a lexsort merge), so
  ``run(max_events=N)`` dispatches exactly ``N`` events on every
  kernel.

The production fabric path (:mod:`repro.network.fabric`) schedules only
general events, so on that path the batch kernel is a drop-in queue
replacement and results are byte-identical across all three kernels —
the golden equivalence suite asserts it for every paper scheme and
routing policy.  The dispatch microbenchmark (:mod:`repro.perf`) drives
the channel API with the same hop/tx-done/credit event mix as the other
kernels' chains; that is where the ≥3× dispatch speedup over the
calendar kernel comes from.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

try:  # numpy is a project dependency; guard anyway so the general
    import numpy as np  # (non-channel) path still works without it.
except ImportError:  # pragma: no cover - numpy is baked into the env
    np = None  # type: ignore[assignment]

from repro.sim.engine import (
    DEFAULT_BUCKET_NS,
    DEFAULT_NUM_BUCKETS,
    Event,
    SimulationError,
    Simulator,
    _insort_desc,
)

__all__ = ["BatchSimulator", "BatchChannel", "SLOT_NS"]

#: slot width (ns): one MTU serialisation time on the paper's links —
#: the cadence the switches already coalesce their matching rounds to
#: (``match_quantum``), so a slot holds one arbitration round's worth
#: of events.  The value only affects batching granularity, never
#: dispatch order.
SLOT_NS = 819.2

#: below this population a plain Python sort beats the list->ndarray
#: round-trip that :func:`numpy.lexsort` needs.
_LEXSORT_MIN = 64

_INF = float("inf")
_NO_LIMIT = 1 << 62

# spill entries are 5-wide lists [time, seq, fn, args, handle]; the
# engine's ``_insort_desc`` only ever compares elements 0 and 1.
_S_TIME, _S_SEQ, _S_FN, _S_ARGS, _S_HANDLE = range(5)


class BatchChannel:
    """A vectorised population of identical recurring events.

    ``times`` holds the next firing time of every element; each slot,
    every element due before the slot end fires and advances by
    ``period``.  ``fn`` (optional) is an *aggregate* callback invoked
    once per firing round as ``fn(count, slot_end)`` — there is no
    per-element Python callback, that is the point.  Equal-time
    tie-break for the exact ``max_events`` cut is (time, channel
    registration order, element index).
    """

    __slots__ = ("sim", "label", "times", "period", "fn", "fired", "_active")

    def __init__(
        self,
        sim: "BatchSimulator",
        times: Any,
        period: float,
        fn: Optional[Callable[[int, float], Any]] = None,
        label: str = "channel",
    ) -> None:
        if np is None:  # pragma: no cover - numpy is baked into the env
            raise SimulationError("batch channels require numpy")
        if period <= 0:
            raise SimulationError(f"non-positive channel period {period}")
        arr = np.array(times, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise SimulationError("channel times must be a non-empty 1-D array")
        if float(arr.min()) < sim.now:
            raise SimulationError(
                f"channel start time {float(arr.min())} < now={sim.now}"
            )
        self.sim = sim
        self.label = label
        self.times = arr
        self.period = float(period)
        self.fn = fn
        #: total firings — the channel's contribution to
        #: ``events_dispatched``.
        self.fired = 0
        self._active = True

    def cancel(self) -> None:
        """Deactivate the channel; no further firings."""
        self._active = False

    def __len__(self) -> int:
        return int(self.times.size) if self._active else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self._active else "cancelled"
        return (
            f"<BatchChannel {self.label!r} n={self.times.size} "
            f"period={self.period} {state}>"
        )


class BatchSimulator(Simulator):
    """The struct-of-arrays slot kernel (see module docstring).

    Construct via ``Simulator(kernel="batch")`` — the base class
    redirects construction here — or directly.  The bucket-geometry
    parameters are accepted for signature compatibility (validated,
    otherwise unused: the batch kernel's slot width is the MTU slot).
    """

    __slots__ = (
        "_slot_w",
        "_inv_slot",
        "_slots",
        "_slot_heap",
        "_spill",
        "_cur_slot",
        "_cur_times",
        "_cur_seqs",
        "_cur_fns",
        "_cur_argss",
        "_cur_handles",
        "_cur_order",
        "_channels",
    )

    def __init__(
        self,
        kernel: Optional[str] = None,
        bucket_ns: float = DEFAULT_BUCKET_NS,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        profile: bool = False,
    ) -> None:
        super().__init__(
            kernel="batch" if kernel is None else kernel,
            bucket_ns=bucket_ns,
            num_buckets=num_buckets,
            profile=profile,
        )
        if self.kernel != "batch":
            raise ValueError(
                f"BatchSimulator only implements kernel='batch', got {self.kernel!r}"
            )
        self._slot_w = SLOT_NS
        self._inv_slot = 1.0 / SLOT_NS
        #: slot index -> (times, seqs, fns, argss, handles) parallel lists
        self._slots: dict = {}
        #: min-heap of pending slot indices
        self._slot_heap: List[int] = []
        #: events landing at or behind the slot being consumed, kept
        #: descending-(time, seq) and popped from the end
        self._spill: List[list] = []
        # consumption state of the slot the clock is in
        self._cur_slot = -1
        self._cur_times: List[float] = []
        self._cur_seqs: List[int] = []
        self._cur_fns: List[Any] = []
        self._cur_argss: List[Any] = []
        self._cur_handles: List[Any] = []
        #: remaining indices into the _cur arrays, descending (time, seq)
        self._cur_order: List[int] = []
        self._channels: List[BatchChannel] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _append(self, time: float, seq: int, fn: Any, args: tuple, handle: Any) -> None:
        i = int(time * self._inv_slot)
        if i <= self._cur_slot:
            _insort_desc(self._spill, [time, seq, fn, args, handle])
            return
        d = self._slots.get(i)
        if d is None:
            d = self._slots[i] = ([], [], [], [], [])
            heapq.heappush(self._slot_heap, i)
        d[0].append(time)
        d[1].append(seq)
        d[2].append(fn)
        d[3].append(args)
        d[4].append(handle)

    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} < now={self.now}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args)
        ev._sim = self
        # non-list "still queued" sentinel: cancellation is detected at
        # dispatch via ``ev.cancelled`` (like the heap kernel) instead
        # of tombstoning array cells in place.
        ev._entry = True
        self._live += 1
        self._append(time, seq, fn, args, ev)
        return ev

    def post(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} < now={self.now}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        self._append(time, seq, fn, args, None)

    def post_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        self._append(time, seq, fn, args, None)

    def schedule_pair(
        self,
        t1: float,
        fn1: Callable[..., Any],
        args1: tuple,
        t2: float,
        fn2: Callable[..., Any],
        args2: tuple,
    ) -> None:
        if t1 < self.now:
            raise SimulationError(f"cannot schedule at t={t1} < now={self.now}")
        if t2 < t1:
            raise SimulationError(f"chained firing at t={t2} precedes first at t={t1}")
        seq = self._seq
        self._seq = seq + 2
        self._live += 2
        # both seqs reserved now -> firing order is bit-identical to two
        # independent schedules, exactly like the other kernels.
        self._append(t1, seq, fn1, args1, None)
        self._append(t2, seq + 1, fn2, args2, None)

    def add_channel(
        self,
        times: Any,
        period: float,
        fn: Optional[Callable[[int, float], Any]] = None,
        label: str = "channel",
    ) -> BatchChannel:
        """Register a vectorised recurring-event population (see
        :class:`BatchChannel`).  Channel firings count toward
        ``events_dispatched`` and ``pending()``; a run with active
        channels needs ``until=`` or ``max_events=`` (the population
        recurs forever)."""
        ch = BatchChannel(self, times, period, fn=fn, label=label)
        self._channels.append(ch)
        return ch

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _advance_slot(self, max_slot: int) -> bool:
        """Materialise the earliest pending slot at or below
        ``max_slot``: sort its parallel arrays into consumption order
        (vectorised lexsort on (time, seq) for large slots).  False when
        no such slot remains."""
        heap = self._slot_heap
        slots = self._slots
        while heap:
            i = heap[0]
            d = slots.get(i)
            if d is None:  # stale heap entry (defensive; never expected)
                heapq.heappop(heap)
                continue
            if i > max_slot:
                return False
            heapq.heappop(heap)
            del slots[i]
            times, seqs, fns, argss, handles = d
            n = len(times)
            if np is not None and n >= _LEXSORT_MIN:
                order = np.lexsort((seqs, times))[::-1].tolist()
            else:
                order = sorted(
                    range(n), key=lambda j: (times[j], seqs[j]), reverse=True
                )
            self._cur_times = times
            self._cur_seqs = seqs
            self._cur_fns = fns
            self._cur_argss = argss
            self._cur_handles = handles
            self._cur_order = order
            self._cur_slot = i
            return True
        return False

    def _dispatch_general(
        self, until_f: float, max_slot: int, t_lt: float, limit: int
    ) -> tuple:
        """Dispatch array-stored events in (time, seq) order, bounded by
        ``until_f`` (inclusive), ``t_lt`` (exclusive), slots up to
        ``max_slot``, and at most ``limit`` events.  Returns
        ``(dispatched, hit_until)``."""
        spill = self._spill
        counts = self.event_counts
        dispatched = 0
        hit_until = False
        while dispatched < limit:
            order = self._cur_order
            e = spill[-1] if spill else None
            if order:
                j = order[-1]
                t = self._cur_times[j]
                if e is not None and (
                    e[0] < t or (e[0] == t and e[1] < self._cur_seqs[j])
                ):
                    from_spill = True
                    t = e[0]
                else:
                    from_spill = False
            elif e is not None:
                from_spill = True
                t = e[0]
            else:
                if self._advance_slot(max_slot):
                    continue
                break
            if t >= t_lt:
                break
            if t > until_f:
                hit_until = True
                break
            if from_spill:
                spill.pop()
                fn = e[_S_FN]
                a = e[_S_ARGS]
                h = e[_S_HANDLE]
            else:
                order.pop()
                fn = self._cur_fns[j]
                a = self._cur_argss[j]
                h = self._cur_handles[j]
            if h is not None:
                if h.cancelled:
                    continue  # cancel() already debited _live
                h._entry = None  # detach: a late cancel() is a no-op
            self.now = t
            dispatched += 1
            if counts is not None:
                key = getattr(fn, "__qualname__", None) or repr(fn)
                counts[key] = counts.get(key, 0) + 1
            if a:
                fn(*a)
            else:
                fn()
        return dispatched, hit_until

    def _peek_general_slot(self) -> Optional[int]:
        """Filed slot index of the next pending general event (an upper
        bound when only spill entries remain), or None when empty."""
        if self._cur_order or self._spill:
            return self._cur_slot
        heap = self._slot_heap
        slots = self._slots
        while heap and heap[0] not in slots:  # defensive staleness sweep
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _fire_channels(
        self, channels: List[BatchChannel], slot_end: float, until_f: float, budget: int
    ) -> int:
        """Fire every channel element due before ``slot_end`` (and at or
        before ``until_f``), in rounds, honouring ``budget`` exactly.
        Returns the number of firings."""
        fired_total = 0
        while fired_total < budget:
            masks = []
            total_due = 0
            for ch in channels:
                m = ch.times < slot_end
                if until_f != _INF:
                    m &= ch.times <= until_f
                masks.append(m)
                total_due += int(m.sum())
            if total_due == 0:
                break
            if total_due <= budget - fired_total:
                t_max = -_INF
                for ch, m in zip(channels, masks):
                    n = int(m.sum())
                    if not n:
                        continue
                    tm = float(ch.times[m].max())
                    if tm > t_max:
                        t_max = tm
                    np.add(ch.times, ch.period, out=ch.times, where=m)
                    ch.fired += n
                    if ch.fn is not None:
                        ch.fn(n, slot_end)
                fired_total += total_due
                if t_max > self.now:
                    self.now = t_max
            else:
                # exact cut: take the budget-smallest firings by
                # (time, channel order, element index) so max_events
                # stops on an exact event boundary like every kernel.
                cut = budget - fired_total
                parts_t, parts_c, parts_e = [], [], []
                for ci, (ch, m) in enumerate(zip(channels, masks)):
                    idx = np.nonzero(m)[0]
                    if idx.size:
                        parts_t.append(ch.times[idx])
                        parts_c.append(np.full(idx.size, ci, dtype=np.int64))
                        parts_e.append(idx)
                T = np.concatenate(parts_t)
                C = np.concatenate(parts_c)
                E = np.concatenate(parts_e)
                pick = np.lexsort((E, C, T))[:cut]
                for ci, ch in enumerate(channels):
                    sel = E[pick[C[pick] == ci]]
                    if sel.size:
                        ch.times[sel] += ch.period
                        ch.fired += int(sel.size)
                        if ch.fn is not None:
                            ch.fn(int(sel.size), slot_end)
                t_max = float(T[pick].max())
                if t_max > self.now:
                    self.now = t_max
                fired_total += cut
                break
        return fired_total

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        until_f = _INF if until is None else until
        limit = _NO_LIMIT if max_events is None else max_events
        channels = [ch for ch in self._channels if ch._active and ch.times.size]
        if not channels:
            g, hit_until = self._dispatch_general(until_f, _NO_LIMIT, _INF, limit)
            # deferred batch debit, mirroring the bucket kernel: cancel()
            # debits directly, subtraction commutes.
            self._live -= g
            self.events_dispatched += g
            if until is not None and self.now < until and (hit_until or self._live == 0):
                self.now = until
            return
        if until is None and max_events is None:
            raise SimulationError(
                "run() with active channels needs until= or max_events= "
                "(channel populations recur forever)"
            )
        w = self._slot_w
        inv = self._inv_slot
        g_total = 0
        c_total = 0
        hit_until = False
        while g_total + c_total < limit:
            t_c = min(float(ch.times.min()) for ch in channels)
            kg = self._peek_general_slot()
            if kg is None and t_c > until_f:
                hit_until = True
                break
            kc = int(t_c * inv)
            slot_end = (kc + 1) * w
            if t_c >= slot_end:  # float rounding at the slot boundary
                kc += 1
                slot_end = (kc + 1) * w
            k = kc if kg is None else min(kg, kc)
            g_iter = 0
            if kg is not None and kg <= k:
                g_iter, hit = self._dispatch_general(
                    until_f, k, (k + 1) * w, limit - g_total - c_total
                )
                g_total += g_iter
                if hit:
                    hit_until = True
                    break
                if g_total + c_total >= limit:
                    break
            c_iter = 0
            if k == kc:
                c_iter = self._fire_channels(
                    channels, slot_end, until_f, limit - g_total - c_total
                )
                c_total += c_iter
            if g_iter == 0 and c_iter == 0:
                # float-boundary stall: an entry filed in slot k carries
                # a time an ulp past the slot end.  Fire one event
                # unbounded by t_lt — nothing else is due before it.
                g_iter, hit = self._dispatch_general(until_f, k, _INF, 1)
                g_total += g_iter
                if hit:
                    hit_until = True
                    break
                if g_iter == 0:
                    break  # defensive: nothing can make progress
        self._live -= g_total
        self.events_dispatched += g_total + c_total
        if until is not None and self.now < until and hit_until:
            self.now = until

    # ------------------------------------------------------------------
    # introspection (guard / watchdog / tests)
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        best: Optional[float] = None
        order = self._cur_order
        for j in reversed(order):  # descending order: min time at the end
            h = self._cur_handles[j]
            if h is None or not h.cancelled:
                best = self._cur_times[j]
                break
        for e in reversed(self._spill):
            h = e[_S_HANDLE]
            if h is None or not h.cancelled:
                t = e[_S_TIME]
                if best is None or t < best:
                    best = t
                break
        for d in self._slots.values():
            for t, h in zip(d[0], d[4]):
                if (h is None or not h.cancelled) and (best is None or t < best):
                    best = t
        for ch in self._channels:
            if ch._active and ch.times.size:
                t = float(ch.times.min())
                if best is None or t < best:
                    best = t
        return best

    def pending(self) -> int:
        n = self._live
        for ch in self._channels:
            if ch._active:
                n += int(ch.times.size)
        return n

    def queue_snapshot(self) -> dict:
        counts: dict = {}

        def _count(fn: Any) -> None:
            key = getattr(fn, "__qualname__", None) or repr(fn)
            counts[key] = counts.get(key, 0) + 1

        for j in self._cur_order:
            h = self._cur_handles[j]
            if h is None or not h.cancelled:
                _count(self._cur_fns[j])
        for e in self._spill:
            h = e[_S_HANDLE]
            if h is None or not h.cancelled:
                _count(e[_S_FN])
        for d in self._slots.values():
            for fn, h in zip(d[2], d[4]):
                if h is None or not h.cancelled:
                    _count(fn)
        for ch in self._channels:
            if ch._active and ch.times.size:
                key = f"channel:{ch.label}"
                counts[key] = counts.get(key, 0) + int(ch.times.size)
        return counts
