"""Deterministic discrete-event simulation engine.

Time is a ``float`` in **nanoseconds**.  Events scheduled for the same
instant fire in scheduling order (FIFO tie-break via a monotonically
increasing sequence number), which makes every simulation in this
repository bit-for-bit reproducible for a fixed seed.

Three interchangeable kernels implement that contract (see
docs/performance.md):

* ``"bucket"`` (the default) — a calendar/bucket queue covering a
  sliding near-future window, with a binary-heap overflow for events
  beyond the window.  The dominant event classes of a packet-grain
  interconnect simulation (link serialisation completions, deliveries,
  credit returns, matching rounds) land a few hundred nanoseconds to a
  few microseconds ahead, so almost every insertion is an O(1) list
  append; a bucket is sorted once (C-level, on ``(time, seq)``) when
  the clock enters it.  Queue entries are mutable lists recycled
  through a free-list, and the :meth:`Simulator.post` /
  :meth:`Simulator.schedule_pair` fast paths skip the cancellation
  handle entirely, so steady-state dispatch allocates nothing.
* ``"heap"`` — the original engine, faithfully: a ``heapq`` of
  ``(time, seq, Event)`` tuples with one handle object allocated per
  event (``post``/``schedule_pair`` degrade to plain ``schedule``
  calls consuming the same sequence numbers).  Kept as the golden
  reference and the benchmark baseline; ``Simulator(kernel="heap")``
  (or ``REPRO_SIM_KERNEL=heap``) selects it, and the equivalence tests
  assert byte-identical results against the bucket kernel across all
  schemes.
* ``"batch"`` — the struct-of-arrays slot kernel
  (:mod:`repro.sim.batch`): pending events live in flat parallel
  arrays keyed by MTU-slot index, each slot is ordered once with a
  vectorised ``lexsort`` when the clock enters it, and homogeneous
  recurring event populations can be promoted to vectorised
  *channels* (:meth:`repro.sim.batch.BatchSimulator.add_channel`)
  that advance a whole array of timers per slot instead of running
  one Python callback per event.  ``Simulator(kernel="batch")`` (or
  ``REPRO_SIM_KERNEL=batch``) transparently constructs a
  :class:`~repro.sim.batch.BatchSimulator`.

All kernels share the seq allocator and dispatch order ``(time,
seq)``, so they fire the exact same callbacks in the exact same order:
determinism is the contract, the kernel is an implementation detail.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "KERNELS",
    "DEFAULT_KERNEL",
    "resolve_kernel",
]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


#: the available queue kernels (see module docstring).
KERNELS = ("bucket", "heap", "batch")
#: process-wide default kernel; the ``REPRO_SIM_KERNEL`` environment
#: variable overrides it (inherited by sweep worker processes).
DEFAULT_KERNEL = "bucket"
_KERNEL_ENV = "REPRO_SIM_KERNEL"

#: calendar-queue geometry defaults.  Buckets are kept *narrower* than
#: the shortest recurring delay (the 40 ns wire delay): an event landing
#: in the bucket currently being consumed needs an O(bucket-population)
#: ``insort``, while anything filed into a later bucket is an O(1)
#: append — so a sub-wire-delay width turns virtually every insertion
#: into an append regardless of how many events are in flight.  The
#: window still spans ~262 µs, far beyond every recurring delay (link
#: delays, control hops, IRD timers, metric sampling periods).
DEFAULT_BUCKET_NS = 32.0
DEFAULT_NUM_BUCKETS = 8192

#: free-list caps — bound worst-case idle memory, never hit in steady
#: state (pool population ≈ peak concurrently-queued events).
_ENTRY_POOL_MAX = 8192

_INF = float("inf")


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """``kernel`` argument > ``REPRO_SIM_KERNEL`` env > module default.

    Names match case-insensitively (``"BATCH"`` resolves to
    ``"batch"``); an unknown name raises :class:`ValueError` with a
    did-you-mean hint — the CLI turns that into exit code 2, the same
    contract as unknown scheme/routing names.
    """
    if kernel is None:
        kernel = os.environ.get(_KERNEL_ENV) or DEFAULT_KERNEL
    if kernel in KERNELS:
        return kernel
    folded = str(kernel).strip().casefold()
    for known in KERNELS:
        if folded == known:
            return known
    import difflib

    close = difflib.get_close_matches(folded, KERNELS, n=1, cutoff=0.4)
    hint = f" — did you mean {close[0]!r}?" if close else ""
    raise ValueError(
        f"unknown simulator kernel {kernel!r}{hint}; choose from {KERNELS}"
    )


def _noop(*_args: Any) -> None:
    return None


class _Cancelled:
    """Callable sentinel planted in a queue entry's ``fn`` slot by
    :meth:`Event.cancel` — an identity check at pop time is cheaper
    than an attribute load on a handle object."""

    __slots__ = ()

    def __call__(self, *_args: Any) -> None:  # pragma: no cover - never invoked
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<cancelled>"


_CANCELLED = _Cancelled()

# Queue-entry layout.  Entries are *lists* (mutable, recyclable) that
# compare lexicographically exactly like the historical ``(time, seq,
# ...)`` tuples; ``seq`` is unique so a comparison never reaches the
# non-orderable fn slot.  A chained entry (``schedule_pair``) carries
# its second firing inline and is re-filed in place of being freed.
_TIME, _SEQ, _FN, _ARGS, _T2, _S2, _FN2, _ARGS2, _HANDLE = range(9)


def _insort_desc(lst: list, e: list) -> None:
    """Insert ``e`` into ``lst``, kept sorted in *descending* (time,
    seq) order — the bucket being consumed, which dispatch pops from
    the end (O(1), and consumed entries leave the list, so there is
    never a stale prefix to skip).  Only an event landing less than
    one bucket width ahead takes this path — mostly same-instant posts
    (a switch kicking itself at ``now``).  A new strict minimum is a
    plain append (the small-config common case); otherwise bisect,
    because slot-aligned kick bursts on the 64-node config put ~10-40
    equal-time entries ahead of the insertion point, which a linear
    scan would walk every time."""
    et = e[0]
    es = e[1]
    hi = len(lst)
    if hi:
        m = lst[-1]
        if m[0] > et or (m[0] == et and m[1] > es):
            lst.append(e)
            return
        hi -= 1  # lst[-1] precedes e, so the slot is at most hi - 1
    else:
        lst.append(e)
        return
    lo = 0
    while lo < hi:
        mid = (lo + hi) // 2
        m = lst[mid]
        if m[0] > et or (m[0] == et and m[1] > es):
            lo = mid + 1
        else:
            hi = mid
    lst.insert(lo, e)


class Event:
    """Handle for a cancellable scheduled callback.

    Returned by :meth:`Simulator.schedule`; keep it only if you may
    need to :meth:`cancel` the event later.  Cancellation is O(1): the
    queue entry is tombstoned and skipped at pop time.  The hot-path
    scheduling APIs (:meth:`Simulator.post`,
    :meth:`Simulator.schedule_pair`) do not create handles at all.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_entry", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # "still queued" marker: the bucket kernel's list entry, or the
        # heap kernel's (time, seq, Event) tuple.  None once fired.
        self._entry: Any = None
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op after
        the event has already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled events do not pin component
        # state alive inside the queue until they are popped.
        self.fn = _noop
        self.args = ()
        # ``_entry`` marks "still queued": the bucket kernel stores the
        # recyclable list entry here (tombstoned below); the heap
        # kernel stores its heap tuple, checked via ``cancelled`` at
        # pop time.  Dispatch clears it, making a late cancel a no-op.
        e = self._entry
        if e is not None:
            self._entry = None
            if type(e) is list:
                e[_FN] = _CANCELLED
                e[_ARGS] = ()
                e[_FN2] = None
                e[_ARGS2] = None
                e[_HANDLE] = None
            sim = self._sim
            if sim is not None:
                sim._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.1f} seq={self.seq} {state}>"


class Simulator:
    """Event queue + clock.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, handler, arg1, arg2)   # absolute time
        sim.schedule_in(5.0, handler)             # relative delay
        sim.post(12.0, handler)                   # pooled, no handle
        sim.run(until=1_000_000.0)

    The engine guarantees:

    * events fire in non-decreasing time order;
    * equal-time events fire in the order they were scheduled;
    * a handler scheduling new events at the *current* time has them run
      within the same instant, after already-pending equal-time events.

    Parameters
    ----------
    kernel:
        ``"bucket"`` (default), ``"heap"`` or ``"batch"``; ``None``
        resolves through :func:`resolve_kernel` (``REPRO_SIM_KERNEL``
        env override).  ``"batch"`` transparently constructs a
        :class:`repro.sim.batch.BatchSimulator`.
    bucket_ns, num_buckets:
        Calendar-queue geometry (bucket kernel only).
    profile:
        Maintain :attr:`event_counts`, a per-callback-qualname dispatch
        histogram consumed by :mod:`repro.perf`.  Off by default — it
        costs a dict update per event.
    """

    __slots__ = (
        "now",
        "_seq",
        "_heap",
        "_live",
        "events_dispatched",
        "kernel",
        "_bucketed",
        "_base",
        "_width",
        "_inv_width",
        "_span",
        "_nbuckets",
        "_buckets",
        "_nbucketed",
        "_bidx",
        "_cur",
        "_cur_bi",
        "_pool",
        "event_counts",
    )

    def __new__(cls, kernel: Optional[str] = None, *args: Any, **kwargs: Any):
        # ``Simulator(kernel="batch")`` (or the env override) hands the
        # whole construction to the struct-of-arrays kernel, so every
        # call site — runner, sweep workers, guard, perf — selects it
        # through the exact same ``kernel=`` plumbing as the others.
        if cls is Simulator and resolve_kernel(kernel) == "batch":
            from repro.sim.batch import BatchSimulator

            return object.__new__(BatchSimulator)
        return object.__new__(cls)

    def __init__(
        self,
        kernel: Optional[str] = None,
        bucket_ns: float = DEFAULT_BUCKET_NS,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        profile: bool = False,
    ) -> None:
        if bucket_ns <= 0:
            raise ValueError(f"bucket_ns must be positive, got {bucket_ns}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.kernel = resolve_kernel(kernel)
        self._bucketed = self.kernel == "bucket"
        self.now: float = 0.0
        self._seq: int = 0
        #: overflow heap (bucket kernel) / the whole queue (heap kernel).
        self._heap: list = []
        #: live (non-cancelled, not-yet-fired) events — O(1) pending().
        self._live: int = 0
        #: total events executed — useful for performance reporting.
        self.events_dispatched: int = 0
        #: per-callback dispatch histogram (``profile=True`` only).
        self.event_counts: Optional[dict] = {} if profile else None
        # calendar-queue state
        self._base: float = 0.0
        self._width = float(bucket_ns)
        self._inv_width = 1.0 / float(bucket_ns)
        self._nbuckets = int(num_buckets)
        self._span = self._width * self._nbuckets
        self._buckets: list = [[] for _ in range(self._nbuckets)] if self._bucketed else []
        self._nbucketed = 0          # entries in _buckets (excludes _cur)
        self._bidx = 0               # next bucket index to scan
        #: bucket being consumed: sorted descending, popped from the end
        self._cur: list = []
        self._cur_bi = -1            # bucket index _cur was built from
        #: entry free-list (bucket kernel only — the heap kernel keeps
        #: the historical allocate-per-event behaviour as the baseline).
        self._pool: Optional[list] = [] if self._bucketed else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _file(self, e: list) -> None:
        """Place an entry into the bucket window or the overflow heap.

        The overflow heap receives *only* events at or beyond the
        window end (``rel >= span``), so every heap entry strictly
        follows every windowed entry and the dispatch loop never has
        to compare the heap head against the current bucket — the
        rebase in :meth:`_refill` is the only path that drains it.
        Everything else lands in a bucket: float rounding at the
        window rim clamps into the last bucket, and a bucket at or
        behind the one being consumed (same-instant posts; a schedule
        after ``run`` returned mid-bucket) sorts into ``_cur``, whose
        descending order puts it right where it fires."""
        rel = e[_TIME] - self._base
        if rel >= self._span:
            heapq.heappush(self._heap, e)
            return
        i = int(rel * self._inv_width) if rel > 0.0 else 0
        if i > self._cur_bi:
            if i >= self._nbuckets:  # float rounding at the window rim
                i = self._nbuckets - 1
                if i == self._cur_bi:
                    _insort_desc(self._cur, e)
                    return
            self._buckets[i].append(e)
            self._nbucketed += 1
        else:
            _insort_desc(self._cur, e)

    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns a
        cancellable :class:`Event` handle.

        Raises :class:`SimulationError` if ``time`` lies in the past.
        Scheduling exactly at :attr:`now` is allowed (the event runs
        later within the same instant).
        """
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} < now={self.now}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args)
        ev._sim = self
        self._live += 1
        if self._bucketed:
            pool = self._pool
            if pool:
                e = pool.pop()
                e[_TIME] = time
                e[_SEQ] = seq
                e[_FN] = fn
                e[_ARGS] = args
            else:
                e = [time, seq, fn, args, 0.0, 0, None, None, None]
            e[_HANDLE] = ev
            ev._entry = e
            self._file(e)
        else:
            # legacy kernel: the handle itself rides in the heap tuple.
            ev._entry = e = (time, seq, ev)
            heapq.heappush(self._heap, e)
        return ev

    def post(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` with **no**
        cancellation handle — the pooled hot path used by links,
        switches and traffic generators.  Identical ordering semantics
        to :meth:`schedule`."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} < now={self.now}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if self._bucketed:
            pool = self._pool
            if pool:
                e = pool.pop()
                e[_TIME] = time
                e[_SEQ] = seq
                e[_FN] = fn
                e[_ARGS] = args
            else:
                e = [time, seq, fn, args, 0.0, 0, None, None, None]
            rel = time - self._base
            if 0.0 <= rel < self._span:
                i = int(rel * self._inv_width)
                if i > self._cur_bi:
                    if i < self._nbuckets:
                        self._buckets[i].append(e)
                        self._nbucketed += 1
                    else:
                        self._file(e)  # float edge at the window rim
                else:
                    _insort_desc(self._cur, e)
            else:
                self._file(e)
        else:
            # legacy kernel has no handle-free path: allocate the
            # per-event handle exactly as the original engine did.
            ev = Event(time, seq, fn, args)
            ev._sim = self
            ev._entry = e = (time, seq, ev)
            heapq.heappush(self._heap, e)

    def post_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Pooled relative-delay variant of :meth:`post`.  Standalone
        (not delegating) — it is called once per credit return."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if self._bucketed:
            pool = self._pool
            if pool:
                e = pool.pop()
                e[_TIME] = time
                e[_SEQ] = seq
                e[_FN] = fn
                e[_ARGS] = args
            else:
                e = [time, seq, fn, args, 0.0, 0, None, None, None]
            rel = time - self._base
            if 0.0 <= rel < self._span:
                i = int(rel * self._inv_width)
                if i > self._cur_bi:
                    if i < self._nbuckets:
                        self._buckets[i].append(e)
                        self._nbucketed += 1
                    else:
                        self._file(e)  # float edge at the window rim
                else:
                    _insort_desc(self._cur, e)
            else:
                self._file(e)
        else:
            ev = Event(time, seq, fn, args)
            ev._sim = self
            ev._entry = e = (time, seq, ev)
            heapq.heappush(self._heap, e)

    def schedule_pair(
        self,
        t1: float,
        fn1: Callable[..., Any],
        args1: tuple,
        t2: float,
        fn2: Callable[..., Any],
        args2: tuple,
    ) -> None:
        """Schedule two chained firings through **one** queue entry:
        ``fn1(*args1)`` at ``t1``, then ``fn2(*args2)`` at ``t2 >= t1``.

        Both sequence numbers are reserved *now*, so the firing order is
        bit-for-bit identical to ``schedule(t1, fn1, ...); schedule(t2,
        fn2, ...)`` — but only one entry lives in the queue at a time
        and no handle objects are allocated.  Links use this to coalesce
        the serialisation-done + delivery pair of every packet hop.
        Not cancellable.
        """
        if t1 < self.now:
            raise SimulationError(f"cannot schedule at t={t1} < now={self.now}")
        if t2 < t1:
            raise SimulationError(f"chained firing at t={t2} precedes first at t={t1}")
        seq = self._seq
        self._seq = seq + 2
        self._live += 2
        if self._bucketed:
            pool = self._pool
            if pool:
                e = pool.pop()
                e[_TIME] = t1
                e[_SEQ] = seq
                e[_FN] = fn1
                e[_ARGS] = args1
                e[_T2] = t2
                e[_S2] = seq + 1
                e[_FN2] = fn2
                e[_ARGS2] = args2
            else:
                e = [t1, seq, fn1, args1, t2, seq + 1, fn2, args2, None]
            rel = t1 - self._base
            if 0.0 <= rel < self._span:
                i = int(rel * self._inv_width)
                if i > self._cur_bi:
                    if i < self._nbuckets:
                        self._buckets[i].append(e)
                        self._nbucketed += 1
                    else:
                        self._file(e)  # float edge at the window rim
                else:
                    _insort_desc(self._cur, e)
            else:
                self._file(e)
        else:
            # legacy kernel: two independent schedules consuming the
            # same (seq, seq+1) pair — bit-identical firing order.
            ev1 = Event(t1, seq, fn1, args1)
            ev1._sim = self
            ev1._entry = e1 = (t1, seq, ev1)
            ev2 = Event(t2, seq + 1, fn2, args2)
            ev2._sim = self
            ev2._entry = e2 = (t2, seq + 1, ev2)
            heapq.heappush(self._heap, e1)
            heapq.heappush(self._heap, e2)

    def schedule_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn, *args)

    def call_every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` periodically (metrics sampling, watchdogs).

        The chain starts at ``start`` (default: one period from now) and
        stops after ``end`` if given.  Cancel via the returned
        :class:`PeriodicTask`.
        """
        if period <= 0:
            raise SimulationError(f"non-positive period {period}")
        first = self.now + period if start is None else start
        return PeriodicTask(self, first, period, end, fn, args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _refill(self) -> bool:
        """Point ``_cur`` at the next non-empty bucket (sorted
        descending — dispatch pops from the end), or rebase the window
        onto the overflow heap.  True iff a bucket was materialised."""
        if self._nbucketed:
            buckets = self._buckets
            n = self._nbuckets
            i = self._bidx
            while i < n:
                b = buckets[i]
                if b:
                    self._nbucketed -= len(b)
                    b.sort(reverse=True)
                    buckets[i] = []
                    self._cur = b
                    self._cur_bi = i
                    self._bidx = i
                    return True
                i += 1
            self._nbucketed = 0  # count drift guard; should be unreachable
        # Window exhausted — rebase it onto the overflow heap so far
        # events dispatch bucketed too (and future schedules stay near
        # the new base).
        self._cur = []
        self._cur_bi = -1
        self._bidx = 0
        heap = self._heap
        if not heap:
            self._base = self.now
            return False
        base = heap[0][_TIME]
        self._base = base
        span = self._span
        invw = self._inv_width
        n = self._nbuckets
        buckets = self._buckets
        pop = heapq.heappop
        moved = 0
        while heap:
            rel = heap[0][_TIME] - base
            if rel >= span:
                break
            i = int(rel * invw)
            if i >= n:  # float rounding at the rim: clamp into the window
                i = n - 1
            buckets[i].append(pop(heap))
            moved += 1
        if moved:
            self._nbucketed += moved
            return self._refill()
        return False

    def _run_bucket(self, until: Optional[float], max_events: Optional[int]) -> None:
        pool = self._pool
        pool_append = pool.append
        counts = self.event_counts
        CANC = _CANCELLED
        until_f = _INF if until is None else until
        limit = (1 << 62) if max_events is None else max_events
        dispatched = 0
        hit_until = False
        # ``cur`` is the current bucket, sorted descending: ``cur[-1]``
        # is the next event and ``cur.pop()`` consumes it in O(1) with
        # no cursor bookkeeping.  The overflow heap never competes with
        # it (every heap entry lies at or beyond the window end — see
        # :meth:`_file`), so the loop consults only ``cur`` and lets
        # :meth:`_refill` drain the heap on rebase.  Callbacks may
        # insert into the same list object (``_insort_desc``), so it is
        # re-examined every iteration; the local only re-binds on
        # refill.  The window geometry is hoisted too: only
        # :meth:`_refill` rebases it, and it never runs in a callback.
        cur = self._cur
        cur_bi = self._cur_bi
        base = self._base
        span = self._span
        inv_width = self._inv_width
        nbuckets = self._nbuckets
        buckets = self._buckets
        while True:
            if cur:
                e = cur[-1]
            elif self._refill():
                cur = self._cur
                cur_bi = self._cur_bi
                base = self._base
                continue
            else:
                break  # drained
            fn = e[2]
            if fn is CANC:
                cur.pop()
                e[3] = None
                if len(pool) < _ENTRY_POOL_MAX:
                    pool_append(e)
                continue
            t = e[0]
            if t > until_f:
                hit_until = True
                break
            cur.pop()
            self.now = t
            dispatched += 1
            if counts is not None:
                key = getattr(fn, "__qualname__", None) or repr(fn)
                counts[key] = counts.get(key, 0) + 1
            a = e[3]
            if a:
                fn(*a)
            else:
                fn()
            if e[6] is not None:
                # chained entry: re-file in place for its second firing
                # (filing inlined — one per link hop, always near-future)
                t2 = e[4]
                e[0] = t2
                e[1] = e[5]
                e[2] = e[6]
                e[3] = e[7]
                e[6] = None
                e[7] = None
                rel = t2 - base
                if 0.0 <= rel < span:
                    i = int(rel * inv_width)
                    if i > cur_bi:
                        if i < nbuckets:
                            buckets[i].append(e)
                            self._nbucketed += 1
                        else:
                            self._file(e)  # float edge at the rim
                    else:
                        _insort_desc(cur, e)
                else:
                    self._file(e)
            else:
                h = e[8]
                if h is not None:
                    h._entry = None
                    e[8] = None
                e[2] = None
                e[3] = None
                if len(pool) < _ENTRY_POOL_MAX:
                    pool_append(e)
            if dispatched >= limit:
                break
        # The per-event ``_live`` debit is deferred to one batch
        # subtraction here: ``cancel()`` debits the attribute directly
        # even mid-batch, and subtraction commutes, so the counter is
        # exact again the moment run() returns (see :meth:`pending`).
        self._live -= dispatched
        self.events_dispatched += dispatched
        if until is not None and self.now < until and (hit_until or self._live == 0):
            self.now = until

    def _run_heap(self, until: Optional[float], max_events: Optional[int]) -> None:
        # The original engine's loop, preserved as the golden reference
        # and benchmark baseline: peek the (time, seq, Event) tuple,
        # skip tombstones via the handle's ``cancelled`` attribute,
        # dispatch through the handle's fn/args.
        heap = self._heap
        counts = self.event_counts
        pop = heapq.heappop
        dispatched = 0
        hit_until = False
        while heap:
            t, _s, ev = heap[0]
            if ev.cancelled:
                pop(heap)
                continue
            if until is not None and t > until:
                hit_until = True
                break
            pop(heap)
            self.now = t
            self._live -= 1
            # detach so a late cancel() is a true no-op
            ev._entry = None
            dispatched += 1
            fn = ev.fn
            if counts is not None:
                key = getattr(fn, "__qualname__", None) or repr(fn)
                counts[key] = counts.get(key, 0) + 1
            fn(*ev.args)
            if max_events is not None and dispatched >= max_events:
                break
        self.events_dispatched += dispatched
        if until is not None and self.now < until and (hit_until or self._live == 0):
            self.now = until

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been dispatched.

        ``until`` is inclusive: events stamped exactly ``until`` run.
        On return, :attr:`now` is ``until`` when the queue is drained or
        every remaining event lies beyond ``until``; a stop on
        ``max_events`` leaves the clock at the last event executed so a
        subsequent :meth:`run` resumes without misordering.
        """
        if self._bucketed:
            self._run_bucket(until, max_events)
        else:
            self._run_heap(until, max_events)

    def step(self) -> bool:
        """Run the single next pending event.  Returns False when idle."""
        before = self.events_dispatched
        self.run(max_events=1)
        return self.events_dispatched != before

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (live) event, or None when idle."""
        CANC = _CANCELLED
        best: Optional[float] = None
        cur = self._cur
        for i in range(len(cur) - 1, -1, -1):  # descending: min at the end
            e = cur[i]
            if e[2] is not CANC:
                best = e[0]
                break
        if self._nbucketed:
            for b in self._buckets:
                for e in b:
                    if e[2] is not CANC and (best is None or e[0] < best):
                        best = e[0]
        heap = self._heap
        if self._bucketed:
            while heap and heap[0][2] is CANC:
                heapq.heappop(heap)
        else:
            # legacy kernel: heap holds (time, seq, Event) tuples
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
        if heap and (best is None or heap[0][0] < best):
            best = heap[0][0]
        return best

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)
        via a counter maintained on schedule/cancel/dispatch.

        Exact whenever :meth:`run` is not on the stack (the place the
        watchdog/robustness paths call it from); inside a callback the
        bucket kernel may over-report by the events dispatched so far
        in the current batch, whose debits are synced when the batch
        ends."""
        return self._live

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a batch of events (helper for component teardown)."""
        for ev in events:
            ev.cancel()

    def queue_snapshot(self) -> dict:
        """Histogram of pending callbacks: qualname -> queued count.

        A diagnostic for the invariant guard's watchdog dump (what is
        the simulation waiting on?).  O(pending); never called on the
        dispatch fast path.  Counts both firings of a chained
        :meth:`schedule_pair` entry; cancelled tombstones are skipped.
        """
        counts: dict = {}

        def _count(fn: Any) -> None:
            key = getattr(fn, "__qualname__", None) or repr(fn)
            counts[key] = counts.get(key, 0) + 1

        if self._bucketed:
            CANC = _CANCELLED
            buckets = [self._cur, *self._buckets]
            for bucket in buckets:
                for e in bucket:
                    if e[_FN] is not CANC:
                        _count(e[_FN])
                        if e[_FN2] is not None:
                            _count(e[_FN2])
            for e in self._heap:
                if e[_FN] is not CANC:
                    _count(e[_FN])
                    if e[_FN2] is not None:
                        _count(e[_FN2])
        else:
            for _t, _s, ev in self._heap:
                if not ev.cancelled:
                    _count(ev.fn)
        return counts


class PeriodicTask:
    """A repeating callback chain created by :meth:`Simulator.call_every`."""

    __slots__ = ("sim", "period", "end", "fn", "args", "cancelled", "_next")

    def __init__(
        self,
        sim: Simulator,
        first: float,
        period: float,
        end: Optional[float],
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.sim = sim
        self.period = period
        self.end = end
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._next: Event = sim.schedule(first, self._tick)

    def _tick(self) -> None:
        if self.cancelled:
            return
        nxt = self.sim.now + self.period
        if self.end is None or nxt <= self.end:
            self._next = self.sim.schedule(nxt, self._tick)
        self.fn(*self.args)

    def cancel(self) -> None:
        self.cancelled = True
        self._next.cancel()
