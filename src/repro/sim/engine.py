"""Deterministic discrete-event simulation engine.

Time is a ``float`` in **nanoseconds**.  Events scheduled for the same
instant fire in scheduling order (FIFO tie-break via a monotonically
increasing sequence number), which makes every simulation in this
repository bit-for-bit reproducible for a fixed seed.

The engine is intentionally minimal — components schedule plain
callbacks.  Profiling (see DESIGN.md §5) showed the dominant costs in a
packet-grain interconnect simulation are event dispatch and switch
matching, so the hot path here is a bare ``heapq`` loop with no object
indirection beyond the :class:`Event` handle needed for cancellation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; keep it only if you may need
    to :meth:`cancel` the event later.  Cancellation is O(1): the heap
    entry is tombstoned and skipped at pop time.

    The heap itself stores ``(time, seq, event)`` tuples so ordering
    comparisons run on C-level floats/ints — with millions of events
    per simulated millisecond, Python-level ``__lt__`` dispatch was one
    of the top profile entries (see the optimisation guide's "measure,
    then optimise the bottleneck").
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events do not pin component state
        # alive inside the heap until they are popped.
        self.fn = _noop
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.1f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Event queue + clock.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, handler, arg1, arg2)   # absolute time
        sim.schedule_in(5.0, handler)             # relative delay
        sim.run(until=1_000_000.0)

    The engine guarantees:

    * events fire in non-decreasing time order;
    * equal-time events fire in the order they were scheduled;
    * a handler scheduling new events at the *current* time has them run
      within the same instant, after already-pending equal-time events.
    """

    __slots__ = ("_now", "_seq", "_heap", "_running", "events_dispatched")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        #: heap of (time, seq, Event) tuples.
        self._heap: list[tuple[float, int, Event]] = []
        self._running = False
        #: total events executed — useful for performance reporting.
        self.events_dispatched: int = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``.

        Raises :class:`SimulationError` if ``time`` lies in the past.
        Scheduling exactly at :attr:`now` is allowed (the event runs
        later within the same instant).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, ev))
        self._seq += 1
        return ev

    def schedule_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, fn, *args)

    def call_every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` periodically (metrics sampling, watchdogs).

        The chain starts at ``start`` (default: one period from now) and
        stops after ``end`` if given.  Cancel via the returned
        :class:`PeriodicTask`.
        """
        if period <= 0:
            raise SimulationError(f"non-positive period {period}")
        first = self._now + period if start is None else start
        return PeriodicTask(self, first, period, end, fn, args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.  Returns False when idle."""
        heap = self._heap
        while heap:
            _t, _s, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self.events_dispatched += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been dispatched.

        ``until`` is inclusive: events stamped exactly ``until`` run.
        On return, :attr:`now` is ``until`` (if given) or the time of
        the last event executed.
        """
        heap = self._heap
        dispatched = 0
        pop = heapq.heappop
        while heap:
            t, _s, ev = heap[0]
            if ev.cancelled:
                pop(heap)
                continue
            if until is not None and t > until:
                break
            pop(heap)
            self._now = t
            ev.fn(*ev.args)
            dispatched += 1
            if max_events is not None and dispatched >= max_events:
                break
        self.events_dispatched += dispatched
        if until is not None and self._now < until:
            self._now = until

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, ev in self._heap if not ev.cancelled)

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a batch of events (helper for component teardown)."""
        for ev in events:
            ev.cancel()


class PeriodicTask:
    """A repeating callback chain created by :meth:`Simulator.call_every`."""

    __slots__ = ("sim", "period", "end", "fn", "args", "cancelled", "_next")

    def __init__(
        self,
        sim: Simulator,
        first: float,
        period: float,
        end: Optional[float],
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.sim = sim
        self.period = period
        self.end = end
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._next: Event = sim.schedule(first, self._tick)

    def _tick(self) -> None:
        if self.cancelled:
            return
        nxt = self.sim.now + self.period
        if self.end is None or nxt <= self.end:
            self._next = self.sim.schedule(nxt, self._tick)
        self.fn(*self.args)

    def cancel(self) -> None:
        self.cancelled = True
        self._next.cancel()
