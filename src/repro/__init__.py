"""repro — reproduction of *Combining Congested-Flow Isolation and
Injection Throttling in HPC Interconnection Networks* (Escudero-
Sahuquillo et al., ICPP 2011).

The package models lossless, credit-flow-controlled interconnection
networks at packet granularity and implements the paper's congestion
control mechanisms end to end:

* **CCFIT** — the paper's contribution: FBICM-style congested-flow
  isolation (NFQ + dynamically allocated CFQs + CAMs + Stop/Go tree
  propagation) combined with InfiniBand-style injection throttling
  (FECN/BECN, CCT/CCTI at the sources), §III;
* the standalone baselines it is evaluated against: **1Q**, **FBICM**,
  **ITh** (VOQsw + throttling), **VOQnet** and **VOQsw**, §IV-A;
* the three evaluated network configurations (Table I) and four
  traffic cases, with one runner per figure in
  :mod:`repro.experiments`;
* a pluggable routing layer (:mod:`repro.network.routing`): the
  paper's deterministic ``det`` routing plus ``ecmp``, ``adaptive``
  and ``flowlet`` multipath policies for studying how adaptive routing
  interacts with the congestion-control schemes (docs/routing.md).

Quick start::

    from repro import build_fabric, k_ary_n_tree, attach_traffic, FlowSpec

    fabric = build_fabric(k_ary_n_tree(2, 3), scheme="CCFIT", seed=7)
    attach_traffic(fabric, flows=[FlowSpec("F0", src=0, dst=7, rate=2.5)])
    fabric.run(until=2_000_000)          # 2 ms (time unit: ns)
    print(fabric.collector.flow_bandwidth("F0", 0, 2_000_000), "GB/s")
"""

from repro.core.ccfit import (
    SCHEMES,
    Scheme,
    SchemeSpec,
    get_scheme,
    register_scheme,
    scheme_names,
)
from repro.core.params import CCParams, exponential_cct, linear_cct
from repro.metrics.analysis import jain_index, oscillation_score
from repro.metrics.collector import Collector
from repro.network.fabric import Fabric, build_fabric
from repro.network.routing import (
    ROUTING_POLICIES,
    RoutingPolicy,
    RoutingPolicySpec,
    get_policy,
    policy_names,
    register_policy,
)
from repro.network.topology import Topology, config1_adhoc, k_ary_n_tree
from repro.sim.engine import Simulator
from repro.telemetry import TelemetryConfig, TelemetrySampler, TreeTracker
from repro.traffic.flows import FlowSpec, attach_traffic
from repro.traffic import patterns

__version__ = "1.0.0"

__all__ = [
    "SCHEMES",
    "Scheme",
    "SchemeSpec",
    "register_scheme",
    "get_scheme",
    "scheme_names",
    "CCParams",
    "linear_cct",
    "exponential_cct",
    "Collector",
    "jain_index",
    "oscillation_score",
    "Fabric",
    "build_fabric",
    "ROUTING_POLICIES",
    "RoutingPolicy",
    "RoutingPolicySpec",
    "register_policy",
    "get_policy",
    "policy_names",
    "Topology",
    "config1_adhoc",
    "k_ary_n_tree",
    "Simulator",
    "TelemetryConfig",
    "TelemetrySampler",
    "TreeTracker",
    "FlowSpec",
    "attach_traffic",
    "patterns",
]

# Bundled non-paper schemes register themselves on import; this runs
# last so the registry above already holds the paper presets.
import repro.schemes  # noqa: E402,F401
