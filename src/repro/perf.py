"""Performance harness: ``python -m repro perf``.

Two complementary measurements of the simulation substrate, reported
as JSON (``BENCH_engine.json``) so CI and the benchmarks directory can
track regressions:

* **dispatch microbenchmark** — a pure-engine workload shaped like the
  steady state of a packet-grain interconnect simulation: many
  staggered self-sustaining chains, each cycling through a
  serialisation-done + delivery pair plus a credit return.  Run once
  per kernel; on the ``bucket`` kernel the chains use the pooled
  APIs (:meth:`~repro.sim.engine.Simulator.post`,
  :meth:`~repro.sim.engine.Simulator.schedule_pair`) exactly like the
  production :class:`~repro.network.link.Link`, while the ``heap``
  kernel drives the handle-allocating
  :meth:`~repro.sim.engine.Simulator.schedule` path — i.e. the
  pre-optimisation engine end to end — and the ``batch`` kernel drives
  the same three periodic event streams through its vectorised channel
  API (:meth:`~repro.sim.batch.BatchSimulator.add_channel`), the
  struct-of-arrays fast path the slot kernel exists for.  The
  bucket/heap ratio is the headline *speedup*; the batch/bucket ratio
  is *speedup_batch* (gated at ≥3× by ``repro perf --check``).
* **case benchmark** — full figure cells through
  :func:`repro.experiments.runner.run_case` with an injected
  ``Simulator(kernel=..., profile=True)``, reporting wall-clock
  events/s and the per-subsystem event histogram (who the simulation
  actually spends its events on: link, switch, end node, traffic,
  throttling...).

A third measurement, :func:`telemetry_overhead`, gates the telemetry
subsystem (:mod:`repro.telemetry`): one cell with and without the
sampler attached, reporting the wall-clock penalty and verifying the
serialised results are byte-identical either way.  A fourth,
:func:`routing_dispatch_overhead`, gates the routing-policy layer
(:mod:`repro.network.routing`): the det policy's per-packet dispatch
must stay within :data:`ROUTING_GATE_PCT` of the pre-policy direct
table lookup (CI asserts this).

``--profile`` additionally runs one case under :mod:`cProfile` and
prints the top functions by cumulative time.  See docs/performance.md.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, Iterable, List, Sequence

from repro.sim.engine import KERNELS, Simulator

__all__ = [
    "dispatch_microbench",
    "bench_case",
    "subsystem_counts",
    "telemetry_overhead",
    "routing_dispatch_overhead",
    "run_perf",
    "write_report",
    "check_report",
    "PERF_GATES",
    "PERF_GATES_QUICK",
    "CHECK_TOLERANCE",
]

#: the routing-policy indirection budget: the det policy's per-packet
#: dispatch must stay within this percentage of the pre-policy direct
#: table lookup (docs/routing.md; asserted by CI).
ROUTING_GATE_PCT = 5.0

#: hard machine-independent floors enforced by :func:`check_report`
#: (``repro perf --check``): each key is a report ratio that must meet
#: its value regardless of baseline.  ``speedup`` is bucket-vs-heap
#: dispatch (PR 2's win), ``speedup_batch`` is batch-vs-bucket
#: dispatch (this kernel's ≥3× acceptance gate).
PERF_GATES = {"speedup": 1.8, "speedup_batch": 3.0}

#: floors for ``--quick`` reports: a single-repeat 60 k-event
#: microbench measures the bucket-vs-heap gap with real scheduler
#: noise (observed 1.6–2.7× on one host), so the bucket floor is
#: de-rated while the batch floor holds — its margin is ~an order of
#: magnitude, noise cannot mask a real regression through it.
PERF_GATES_QUICK = {"speedup": 1.25, "speedup_batch": 3.0}

#: relative slack for baseline-ratio comparisons in
#: :func:`check_report`: a fresh ratio may fall up to this fraction
#: below the committed baseline's before it counts as a regression.
#: Ratios of two runs on the *same* machine cancel host speed, so the
#: band only has to absorb scheduler noise, not hardware diversity.
CHECK_TOLERANCE = 0.25

#: qualname prefix -> subsystem label for the event histogram.
SUBSYSTEM_PREFIXES = (
    ("Link.", "link"),
    ("Switch.", "switch"),
    ("InputPort.", "switch"),
    ("OutputPort.", "switch"),
    ("EndNode.", "endnode"),
    ("IaStage.", "endnode"),
    ("FlowGenerator.", "traffic"),
    ("UniformGenerator.", "traffic"),
    ("ThrottleState.", "throttling"),
    ("NfqCfqScheme.", "isolation"),
    ("PeriodicTask.", "periodic"),
    ("Collector.", "metrics"),
)

#: the paper's MTU serialisation time / link delay (ns) — the microbench
#: uses the real cadence so bucket geometry is exercised realistically.
_SER_NS = 819.2
_WIRE_NS = 40.0
class _PooledChain:
    """One microbench traffic chain on the bucket kernel's pooled APIs:
    serialisation-done + delivery + credit return per cycle — three
    events, the per-hop event mix of a busy link, scheduled exactly
    like the production :class:`~repro.network.link.Link`.  Callback
    bodies are deliberately minimal so the measurement is of dispatch
    and scheduling, not of callback work."""

    __slots__ = ("sim",)

    def __init__(self, sim: Simulator, start: float) -> None:
        self.sim = sim
        sim.post(start, self._hop, None)

    def _hop(self, pkt: Any) -> None:
        # serialisation-done + delivery as one chained entry; the
        # delivery leg carries a payload argument like Link._deliver.
        sim = self.sim
        done = sim.now + _SER_NS
        sim.schedule_pair(done, self._tx_done, (), done + _WIRE_NS, self._hop, (pkt,))

    def _tx_done(self) -> None:
        self.sim.post_in(_WIRE_NS, self._credit)

    def _credit(self) -> None:
        pass


class _LegacyChain:
    """The same chain driven the way every call site scheduled before
    the pooled APIs existed: one handle-allocating ``schedule`` per
    event — the pre-optimisation engine end to end."""

    __slots__ = ("sim",)

    def __init__(self, sim: Simulator, start: float) -> None:
        self.sim = sim
        sim.schedule(start, self._hop, None)

    def _hop(self, pkt: Any) -> None:
        sim = self.sim
        done = sim.now + _SER_NS
        sim.schedule(done, self._tx_done)
        sim.schedule(done + _WIRE_NS, self._hop, pkt)

    def _tx_done(self) -> None:
        sim = self.sim
        sim.schedule(sim.now + _WIRE_NS, self._credit)

    def _credit(self) -> None:
        pass


def _batch_population(sim: Simulator, chains: int) -> None:
    """The microbench population on the batch kernel's channel API.

    The event streams a :class:`_PooledChain` settles into are exactly
    periodic: per chain starting at ``t``, hops at ``t + k*859.2``,
    serialisation-dones at ``t + 819.2 + k*859.2`` and credit returns
    at ``t + 859.2 + k*859.2``.  Three
    :class:`~repro.sim.batch.BatchChannel`\\ s (one per stream, each
    holding every chain) express that population the way the slot
    kernel wants it: whole firing rounds advanced per MTU slot with no
    per-event Python callback — the same simulated workload, dispatched
    through the struct-of-arrays path.
    """
    import numpy as np

    period = _SER_NS + _WIRE_NS
    starts = 1.0 + np.arange(chains, dtype=np.float64) * 13.1
    sim.add_channel(starts.copy(), period, label="hop")
    sim.add_channel(starts + _SER_NS, period, label="tx_done")
    sim.add_channel(starts + period, period, label="credit")


def dispatch_microbench(
    kernel: str,
    n_events: int = 300_000,
    chains: int = 16_384,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Measure raw dispatch throughput of one kernel.

    ``chains`` sets the pending-event population (~3 live events per
    chain) — the default (~50 k pending events) models the steady
    state of a large fabric, the paper's target domain, where the
    calendar queue's O(1) insertion pays off against the heap's
    O(log n) sift.  The bucket kernel is flat in the population while
    the heap kernel degrades, so smaller ``chains`` values give
    smaller (but still real) speedups — docs/performance.md tabulates
    the scaling.

    Returns ``{"kernel", "events", "wall_s", "events_per_s",
    "alloc_blocks"}`` — ``wall_s`` is the best of ``repeats`` runs
    (standard microbench practice: the minimum is the least noisy
    estimator) and ``alloc_blocks`` the net allocated-block delta of
    one run (:func:`sys.getallocatedblocks`), the pooling headline.
    """
    import gc

    chain_cls = _PooledChain if kernel == "bucket" else _LegacyChain
    best = float("inf")
    alloc = 0
    # rep 0 is an untimed warm-up (interpreter specialisation, branch
    # caches, allocator arenas); each timed rep starts from a collected
    # heap so one rep's garbage is not another rep's pause.
    for rep in range(repeats + 1):
        sim = Simulator(kernel=kernel)
        if kernel == "batch":
            _batch_population(sim, chains)
        else:
            for i in range(chains):
                # stagger starts off the bucket grid so chains do not align
                chain_cls(sim, 1.0 + i * 13.1)
        gc.collect()
        blocks0 = sys.getallocatedblocks()
        t0 = time.perf_counter()
        sim.run(max_events=n_events)
        wall = time.perf_counter() - t0
        alloc = sys.getallocatedblocks() - blocks0
        if sim.events_dispatched != n_events:
            raise RuntimeError(
                f"microbench under-ran: {sim.events_dispatched}/{n_events} events"
            )
        if rep > 0:
            best = min(best, wall)
    return {
        "kernel": kernel,
        "events": n_events,
        "wall_s": best,
        "events_per_s": n_events / best,
        "alloc_blocks": alloc,
    }


def subsystem_counts(event_counts: Dict[str, int]) -> Dict[str, int]:
    """Fold a per-qualname histogram into per-subsystem totals."""
    out: Dict[str, int] = {}
    for qualname, n in event_counts.items():
        label = "other"
        for prefix, sub in SUBSYSTEM_PREFIXES:
            if qualname.startswith(prefix):
                label = sub
                break
        out[label] = out.get(label, 0) + n
    return dict(sorted(out.items(), key=lambda kv: -kv[1]))


def bench_case(
    case: str,
    scheme: str,
    *,
    kernel: str,
    time_scale: float,
    seed: int,
    routing: str = "det",
    profile_counts: bool = True,
) -> Dict[str, Any]:
    """Run one figure cell on ``kernel`` and report events/s plus the
    per-subsystem event histogram."""
    from repro.experiments.runner import run_case

    sims: List[Simulator] = []

    def factory() -> Simulator:
        s = Simulator(kernel=kernel, profile=profile_counts)
        sims.append(s)
        return s

    t0 = time.perf_counter()
    result = run_case(
        case, scheme=scheme, time_scale=time_scale, seed=seed,
        routing=routing, sim_factory=factory,
    )
    wall = time.perf_counter() - t0
    sim = sims[-1]
    row: Dict[str, Any] = {
        "case": case,
        "scheme": scheme,
        "kernel": kernel,
        "routing": routing,
        "time_scale": time_scale,
        "seed": seed,
        "events": sim.events_dispatched,
        "wall_s": wall,
        "events_per_s": sim.events_dispatched / wall if wall > 0 else 0.0,
        "delivered_packets": int(result.stats.get("delivered_packets", 0)),
    }
    if profile_counts and sim.event_counts is not None:
        row["subsystems"] = subsystem_counts(sim.event_counts)
    return row


def telemetry_overhead(
    case: str = "case1",
    scheme: str = "CCFIT",
    *,
    kernel: str = "bucket",
    time_scale: float = 0.05,
    seed: int = 1,
    interval: float = 100_000.0,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Measure the telemetry sampler's cost on one figure cell.

    Runs the cell with and without a
    :class:`~repro.telemetry.TelemetryConfig` attached (best of
    ``repeats`` walls each) and reports the wall-clock penalty plus
    ``byte_identical`` — whether the two runs produced the exact same
    serialised :class:`~repro.experiments.runner.CaseResult` (the
    sampler is read-only by contract; this is the proof).
    """
    from repro.experiments.runner import run_case
    from repro.telemetry import TelemetryConfig

    def measure(telemetry):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_case(
                case,
                scheme=scheme,
                time_scale=time_scale,
                seed=seed,
                sim_factory=lambda: Simulator(kernel=kernel),
                telemetry=telemetry,
            )
            best = min(best, time.perf_counter() - t0)
        return best, result

    wall_off, res_off = measure(None)
    wall_on, res_on = measure(TelemetryConfig(interval=interval))
    on_dict = res_on.to_dict()
    on_dict.pop("telemetry", None)
    identical = json.dumps(on_dict, sort_keys=True) == json.dumps(
        res_off.to_dict(), sort_keys=True
    )
    events = int(res_off.stats["events"])
    return {
        "case": case,
        "scheme": scheme,
        "kernel": kernel,
        "time_scale": time_scale,
        "seed": seed,
        "interval": interval,
        "events": events,
        "wall_off_s": wall_off,
        "wall_on_s": wall_on,
        "event_rate_off": events / wall_off if wall_off > 0 else 0.0,
        "event_rate_on": events / wall_on if wall_on > 0 else 0.0,
        "overhead_pct": 100.0 * (wall_on / wall_off - 1.0) if wall_off > 0 else 0.0,
        "samples": int(res_on.telemetry["ticks"]) if res_on.telemetry else 0,
        "byte_identical": identical,
    }


class _RouteStubPacket:
    __slots__ = ("dst",)

    def __init__(self, dst: int) -> None:
        self.dst = dst


class _SeedSwitchStub:
    __slots__ = ("routing",)

    def __init__(self, table) -> None:
        self.routing = table


class _SeedPortStub:
    """The pre-policy dispatch shape: ``route`` is a class-level method
    doing one attribute walk plus the table lookup — exactly what
    ``InputPort.route`` compiled to before the policy layer."""

    __slots__ = ("switch",)

    def __init__(self, switch) -> None:
        self.switch = switch

    def route(self, pkt) -> int:
        return self.switch.routing.lookup(pkt.dst)


def routing_dispatch_overhead(
    n_calls: int = 200_000,
    repeats: int = 5,
    gate_pct: float = ROUTING_GATE_PCT,
) -> Dict[str, Any]:
    """Measure the det routing policy's per-packet dispatch cost against
    the pre-policy direct table lookup (the seed's ``InputPort.route``
    method), and gate it at ``gate_pct`` percent.

    The policy layer installs a per-port closure
    (:meth:`~repro.network.routing.DetRoutingPolicy.route_for`) instead
    of dispatching through ``switch.policy.route``, precisely so this
    number stays near zero; CI asserts ``ok``.  Best-of-``repeats``
    walls on both shapes, interleaved so neither side benefits from
    cache warm-up order.
    """
    from repro.network.routing import DetRoutingPolicy, RoutingTable

    table = RoutingTable(0, {dst: dst % 8 for dst in range(64)})
    seed_port = _SeedPortStub(_SeedSwitchStub(table))
    policy_port = _SeedPortStub(_SeedSwitchStub(table))
    # shadow the method exactly like Switch.__init__ does — but the stub
    # has __slots__, so route the closure through a local instead.
    policy_route = DetRoutingPolicy(table).route_for(policy_port)
    seed_route = seed_port.route
    pkts = [_RouteStubPacket(i % 64) for i in range(512)]

    loops = max(1, n_calls // len(pkts))

    def measure_once(route) -> float:
        t0 = time.perf_counter()
        for _ in range(loops):
            for pkt in pkts:
                route(pkt)
        return time.perf_counter() - t0

    # warm both shapes once, then interleave the timed repeats so a
    # noisy-neighbour burst or clock-drift window hits both sides
    # rather than biasing whichever block it lands in
    measure_once(seed_route)
    measure_once(policy_route)
    seed_s = policy_s = float("inf")
    for _ in range(repeats):
        seed_s = min(seed_s, measure_once(seed_route))
        policy_s = min(policy_s, measure_once(policy_route))
    overhead = 100.0 * (policy_s / seed_s - 1.0) if seed_s > 0 else 0.0
    return {
        "calls": max(1, n_calls // len(pkts)) * len(pkts),
        "seed_s": seed_s,
        "policy_s": policy_s,
        "overhead_pct": overhead,
        "gate_pct": gate_pct,
        "ok": overhead <= gate_pct,
    }


def cprofile_case(
    case: str,
    scheme: str,
    *,
    kernel: str,
    time_scale: float,
    seed: int,
    top: int = 25,
) -> str:
    """Run one cell under cProfile; returns the top-``top`` cumulative
    report as text."""
    import cProfile
    import io
    import pstats

    from repro.experiments.runner import run_case

    prof = cProfile.Profile()
    prof.enable()
    run_case(
        case,
        scheme=scheme,
        time_scale=time_scale,
        seed=seed,
        sim_factory=lambda: Simulator(kernel=kernel),
    )
    prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def run_perf(
    *,
    cases: Sequence[str] = ("case1",),
    schemes: Sequence[str] = ("CCFIT",),
    kernels: Iterable[str] = KERNELS,
    time_scale: float = 0.1,
    seed: int = 1,
    micro_events: int = 300_000,
    micro_repeats: int = 3,
    telemetry_interval: float = 100_000.0,
    routing: str = "det",
) -> Dict[str, Any]:
    """Assemble the full ``BENCH_engine.json`` payload.  ``routing``
    selects the policy the case benchmarks run under; the routing
    dispatch gate (:func:`routing_dispatch_overhead`) always runs."""
    kernels = tuple(kernels)
    micro = {k: dispatch_microbench(k, n_events=micro_events, repeats=micro_repeats) for k in kernels}
    report: Dict[str, Any] = {
        "schema": "repro.perf/1",
        "microbench": micro,
        "cases": [],
    }
    if "bucket" in micro and "heap" in micro:
        report["speedup"] = micro["bucket"]["events_per_s"] / micro["heap"]["events_per_s"]
    if "batch" in micro and "bucket" in micro:
        report["speedup_batch"] = (
            micro["batch"]["events_per_s"] / micro["bucket"]["events_per_s"]
        )
    # the routing gate keeps its full repeat count even in quick mode:
    # the measurement is cheap (~0.3 s) and the gate is a hard CI assert
    report["routing"] = routing_dispatch_overhead(repeats=max(5, micro_repeats))
    for case in cases:
        for scheme in schemes:
            for kernel in kernels:
                report["cases"].append(
                    bench_case(
                        case,
                        scheme,
                        kernel=kernel,
                        time_scale=time_scale,
                        seed=seed,
                        routing=routing,
                    )
                )
    report["telemetry"] = [
        telemetry_overhead(
            cases[0],
            schemes[0],
            kernel=kernel,
            time_scale=time_scale,
            seed=seed,
            interval=telemetry_interval,
            repeats=max(1, micro_repeats),
        )
        for kernel in kernels
    ]
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def check_report(
    report: Dict[str, Any],
    baseline: "Dict[str, Any] | None" = None,
    tolerance: float = CHECK_TOLERANCE,
    gates: "Dict[str, float] | None" = None,
) -> "tuple[bool, List[str]]":
    """The perf ratchet behind ``repro perf --check``.

    Compares a fresh ``report`` against hard floors and (optionally)
    the committed ``BENCH_engine.json`` baseline, returning
    ``(ok, lines)`` — ``ok`` False means regression, the CLI exits 1.

    Three classes of check, all machine-independent:

    * **hard floors** (:data:`PERF_GATES`): each speedup *ratio* in
      the report must meet its floor outright.  Ratios divide two
      same-process measurements, so host speed cancels — a slow CI
      runner lowers both numerators and denominators together.
    * **baseline ratchet**: every ratio present in both reports must
      stay within ``tolerance`` (relative) of the baseline's value.
      Absolute events/s are deliberately *not* compared — they track
      the host, not the code.
    * **invariant gates** carried inside the report: the routing
      dispatch gate's ``ok`` and every telemetry row's
      ``byte_identical`` must hold (and must not have held in the
      baseline only to fail now).
    """
    if gates is None:
        gates = PERF_GATES_QUICK if report.get("quick") else PERF_GATES
    lines: List[str] = []
    ok = True

    def fail(msg: str) -> None:
        nonlocal ok
        ok = False
        lines.append(f"FAIL {msg}")

    for key, floor in gates.items():
        value = report.get(key)
        if value is None:
            # a partial run (e.g. --kernel bucket) simply has no such
            # ratio; the gate applies only when the ratio was measured.
            lines.append(f"skip {key}: not in report")
            continue
        if value >= floor:
            lines.append(f"ok   {key}: {value:.2f}x (floor {floor:.1f}x)")
        else:
            fail(f"{key}: {value:.2f}x below hard floor {floor:.1f}x")

    routing = report.get("routing")
    if routing is not None:
        if routing.get("ok", True):
            lines.append(
                f"ok   routing dispatch: {routing['overhead_pct']:+.1f}% "
                f"(gate {routing['gate_pct']:.0f}%)"
            )
        else:
            fail(
                f"routing dispatch overhead {routing['overhead_pct']:+.1f}% "
                f"exceeds gate {routing['gate_pct']:.0f}%"
            )
    for row in report.get("telemetry", []):
        if not row.get("byte_identical", True):
            fail(
                f"telemetry on {row['case']}/{row['scheme']} [{row['kernel']}] "
                "changed results (byte_identical false)"
            )

    def _population(rep: Dict[str, Any]) -> "int | None":
        micro = rep.get("microbench") or {}
        first = next(iter(micro.values()), None)
        return first.get("events") if isinstance(first, dict) else None

    if baseline is None:
        lines.append("note baseline not found: hard floors only")
    elif _population(report) != _population(baseline):
        # the speedup ratios scale with the microbench population (the
        # batch channel advantage grows with events per slot), so a
        # --quick run compared against the committed full baseline
        # would regress spuriously.  The hard floors above — already
        # de-rated for quick mode — carry the gate instead.
        lines.append(
            f"note baseline population differs "
            f"({_population(baseline)} vs {_population(report)} events): "
            "ratio ratchet skipped, hard floors carry the gate"
        )
        baseline = None
    if baseline is not None:
        # a --quick report is a single-repeat smoke: widen the band so
        # its scheduler noise (see PERF_GATES_QUICK) cannot flake the
        # ratchet; the hard floors above still carry the gate.
        if report.get("quick"):
            tolerance = max(tolerance, 0.5)
        for key in sorted(set(gates) | {"speedup", "speedup_batch"}):
            fresh, base = report.get(key), baseline.get(key)
            if fresh is None or base is None or base <= 0:
                continue
            ratio = fresh / base
            if ratio >= 1.0 - tolerance:
                lines.append(
                    f"ok   {key} vs baseline: {fresh:.2f}x vs {base:.2f}x "
                    f"({100.0 * (ratio - 1.0):+.0f}%, band -{100.0 * tolerance:.0f}%)"
                )
            else:
                fail(
                    f"{key} regressed vs baseline: {fresh:.2f}x vs {base:.2f}x "
                    f"({100.0 * (ratio - 1.0):+.0f}% < -{100.0 * tolerance:.0f}%)"
                )
    return ok, lines


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary printed by the CLI."""
    lines: List[str] = []
    micro = report.get("microbench", {})
    for kernel, m in micro.items():
        lines.append(
            f"microbench[{kernel}]: {m['events_per_s'] / 1e6:.2f} M events/s "
            f"({m['events']} events in {m['wall_s'] * 1e3:.1f} ms, "
            f"{m['alloc_blocks']} net alloc blocks)"
        )
    if "speedup" in report:
        lines.append(f"bucket vs heap dispatch speedup: {report['speedup']:.2f}x")
    if "speedup_batch" in report:
        lines.append(f"batch vs bucket dispatch speedup: {report['speedup_batch']:.2f}x")
    gate = report.get("routing")
    if gate:
        lines.append(
            f"routing det-policy dispatch: {gate['overhead_pct']:+.1f}% vs "
            f"direct table lookup (gate {gate['gate_pct']:.0f}%): "
            f"{'ok' if gate['ok'] else 'FAIL'}"
        )
    for row in report.get("cases", []):
        tag = f"@{row['routing']}" if row.get("routing", "det") != "det" else ""
        lines.append(
            f"{row['case']}/{row['scheme']}{tag} [{row['kernel']}]: "
            f"{row['events_per_s'] / 1e3:.0f} k events/s "
            f"({row['events']} events, {row['wall_s']:.2f} s wall)"
        )
        subs = row.get("subsystems")
        if subs:
            total = sum(subs.values()) or 1
            parts = ", ".join(f"{k} {100.0 * v / total:.0f}%" for k, v in subs.items())
            lines.append(f"  events by subsystem: {parts}")
    for row in report.get("telemetry", []):
        lines.append(
            f"telemetry overhead {row['case']}/{row['scheme']} [{row['kernel']}]: "
            f"{row['overhead_pct']:+.1f}% wall at {row['interval']:.0f} ns sampling "
            f"({row['samples']} samples), results byte-identical: "
            f"{'yes' if row['byte_identical'] else 'NO'}"
        )
    return "\n".join(lines)
