"""Telemetry exporters: JSONL, Prometheus text exposition, dashboard.

All exporters consume the JSON-safe *bundle* dict produced by
:meth:`repro.telemetry.sampler.TelemetrySampler.bundle` (also the
``telemetry`` payload attached to a
:class:`~repro.experiments.runner.CaseResult`), so they work equally
on a live sampler's output, on a cached result, or on a bundle read
back from disk.

* :func:`write_jsonl` — one structured record per line (header,
  samples, protocol events, tree records), fsync'd before close so a
  crash cannot leave a torn export;
* :func:`render_prometheus` — Prometheus-style ``# HELP``/``# TYPE``
  text exposition of the final sample (plus counters), scrapable by
  any Prometheus-compatible collector;
* :func:`render_dashboard` — a self-contained HTML page embedding SVG
  line charts (:mod:`repro.metrics.svgplot`) of the aggregate series
  and the per-tree summary table.  No external assets.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

__all__ = [
    "TELEMETRY_FORMATS",
    "write_jsonl",
    "format_exposition",
    "render_prometheus",
    "render_dashboard",
    "write_bundle",
]

#: formats understood by :func:`write_bundle` and the CLI.
TELEMETRY_FORMATS = ("jsonl", "prom", "html", "all")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(bundle: Dict[str, Any], path, events: Optional[List] = None) -> str:
    """Write the bundle as structured JSONL: a ``header`` record, one
    ``sample`` record per sampling instant (times + aggregate row +
    per-entity rows), one ``event`` record per traced protocol event
    (when ``events`` — e.g. ``trace.events`` — is given), and one
    ``tree`` record per reconstructed lifecycle.  The file is flushed
    and fsync'd before close (same durability contract as the sweep
    journal).  Returns ``path``."""
    times = bundle.get("times", [])
    network = bundle.get("network", [])
    with open(path, "w") as fh:
        header = {
            "record": "header",
            "schema": bundle.get("schema"),
            "config": bundle.get("config"),
            "duration": bundle.get("duration"),
            "ticks": bundle.get("ticks"),
            "dropped": bundle.get("dropped"),
            "events": bundle.get("events"),
        }
        fh.write(json.dumps(header) + "\n")
        ports = bundle.get("ports", {})
        nodes = bundle.get("nodes", {})
        links = bundle.get("links", {})
        for i, t in enumerate(times):
            rec: Dict[str, Any] = {"record": "sample", "t": t}
            if i < len(network):
                rec["network"] = network[i]
            rec["ports"] = {
                name: entry["rows"][i]
                for name, entry in ports.items()
                if i < len(entry["rows"])
            }
            rec["nodes"] = {
                name: entry["rows"][i]
                for name, entry in nodes.items()
                if i < len(entry["rows"])
            }
            rec["links"] = {
                name: entry["rx_bytes"][i]
                for name, entry in links.items()
                if i < len(entry["rx_bytes"])
            }
            fh.write(json.dumps(rec) + "\n")
        for ev in events or []:
            fh.write(
                json.dumps(
                    {
                        "record": "event",
                        "t": ev.time,
                        "kind": ev.kind,
                        "where": ev.where,
                        "dest": ev.dest,
                        "detail": ev.detail,
                    }
                )
                + "\n"
            )
        for tree in bundle.get("trees", []):
            fh.write(json.dumps({"record": "tree", **tree}) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return str(path)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _esc(label: str) -> str:
    return str(label).replace("\\", "\\\\").replace('"', '\\"')


def format_exposition(specs: List) -> str:
    """Low-level Prometheus text formatting shared by
    :func:`render_prometheus` and the ``repro serve`` ``/metrics``
    endpoint.  ``specs`` is a list of ``(name, help, type, rows)``
    where ``rows`` is ``[(labels_dict, value), ...]``; names are
    emitted under the ``repro_`` prefix and None values are skipped."""
    lines: List[str] = []
    for name, help_, type_, rows in specs:
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} {type_}")
        for labels, value in rows:
            if value is None:
                continue
            label_s = (
                "{" + ",".join(f'{k}="{_esc(v)}"' for k, v in labels.items()) + "}"
                if labels
                else ""
            )
            lines.append(f"repro_{name}{label_s} {value}")
    return "\n".join(lines) + "\n"


def render_prometheus(bundle: Dict[str, Any]) -> str:
    """Prometheus-style text exposition of the bundle's *final* sample
    (gauges) and its run counters.  Self-contained text; suitable for a
    node-exporter-style textfile collector (or, live, the ``repro
    serve`` ``/metrics`` scrape endpoint)."""
    specs: List = []

    def metric(name: str, help_: str, type_: str, rows: List) -> None:
        specs.append((name, help_, type_, rows))

    metric("telemetry_samples_total", "Samples recorded", "counter",
           [({}, bundle.get("ticks", 0))])
    metric("telemetry_dropped_total", "Samples evicted from full rings", "counter",
           [({}, bundle.get("dropped", 0))])

    network = bundle.get("network", [])
    if network:
        last = network[-1]
        metric("delivered_bytes_total", "Bytes delivered to sinks", "counter",
               [({}, last.get("delivered_bytes"))])
        metric("allocated_cfqs", "CFQ lines currently allocated", "gauge",
               [({}, last.get("allocated_cfqs"))])
        metric("cam_alloc_failures_total", "CAM line allocation failures", "counter",
               [({}, last.get("cam_alloc_failures"))])
        metric("stop_lines", "Out-CAM lines currently in Stop state", "gauge",
               [({}, last.get("stop_lines"))])
        metric("throttled_destinations", "Destinations under injection control", "gauge",
               [({}, last.get("throttled_destinations"))])
        metric("advoq_backlog_bytes", "Injection-queue backlog (all nodes)", "gauge",
               [({}, last.get("advoq_bytes"))])

    port_rows = []
    pool_rows = []
    for name, entry in bundle.get("ports", {}).items():
        rows = entry.get("rows", [])
        if not rows:
            continue
        last = rows[-1]
        port_rows.append(({"port": name}, last.get("queued_bytes")))
        pool_rows.append(({"port": name}, last.get("pool_used")))
    metric("port_queued_bytes", "Bytes queued at the input port", "gauge", port_rows)
    metric("port_pool_used_bytes", "Input buffer pool occupancy", "gauge", pool_rows)

    gate_rows = []
    for name, entry in bundle.get("nodes", {}).items():
        rows = entry.get("rows", [])
        if not rows:
            continue
        for dest, value in rows[-1].get("gate", {}).items():
            gate_rows.append(({"node": name, "dest": dest}, value))
    metric("node_gate_state", "Per-destination injection-gate state "
           "(CCTI index or RCM rate)", "gauge", gate_rows)

    stats = bundle.get("tree_stats")
    if stats:
        metric("congestion_trees_total", "Congestion trees observed", "counter",
               [({}, stats.get("trees"))])
        metric("congestion_trees_peak", "Peak simultaneous congestion trees", "gauge",
               [({}, stats.get("max_concurrent_trees"))])
        metric("congestion_tree_cam_full_total", "CAM-full events", "counter",
               [({}, stats.get("cam_full_events"))])
    return format_exposition(specs)


# ----------------------------------------------------------------------
# SVG/HTML dashboard
# ----------------------------------------------------------------------
def _chart(title: str, ylabel: str, times_ms: List[float], series: Dict[str, List[float]]) -> str:
    from repro.metrics.svgplot import LineChart

    chart = LineChart(title=title, xlabel="time (ms)", ylabel=ylabel, width=560, height=320)
    for name, ys in series.items():
        chart.add_series(name, times_ms, ys)
    return chart.render()


def render_dashboard(bundle: Dict[str, Any], title: str = "repro telemetry") -> str:
    """A single self-contained HTML page: aggregate SVG charts
    (throughput, CFQ occupancy, Stop lines, throttled destinations,
    concurrent trees) plus the per-tree summary table."""
    times = bundle.get("times", [])
    network = bundle.get("network", [])
    times_ms = [t / 1e6 for t in times]
    charts: List[str] = []
    if times_ms and network:
        interval = float(bundle.get("config", {}).get("interval", 1.0)) or 1.0
        delivered = [row.get("delivered_bytes", 0) for row in network]
        # cumulative delivered bytes -> per-interval GB/s (1 B/ns = 1 GB/s)
        rate = [
            (b - a) / interval for a, b in zip([0] + delivered[:-1], delivered)
        ]
        charts.append(_chart("Delivered throughput", "GB/s", times_ms, {"network": rate}))
        charts.append(_chart(
            "Congestion-tree resources", "count", times_ms,
            {
                "allocated CFQs": [row.get("allocated_cfqs", 0) for row in network],
                "Stop lines": [row.get("stop_lines", 0) for row in network],
                "throttled dests": [row.get("throttled_destinations", 0) for row in network],
            },
        ))
        charts.append(_chart(
            "Buffer state", "bytes", times_ms,
            {
                "switch buffers": [row.get("buffered_bytes", 0) for row in network],
                "AdVOQ backlog": [row.get("advoq_bytes", 0) for row in network],
            },
        ))
    trees = bundle.get("trees", [])
    stats = bundle.get("tree_stats", {})
    rows: List[str] = []
    for t in trees:
        drain = "—" if t.get("drain") is None else f"{t['drain'] / 1e6:.3f}"
        life = "—" if t.get("drain") is None else f"{(t['drain'] - t['birth']) / 1e3:.1f}"
        rows.append(
            "<tr>"
            f"<td>{t['dest']}</td><td>{t['root'] or '—'}</td>"
            f"<td>{t['birth'] / 1e6:.3f}</td><td>{drain}</td><td>{life}</td>"
            f"<td>{t['peak_extent']}</td><td>{t['cfqs_consumed']}</td>"
            f"<td>{t['stops']}</td><td>{t['cam_full']}</td>"
            "</tr>"
        )
    rows_html = "".join(rows)
    summary = ""
    if stats:
        summary = (
            f"<p>{stats.get('trees', 0)} tree(s); peak "
            f"{stats.get('max_concurrent_trees', 0)} simultaneous "
            f"(mean {stats.get('mean_concurrent_trees', 0.0):.2f}) vs "
            f"{stats.get('num_cfqs', 0)} CFQs/port; "
            f"{stats.get('cam_full_events', 0)} CAM-full event(s).</p>"
        )
    table = (
        "<table><thead><tr><th>dest</th><th>root port</th><th>birth (ms)</th>"
        "<th>drain (ms)</th><th>lifetime (µs)</th><th>peak extent</th>"
        "<th>CFQs</th><th>stops</th><th>CAM-full</th></tr></thead>"
        f"<tbody>{rows_html}</tbody></table>"
        if rows_html
        else "<p>No congestion trees observed.</p>"
    )
    dropped = bundle.get("dropped", 0)
    drop_note = (
        f"<p class='warn'>{dropped} sample(s) evicted from full rings — "
        "the head of long series is truncated.</p>"
        if dropped
        else ""
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{title}</title>"
        "<style>body{font-family:sans-serif;margin:24px;max-width:1240px}"
        "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
        "padding:4px 8px;text-align:right}th{background:#f2f2f2}"
        ".charts{display:flex;flex-wrap:wrap;gap:12px}"
        ".warn{color:#b00}</style></head><body>"
        f"<h1>{title}</h1>"
        f"<p>{bundle.get('ticks', 0)} samples over "
        f"{bundle.get('duration', 0) / 1e6:.2f} ms "
        f"(interval {bundle.get('config', {}).get('interval', 0) / 1e3:.0f} µs, "
        f"schema {bundle.get('schema', '?')}).</p>"
        f"{drop_note}"
        f"<div class='charts'>{''.join(charts)}</div>"
        f"<h2>Congestion trees</h2>{summary}{table}"
        "</body></html>"
    )


# ----------------------------------------------------------------------
def write_bundle(
    bundle: Dict[str, Any],
    out_dir,
    fmt: str = "all",
    events: Optional[List] = None,
    title: str = "repro telemetry",
) -> List[str]:
    """Render ``bundle`` into ``out_dir`` in the requested format(s):
    ``telemetry.jsonl``, ``metrics.prom`` and/or ``dashboard.html``.
    Returns the written paths.  Unknown formats raise ``KeyError``
    (the CLI maps that to a did-you-mean hint + exit 2)."""
    if fmt not in TELEMETRY_FORMATS:
        raise KeyError(f"unknown telemetry format {fmt!r}; choose from {TELEMETRY_FORMATS}")
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    if fmt in ("jsonl", "all"):
        written.append(write_jsonl(bundle, os.path.join(out_dir, "telemetry.jsonl"), events))
    if fmt in ("prom", "all"):
        path = os.path.join(out_dir, "metrics.prom")
        with open(path, "w") as fh:
            fh.write(render_prometheus(bundle))
        written.append(path)
    if fmt in ("html", "all"):
        path = os.path.join(out_dir, "dashboard.html")
        with open(path, "w") as fh:
            fh.write(render_dashboard(bundle, title=title))
        written.append(path)
    return written
