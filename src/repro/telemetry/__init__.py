"""Network-wide time-series telemetry (the observability pillar).

The paper's evidence is time-series observability — Figs. 7–10 plot
throughput, CFQ occupancy and CCTI evolution to show congestion trees
forming, being isolated, throttled and drained.  This package samples
a running fabric the way a production fabric manager would:

* :class:`~repro.telemetry.sampler.TelemetrySampler` — periodic
  fixed-schema sampling of every port/node/link into bounded
  ring-buffer series (:class:`~repro.telemetry.series.SeriesRing`);
* :class:`~repro.telemetry.tracker.TreeTracker` — congestion-tree
  lifecycle reconstruction from the
  :class:`~repro.metrics.trace.ProtocolTrace` event stream;
* :mod:`~repro.telemetry.export` — fsync'd JSONL, Prometheus text
  exposition, and a self-contained SVG/HTML dashboard.

Enable it on any run with ``TelemetryConfig`` (runner/sweep API) or
``--telemetry`` (CLI); results stay byte-identical with telemetry on
or off, on both kernels.  See docs/telemetry.md.
"""

from repro.telemetry.export import (
    TELEMETRY_FORMATS,
    render_dashboard,
    render_prometheus,
    write_bundle,
    write_jsonl,
)
from repro.telemetry.sampler import TelemetryConfig, TelemetrySampler
from repro.telemetry.series import SeriesRing
from repro.telemetry.tracker import TreeRecord, TreeTracker

__all__ = [
    "TelemetryConfig",
    "TelemetrySampler",
    "SeriesRing",
    "TreeTracker",
    "TreeRecord",
    "TELEMETRY_FORMATS",
    "write_jsonl",
    "write_bundle",
    "render_prometheus",
    "render_dashboard",
]
