"""Periodic network-state sampling.

A :class:`TelemetrySampler` attaches to a built
:class:`~repro.network.fabric.Fabric` and, driven by a
:class:`~repro.sim.engine.PeriodicTask`, walks the fabric's existing
``snapshot()``/``telemetry_sample()`` hooks at a fixed simulated-time
interval.  Every walk appends one fixed-schema sample per entity —
switch input port, end node, link, plus one network-wide aggregate row
— into bounded :class:`~repro.telemetry.series.SeriesRing` buffers
(never unbounded lists; evictions are counted per ring).

Sampling is strictly read-only: it touches no RNG stream, mutates no
device state and injects only its own periodic tick events, whose
dispatch count the fabric subtracts from its ``events`` statistic —
so CaseResults are byte-identical with telemetry on or off, on both
kernels (the same contract the invariant guard keeps).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.telemetry.series import SeriesRing

__all__ = ["TelemetryConfig", "TelemetrySampler"]

#: the bundle schema version stamped on every export.
BUNDLE_SCHEMA = "repro.telemetry/1"


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling knobs, shared by the runner/sweep API and the CLI.

    Frozen (hashable, picklable) so it can ride on
    :class:`~repro.experiments.sweep.SimJob` cells across worker
    processes and into cache keys.
    """

    #: sampling period in simulated nanoseconds (default 100 µs — the
    #: Collector's bin width, fine enough for the paper's 10 ms plots).
    interval: float = 100_000.0
    #: retained samples per ring (older samples are evicted + counted).
    series_capacity: int = 1024
    #: ProtocolTrace event limit for the attached structured trace.
    events_limit: int = 200_000
    #: reconstruct congestion-tree lifecycles from the trace.
    track_trees: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class TelemetrySampler:
    """Walks the fabric's snapshot hooks on a fixed cadence.

    Per sample it records:

    * **ports** — for every switch input port, the scheme's
      ``telemetry_sample()`` fields (NFQ/CFQ occupancy, CAM line
      count, stopped-line count for the isolation schemes; queued
      bytes/packets for all) plus buffer-pool occupancy;
    * **nodes** — injection-queue (AdVOQ) backlog, staging occupancy,
      and the injection gate's per-destination state (CCTI table for
      the CCT gates, current rate for RCM);
    * **links** — cumulative received bytes;
    * **network** — one aggregate row (delivered bytes, allocated
      CFQs, CAM allocation failures, buffered bytes, Stop'd tree
      lines, throttled destinations, AdVOQ backlog).
    """

    def __init__(self, fabric, config: Optional[TelemetryConfig] = None, trace=None) -> None:
        self.fabric = fabric
        self.config = config if config is not None else TelemetryConfig()
        #: optional ProtocolTrace attached to the same fabric; consumed
        #: by the TreeTracker and the JSONL exporter.
        self.trace = trace
        cap = self.config.series_capacity
        self.times = SeriesRing(cap)
        self.network = SeriesRing(cap)
        self.ports: Dict[str, SeriesRing] = {
            port.name: SeriesRing(cap)
            for sw in fabric.switches
            for port in sw.input_ports
        }
        self.nodes: Dict[int, SeriesRing] = {node.id: SeriesRing(cap) for node in fabric.nodes}
        self.links: Dict[str, SeriesRing] = {link.name: SeriesRing(cap) for link in fabric.links}
        #: periodic tick events dispatched so far (the fabric subtracts
        #: this from its ``events`` statistic to keep results identical
        #: with telemetry off).
        self.ticks = 0
        self._task = None

    # ------------------------------------------------------------------
    def start(self) -> "TelemetrySampler":
        """Install the periodic sampling task (call once, before the
        run); the first sample lands one interval in."""
        if self._task is not None:
            raise RuntimeError("sampler already started")
        self._task = self.fabric.sim.call_every(self.config.interval, self.sample)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Record one fixed-schema sample of the whole fabric (also the
        periodic-task callback).  Read-only by contract."""
        fabric = self.fabric
        self.ticks += 1
        now = fabric.sim.now
        self.times.append(now)

        stop_lines = 0
        for sw in fabric.switches:
            for port in sw.input_ports:
                row = port.scheme.telemetry_sample()
                row["pool_used"] = port.pool.used
                self.ports[port.name].append(row)
            for out in sw.output_ports:
                for line in out.out_cam.lines():
                    if line.stopped:
                        stop_lines += 1

        advoq_total = 0
        throttled_total = 0
        for node in fabric.nodes:
            backlog = node.advoq_backlog()
            advoq_total += backlog
            stage_used = node.stage.pool.used if node.stage is not None else 0
            gate = node.throttle
            row = {"advoq_bytes": backlog, "stage_bytes": stage_used, "gate": {}}
            if gate is not None:
                detail = {str(d): v for d, v in gate.snapshot().items()}
                throttled_total += len(detail)
                row["gate"] = detail
                sample = getattr(gate, "telemetry_sample", None)
                if sample is not None:
                    row.update(sample())
            self.nodes[node.id].append(row)

        for link in fabric.links:
            self.links[link.name].append(link.bytes_received)

        collector = fabric.collector
        self.network.append(
            {
                "delivered_bytes": collector.delivered_bytes,
                "delivered_packets": collector.delivered_packets,
                "allocated_cfqs": sum(sw.allocated_cfqs() for sw in fabric.switches),
                "cam_alloc_failures": sum(sw.cam_alloc_failures() for sw in fabric.switches),
                "buffered_bytes": sum(sw.total_buffered_bytes() for sw in fabric.switches),
                "stop_lines": stop_lines,
                "advoq_bytes": advoq_total,
                "throttled_destinations": throttled_total,
            }
        )

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Total samples evicted across every ring."""
        total = self.times.dropped + self.network.dropped
        for ring in self.ports.values():
            total += ring.dropped
        for ring in self.nodes.values():
            total += ring.dropped
        for ring in self.links.values():
            total += ring.dropped
        return total

    def bundle(self, duration: Optional[float] = None) -> Dict[str, Any]:
        """A JSON-safe dict of everything sampled (plus the trace's
        tree-lifecycle records when a trace is attached) — the payload
        attached to :class:`~repro.experiments.runner.CaseResult` and
        consumed by the exporters.  All keys are strings so the dict
        round-trips ``json.dumps``/``loads`` exactly."""
        out: Dict[str, Any] = {
            "schema": BUNDLE_SCHEMA,
            "config": self.config.to_dict(),
            "duration": float(duration) if duration is not None else float(self.fabric.sim.now),
            "ticks": self.ticks,
            "dropped": self.dropped,
            "times": self.times.values(),
            "network": self.network.values(),
            "ports": {
                name: {"dropped": ring.dropped, "rows": ring.values()}
                for name, ring in self.ports.items()
            },
            "nodes": {
                str(nid): {"dropped": ring.dropped, "rows": ring.values()}
                for nid, ring in self.nodes.items()
            },
            "links": {
                name: {"dropped": ring.dropped, "rx_bytes": ring.values()}
                for name, ring in self.links.items()
            },
        }
        if self.trace is not None:
            out["events"] = {
                "recorded": len(self.trace.events),
                "dropped": getattr(self.trace, "dropped", 0),
                "counts": self.trace.counts(),
            }
            if self.config.track_trees:
                from repro.telemetry.tracker import TreeTracker

                tracker = TreeTracker(num_cfqs=self.fabric.params.num_cfqs)
                tracker.consume(self.trace.events)
                out["trees"] = [rec.to_dict() for rec in tracker.records()]
                out["tree_stats"] = tracker.stats()
        # Fault attribution (docs/faults.md): the injector's event log
        # plus, per congestion tree, whether it was born inside a fault
        # window — separating fault-induced trees from the workload's
        # own.  Absent on fault-free fabrics, keeping bundles identical.
        faults = getattr(self.fabric, "faults", None)
        if faults is not None:
            out["faults"] = faults.snapshot()
            trees = out.get("trees")
            if trees:
                windows = faults.windows()
                for rec in trees:
                    birth = rec.get("birth")
                    rec["during_fault"] = birth is not None and any(
                        start <= birth and (end is None or birth <= end)
                        for start, end in windows
                    )
        return out
