"""Bounded ring-buffer time series.

Telemetry must never grow without bound inside a long simulation: a
:class:`SeriesRing` holds the most recent ``capacity`` samples and
counts every evicted one in :attr:`dropped`, so the exporters can say
"the head of this series was lost" instead of silently lying about
coverage.  Appends are O(1) and allocation-free once the ring is full.
"""

from __future__ import annotations

from typing import Any, Iterator, List

__all__ = ["SeriesRing"]


class SeriesRing:
    """A fixed-capacity append-only series; overwrites the oldest
    sample once full and counts the evictions."""

    __slots__ = ("capacity", "dropped", "_data", "_start")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        #: samples evicted (overwritten) since construction.
        self.dropped = 0
        self._data: List[Any] = []
        self._start = 0

    def append(self, value: Any) -> None:
        if len(self._data) < self.capacity:
            self._data.append(value)
        else:
            self._data[self._start] = value
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def values(self) -> List[Any]:
        """The retained samples, oldest first."""
        if self._start == 0:
            return list(self._data)
        return self._data[self._start:] + self._data[: self._start]

    def last(self) -> Any:
        """The most recent sample (raises IndexError when empty)."""
        if not self._data:
            raise IndexError("empty series")
        return self._data[self._start - 1]

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SeriesRing(capacity={self.capacity}, len={len(self)}, "
            f"dropped={self.dropped})"
        )
