"""Congestion-tree lifecycle reconstruction.

The paper's Fig. 8 argument is about *tree concurrency*: FBICM's
per-port CFQ pool is exhausted when more congestion trees are alive at
once than there are CFQs, while CCFIT's injection throttling drains
trees fast enough that the pool suffices.  A :class:`TreeTracker`
makes that claim measurable: it consumes the structured
:class:`~repro.metrics.trace.ProtocolTrace` event stream (detections,
CFQ allocations/deallocations, Stop/Go, CAM-full) and reconstructs one
:class:`TreeRecord` per congestion tree — root port, birth/peak/drain
times, CFQ lines consumed, upstream extent — plus a network-wide
concurrent-trees step series.

A "tree" here is keyed by its congested destination: every CAM line
allocated for that destination (root or upstream adoption) belongs to
the same tree, and the tree drains when its last line is deallocated.
A destination whose congestion re-forms later starts a *new* record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TreeRecord", "TreeTracker"]


@dataclass
class TreeRecord:
    """One reconstructed congestion-tree lifecycle."""

    dest: int
    #: port where the root line was allocated ("" if the trace opened
    #: with an upstream adoption — e.g. the root predates the trace).
    root: str
    birth: float
    #: time the last CFQ line drained; None while still live at the end.
    drain: Optional[float] = None
    #: time the tree reached its peak upstream extent.
    peak_time: float = 0.0
    #: maximum simultaneous ports holding a line for this tree.
    peak_extent: int = 1
    #: total CFQ lines allocated over the tree's lifetime.
    cfqs_consumed: int = 0
    #: Stop transitions observed on this tree's lines.
    stops: int = 0
    #: CAM allocation failures attributed to this destination while live.
    cam_full: int = 0

    def lifetime(self) -> Optional[float]:
        return None if self.drain is None else self.drain - self.birth

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dest": self.dest,
            "root": self.root,
            "birth": self.birth,
            "drain": self.drain,
            "peak_time": self.peak_time,
            "peak_extent": self.peak_extent,
            "cfqs_consumed": self.cfqs_consumed,
            "stops": self.stops,
            "cam_full": self.cam_full,
        }


@dataclass
class _OpenTree:
    record: TreeRecord
    live_ports: set = field(default_factory=set)


class TreeTracker:
    """Fold a chronological TraceEvent stream into per-tree records.

    ``num_cfqs`` is the per-port CFQ pool size (the paper's resource
    bound); :meth:`stats` compares tree concurrency against it.
    """

    def __init__(self, num_cfqs: int = 0) -> None:
        self.num_cfqs = num_cfqs
        self._open: Dict[int, _OpenTree] = {}
        self._closed: List[TreeRecord] = []
        #: (time, live-tree-count) step series, one point per change.
        self.concurrency: List[Tuple[float, int]] = []
        #: CAM-full events with no live tree for that destination.
        self.unattributed_cam_full = 0
        self._t_last: float = 0.0

    # ------------------------------------------------------------------
    def consume(self, events) -> "TreeTracker":
        """Feed TraceEvents (must be in chronological order, which is
        how ProtocolTrace records them)."""
        for e in events:
            self._t_last = max(self._t_last, e.time)
            if e.kind in ("detect", "adopt"):
                self._alloc(e)
            elif e.kind == "dealloc":
                self._dealloc(e)
            elif e.kind == "cam-full":
                tree = self._open.get(e.dest)
                if tree is not None:
                    tree.record.cam_full += 1
                else:
                    self.unattributed_cam_full += 1
            elif e.kind == "stop":
                tree = self._open.get(e.dest)
                if tree is not None:
                    tree.record.stops += 1
        return self

    def _alloc(self, e) -> None:
        tree = self._open.get(e.dest)
        if tree is None:
            root = e.where if e.kind == "detect" else ""
            tree = _OpenTree(
                TreeRecord(dest=e.dest, root=root, birth=e.time, peak_time=e.time)
            )
            self._open[e.dest] = tree
            self.concurrency.append((e.time, len(self._open)))
        elif e.kind == "detect" and not tree.record.root:
            tree.record.root = e.where
        tree.record.cfqs_consumed += 1
        tree.live_ports.add(e.where)
        if len(tree.live_ports) > tree.record.peak_extent:
            tree.record.peak_extent = len(tree.live_ports)
            tree.record.peak_time = e.time

    def _dealloc(self, e) -> None:
        tree = self._open.get(e.dest)
        if tree is None:
            return  # line allocated before the trace attached
        tree.live_ports.discard(e.where)
        if not tree.live_ports:
            tree.record.drain = e.time
            self._closed.append(tree.record)
            del self._open[e.dest]
            self.concurrency.append((e.time, len(self._open)))

    # ------------------------------------------------------------------
    def records(self) -> List[TreeRecord]:
        """Every tree lifecycle, closed ones first (chronological by
        drain), then still-live ones (chronological by birth)."""
        live = sorted(self._open.values(), key=lambda t: t.record.birth)
        return self._closed + [t.record for t in live]

    def live_trees(self) -> int:
        return len(self._open)

    def max_concurrent_trees(self) -> int:
        """Peak number of simultaneously live congestion trees."""
        return max((n for _t, n in self.concurrency), default=0)

    def mean_concurrent_trees(self) -> float:
        """Time-averaged live-tree count over the observed span (from
        the first lifecycle change to the last trace event)."""
        if not self.concurrency:
            return 0.0
        t0 = self.concurrency[0][0]
        span = self._t_last - t0
        if span <= 0:
            return float(self.concurrency[0][1])
        area = 0.0
        for (t, n), (t_next, _n) in zip(self.concurrency, self.concurrency[1:]):
            area += n * (t_next - t)
        area += self.concurrency[-1][1] * (self._t_last - self.concurrency[-1][0])
        return area / span

    def stats(self) -> Dict[str, Any]:
        """JSON-safe summary: the quantitative form of the paper's
        "CFQs run out under many trees" claim — compare
        ``max_concurrent_trees`` against ``num_cfqs`` and look at
        ``cam_full_events``."""
        records = self.records()
        lifetimes = [r.lifetime() for r in records if r.drain is not None]
        return {
            "trees": len(records),
            "live_at_end": self.live_trees(),
            "max_concurrent_trees": self.max_concurrent_trees(),
            "mean_concurrent_trees": self.mean_concurrent_trees(),
            "num_cfqs": self.num_cfqs,
            "cam_full_events": (
                self.unattributed_cam_full + sum(r.cam_full for r in records)
            ),
            "total_cfqs_consumed": sum(r.cfqs_consumed for r in records),
            "max_extent": max((r.peak_extent for r in records), default=0),
            "mean_lifetime": (sum(lifetimes) / len(lifetimes)) if lifetimes else None,
        }
