"""Bundled congestion-control schemes beyond the paper's evaluated set.

Every module in this package builds its scheme from the public policy
API (:mod:`repro.core.scheme`, :mod:`repro.core.ccfit`) and registers
it with :func:`repro.core.ccfit.register_scheme` at import time — no
device-layer code is touched.  ``repro/__init__`` imports this package
last, so the schemes are discoverable everywhere the paper presets
are: the CLI, the sweep engine, the experiment registry, and the cost
table.  They double as the worked example for ``docs/schemes.md``.
"""

from repro.schemes.rcm import RCM, QueueDepthMarking, RcmGate
from repro.schemes.pfc import PFC, PFC_RCM, PfcQueueScheme

__all__ = ["RCM", "QueueDepthMarking", "RcmGate", "PFC", "PFC_RCM", "PfcQueueScheme"]
