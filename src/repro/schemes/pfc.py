"""PFC — per-priority queues honouring 802.1Qbb PAUSE frames.

The datacenter counterpart of the paper's HPC schemes: instead of
isolating *congested flows* (CCFIT/FBICM) or throttling *sources*
(ITh), a PFC switch simply stops whole priority classes hop by hop
when the downstream shared buffer crosses its dynamic threshold
(:class:`repro.network.buffers.SharedBufferModel`,
docs/buffers.md).  Flows land in one of ``pfc_priorities`` priority
groups by destination hash — the DSCP/TC mapping of a real RoCEv2
deployment — and a PAUSE for a group freezes **every** flow in it.
That is the scheme's famous pathology: one incast victimises all
traffic sharing its priority, and the pause cascades upstream
(congestion spreading) exactly like the HoL trees of §II.  The
``datacenter_incast`` experiment measures both effects against CCFIT.

Two registrations:

* ``PFC`` — the bare 802.1Qbb switch: per-PG queues that honour
  PAUSE, no marking, no source reaction;
* ``PFC+RCM`` — the RoCEv2 stack of Liu et al. (arXiv:1509.03559,
  PAPERS.md): the same PFC substrate with DCQCN-style queue-depth
  ECN and the RCM rate limiter at the sources (both reused verbatim
  from :mod:`repro.schemes.rcm`), so PFC only has to catch what RCM's
  end-to-end loop is too slow for.

Like RCM, the module is assembled purely from the public hook API —
:func:`repro.core.ccfit.register_scheme` plus the
:class:`~repro.network.queueing.CongestionControlScheme` hooks
(``on_arrival`` / ``eligible_heads`` / ``on_control_message``) — with
zero edits to the device layer.  PAUSE/RESUME messages reach the
scheme through the same ``on_control_message`` fan-out the CFQ tree
protocol uses; the scheme runs (inertly) under the static buffer
model, which simply never generates a PAUSE.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.ccfit import SchemeSpec, fifo_stage, register_scheme
from repro.core.params import CCParams
from repro.network.buffers import PacketQueue
from repro.network.packet import ControlMessage, Packet, PfcPause, PfcResume
from repro.network.queueing import PortHost, QueueScheme
from repro.schemes.rcm import DETECT_QUEUE_DEPTH, QueueDepthMarking, RcmGate

__all__ = ["PfcQueueScheme", "pfc_queues", "PFC", "PFC_RCM"]


class PfcQueueScheme(QueueScheme):
    """One FIFO per priority group, gated by received PAUSE state.

    Structurally DBBM with ``pfc_priorities`` buckets (packets file by
    ``dst % nprios``), plus the 802.1Qbb control half: the scheme
    tracks which (output, priority) pairs the downstream has paused —
    stamped onto the message by :meth:`Switch.on_tree_message` — and
    masks their heads out of :meth:`eligible_heads`.  A head whose
    output is paused therefore blocks its whole priority group, which
    is PFC's HoL pathology working as designed, not a bug.
    """

    def __init__(self, host: PortHost, nprios: int) -> None:
        super().__init__(host)
        if nprios < 1:
            raise ValueError(f"PFC needs >= 1 priority group, got {nprios}")
        self.nprios = nprios
        self.pgs = [PacketQueue(f"{host.name}.pg{g}") for g in range(nprios)]
        self._queues = list(self.pgs)
        #: (out_port, priority) pairs currently paused downstream.
        #: ``out_port`` is None at an IA stage (an end node has one
        #: uplink, so its pauses are port-wide).
        self._paused: Set[Tuple[object, int]] = set()
        self.pauses_honoured = 0

    # -- data path -------------------------------------------------------
    def on_arrival(self, pkt: Packet) -> None:
        self.pgs[pkt.dst % self.nprios].push(pkt)
        self.invalidate_heads()
        self.host.kick()

    def _build_heads(self) -> List[Tuple[PacketQueue, int, Packet]]:
        out = []
        paused = self._paused
        for g, q in enumerate(self.pgs):
            head = q.head()
            if head is None:
                continue
            o = self.host.route(head)
            if paused and ((o, g) in paused or (None, g) in paused):
                continue
            out.append((q, o, head))
        return out

    # -- control path (802.1Qbb) -----------------------------------------
    def on_control_message(self, msg: ControlMessage) -> None:
        if isinstance(msg, PfcPause):
            key = (msg.out_port, msg.priority)
            if key not in self._paused:
                self._paused.add(key)
                self.pauses_honoured += 1
                self.invalidate_heads()
        elif isinstance(msg, PfcResume):
            key = (msg.out_port, msg.priority)
            if key in self._paused:
                self._paused.discard(key)
                self.invalidate_heads()
                self.host.kick()

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        dump = super().snapshot()
        if self._paused:
            dump["pfc_paused"] = sorted(
                f"out{o if o is not None else '*'}.pg{g}" for o, g in self._paused
            )
        return dump

    def telemetry_sample(self) -> Dict[str, int]:
        sample = super().telemetry_sample()
        sample["pfc_paused_pairs"] = len(self._paused)
        return sample


def pfc_queues():
    """Queue-policy builder: per-priority PAUSE-honouring FIFOs."""

    def build(port, _n) -> PfcQueueScheme:
        return PfcQueueScheme(port, getattr(port.params, "pfc_priorities", 4))

    return build


def _pfc_cost(params: CCParams, _n: int, max_radix: int) -> Tuple[int, int, int]:
    # DBBM-class hardware: a handful of static queues, no CAMs.
    return params.pfc_priorities, 0, 0


#: registered at import time (``repro/__init__`` imports this package).
PFC = register_scheme(SchemeSpec(
    "PFC",
    pfc_queues(),
    "fifo",
    cost=_pfc_cost,
    description="802.1Qbb: per-priority queues + hop-by-hop PAUSE "
    "(pair with --buffer-model shared)",
))

PFC_RCM = register_scheme(SchemeSpec(
    "PFC+RCM",
    pfc_queues(),
    "fifo",
    detection=DETECT_QUEUE_DEPTH,
    marking=QueueDepthMarking,
    injection_gate=RcmGate,
    ia_scheme=fifo_stage,
    cost=_pfc_cost,
    description="the RoCEv2 datacenter stack: PFC substrate + "
    "DCQCN-style depth ECN and RCM source rates",
))
