"""RCM — a rate-based, DCQCN-style congestion manager.

The paper's ITh reacts to congestion with table-driven inter-packet
delays (CCT/CCTI).  The RCM/DCQCN family (Liu et al., arXiv:1509.03559;
Zhu et al., SIGCOMM'15) reacts with explicit per-destination *rates*:

* **marking** (:class:`QueueDepthMarking`): switches ECN-mark on the
  instantaneous depth of the queue a packet leaves — probabilistically
  between ``Kmin`` and ``Kmax``, always above ``Kmax`` — instead of the
  paper's binary congestion state;
* **reaction** (:class:`RcmGate`): each BECN halves the source's
  injection rate towards the congested destination (multiplicative
  decrease); a recovery timer then adds a fixed increment per period
  (additive increase) until the flow is back at link rate and the
  state is dropped.

The scheme exists primarily as the proof of extensibility for the
hook-based scheme architecture: it is assembled *entirely* from the
public API — :func:`repro.core.ccfit.register_scheme` plus the policy
builders — with zero edits to the device layer, and runs in every
experiment, sweep, and under the invariant guard.  See
``docs/schemes.md`` for the walk-through.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.ccfit import SchemeSpec, fifo_stage, register_scheme, voqsw_queues
from repro.core.params import CCParams
from repro.core.scheme import DetectionPolicy
from repro.network.packet import Packet
from repro.sim.engine import Event, Simulator

__all__ = [
    "DETECT_QUEUE_DEPTH",
    "QueueDepthMarking",
    "RcmGate",
    "RCM",
    "PEAK_RATE",
]

#: full injection rate (bytes/ns) — the Table-I end-node link rate.
PEAK_RATE = 2.5
#: mark-never / mark-always queue depths, in MTUs (DCQCN's Kmin/Kmax).
KMIN_MTUS = 4
KMAX_MTUS = 12
#: marking probability at Kmax (DCQCN's Pmax).
PMAX = 0.5
#: multiplicative-decrease factor applied per (coalesced) BECN.
MD_FACTOR = 0.5
#: additive recovery per timer period, as a fraction of PEAK_RATE.
AI_FRACTION = 1 / 8
#: rate floor, as a fraction of PEAK_RATE (a flow is never stopped
#: outright — it must keep probing so recovery can observe it).
MIN_RATE_FRACTION = 1 / 64


DETECT_QUEUE_DEPTH = DetectionPolicy(
    "queue-depth", "ECN on instantaneous queue depth (Kmin/Kmax)"
)


class QueueDepthMarking:
    """DCQCN-style ECN: mark on the standing depth of the queue the
    packet just left (the switch's backlog towards that output) —
    never below ``Kmin``, always at ``Kmax``, linearly ramping
    probability in between."""

    __slots__ = ("kmin", "kmax", "pmax", "rng", "marked", "considered")

    def __init__(
        self,
        params: CCParams,
        rng: np.random.Generator,
        kmin_mtus: int = KMIN_MTUS,
        kmax_mtus: int = KMAX_MTUS,
        pmax: float = PMAX,
    ) -> None:
        self.kmin = kmin_mtus * params.mtu
        self.kmax = kmax_mtus * params.mtu
        self.pmax = pmax
        self.rng = rng
        self.marked = 0
        self.considered = 0

    def should_mark(self, pkt: Packet, queue, out_port) -> bool:
        self.considered += 1
        depth = queue.bytes  # backlog left behind by this packet
        if depth < self.kmin:
            return False
        if depth < self.kmax:
            p = self.pmax * (depth - self.kmin) / (self.kmax - self.kmin)
            if self.rng.random() >= p:
                return False
        self.marked += 1
        return True


class RcmGate:
    """Per-destination rate limiter (the DCQCN reaction point).

    Implements the :class:`repro.core.scheme.InjectionGate` protocol:
    the IA arbiter may move the next packet for ``dest`` no earlier
    than ``LTI + last_size / rate`` — i.e. the previous packet must
    have "drained" at the current rate.  BECNs multiplicatively
    decrease the rate (coalesced to one decrease per
    ``params.becn_min_interval``, like the CCT gate's anti-windup);
    every ``params.ccti_timer`` ns the recovery timer adds
    ``AI_FRACTION * peak`` back, dropping all state once the flow
    returns to full rate.
    """

    def __init__(
        self,
        sim: Simulator,
        params: CCParams,
        on_release: Optional[Callable[[], None]] = None,
        peak_rate: float = PEAK_RATE,
        md_factor: float = MD_FACTOR,
    ) -> None:
        self.sim = sim
        self.peak = peak_rate
        self.md_factor = md_factor
        self.additive = peak_rate * AI_FRACTION
        self.min_rate = peak_rate * MIN_RATE_FRACTION
        self.timer_period = params.ccti_timer
        self.becn_min_interval = params.becn_min_interval
        self.on_release = on_release
        #: dest -> current rate (bytes/ns); absent = full rate.
        self._rate: Dict[int, float] = {}
        self._lti: Dict[int, float] = {}
        self._last_size: Dict[int, int] = {}
        self._timers: Dict[int, Event] = {}
        self._last_decrease: Dict[int, float] = {}
        #: counters for the evaluation metrics.
        self.becns = 0
        self.decreases = 0

    # -- InjectionGate data path ---------------------------------------
    def rate(self, dest: int) -> float:
        """Current injection rate towards ``dest`` (bytes/ns)."""
        return self._rate.get(dest, self.peak)

    def next_allowed(self, dest: int) -> float:
        rate = self._rate.get(dest)
        if rate is None:
            return 0.0  # full rate: the link itself is the limit
        lti = self._lti.get(dest)
        if lti is None:
            return 0.0
        return lti + self._last_size.get(dest, 0) / rate

    def record_injection(self, dest: int, now: float, size: int = 0) -> None:
        self._lti[dest] = now
        self._last_size[dest] = size

    # -- InjectionGate reaction ----------------------------------------
    def on_becn(self, dest: int) -> None:
        self.becns += 1
        now = self.sim.now
        last = self._last_decrease.get(dest)
        if last is not None and now - last < self.becn_min_interval:
            return
        self._last_decrease[dest] = now
        self._rate[dest] = max(self.rate(dest) * self.md_factor, self.min_rate)
        self.decreases += 1
        timer = self._timers.get(dest)
        if timer is not None:
            timer.cancel()
        self._timers[dest] = self.sim.schedule_in(
            self.timer_period, self._recover, dest
        )

    def _recover(self, dest: int) -> None:
        """Recovery-timer expiry: one additive step back to full rate."""
        rate = self._rate.get(dest)
        if rate is None:
            self._timers.pop(dest, None)
        else:
            rate += self.additive
            if rate >= self.peak:
                self._rate.pop(dest, None)
                self._timers.pop(dest, None)
            else:
                self._rate[dest] = rate
                self._timers[dest] = self.sim.schedule_in(
                    self.timer_period, self._recover, dest
                )
        if self.on_release is not None:
            self.on_release()

    # -- introspection --------------------------------------------------
    def throttled_destinations(self) -> list:
        """Destinations currently below full rate."""
        return list(self._rate)

    def snapshot(self) -> Dict[int, object]:
        """Destination -> rate for every rate-limited destination."""
        return {d: round(r, 6) for d, r in self._rate.items()}

    def telemetry_sample(self) -> Dict[str, object]:
        """Scalar gate fields for the telemetry sampler: how many
        destinations are rate-limited and the deepest cut, as a
        fraction of the peak rate."""
        if not self._rate:
            return {"throttled": 0, "min_rate_fraction": 1.0}
        return {
            "throttled": len(self._rate),
            "min_rate_fraction": round(min(self._rate.values()) / self.peak, 6),
        }

    # -- validation hook -------------------------------------------------
    def audit(self) -> None:
        """Invariant-guard hook: every limited rate sits inside
        ``(0, peak)`` and has a live recovery timer (a lost timer would
        cap a destination forever — the recovery path must exist)."""
        for dest, rate in self._rate.items():
            if not self.min_rate <= rate < self.peak:
                raise RuntimeError(
                    f"RCM rate for dest {dest} is {rate}, outside "
                    f"[{self.min_rate}, {self.peak})"
                )
            timer = self._timers.get(dest)
            if timer is None or timer.cancelled or timer._entry is None:
                raise RuntimeError(
                    f"dest {dest} rate-limited at {rate} B/ns with no live "
                    f"recovery timer — the flow would never recover"
                )


def _rcm_cost(params: CCParams, _n: int, max_radix: int) -> Tuple[int, int, int]:
    # same switch hardware as VOQsw/ITh: per-output VOQs, no CAMs.
    return min(params.num_voqs, max_radix), 0, 0


#: registered at import time; ``repro/__init__`` imports this package,
#: so the scheme is available wherever ``repro`` is.
RCM = register_scheme(SchemeSpec(
    "RCM",
    voqsw_queues(),
    "fifo",
    detection=DETECT_QUEUE_DEPTH,
    marking=QueueDepthMarking,
    injection_gate=RcmGate,
    ia_scheme=fifo_stage,
    cost=_rcm_cost,
    description="rate-based DCQCN-style manager: depth ECN + MD/AI rates",
))
