"""``repro serve``: the long-running HTTP front-end over a broker.

Pure stdlib (:class:`http.server.ThreadingHTTPServer`) — no new
dependencies.  The server owns a
:class:`~repro.service.broker.FsBroker` (shared queue + shared
content-addressed cache namespace) plus a background reaper thread
that requeues expired leases, and exposes:

============================  =========================================
``POST /experiments``         submit a registered experiment as a run
``GET  /experiments``         the experiment registry (the API surface)
``GET  /runs``                all runs with live progress counts
``GET  /runs/<id>``           one run's status (terminal flag, states)
``GET  /runs/<id>/events``    cell-level progress as NDJSON (or SSE
                              with ``Accept: text/event-stream``);
                              ``?follow=1`` streams until the run ends
``GET  /runs/<id>/manifest``  sweep-manifest-shaped account (workers,
                              per-cell wall-clock, failures, requeues)
``GET  /results/<key>``       a cached ``CaseResult`` (the cache = CDN)
``GET  /results/<key>/telemetry``  the cell's telemetry bundle
``GET  /metrics``             live Prometheus exposition: service
                              gauges + the freshest telemetry bundle
``POST /broker/claim|heartbeat|complete|fail``   the worker protocol
``GET  /healthz``             liveness probe
============================  =========================================

Workers may attach either directly to the broker directory
(``repro worker --broker /path``) or over TCP through this server
(``repro worker --broker http://host:8642``) — the protocol is the
same four verbs either way.  See ``docs/service.md``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.broker import FsBroker

__all__ = ["ServiceServer", "serve", "DEFAULT_PORT"]

DEFAULT_PORT = 8642

#: how long a follow-mode event stream sleeps between log polls.
_FOLLOW_POLL = 0.2


class _BadRequest(ValueError):
    """Maps to a 400 with the message in the JSON error body."""


def _resolve_submission(request: Dict[str, Any]) -> Tuple[Any, List[Any]]:
    """Expand a ``POST /experiments`` body into (experiment, jobs).

    Validates names against the live registries with the CLI's
    case-insensitive contract; anything unknown raises
    :class:`_BadRequest` (the HTTP analogue of exit code 2)."""
    from repro.core.ccfit import SCHEMES
    from repro.experiments import registry

    name = request.get("experiment")
    if not name:
        raise _BadRequest("missing 'experiment'")
    try:
        exp = registry.get(name)
    except KeyError as exc:
        raise _BadRequest(str(exc))
    schemes: Optional[Tuple[str, ...]] = None
    if request.get("schemes"):
        by_fold = {s.casefold(): s for s in SCHEMES}
        resolved = []
        for raw in request["schemes"]:
            match = by_fold.get(str(raw).casefold())
            if match is None:
                raise _BadRequest(f"unknown scheme {raw!r}")
            resolved.append(match)
        schemes = tuple(resolved)
    routings: Optional[Tuple[str, ...]] = None
    if request.get("routings"):
        from repro.network.routing import policy_names

        by_fold = {n.casefold(): n for n in policy_names()}
        resolved = []
        for raw in request["routings"]:
            match = by_fold.get(str(raw).casefold())
            if match is None:
                raise _BadRequest(f"unknown routing policy {raw!r}")
            resolved.append(match)
        routings = tuple(resolved)
    kernel = request.get("kernel")
    if kernel is not None:
        from repro.sim.engine import resolve_kernel

        try:
            kernel = resolve_kernel(kernel)
        except ValueError as exc:
            raise _BadRequest(str(exc))
    buffer_model = request.get("buffer_model")
    if buffer_model is not None:
        from repro.network.buffers import buffer_model_names

        match = {n.casefold(): n for n in buffer_model_names()}.get(
            str(buffer_model).casefold()
        )
        if match is None:
            raise _BadRequest(f"unknown buffer model {buffer_model!r}")
        buffer_model = match
    faults = None
    if request.get("faults"):
        from repro.sim.faults import FaultPlan, FaultPlanError

        try:
            faults = FaultPlan.parse(request["faults"])
        except FaultPlanError as exc:
            raise _BadRequest(f"bad faults spec: {exc}")
    telemetry = None
    if request.get("telemetry"):
        from repro.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(
            interval=float(request.get("telemetry_interval", 100_000.0))
        )
    extra = request.get("extra") or {}
    if not isinstance(extra, dict):
        raise _BadRequest("'extra' must be an object of per-case knobs")
    try:
        jobs = exp.jobs(
            schemes=schemes,
            routings=routings,
            time_scale=float(request.get("time_scale", 1.0)),
            seed=int(request.get("seed", 1)),
            telemetry=telemetry,
            kernel=kernel,
            faults=faults,
            buffer_model=buffer_model,
            **extra,
        )
    except (TypeError, KeyError, ValueError) as exc:
        raise _BadRequest(f"cannot expand experiment: {exc}")
    return exp, jobs


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- response helpers ----------------------------------------------
    def _json(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    def _text(self, text: str, content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            data = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise _BadRequest("request body is not valid JSON")
        if not isinstance(data, dict):
            raise _BadRequest("request body must be a JSON object")
        return data

    @property
    def svc(self) -> "ServiceServer":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.svc.verbose:
            super().log_message(fmt, *args)

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_get()
        except _BadRequest as exc:
            self._error(400, str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:  # never kill the handler thread
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route_post()
        except _BadRequest as exc:
            self._error(400, str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    def _route_get(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        broker = self.svc.broker
        if parts == ["healthz"]:
            self._json({"ok": True, "uptime_s": time.time() - self.svc.started})
        elif parts == ["experiments"]:
            from repro.experiments import registry

            self._json({"experiments": registry.describe()})
        elif parts == ["runs"]:
            self._json({
                "runs": [
                    broker.run_status(run.id) for run in broker.runs()
                ]
            })
        elif len(parts) == 2 and parts[0] == "runs":
            status = broker.run_status(parts[1])
            if status is None:
                return self._error(404, f"unknown run {parts[1]!r}")
            self._json(status)
        elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "manifest":
            manifest = broker.run_manifest(parts[1])
            if manifest is None:
                return self._error(404, f"unknown run {parts[1]!r}")
            self._json(manifest)
        elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "events":
            follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
            self._stream_events(parts[1], follow)
        elif len(parts) == 2 and parts[0] == "results":
            result = broker.cache.get(parts[1])
            if result is None:
                return self._error(404, f"no cached result for key {parts[1][:16]!r}")
            self._json({"key": parts[1], "result": result.to_dict()})
        elif len(parts) == 3 and parts[0] == "results" and parts[2] == "telemetry":
            result = broker.cache.get(parts[1])
            if result is None:
                return self._error(404, f"no cached result for key {parts[1][:16]!r}")
            if result.telemetry is None:
                return self._error(404, "cell ran without telemetry")
            self._json({"key": parts[1], "telemetry": result.telemetry})
        elif parts == ["metrics"]:
            self._text(self.svc.render_metrics(), "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._error(404, f"no such endpoint: GET {parsed.path}")

    def _route_post(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        broker = self.svc.broker
        if parts == ["experiments"]:
            request = self._body()
            exp, jobs = _resolve_submission(request)
            run = broker.submit(jobs, experiment=exp.name)
            self._json({
                "run": run.id,
                "experiment": exp.name,
                "cells": len(run.keys),
                "cached": len(run.cached),
                "keys": run.keys,
                "labels": run.labels,
            }, status=201)
        elif parts == ["broker", "claim"]:
            body = self._body()
            worker = body.get("worker") or "anonymous"
            lease = broker.claim(worker)
            if lease is None:
                self._json({"lease": None})
            else:
                self._json({
                    "lease": {
                        "key": lease.key,
                        "spec": lease.spec,
                        "attempt": lease.attempt,
                        "ttl": lease.ttl,
                    }
                })
        elif parts == ["broker", "heartbeat"]:
            body = self._body()
            ok = broker.heartbeat(body.get("key", ""), body.get("worker", ""))
            self._json({"ok": ok})
        elif parts == ["broker", "complete"]:
            body = self._body()
            if not body.get("key") or not isinstance(body.get("result"), dict):
                raise _BadRequest("complete needs 'key' and a 'result' object")
            stored = broker.complete(
                body["key"],
                body.get("worker", "anonymous"),
                body["result"],
                elapsed=body.get("elapsed"),
            )
            self._json({"ok": True, "stored": stored})
        elif parts == ["broker", "fail"]:
            body = self._body()
            if not body.get("key"):
                raise _BadRequest("fail needs 'key'")
            broker.fail(
                body["key"], body.get("worker", "anonymous"),
                body.get("failure") or {},
            )
            self._json({"ok": True})
        else:
            self._error(404, f"no such endpoint: POST {parsed.path}")

    # -- event streaming -----------------------------------------------
    def _stream_events(self, run_id: str, follow: bool) -> None:
        broker = self.svc.broker
        run = broker.run(run_id)
        if run is None:
            return self._error(404, f"unknown run {run_id!r}")
        sse = "text/event-stream" in (self.headers.get("Accept") or "")
        self.send_response(200)
        self.send_header(
            "Content-Type",
            "text/event-stream" if sse else "application/x-ndjson",
        )
        self.send_header("Cache-Control", "no-cache")
        if follow:
            self.send_header("Connection", "close")
        self.end_headers()

        keys = set(run.keys)

        def emit(rec: Dict[str, Any]) -> None:
            line = json.dumps(rec, separators=(",", ":"))
            if sse:
                self.wfile.write(f"data: {line}\n\n".encode("utf-8"))
            else:
                self.wfile.write((line + "\n").encode("utf-8"))
            self.wfile.flush()

        def wanted(rec: Dict[str, Any]) -> bool:
            return rec.get("run") == run_id or rec.get("key") in keys

        sent = 0
        for rec in broker.events():
            if wanted(rec):
                emit(rec)
                sent += 1
        if follow:
            deadline = time.monotonic() + self.svc.follow_timeout
            while time.monotonic() < deadline:
                status = broker.run_status(run_id)
                done = bool(status and status.get("done"))
                seen = 0
                for rec in broker.events():
                    if not wanted(rec):
                        continue
                    seen += 1
                    if seen > sent:
                        emit(rec)
                sent = max(sent, seen)
                if done:
                    break
                time.sleep(_FOLLOW_POLL)
            status = broker.run_status(run_id) or {}
            emit({
                "kind": "end-of-run",
                "run": run_id,
                "done": bool(status.get("done")),
                "counts": status.get("counts", {}),
            })
        if not follow and sse:
            emit({"kind": "end-of-stream", "run": run_id})


class ServiceServer:
    """The ``repro serve`` process object: HTTP front-end + broker +
    background lease reaper.  Usable programmatically (tests, the CI
    smoke) via :meth:`start`/:meth:`stop`, or blocking via
    :meth:`serve_forever`."""

    def __init__(
        self,
        broker_dir,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_dir: Optional[str] = None,
        lease_ttl: float = 60.0,
        reap_interval: Optional[float] = None,
        verbose: bool = False,
        follow_timeout: float = 3600.0,
    ) -> None:
        self.broker = FsBroker(broker_dir, cache_dir=cache_dir, lease_ttl=lease_ttl)
        self.verbose = verbose
        self.follow_timeout = follow_timeout
        self.started = time.time()
        self.reap_interval = (
            reap_interval if reap_interval is not None else max(0.5, lease_ttl / 4.0)
        )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._reaper_stop = threading.Event()
        self._reaper = threading.Thread(target=self._reap_loop, daemon=True)
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _reap_loop(self) -> None:
        while not self._reaper_stop.wait(self.reap_interval):
            try:
                self.broker.reap()
            except Exception:
                pass

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServiceServer":
        self._reaper.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._reaper.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._reaper_stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- metrics -------------------------------------------------------
    def render_metrics(self) -> str:
        """Live Prometheus exposition: service gauges plus — when a
        completed cell carries one — the freshest telemetry bundle via
        the PR 5 exporter, so a scrape sees simulation internals, not
        just queue depths."""
        from repro.telemetry.export import format_exposition, render_prometheus

        counts = self.broker.counts()
        kinds: Dict[str, int] = {}
        for rec in self.broker.events():
            k = rec.get("kind", "?")
            kinds[k] = kinds.get(k, 0) + 1
        specs = [
            ("service_uptime_seconds", "Seconds since repro serve started", "gauge",
             [({}, round(time.time() - self.started, 3))]),
            ("service_cells", "Broker cells by state", "gauge",
             [({"state": s}, counts.get(s, 0)) for s in ("queue", "active", "done", "failed")]),
            ("service_runs_total", "Experiments submitted", "counter",
             [({}, counts.get("runs", 0))]),
            ("service_events_total", "Broker events by kind", "counter",
             [({"kind": k}, n) for k, n in sorted(kinds.items())]),
        ]
        text = format_exposition(specs)
        bundle = self._freshest_bundle()
        if bundle is not None:
            text += render_prometheus(bundle)
        return text

    def _freshest_bundle(self) -> Optional[Dict[str, Any]]:
        done_dir = self.broker.root / "done"
        try:
            markers = sorted(
                (p for p in done_dir.iterdir() if p.suffix == ".json"),
                key=lambda p: p.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return None
        for marker in markers[:8]:  # bounded: scrapes must stay cheap
            result = self.broker.cache.get(marker.stem)
            if result is not None and result.telemetry is not None:
                return result.telemetry
        return None


def serve(
    broker_dir,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    **kw: Any,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    server = ServiceServer(broker_dir, host=host, port=port, **kw)
    print(f"repro serve: listening on {server.url} (broker {server.broker.root})")
    server.serve_forever()
