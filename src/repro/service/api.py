"""Service wire protocol: job specs, event records, HTTP clients.

Everything that crosses a machine boundary is JSON.  The centrepiece
is the lossless ``SimJob`` codec: :func:`job_to_spec` flattens a cell
into a JSON-safe dict and :func:`job_from_spec` rebuilds it so that
``job_from_spec(job_to_spec(job)).key() == job.key()`` — the
content-addressed cache key survives the wire, which is what makes
remote completion idempotent (two workers racing the same cell write
the same entry under the same key).

Two thin stdlib-``urllib`` clients talk to ``repro serve``:

* :class:`ServiceClient` — the submitter's view: submit experiments,
  poll run status, stream events, fetch cached results/telemetry;
* :class:`HttpBroker` — the worker's view of a remote broker, shaped
  exactly like :class:`repro.service.broker.FsBroker` (``claim`` /
  ``heartbeat`` / ``complete`` / ``fail``), so
  :class:`repro.service.worker.Worker` runs unchanged against a local
  directory or a TCP endpoint.

See ``docs/service.md`` for the endpoint inventory.
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.params import CCParams
from repro.experiments.sweep import SimJob

__all__ = [
    "SPEC_SCHEMA",
    "job_to_spec",
    "job_from_spec",
    "ServiceClient",
    "HttpBroker",
    "ServiceError",
    "connect_broker",
]

#: bumped when the spec shape changes incompatibly; decoders reject
#: schemas they do not understand instead of guessing.
SPEC_SCHEMA = 1


class ServiceError(RuntimeError):
    """A service/broker request failed (transport or protocol level)."""


# ----------------------------------------------------------------------
# SimJob <-> JSON spec
# ----------------------------------------------------------------------
def job_to_spec(job: SimJob) -> Dict[str, Any]:
    """Flatten one cell into a JSON-safe dict (lossless; see
    :func:`job_from_spec`).  Optional axes serialize only when set so
    specs stay small and stable."""
    spec: Dict[str, Any] = {
        "schema": SPEC_SCHEMA,
        "case": job.case,
        "scheme": job.scheme,
        "time_scale": job.time_scale,
        "seed": job.seed,
    }
    if job.params is not None:
        spec["params"] = dataclasses.asdict(job.params)
    if job.extra:
        spec["extra"] = {k: v for k, v in job.extra}
    if job.telemetry is not None:
        spec["telemetry"] = job.telemetry.to_dict()
    if job.routing != "det":
        spec["routing"] = job.routing
    if job.kernel is not None:
        spec["kernel"] = job.kernel
    if job.faults is not None:
        spec["faults"] = {"name": job.faults.name, "plan": job.faults.to_dict()}
    if job.buffer_model is not None:
        spec["buffer_model"] = job.buffer_model
    return spec


def job_from_spec(spec: Dict[str, Any]) -> SimJob:
    """Rebuild a :class:`SimJob` from :func:`job_to_spec` output.

    The round-trip preserves the cache key: tuples and lists serialize
    identically in the canonical JSON the key hashes, and every
    optional field defaults exactly as an absent field does on
    ``SimJob`` itself.  Unknown schemas raise :class:`ServiceError`
    (a newer submitter against an older worker fails loudly, never
    silently miscomputes)."""
    schema = spec.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise ServiceError(
            f"unsupported job spec schema {schema!r} (this worker speaks {SPEC_SCHEMA})"
        )
    params = None
    if spec.get("params") is not None:
        params = CCParams(**spec["params"])
        params.validate()
    telemetry = None
    if spec.get("telemetry") is not None:
        from repro.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(**spec["telemetry"])
    faults = None
    if spec.get("faults") is not None:
        from repro.sim.faults import FaultPlan

        faults = FaultPlan.from_dict(
            spec["faults"].get("plan", {}), name=spec["faults"].get("name", "")
        )
    return SimJob(
        case=spec["case"],
        scheme=spec["scheme"],
        time_scale=float(spec.get("time_scale", 1.0)),
        seed=int(spec.get("seed", 1)),
        params=params,
        extra=tuple((k, v) for k, v in spec.get("extra", {}).items()),
        telemetry=telemetry,
        routing=spec.get("routing", "det"),
        kernel=spec.get("kernel"),
        faults=faults,
        buffer_model=spec.get("buffer_model"),
    )


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def _request(
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 30.0,
) -> Dict[str, Any]:
    """One JSON request/response round-trip (POST when ``payload`` is
    given, GET otherwise).  HTTP and transport errors surface as
    :class:`ServiceError` with the server's message when it sent one."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            body = resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:
            pass
        raise ServiceError(
            f"{url}: HTTP {exc.code}" + (f" ({detail})" if detail else "")
        ) from None
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(f"{url}: {exc}") from None
    try:
        return json.loads(body) if body else {}
    except ValueError:
        raise ServiceError(f"{url}: undecodable response body") from None


class ServiceClient:
    """Submitter-side client for a ``repro serve`` endpoint."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base = base_url.rstrip("/")
        self.timeout = timeout

    def _url(self, path: str) -> str:
        return f"{self.base}{path}"

    # -- submission ----------------------------------------------------
    def submit(self, experiment: str, **request: Any) -> Dict[str, Any]:
        """``POST /experiments``: expand ``experiment`` into cells and
        enqueue the ones not already cached.  ``request`` carries the
        grid knobs (``schemes``, ``routings``, ``time_scale``, ``seed``,
        ``telemetry_interval``, per-case ``extra`` overrides, ...).
        Returns the run record (``run`` id, cell count, cache hits)."""
        return _request(
            self._url("/experiments"),
            {"experiment": experiment, **request},
            timeout=self.timeout,
        )

    # -- introspection -------------------------------------------------
    def experiments(self) -> List[Dict[str, Any]]:
        return _request(self._url("/experiments"), timeout=self.timeout)["experiments"]

    def runs(self) -> List[Dict[str, Any]]:
        return _request(self._url("/runs"), timeout=self.timeout)["runs"]

    def run(self, run_id: str) -> Dict[str, Any]:
        return _request(self._url(f"/runs/{run_id}"), timeout=self.timeout)

    def manifest(self, run_id: str) -> Dict[str, Any]:
        return _request(self._url(f"/runs/{run_id}/manifest"), timeout=self.timeout)

    def result(self, key: str) -> Dict[str, Any]:
        """The serialized ``CaseResult`` for one completed cell key."""
        return _request(self._url(f"/results/{key}"), timeout=self.timeout)

    def telemetry(self, key: str) -> Dict[str, Any]:
        return _request(self._url(f"/results/{key}/telemetry"), timeout=self.timeout)

    def metrics(self) -> str:
        req = urllib.request.Request(self._url("/metrics"))
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(f"{self.base}/metrics: {exc}") from None

    # -- progress ------------------------------------------------------
    def events(self, run_id: str, follow: bool = False) -> Iterator[Dict[str, Any]]:
        """Stream the run's cell-level events as decoded NDJSON records.
        With ``follow=True`` the connection stays open until the run
        finishes (the server closes it after the terminal record)."""
        url = self._url(f"/runs/{run_id}/events") + ("?follow=1" if follow else "")
        req = urllib.request.Request(url, headers={"Accept": "application/x-ndjson"})
        try:
            with urllib.request.urlopen(req, timeout=None if follow else self.timeout) as resp:
                for raw in resp:
                    line = raw.decode("utf-8").strip()
                    if line:
                        yield json.loads(line)
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(f"{url}: {exc}") from None

    def wait(
        self, run_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll ``GET /runs/<id>`` until the run reaches a terminal
        state; returns the final status record.  Raises
        :class:`ServiceError` on deadline."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.run(run_id)
            if status.get("done"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"run {run_id} not finished within {timeout:.0f} s "
                    f"({status.get('counts')})"
                )
            time.sleep(poll)


class HttpBroker:
    """The worker's view of a remote broker, over the ``/broker/*``
    endpoints of ``repro serve``.  Interface-compatible with
    :class:`repro.service.broker.FsBroker` so the worker loop does not
    care where its cells come from.  Lease reaping happens server-side
    (:meth:`reap` is a no-op here)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base = base_url.rstrip("/")
        self.timeout = timeout

    def claim(self, worker: str):
        from repro.service.broker import Lease

        rec = _request(
            f"{self.base}/broker/claim", {"worker": worker}, timeout=self.timeout
        )
        if not rec.get("lease"):
            return None
        lease = rec["lease"]
        return Lease(
            key=lease["key"],
            spec=lease["spec"],
            worker=worker,
            attempt=int(lease.get("attempt", 1)),
            ttl=float(lease.get("ttl", 60.0)),
        )

    def heartbeat(self, key: str, worker: str) -> bool:
        rec = _request(
            f"{self.base}/broker/heartbeat",
            {"key": key, "worker": worker},
            timeout=self.timeout,
        )
        return bool(rec.get("ok"))

    def complete(
        self, key: str, worker: str, result: Dict[str, Any], elapsed: Optional[float] = None
    ) -> bool:
        rec = _request(
            f"{self.base}/broker/complete",
            {"key": key, "worker": worker, "result": result, "elapsed": elapsed},
            timeout=self.timeout,
        )
        return bool(rec.get("stored"))

    def fail(self, key: str, worker: str, failure: Dict[str, Any]) -> None:
        _request(
            f"{self.base}/broker/fail",
            {"key": key, "worker": worker, "failure": failure},
            timeout=self.timeout,
        )

    def reap(self) -> Tuple[int, int]:  # server-side concern
        return (0, 0)


def connect_broker(url: str, timeout: float = 30.0):
    """Resolve a ``--broker`` URL to a broker client: ``http(s)://...``
    speaks to a ``repro serve`` endpoint via :class:`HttpBroker`;
    anything else (a plain path or ``dir://path``) opens the shared
    directory directly via :class:`repro.service.broker.FsBroker`."""
    if url.startswith(("http://", "https://")):
        return HttpBroker(url, timeout=timeout)
    from repro.service.broker import FsBroker

    path = url[len("dir://"):] if url.startswith("dir://") else url
    return FsBroker(path)
