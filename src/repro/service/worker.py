"""Pull-based sweep worker: ``repro worker --broker URL``.

The worker is a loop around the broker protocol: claim a lease,
execute the cell, publish the result, repeat.  Execution reuses the
PR 3 resilience machinery *per lease*:

* bounded retries with the same deterministic
  :class:`~repro.experiments.resilience.RetryPolicy` backoff the
  in-process engine uses;
* an optional per-cell wall-clock ``timeout``, enforced by running the
  cell in a quarantine process
  (:func:`~repro.experiments.resilience.run_isolated`) exactly like
  the sweep engine's timeout path;
* an optional :class:`~repro.experiments.resilience.SweepJournal`, so
  a worker doubles as a durable executor;
* a heartbeat thread that keeps the lease alive while the cell runs —
  a worker that dies simply stops heartbeating, the lease expires, and
  the broker requeues the cell for someone else.

Because a cell is executed by the very same
:meth:`SimJob.run() <repro.experiments.sweep.SimJob.run>` the
in-process engine calls, and completed into the same content-addressed
cache key, results are byte-identical to an in-process sweep no matter
which worker (or how many, racing) ran the cell.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.experiments.resilience import RetryPolicy, SweepJournal, execute_job, run_isolated
from repro.experiments.runner import CaseResult
from repro.service.api import connect_broker, job_from_spec
from repro.service.broker import Lease, default_worker_id

__all__ = ["Worker"]


class _Heartbeat:
    """Background lease refresher; stops when asked or when the broker
    reports the lease lost (expired under us and requeued)."""

    def __init__(self, broker, key: str, worker: str, interval: float) -> None:
        self._broker = broker
        self._key = key
        self._worker = worker
        self._interval = interval
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                alive = self._broker.heartbeat(self._key, self._worker)
            except Exception:
                alive = True  # transient broker hiccup: keep computing
            if not alive:
                self.lost = True
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class Worker:
    """One pull-based executor (see module docstring).

    ``broker`` is a broker client (:class:`~repro.service.broker.FsBroker`
    or :class:`~repro.service.api.HttpBroker`) or a ``--broker`` URL
    string for :func:`~repro.service.api.connect_broker`.
    """

    def __init__(
        self,
        broker,
        worker_id: Optional[str] = None,
        *,
        policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        poll_interval: float = 0.5,
        journal: Optional[str] = None,
        max_cells: Optional[int] = None,
        idle_exit: Optional[float] = None,
    ) -> None:
        self.broker = connect_broker(broker) if isinstance(broker, str) else broker
        self.id = worker_id if worker_id is not None else default_worker_id()
        self.policy = policy if policy is not None else RetryPolicy()
        self.timeout = timeout
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.journal = SweepJournal(journal) if journal else None
        self.max_cells = max_cells
        self.idle_exit = idle_exit
        #: cells completed / failed by *this* worker (for reporting).
        self.completed = 0
        self.failed = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit after the current cell."""
        self._stop.set()

    # -- execution -----------------------------------------------------
    def _attempt(self, job) -> Dict[str, Any]:
        """One execution attempt, through the engine's own entry points:
        quarantined with an enforced timeout when configured, in-process
        otherwise.  Always returns a structured record."""
        if self.timeout is not None:
            return run_isolated(job, timeout=self.timeout)
        return execute_job(job)

    def run_lease(self, lease: Lease) -> bool:
        """Execute one leased cell end to end; True when it completed.

        The lease's heartbeat stays alive for the whole retry budget.
        A lease the broker reports lost mid-run is still completed —
        completion is idempotent, so the worst case of a slow worker is
        a duplicate no-op, never a divergent result.
        """
        try:
            job = job_from_spec(lease.spec)
        except Exception as exc:
            self._give_up(lease, {
                "exception": type(exc).__name__,
                "message": f"undecodable job spec: {exc}",
                "kind": "error",
                "attempts": 0,
            })
            return False
        if job.key() != lease.key:
            self._give_up(lease, {
                "exception": "KeyMismatch",
                "message": (
                    f"spec hashes to {job.key()[:12]}..., lease says "
                    f"{lease.key[:12]}... (version skew between submitter "
                    "and worker?)"
                ),
                "kind": "error",
                "attempts": 0,
            })
            return False
        interval = (
            self.heartbeat_interval
            if self.heartbeat_interval is not None
            else max(0.5, lease.ttl / 4.0)
        )
        with _Heartbeat(self.broker, lease.key, self.id, interval):
            attempt = 0
            t0 = time.perf_counter()
            while True:
                attempt += 1
                record = self._attempt(job)
                if record.get("ok"):
                    elapsed = time.perf_counter() - t0
                    self.broker.complete(
                        lease.key, self.id, record["result"], elapsed=elapsed
                    )
                    if self.journal is not None:
                        self.journal.record_result(lease.key, record["result"])
                    self.completed += 1
                    return True
                if attempt <= self.policy.max_retries and not self._stop.is_set():
                    time.sleep(self.policy.delay(attempt, lease.key))
                    continue
                err = record.get("error", {})
                self._give_up(lease, {
                    "exception": err.get("exception", "UnknownError"),
                    "message": err.get("message", ""),
                    "traceback": err.get("traceback", ""),
                    "kind": record.get("kind", "error"),
                    "attempts": attempt,
                })
                return False

    def _give_up(self, lease: Lease, failure: Dict[str, Any]) -> None:
        self.failed += 1
        self.broker.fail(lease.key, self.id, failure)
        if self.journal is not None:
            from repro.experiments.resilience import JobFailure

            self.journal.record_failure(JobFailure(
                key=lease.key,
                label=str(lease.spec.get("case", "?")) if lease.spec else lease.key[:12],
                kind=failure.get("kind", "error"),
                exception=failure.get("exception", "UnknownError"),
                message=failure.get("message", ""),
                traceback=failure.get("traceback", ""),
                attempts=int(failure.get("attempts", 1) or 1),
            ))

    # -- the pull loop -------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Pull and execute cells until stopped, ``max_cells`` is
        reached, or the queue stays empty past ``idle_exit`` seconds.
        Returns a summary dict (cells completed/failed, elapsed)."""
        t0 = time.perf_counter()
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            if self.max_cells is not None and self.completed + self.failed >= self.max_cells:
                break
            try:
                self.broker.reap()
            except Exception:
                pass  # reaping is advisory; the server reaps too
            lease = self.broker.claim(self.id)
            if lease is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif self.idle_exit is not None and now - idle_since >= self.idle_exit:
                    break
                self._stop.wait(self.poll_interval)
                continue
            idle_since = None
            self.run_lease(lease)
        if self.journal is not None:
            self.journal.close()
        return {
            "worker": self.id,
            "completed": self.completed,
            "failed": self.failed,
            "elapsed": time.perf_counter() - t0,
        }

    # -- convenience ---------------------------------------------------
    def fetch_result(self, key: str) -> Optional[CaseResult]:
        """The shared-cache view of one cell (FsBroker only)."""
        cache = getattr(self.broker, "cache", None)
        return cache.get(key) if cache is not None else None
